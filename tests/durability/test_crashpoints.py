"""Deterministic crashpoint sweep: kill the process at every named
durability IO site, recover cold, and check the black-box invariants —
every acknowledged commit survives, nothing unacknowledged does (except
the at-most-one commit that was in flight when the crash fired, which a
real client must treat as *uncertain*).

The randomized campaign in :mod:`repro.verify.crash` covers the same
sites under concurrency; this sweep is the small, deterministic tier-1
version that pins each site by name.
"""

import pytest

from repro.engine import Database, load_database
from repro.storage import (
    CRASHPOINT_NAMES,
    DataType,
    FaultInjector,
    InjectedCrash,
)

KEYS = 4


def build(tmp_path, injector):
    db = Database(
        persist_dir=tmp_path,
        durability="wal",
        fsync="commit",
        fault_injector=injector,
    )
    db.create_table("kv", [("key", DataType.INT), ("val", DataType.INT)])
    db.insert("kv", [(key, 0) for key in range(KEYS)])
    db.checkpoint()
    return db


def abandon(db):
    try:
        if db.wal is not None:
            db.wal.close()
    except Exception:
        pass


def state(db):
    return {row.values[0]: row.values[1] for row in db.catalog.table("kv").rows()}


@pytest.mark.parametrize("site", CRASHPOINT_NAMES)
def test_recovery_is_intact_after_crash_at(site, tmp_path):
    injector = FaultInjector(seed=13)
    db = build(tmp_path, injector)
    table = db.catalog.table("kv")
    acked = {key: 0 for key in range(KEYS)}
    uncertain = None
    crashed = False
    injector.arm(site, hits=1)

    # Interleave commits and checkpoints until the armed site fires: the
    # WAL sites trip inside a commit, the checkpoint sites inside one of
    # the checkpoint calls.
    for step in range(12):
        key, value = step % KEYS, 100 + step
        try:
            if step % 4 == 3:
                db.checkpoint()
                continue
            txn = db.begin()
            txn.delete_where(table, column="key", equals=key)
            txn.insert(table, [(key, value)])
            try:
                txn.commit()
            except InjectedCrash:
                # commit never returned: its effect may or may not be on
                # disk, and either recovery outcome is legal
                uncertain = {**acked, key: value}
                crashed = True
                break
            acked = {**acked, key: value}
        except InjectedCrash:
            crashed = True
            break
    assert crashed, f"workload never reached {site}"
    assert injector.crash_site == site
    abandon(db)

    recovered = load_database(tmp_path)
    durable = state(recovered)
    legal = [acked] + ([uncertain] if uncertain is not None else [])
    assert durable in legal, (
        f"crash at {site}: recovered state {durable} matches neither the "
        f"acked state {acked} nor the uncertain commit"
    )
    # the recovered database is fully usable: commit once more and reload
    with recovered.begin() as txn:
        t = recovered.catalog.table("kv")
        txn.delete_where(t, column="key", equals=0)
        txn.insert(t, [(0, 999)])
    abandon(recovered)

    reloaded = load_database(tmp_path)
    assert state(reloaded)[0] == 999
    reloaded.close()
