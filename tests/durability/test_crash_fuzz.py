"""The randomized crash-recovery campaign, scaled down for the tier-1
suite (CI's ``durability`` job runs the full campaign via
``python -m repro.verify --crash``)."""

from __future__ import annotations

from repro.storage.faults import CRASHPOINT_NAMES
from repro.verify.crash import CrashFuzzConfig, run_crash_campaign


class TestCrashCampaign:
    def test_small_campaign_certifies(self):
        # One trial per crashpoint plus a torn-tail corpus; every recovery
        # must preserve exactly the acked commits (± the uncertain one).
        result = run_crash_campaign(
            crashes=len(CRASHPOINT_NAMES),
            torn_tails=4,
            sessions=2,
            transactions=48,
            keys=4,
            seed=7,
        )
        assert result.certified, result.render()
        assert result.stats["torn_tails"] == 4
        assert result.stats["crashes_fired"] > 0
        assert result.stats["acked_total"] > 0

    def test_trials_round_robin_all_sites(self):
        result = run_crash_campaign(
            crashes=len(CRASHPOINT_NAMES),
            torn_tails=0,
            sessions=2,
            transactions=48,
            keys=4,
            seed=3,
        )
        assert result.certified, result.render()
        armed = {trial.site for trial in result.trials}
        assert armed == set(CRASHPOINT_NAMES)

    def test_render_mentions_the_seed(self):
        result = run_crash_campaign(
            crashes=2, torn_tails=1, sessions=2, transactions=24, seed=42
        )
        assert "seed=42" in result.render()

    def test_config_defaults_cover_every_site(self):
        # the default trial count sweeps the whole crashpoint registry
        assert CrashFuzzConfig().crashes >= len(CRASHPOINT_NAMES)
