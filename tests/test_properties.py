"""Property-based tests (hypothesis) on the core invariants.

The central soundness claims of the paper, checked on randomized inputs:

* the ranking principle — upper-bound scores never increase as more
  predicates are evaluated, and always dominate the final score;
* every rank-aware physical operator emits a non-increasing score stream;
* any µ-chain permutation produces the same rank-relation;
* physical pipelines agree with the reference (materialized) semantics;
* top-k answers agree with the brute-force oracle.
"""

from __future__ import annotations

import math

from hypothesis import given, settings, strategies as st

from repro.algebra.expressions import col
from repro.algebra.predicates import BooleanPredicate, RankingPredicate, ScoringFunction
from repro.algebra.rank_relation import RankRelation, ScoredRow
from repro.execution import (
    ExecutionContext,
    HRJN,
    Mu,
    RankIntersect,
    RankUnion,
    RankingQueue,
    SeqScan,
    Sort,
    run_plan,
)
from repro.storage import Catalog, DataType, Row, Schema

# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------

scores01 = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)

rows_strategy = st.lists(
    st.tuples(st.integers(0, 5), scores01, scores01, scores01),
    min_size=0,
    max_size=25,
)


def build_catalog(rows):
    """One table T(k, x, y, z) with predicates px, py, pz on the floats."""
    catalog = Catalog()
    table = catalog.create_table(
        "T",
        Schema.of(
            ("k", DataType.INT),
            ("x", DataType.FLOAT),
            ("y", DataType.FLOAT),
            ("z", DataType.FLOAT),
        ),
    )
    for row in rows:
        table.insert(list(row))
    px = RankingPredicate("px", ["T.x"], lambda x: x)
    py = RankingPredicate("py", ["T.y"], lambda y: y)
    pz = RankingPredicate("pz", ["T.z"], lambda z: z)
    scoring = ScoringFunction([px, py, pz])
    return catalog, scoring


# ----------------------------------------------------------------------
# ranking principle
# ----------------------------------------------------------------------

class TestRankingPrinciple:
    @given(scores=st.dictionaries(st.sampled_from(["px", "py", "pz"]), scores01))
    def test_upper_bound_dominates_final(self, scores):
        catalog, scoring = build_catalog([])
        full = {"px": 0.0, "py": 0.0, "pz": 0.0}
        full.update(scores)
        assert scoring.upper_bound(scores) >= scoring.final_score(full) - 1e-12

    @given(
        scores=st.dictionaries(
            st.sampled_from(["px", "py", "pz"]), scores01, min_size=1
        )
    )
    def test_evaluating_more_never_raises_bound(self, scores):
        __, scoring = build_catalog([])
        names = list(scores)
        for i in range(len(names)):
            partial = {name: scores[name] for name in names[:i]}
            fuller = {name: scores[name] for name in names[: i + 1]}
            assert scoring.upper_bound(fuller) <= scoring.upper_bound(partial) + 1e-12


# ----------------------------------------------------------------------
# ranking queue
# ----------------------------------------------------------------------

class TestRankingQueue:
    @given(st.lists(scores01, max_size=50))
    def test_pops_in_descending_bound_order(self, bounds):
        queue = RankingQueue()
        for i, bound in enumerate(bounds):
            queue.push(bound, ScoredRow(Row.base([i], "t", i), {}))
        popped = []
        while len(queue):
            popped.append(queue.peek_bound())
            queue.pop()
        assert popped == sorted(bounds, reverse=True)

    def test_empty_peek_is_minus_inf(self):
        assert RankingQueue().peek_bound() == -math.inf


# ----------------------------------------------------------------------
# physical streams
# ----------------------------------------------------------------------

class TestPhysicalStreams:
    @settings(max_examples=40, deadline=None)
    @given(rows=rows_strategy)
    def test_mu_chain_descending(self, rows):
        catalog, scoring = build_catalog(rows)
        context = ExecutionContext(catalog, scoring)
        plan = Mu(Mu(Mu(SeqScan("T"), "px"), "py"), "pz")
        out = run_plan(plan, context)
        bounds = [context.upper_bound(s) for s in out]
        assert bounds == sorted(bounds, reverse=True)
        assert len(out) == len(rows)

    @settings(max_examples=40, deadline=None)
    @given(rows=rows_strategy)
    def test_mu_permutations_same_ranking(self, rows):
        catalog, scoring = build_catalog(rows)
        rankings = []
        for order in (("px", "py", "pz"), ("pz", "px", "py"), ("py", "pz", "px")):
            context = ExecutionContext(catalog, scoring)
            plan = SeqScan("T")
            for name in order:
                plan = Mu(plan, name)
            out = run_plan(plan, context)
            rankings.append(
                RankRelation(scoring, out)
            )
        assert rankings[0].equivalent(rankings[1])
        assert rankings[1].equivalent(rankings[2])

    @settings(max_examples=40, deadline=None)
    @given(rows=rows_strategy)
    def test_mu_chain_equals_sort(self, rows):
        catalog, scoring = build_catalog(rows)
        mu_context = ExecutionContext(catalog, scoring)
        mu_out = run_plan(Mu(Mu(Mu(SeqScan("T"), "px"), "py"), "pz"), mu_context)
        sort_context = ExecutionContext(catalog, scoring)
        sort_out = run_plan(Sort(SeqScan("T")), sort_context)
        assert RankRelation(scoring, mu_out).equivalent(
            RankRelation(scoring, sort_out)
        )

    @settings(max_examples=40, deadline=None)
    @given(rows=rows_strategy, k=st.integers(0, 10))
    def test_topk_matches_oracle(self, rows, k):
        catalog, scoring = build_catalog(rows)
        expected = sorted((x + y + z for __, x, y, z in rows), reverse=True)[:k]
        context = ExecutionContext(catalog, scoring)
        out = run_plan(Mu(Mu(Mu(SeqScan("T"), "px"), "py"), "pz"), context, k=k)
        got = [context.upper_bound(s) for s in out]
        assert len(got) == min(k, len(rows))
        for a, b in zip(got, expected):
            assert abs(a - b) < 1e-9


# ----------------------------------------------------------------------
# joins
# ----------------------------------------------------------------------

class TestJoinProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        left_rows=st.lists(st.tuples(st.integers(0, 3), scores01), max_size=15),
        right_rows=st.lists(st.tuples(st.integers(0, 3), scores01), max_size=15),
        k=st.integers(1, 8),
    )
    def test_hrjn_topk_matches_oracle(self, left_rows, right_rows, k):
        catalog = Catalog()
        left = catalog.create_table(
            "L", Schema.of(("k", DataType.INT), ("x", DataType.FLOAT))
        )
        right = catalog.create_table(
            "Rr", Schema.of(("k", DataType.INT), ("y", DataType.FLOAT))
        )
        for row in left_rows:
            left.insert(list(row))
        for row in right_rows:
            right.insert(list(row))
        pl = RankingPredicate("pl", ["L.x"], lambda x: x)
        pr = RankingPredicate("pr", ["Rr.y"], lambda y: y)
        scoring = ScoringFunction([pl, pr])
        expected = sorted(
            (
                lx + ry
                for lk, lx in left_rows
                for rk, ry in right_rows
                if lk == rk
            ),
            reverse=True,
        )[:k]
        context = ExecutionContext(catalog, scoring)
        plan = HRJN(Mu(SeqScan("L"), "pl"), Mu(SeqScan("Rr"), "pr"), "L.k", "Rr.k")
        out = run_plan(plan, context, k=k)
        got = [context.upper_bound(s) for s in out]
        assert len(got) == min(k, len(expected))
        for a, b in zip(got, expected):
            assert abs(a - b) < 1e-9


# ----------------------------------------------------------------------
# set operations
# ----------------------------------------------------------------------

class TestSetOperationProperties:
    def make_pair(self, left_rows, right_rows):
        catalog = Catalog()
        left = catalog.create_table(
            "L", Schema.of(("k", DataType.INT), ("x", DataType.FLOAT))
        )
        right = catalog.create_table(
            "Rr", Schema.of(("k", DataType.INT), ("x", DataType.FLOAT))
        )
        for row in left_rows:
            left.insert(list(row))
        for row in right_rows:
            right.insert(list(row))
        pa = RankingPredicate("pa", ["x"], lambda x: x)
        pb = RankingPredicate("pb", ["x"], lambda x: 1 - x)
        scoring = ScoringFunction([pa, pb])
        return catalog, scoring

    small_rows = st.lists(
        st.tuples(st.integers(0, 3), st.sampled_from([0.0, 0.25, 0.5, 0.75, 1.0])),
        max_size=10,
    )

    @settings(max_examples=25, deadline=None)
    @given(left_rows=small_rows, right_rows=small_rows)
    def test_union_membership(self, left_rows, right_rows):
        catalog, scoring = self.make_pair(left_rows, right_rows)
        context = ExecutionContext(catalog, scoring)
        plan = RankUnion(Mu(SeqScan("L"), "pa"), Mu(SeqScan("Rr"), "pb"))
        out = run_plan(plan, context)
        got = {s.row.values for s in out}
        assert got == set(left_rows) | set(right_rows)
        bounds = [context.upper_bound(s) for s in out]
        assert bounds == sorted(bounds, reverse=True)

    @settings(max_examples=25, deadline=None)
    @given(left_rows=small_rows, right_rows=small_rows)
    def test_intersection_membership(self, left_rows, right_rows):
        catalog, scoring = self.make_pair(left_rows, right_rows)
        context = ExecutionContext(catalog, scoring)
        plan = RankIntersect(Mu(SeqScan("L"), "pa"), Mu(SeqScan("Rr"), "pb"))
        out = run_plan(plan, context)
        got = {s.row.values for s in out}
        assert got == set(left_rows) & set(right_rows)
