"""Randomized agreement between the physical engine and the reference
(materialized) semantics, and between the row and batch execution paths.

For randomly generated data and a catalogue of plan shapes — µ chains with
interleaved filters, rank-joins, set operations — the physical pipeline
must produce a rank-relation equivalent (same membership, same score order,
ties free) to the reference evaluator's result for the corresponding
logical plan.

Row/batch parity is *stricter*: for every workload query and plan shape,
the lowered (batched columnar) plan must produce the identical sequence —
same rows, same evaluated scores, same deterministic rid tie order — as
the row-mode plan it replaces, while rank-aware operators keep emitting
incrementally.
"""

from __future__ import annotations

import random

import pytest

from repro.algebra.expressions import col
from repro.algebra.operators import (
    LogicalDifference,
    LogicalIntersect,
    LogicalJoin,
    LogicalRank,
    LogicalScan,
    LogicalSelect,
    LogicalUnion,
    evaluate_logical,
)
from repro.algebra.predicates import BooleanPredicate, RankingPredicate, ScoringFunction
from repro.algebra.rank_relation import RankRelation
from repro.execution import (
    ExecutionContext,
    Filter,
    HRJN,
    Mu,
    NRJN,
    RankDifference,
    RankIntersect,
    RankUnion,
    SeqScan,
    run_plan,
)
from repro.storage import Catalog, DataType, Schema


def make_db(seed, n=30, distinct=5):
    rng = random.Random(seed)
    catalog = Catalog()
    t1 = catalog.create_table(
        "T1", Schema.of(("k", DataType.INT), ("x", DataType.FLOAT))
    )
    t2 = catalog.create_table(
        "T2", Schema.of(("k", DataType.INT), ("x", DataType.FLOAT))
    )
    values = [round(rng.random(), 2) for __ in range(10)]
    for __ in range(n):
        t1.insert([rng.randrange(distinct), rng.choice(values)])
        t2.insert([rng.randrange(distinct), rng.choice(values)])
    pa = RankingPredicate("pa", ["x"], lambda x: x)
    pb = RankingPredicate("pb", ["x"], lambda x: 1 - x)
    scoring = ScoringFunction([pa, pb])
    return catalog, scoring


def assert_physical_matches_reference(catalog, scoring, logical, physical, k=None):
    reference = evaluate_logical(logical, catalog, scoring)
    context = ExecutionContext(catalog, scoring)
    out = run_plan(physical, context, k=None)
    got = RankRelation(scoring, out)
    if k is not None:
        reference = RankRelation(scoring, reference.top(k))
        got = RankRelation(scoring, got.rows[:k])
    assert got.equivalent(reference), (
        f"physical != reference\nphysical: {got.rids()}\n"
        f"reference: {reference.rids()}"
    )


def scan(catalog, name):
    return LogicalScan(name, catalog.table(name).schema)


@pytest.mark.parametrize("seed", range(6))
class TestUnaryPipelines:
    def test_mu_chain(self, seed):
        catalog, scoring = make_db(seed)
        logical = LogicalRank(LogicalRank(scan(catalog, "T1"), "pa"), "pb")
        physical = Mu(Mu(SeqScan("T1"), "pa"), "pb")
        assert_physical_matches_reference(catalog, scoring, logical, physical)

    def test_filter_between_mus(self, seed):
        catalog, scoring = make_db(seed)
        condition = BooleanPredicate(col("T1.k") > 1, "k>1")
        logical = LogicalRank(
            LogicalSelect(LogicalRank(scan(catalog, "T1"), "pa"), condition), "pb"
        )
        physical = Mu(Filter(Mu(SeqScan("T1"), "pa"), condition), "pb")
        assert_physical_matches_reference(catalog, scoring, logical, physical)


@pytest.mark.parametrize("seed", range(6))
class TestJoins:
    def test_hrjn_matches_reference_join(self, seed):
        catalog, scoring = make_db(seed, n=20)
        condition = BooleanPredicate(col("T1.k").eq(col("T2.k")), "j")
        logical = LogicalJoin(
            LogicalRank(scan(catalog, "T1"), "pa"),
            LogicalRank(scan(catalog, "T2"), "pb"),
            condition,
        )
        physical = HRJN(
            Mu(SeqScan("T1"), "pa"), Mu(SeqScan("T2"), "pb"), "T1.k", "T2.k"
        )
        assert_physical_matches_reference(catalog, scoring, logical, physical)

    def test_nrjn_matches_reference_join(self, seed):
        catalog, scoring = make_db(seed, n=15)
        condition = BooleanPredicate(col("T1.k") < col("T2.k"), "lt")
        logical = LogicalJoin(
            LogicalRank(scan(catalog, "T1"), "pa"),
            LogicalRank(scan(catalog, "T2"), "pb"),
            condition,
        )
        physical = NRJN(
            Mu(SeqScan("T1"), "pa"), Mu(SeqScan("T2"), "pb"), condition
        )
        assert_physical_matches_reference(catalog, scoring, logical, physical)


@pytest.mark.parametrize("seed", range(6))
class TestSetOperations:
    def build(self, catalog):
        logical_left = LogicalRank(scan(catalog, "T1"), "pa")
        logical_right = LogicalRank(scan(catalog, "T2"), "pb")
        physical_left = Mu(SeqScan("T1"), "pa")
        physical_right = Mu(SeqScan("T2"), "pb")
        return logical_left, logical_right, physical_left, physical_right

    def test_union(self, seed):
        catalog, scoring = make_db(seed)
        ll, lr, pl, pr = self.build(catalog)
        assert_physical_matches_reference(
            catalog, scoring, LogicalUnion(ll, lr), RankUnion(pl, pr)
        )

    def test_intersection(self, seed):
        catalog, scoring = make_db(seed)
        ll, lr, pl, pr = self.build(catalog)
        assert_physical_matches_reference(
            catalog, scoring, LogicalIntersect(ll, lr), RankIntersect(pl, pr)
        )

    def test_difference(self, seed):
        catalog, scoring = make_db(seed)
        ll, lr, pl, pr = self.build(catalog)
        assert_physical_matches_reference(
            catalog, scoring, LogicalDifference(ll, lr), RankDifference(pl, pr)
        )


# ----------------------------------------------------------------------
# row / batch execution parity
# ----------------------------------------------------------------------

from repro.optimizer.plans import (  # noqa: E402
    BatchSegmentPlan,
    MuPlan,
    RankScanPlan,
    ScanSelectPlan,
    lower_to_batch,
)
from repro.workloads import ALL_PLANS, WorkloadConfig, build_workload  # noqa: E402

_workloads: dict = {}


def parity_workload():
    """A small (memoized) §6 workload for exhaustive parity runs."""
    key = "default"
    if key not in _workloads:
        _workloads[key] = build_workload(
            WorkloadConfig(table_size=200, join_selectivity=0.02, k=8, seed=7)
        )
    return _workloads[key]


def drain(catalog, scoring, plan_node, k=None):
    """Execute a plan descriptor; return the full observable sequence —
    (rid, values, evaluated scores) per tuple, in emission order."""
    context = ExecutionContext(catalog, scoring)
    out = run_plan(plan_node.build(), context, k=k)
    return [(s.row.rid, s.row.values, dict(s.scores)) for s in out]


def assert_paths_identical(catalog, scoring, plan_node, k=None):
    """The lowered plan must emit the identical sequence (rows, scores,
    rid tie order) as its row-mode twin."""
    lowered = lower_to_batch(plan_node)
    row_sequence = drain(catalog, scoring, plan_node, k=k)
    batch_sequence = drain(catalog, scoring, lowered, k=k)
    assert batch_sequence == row_sequence


@pytest.mark.parametrize("plan_name", sorted(ALL_PLANS))
def test_fig11_plan_parity(plan_name):
    """All four §6.1 plan shapes: identical rows, scores and tie order."""
    workload = parity_workload()
    plan = ALL_PLANS[plan_name](workload)
    assert_paths_identical(workload.catalog, workload.scoring, plan)


@pytest.mark.parametrize("strategy", ["rank-aware", "traditional", "rule-based"])
def test_workload_query_parity(strategy):
    """The workload query under every optimizer strategy, both paths."""
    workload = parity_workload()
    plan = workload.database.planner.plan(
        workload.spec, strategy=strategy, sample_ratio=0.2, seed=1
    )
    assert_paths_identical(workload.catalog, workload.scoring, plan)


@pytest.mark.parametrize("seed", range(4))
def test_generated_query_parity_across_execution_modes(seed):
    """End-to-end: the same SQL returns identical rows and scores whether
    the Database runs pure row mode, unconditional batch lowering, or the
    cost-governed ``"auto"`` hybrid, for every generated query."""
    from repro.engine.database import Database
    from repro.storage.schema import DataType

    queries = [
        "SELECT * FROM L ORDER BY pa(L.x) LIMIT 7",
        "SELECT * FROM L WHERE L.k > 1 ORDER BY pa(L.x) LIMIT 9",
        "SELECT * FROM L, R WHERE L.k = R.k ORDER BY pa(L.x) + pb(R.x) LIMIT 6",
        "SELECT * FROM L, R WHERE L.k = R.k AND R.k < 4 "
        "ORDER BY pa(L.x) + pb(R.x) LIMIT 12",
    ]

    def make(batch_execution):
        db = Database(batch_execution=batch_execution)
        for name in ("L", "R"):
            db.create_table(name, [("k", DataType.INT), ("x", DataType.FLOAT)])
            local = random.Random(seed if name == "L" else seed + 99)
            db.insert(
                name,
                [
                    (local.randrange(5), round(local.random(), 2))
                    for __ in range(40)
                ],
            )
        db.register_predicate("pa", ["L.x"], lambda x: x)
        db.register_predicate("pb", ["R.x"], lambda x: 1 - x)
        db.analyze()
        return db

    databases = {mode: make(mode) for mode in (False, True, "auto")}
    for sql in queries:
        for strategy in ("rank-aware", "traditional"):
            outputs = {
                mode: db.session(
                    strategy=strategy, sample_ratio=0.5, seed=1
                ).execute(sql)
                for mode, db in databases.items()
            }
            want = outputs[False]
            for mode in (True, "auto"):
                assert outputs[mode].rows == want.rows, (sql, strategy, mode)
                assert outputs[mode].scores == want.scores, (sql, strategy, mode)


@pytest.mark.parametrize("seed", range(4))
def test_generated_query_parity_across_execution_regimes(seed):
    """The 4-mode ``execution=`` sweep: row, batch, cost-governed auto and
    forced plan-to-code compilation must return identical rows and scores
    for every generated query — and the compiled engine must actually have
    compiled something, so the sweep is never vacuously green."""
    from repro.engine.database import Database
    from repro.storage.schema import DataType

    queries = [
        "SELECT * FROM L ORDER BY pa(L.x) LIMIT 7",
        "SELECT * FROM L WHERE L.k > 1 ORDER BY pa(L.x) LIMIT 9",
        "SELECT * FROM L, R WHERE L.k = R.k ORDER BY pa(L.x) + pb(R.x) LIMIT 6",
        "SELECT * FROM L, R WHERE L.k = R.k AND R.k < 4 "
        "ORDER BY pa(L.x) + pb(R.x) LIMIT 12",
    ]

    def make(execution):
        db = Database(execution=execution)
        for name in ("L", "R"):
            db.create_table(name, [("k", DataType.INT), ("x", DataType.FLOAT)])
            local = random.Random(seed if name == "L" else seed + 99)
            db.insert(
                name,
                [
                    (local.randrange(5), round(local.random(), 2))
                    for __ in range(40)
                ],
            )
        db.register_predicate("pa", ["L.x"], lambda x: x)
        db.register_predicate("pb", ["R.x"], lambda x: 1 - x)
        db.analyze()
        return db

    modes = ("row", "batch", "auto", "compiled")
    databases = {mode: make(mode) for mode in modes}
    for sql in queries:
        for strategy in ("rank-aware", "traditional"):
            outputs = {
                mode: db.session(
                    strategy=strategy, sample_ratio=0.5, seed=1
                ).execute(sql)
                for mode, db in databases.items()
            }
            want = outputs["row"]
            for mode in modes[1:]:
                assert outputs[mode].rows == want.rows, (sql, strategy, mode)
                assert outputs[mode].scores == want.scores, (sql, strategy, mode)
    assert databases["compiled"].planner.metrics.plans_compiled > 0


# ----------------------------------------------------------------------
# morsel-parallel / serial execution parity
# ----------------------------------------------------------------------

from repro.execution import vectors  # noqa: E402


def _backends():
    modes = ["python"]
    if vectors.numpy_available():
        modes.append("numpy")
    return modes


@pytest.fixture
def vector_backend(request):
    """Pin the kernel backend for one test, restoring it afterwards."""
    before = vectors.backend()
    vectors.set_backend(request.param)
    yield request.param
    vectors.set_backend(before)


@pytest.fixture
def tiny_morsels(monkeypatch):
    """Shrink morsels so the 200-row parity workload splits into many."""
    monkeypatch.setenv("REPRO_MORSEL_SIZE", "64")


@pytest.mark.parametrize("vector_backend", _backends(), indirect=True)
@pytest.mark.parametrize("dop", [1, 2, 8])
@pytest.mark.parametrize("plan_name", sorted(ALL_PLANS))
def test_fig11_plan_parallel_parity(plan_name, dop, vector_backend, tiny_morsels):
    """Every §6.1 plan shape at DOP 1/2/8, in both kernel backends, must
    emit the byte-identical sequence the serial lowered plan emits."""
    workload = parity_workload()
    serial = drain(
        workload.catalog,
        workload.scoring,
        lower_to_batch(ALL_PLANS[plan_name](workload)),
    )
    parallel = drain(
        workload.catalog,
        workload.scoring,
        lower_to_batch(ALL_PLANS[plan_name](workload), parallelism=dop),
    )
    assert parallel == serial


@pytest.mark.parametrize("vector_backend", _backends(), indirect=True)
@pytest.mark.parametrize("dop", [2, 8])
@pytest.mark.parametrize("seed", range(4))
def test_generated_query_parity_across_dop(seed, dop, vector_backend, tiny_morsels):
    """End-to-end over the Database API: a parallelism ceiling must never
    change any generated query's rows or scores, in either backend."""
    from repro.engine.database import Database
    from repro.storage.schema import DataType

    queries = [
        "SELECT * FROM L ORDER BY pa(L.x) LIMIT 7",
        "SELECT * FROM L WHERE L.k > 1 ORDER BY pa(L.x) LIMIT 9",
        "SELECT * FROM L, R WHERE L.k = R.k ORDER BY pa(L.x) + pb(R.x) LIMIT 6",
        "SELECT * FROM L, R WHERE L.k = R.k AND R.k < 4 "
        "ORDER BY pa(L.x) + pb(R.x) LIMIT 12",
    ]

    def make(parallelism):
        db = Database(batch_execution=True, parallelism=parallelism)
        for name in ("L", "R"):
            db.create_table(name, [("k", DataType.INT), ("x", DataType.FLOAT)])
            local = random.Random(seed if name == "L" else seed + 99)
            db.insert(
                name,
                [
                    (local.randrange(5), round(local.random(), 2))
                    for __ in range(40)
                ],
            )
        db.register_predicate("pa", ["L.x"], lambda x: x)
        db.register_predicate("pb", ["R.x"], lambda x: 1 - x)
        db.analyze()
        return db

    serial_db, parallel_db = make(1), make(dop)
    for sql in queries:
        for strategy in ("rank-aware", "traditional"):
            want = serial_db.session(
                strategy=strategy, sample_ratio=0.5, seed=1
            ).execute(sql)
            got = parallel_db.session(
                strategy=strategy, sample_ratio=0.5, seed=1
            ).execute(sql)
            assert got.rows == want.rows, (sql, strategy, dop)
            assert got.scores == want.scores, (sql, strategy, dop)


class TestLoweringPass:
    """Unit tests for :func:`lower_to_batch`: batch segments are maximal
    ``P = φ`` subtrees and never absorb a rank-aware operator."""

    RANK_AWARE = (MuPlan, RankScanPlan, ScanSelectPlan)

    def all_plans(self):
        workload = parity_workload()
        plans = [builder(workload) for builder in ALL_PLANS.values()]
        for strategy in ("rank-aware", "traditional", "rule-based"):
            plans.append(
                workload.database.planner.plan(
                    workload.spec, strategy=strategy, sample_ratio=0.2, seed=1
                )
            )
        return plans

    def test_segments_never_cross_rank_operators(self):
        from repro.optimizer.plans import SortPlan

        for plan in self.all_plans():
            lowered = lower_to_batch(plan)
            for node in lowered.walk():
                if not isinstance(node, BatchSegmentPlan):
                    continue
                inner = node.inner
                if isinstance(inner, SortPlan):
                    # Sort is the frontier: it *evaluates* the predicates,
                    # but its input segment must be P = φ.
                    inner = inner.children[0]
                assert not inner.rank_predicates
                for segment_node in inner.walk():
                    assert not isinstance(segment_node, self.RANK_AWARE)

    def test_rank_operators_survive_lowering(self):
        workload = parity_workload()
        lowered = lower_to_batch(ALL_PLANS["plan2"](workload))
        kinds = {type(node).__name__ for node in lowered.walk()}
        assert "MuPlan" in kinds and "HRJNPlan" in kinds

    def test_traditional_plan_lowers_the_sort_segment(self):
        workload = parity_workload()
        lowered = lower_to_batch(ALL_PLANS["plan1"](workload))
        segments = [
            node for node in lowered.walk() if isinstance(node, BatchSegmentPlan)
        ]
        assert len(segments) == 1  # one maximal segment: the whole sort input
        from repro.optimizer.plans import SortPlan

        assert isinstance(segments[0].inner, SortPlan)

    def test_original_plan_untouched(self):
        workload = parity_workload()
        plan = ALL_PLANS["plan1"](workload)
        before = plan.fingerprint()
        lowered = lower_to_batch(plan)
        assert plan.fingerprint() == before
        assert lowered is not plan
