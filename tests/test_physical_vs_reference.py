"""Randomized agreement between the physical engine and the reference
(materialized) semantics.

For randomly generated data and a catalogue of plan shapes — µ chains with
interleaved filters, rank-joins, set operations — the physical pipeline
must produce a rank-relation equivalent (same membership, same score order,
ties free) to the reference evaluator's result for the corresponding
logical plan.
"""

from __future__ import annotations

import random

import pytest

from repro.algebra.expressions import col
from repro.algebra.operators import (
    LogicalDifference,
    LogicalIntersect,
    LogicalJoin,
    LogicalRank,
    LogicalScan,
    LogicalSelect,
    LogicalUnion,
    evaluate_logical,
)
from repro.algebra.predicates import BooleanPredicate, RankingPredicate, ScoringFunction
from repro.algebra.rank_relation import RankRelation
from repro.execution import (
    ExecutionContext,
    Filter,
    HRJN,
    Mu,
    NRJN,
    RankDifference,
    RankIntersect,
    RankUnion,
    SeqScan,
    run_plan,
)
from repro.storage import Catalog, DataType, Schema


def make_db(seed, n=30, distinct=5):
    rng = random.Random(seed)
    catalog = Catalog()
    t1 = catalog.create_table(
        "T1", Schema.of(("k", DataType.INT), ("x", DataType.FLOAT))
    )
    t2 = catalog.create_table(
        "T2", Schema.of(("k", DataType.INT), ("x", DataType.FLOAT))
    )
    values = [round(rng.random(), 2) for __ in range(10)]
    for __ in range(n):
        t1.insert([rng.randrange(distinct), rng.choice(values)])
        t2.insert([rng.randrange(distinct), rng.choice(values)])
    pa = RankingPredicate("pa", ["x"], lambda x: x)
    pb = RankingPredicate("pb", ["x"], lambda x: 1 - x)
    scoring = ScoringFunction([pa, pb])
    return catalog, scoring


def assert_physical_matches_reference(catalog, scoring, logical, physical, k=None):
    reference = evaluate_logical(logical, catalog, scoring)
    context = ExecutionContext(catalog, scoring)
    out = run_plan(physical, context, k=None)
    got = RankRelation(scoring, out)
    if k is not None:
        reference = RankRelation(scoring, reference.top(k))
        got = RankRelation(scoring, got.rows[:k])
    assert got.equivalent(reference), (
        f"physical != reference\nphysical: {got.rids()}\n"
        f"reference: {reference.rids()}"
    )


def scan(catalog, name):
    return LogicalScan(name, catalog.table(name).schema)


@pytest.mark.parametrize("seed", range(6))
class TestUnaryPipelines:
    def test_mu_chain(self, seed):
        catalog, scoring = make_db(seed)
        logical = LogicalRank(LogicalRank(scan(catalog, "T1"), "pa"), "pb")
        physical = Mu(Mu(SeqScan("T1"), "pa"), "pb")
        assert_physical_matches_reference(catalog, scoring, logical, physical)

    def test_filter_between_mus(self, seed):
        catalog, scoring = make_db(seed)
        condition = BooleanPredicate(col("T1.k") > 1, "k>1")
        logical = LogicalRank(
            LogicalSelect(LogicalRank(scan(catalog, "T1"), "pa"), condition), "pb"
        )
        physical = Mu(Filter(Mu(SeqScan("T1"), "pa"), condition), "pb")
        assert_physical_matches_reference(catalog, scoring, logical, physical)


@pytest.mark.parametrize("seed", range(6))
class TestJoins:
    def test_hrjn_matches_reference_join(self, seed):
        catalog, scoring = make_db(seed, n=20)
        condition = BooleanPredicate(col("T1.k").eq(col("T2.k")), "j")
        logical = LogicalJoin(
            LogicalRank(scan(catalog, "T1"), "pa"),
            LogicalRank(scan(catalog, "T2"), "pb"),
            condition,
        )
        physical = HRJN(
            Mu(SeqScan("T1"), "pa"), Mu(SeqScan("T2"), "pb"), "T1.k", "T2.k"
        )
        assert_physical_matches_reference(catalog, scoring, logical, physical)

    def test_nrjn_matches_reference_join(self, seed):
        catalog, scoring = make_db(seed, n=15)
        condition = BooleanPredicate(col("T1.k") < col("T2.k"), "lt")
        logical = LogicalJoin(
            LogicalRank(scan(catalog, "T1"), "pa"),
            LogicalRank(scan(catalog, "T2"), "pb"),
            condition,
        )
        physical = NRJN(
            Mu(SeqScan("T1"), "pa"), Mu(SeqScan("T2"), "pb"), condition
        )
        assert_physical_matches_reference(catalog, scoring, logical, physical)


@pytest.mark.parametrize("seed", range(6))
class TestSetOperations:
    def build(self, catalog):
        logical_left = LogicalRank(scan(catalog, "T1"), "pa")
        logical_right = LogicalRank(scan(catalog, "T2"), "pb")
        physical_left = Mu(SeqScan("T1"), "pa")
        physical_right = Mu(SeqScan("T2"), "pb")
        return logical_left, logical_right, physical_left, physical_right

    def test_union(self, seed):
        catalog, scoring = make_db(seed)
        ll, lr, pl, pr = self.build(catalog)
        assert_physical_matches_reference(
            catalog, scoring, LogicalUnion(ll, lr), RankUnion(pl, pr)
        )

    def test_intersection(self, seed):
        catalog, scoring = make_db(seed)
        ll, lr, pl, pr = self.build(catalog)
        assert_physical_matches_reference(
            catalog, scoring, LogicalIntersect(ll, lr), RankIntersect(pl, pr)
        )

    def test_difference(self, seed):
        catalog, scoring = make_db(seed)
        ll, lr, pl, pr = self.build(catalog)
        assert_physical_matches_reference(
            catalog, scoring, LogicalDifference(ll, lr), RankDifference(pl, pr)
        )
