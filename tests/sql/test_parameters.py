"""Bind variables in the SQL front end: lexing, parsing, binding, typing."""

from __future__ import annotations

import pytest

from repro.algebra.parameters import Parameter, ParameterError, ParameterSlots
from repro.cli import build_demo_database
from repro.sql.ast import ParameterNode
from repro.sql.binder import BindError
from repro.sql.lexer import LexError, TokenType, tokenize
from repro.sql.parser import ParseError, parse
from repro.storage.schema import DataType


@pytest.fixture
def db():
    return build_demo_database(seed=7)


class TestLexer:
    def test_question_mark_is_param_token(self):
        tokens = tokenize("hotel.price < ?")
        assert (tokens[-2].type, tokens[-2].value) == (TokenType.PARAM, "?")

    def test_named_parameter_token(self):
        tokens = tokenize("hotel.price < :max_price")
        assert (tokens[-2].type, tokens[-2].value) == (TokenType.PARAM, ":max_price")

    def test_named_parameter_stops_at_non_word(self):
        tokens = tokenize(":lo+:hi")
        values = [t.value for t in tokens if t.type is TokenType.PARAM]
        assert values == [":lo", ":hi"]

    def test_bare_colon_rejected(self):
        with pytest.raises(LexError):
            tokenize("hotel.price < :")


class TestParser:
    def test_positional_parameters_are_ordinal(self):
        statement = parse(
            "SELECT * FROM hotel WHERE hotel.price < ? AND hotel.stars > ? LIMIT 3"
        )
        assert statement.parameters == ("?1", "?2")

    def test_named_parameters_dedupe(self):
        statement = parse(
            "SELECT * FROM hotel WHERE hotel.price > :p AND hotel.stars > :p "
            "AND hotel.area = :area LIMIT 3"
        )
        assert statement.parameters == (":p", ":area")

    def test_parameter_node_in_where(self):
        statement = parse("SELECT * FROM hotel WHERE hotel.price < :max LIMIT 1")
        assert statement.where is not None
        assert statement.where.right == ParameterNode(":max")

    def test_mixing_styles_rejected(self):
        with pytest.raises(ParseError, match="mix"):
            parse("SELECT * FROM hotel WHERE hotel.price < ? AND hotel.stars > :s")

    def test_limit_parameter_rejected(self):
        with pytest.raises(ParseError, match="LIMIT does not take a parameter"):
            parse("SELECT * FROM hotel ORDER BY cheap(hotel.price) LIMIT ?")

    def test_parameter_inside_arithmetic(self):
        statement = parse(
            "SELECT * FROM hotel WHERE hotel.price + ? < 100 LIMIT 1"
        )
        assert statement.parameters == ("?1",)


class TestBinder:
    def test_spec_carries_parameter_slots(self, db):
        spec = db.bind(
            "SELECT * FROM hotel WHERE hotel.price <= :max_price "
            "ORDER BY cheap(hotel.price) LIMIT 5"
        )
        assert spec.parameters is not None
        assert spec.parameters.keys == (":max_price",)

    def test_literal_query_has_no_slots(self, db):
        spec = db.bind("SELECT * FROM hotel ORDER BY cheap(hotel.price) LIMIT 5")
        assert spec.parameters is None

    def test_selection_contains_parameter_expression(self, db):
        spec = db.bind(
            "SELECT * FROM hotel WHERE hotel.price <= :max_price "
            "ORDER BY cheap(hotel.price) LIMIT 5"
        )
        (selection,) = spec.selections
        assert isinstance(selection.expression.right, Parameter)
        assert selection.expression.right.key == ":max_price"

    def test_join_condition_parameter_supported(self, db):
        spec = db.bind(
            "SELECT * FROM hotel, restaurant "
            "WHERE hotel.area = restaurant.area "
            "AND hotel.price + restaurant.price < :budget "
            "ORDER BY cheap(hotel.price) + tasty(restaurant.price) LIMIT 5"
        )
        assert spec.parameters.keys == (":budget",)
        assert len(spec.join_conditions) == 2

    def test_column_comparison_infers_expected_type(self, db):
        spec = db.bind(
            "SELECT * FROM restaurant WHERE restaurant.cuisine = :cuisine "
            "ORDER BY tasty(restaurant.price) LIMIT 5"
        )
        assert spec.parameters.expected(":cuisine") == {DataType.TEXT}

    def test_int_columns_accept_any_number(self, db):
        spec = db.bind(
            "SELECT * FROM hotel WHERE hotel.stars >= :min_stars "
            "ORDER BY cheap(hotel.price) LIMIT 5"
        )
        spec.parameters.bind({"min_stars": 2.5})  # floats fine against INT

    def test_arithmetic_comparison_infers_numeric(self, db):
        spec = db.bind(
            "SELECT * FROM hotel WHERE hotel.price * 1 <= :cap "
            "ORDER BY cheap(hotel.price) LIMIT 3"
        )
        assert spec.parameters.expected(":cap") == {DataType.FLOAT}
        with pytest.raises(ParameterError, match="expects float"):
            spec.parameters.bind({"cap": "oops"})

    def test_literal_comparison_infers_type(self, db):
        spec = db.bind(
            "SELECT * FROM hotel WHERE :flag = 'yes' "
            "ORDER BY cheap(hotel.price) LIMIT 3"
        )
        assert spec.parameters.expected(":flag") == {DataType.TEXT}

    def test_between_duplicated_parameter_is_one_slot_per_occurrence(self, db):
        spec = db.bind(
            "SELECT * FROM hotel WHERE ? BETWEEN hotel.price AND hotel.stars "
            "ORDER BY cheap(hotel.price) LIMIT 3"
        )
        # BETWEEN desugars by duplicating the left subtree; the single
        # textual `?` must still be exactly one slot.
        assert spec.parameters.keys == ("?1",)

    def test_order_by_parameter_rejected(self, db):
        with pytest.raises(BindError, match="ORDER BY"):
            db.bind(
                "SELECT * FROM hotel WHERE hotel.stars > 2 "
                "ORDER BY hotel.price + :boost LIMIT 5"
            )


class TestParameterSlots:
    def _slots(self, *keys: str) -> ParameterSlots:
        slots = ParameterSlots()
        for key in keys:
            slots.declare(key)
        return slots

    def test_positional_bind_in_order(self):
        slots = self._slots("?1", "?2")
        slots.bind([10, 20])
        assert slots.value("?1") == 10 and slots.value("?2") == 20

    def test_positional_count_mismatch(self):
        slots = self._slots("?1", "?2")
        with pytest.raises(ParameterError, match="takes 2 positional"):
            slots.bind([10])
        with pytest.raises(ParameterError, match="takes 2 positional"):
            slots.bind([10, 20, 30])

    def test_positional_rejects_mapping_and_strings(self):
        slots = self._slots("?1")
        with pytest.raises(ParameterError, match="sequence"):
            slots.bind({"?1": 1})
        with pytest.raises(ParameterError, match="sequence"):
            slots.bind("x")

    def test_named_accepts_bare_and_colon_keys(self):
        slots = self._slots(":a", ":b")
        slots.bind({"a": 1, ":b": 2})
        assert slots.value(":a") == 1 and slots.value(":b") == 2

    def test_named_missing_and_extra_reported(self):
        slots = self._slots(":a", ":b")
        with pytest.raises(ParameterError, match="missing :b.*unexpected :c"):
            slots.bind({"a": 1, "c": 3})

    def test_named_duplicate_bare_and_colon_forms_rejected(self):
        slots = self._slots(":cap")
        with pytest.raises(ParameterError, match="bound twice"):
            slots.bind({"cap": 100.0, ":cap": 60.0})

    def test_named_rejects_sequence(self):
        slots = self._slots(":a")
        with pytest.raises(ParameterError, match="mapping"):
            slots.bind([1])

    def test_no_parameters_rejects_bindings(self):
        slots = ParameterSlots()
        with pytest.raises(ParameterError, match="takes no parameters"):
            slots.bind({"a": 1})
        slots.bind(None)  # no-op

    def test_unbound_value_read_raises(self):
        slots = self._slots(":a")
        with pytest.raises(ParameterError, match="unbound"):
            slots.value(":a")

    def test_type_expectations_enforced(self):
        slots = self._slots(":a")
        slots.expect(":a", DataType.FLOAT)
        with pytest.raises(ParameterError, match="expects float"):
            slots.bind({"a": "not-a-number"})
        slots.bind({"a": 3})  # ints satisfy FLOAT

    def test_multi_context_expectations_are_any_of(self):
        # `hotel.name = :x OR hotel.price = :x` → {TEXT, FLOAT}; either a
        # string or a number must bind, only a value matching neither fails.
        slots = self._slots(":x")
        slots.expect(":x", DataType.TEXT)
        slots.expect(":x", DataType.FLOAT)
        slots.bind({"x": "h3"})
        slots.bind({"x": 99.0})
        with pytest.raises(ParameterError, match="expects float or text"):
            slots.bind({"x": True})

    def test_mixed_styles_rejected_at_declare(self):
        slots = ParameterSlots()
        slots.declare("?1")
        with pytest.raises(ParameterError, match="mix"):
            slots.declare(":name")

    def test_clear_unbinds(self):
        slots = self._slots(":a")
        slots.bind({"a": 1})
        assert slots.is_bound
        slots.clear()
        assert not slots.is_bound
