"""Unit tests for the binder (AST → QuerySpec)."""

import pytest

from repro.engine import Database
from repro.sql.binder import BindError, UNBOUNDED_K
from repro.storage import DataType


@pytest.fixture
def db():
    db = Database()
    db.create_table(
        "Hotel",
        [("name", DataType.TEXT), ("price", DataType.FLOAT), ("area", DataType.INT)],
    )
    db.create_table(
        "Restaurant",
        [
            ("name", DataType.TEXT),
            ("cuisine", DataType.TEXT),
            ("price", DataType.FLOAT),
            ("area", DataType.INT),
        ],
    )
    db.insert("Hotel", [("h1", 100.0, 1), ("h2", 80.0, 2)])
    db.insert("Restaurant", [("r1", "Italian", 30.0, 1)])
    db.register_predicate("cheap", ["Hotel.price"], lambda p: max(0.0, 1 - p / 200))
    db.register_predicate(
        "close", ["Hotel.area", "Restaurant.area"], lambda a, b: 1.0 if a == b else 0.0
    )
    return db


class TestTableBinding:
    def test_unknown_table(self, db):
        with pytest.raises(BindError):
            db.bind("SELECT * FROM Nope ORDER BY cheap(Nope.x) LIMIT 1")

    def test_alias_resolution(self, db):
        spec = db.bind(
            "SELECT * FROM Hotel h WHERE h.price < 90 ORDER BY cheap(h.price) LIMIT 1"
        )
        assert spec.tables == ["Hotel"]
        assert spec.selections[0].tables() == {"Hotel"}

    def test_duplicate_alias_rejected(self, db):
        with pytest.raises(BindError):
            db.bind("SELECT * FROM Hotel h, Restaurant h ORDER BY cheap(h.price) LIMIT 1")

    def test_self_join_rejected(self, db):
        with pytest.raises(BindError):
            db.bind(
                "SELECT * FROM Hotel a, Hotel b ORDER BY cheap(a.price) LIMIT 1"
            )


class TestColumnResolution:
    def test_bare_column_unique(self, db):
        spec = db.bind(
            "SELECT * FROM Hotel WHERE cuisine = 'x' OR price < 1 "
            "ORDER BY cheap(Hotel.price) LIMIT 1"
        ) if False else None
        # "cuisine" is not in Hotel: must fail.
        with pytest.raises(BindError):
            db.bind(
                "SELECT * FROM Hotel WHERE cuisine = 'x' "
                "ORDER BY cheap(Hotel.price) LIMIT 1"
            )

    def test_ambiguous_bare_column(self, db):
        with pytest.raises(BindError):
            db.bind(
                "SELECT * FROM Hotel, Restaurant WHERE price < 10 "
                "ORDER BY cheap(Hotel.price) LIMIT 1"
            )

    def test_unknown_qualified_column(self, db):
        with pytest.raises(BindError):
            db.bind(
                "SELECT * FROM Hotel h WHERE h.stars > 3 "
                "ORDER BY cheap(h.price) LIMIT 1"
            )

    def test_projection_bound(self, db):
        spec = db.bind(
            "SELECT name, Hotel.price FROM Hotel ORDER BY cheap(Hotel.price) LIMIT 1"
        )
        assert spec.projection == ["Hotel.name", "Hotel.price"]


class TestWhereClassification:
    def test_selection_vs_join_split(self, db):
        spec = db.bind(
            "SELECT * FROM Hotel h, Restaurant r "
            "WHERE r.cuisine = 'Italian' AND h.area = r.area "
            "ORDER BY cheap(h.price) LIMIT 2"
        )
        assert len(spec.selections) == 1
        assert len(spec.join_conditions) == 1
        assert spec.join_conditions[0].is_equi

    def test_cross_table_arithmetic_is_join_condition(self, db):
        spec = db.bind(
            "SELECT * FROM Hotel h, Restaurant r "
            "WHERE h.price + r.price < 100 "
            "ORDER BY cheap(h.price) LIMIT 2"
        )
        assert len(spec.join_conditions) == 1
        assert not spec.join_conditions[0].is_equi


class TestOrderByBinding:
    def test_registered_predicate_call(self, db):
        spec = db.bind("SELECT * FROM Hotel ORDER BY cheap(Hotel.price) LIMIT 3")
        assert spec.scoring.predicate_names == ("cheap",)
        assert spec.k == 3

    def test_unknown_predicate_call(self, db):
        with pytest.raises(BindError):
            db.bind("SELECT * FROM Hotel ORDER BY shiny(Hotel.price) LIMIT 1")

    def test_bare_name_resolves_to_predicate(self, db):
        spec = db.bind("SELECT * FROM Hotel ORDER BY cheap LIMIT 1")
        assert spec.scoring.predicate_names == ("cheap",)

    def test_column_term_becomes_expression_predicate(self, db):
        spec = db.bind("SELECT * FROM Hotel ORDER BY Hotel.price LIMIT 1")
        (name,) = spec.scoring.predicate_names
        assert name.startswith("expr:")
        # p_max from stats: the max price is 100.
        assert spec.scoring.predicate(name).p_max == pytest.approx(100.0)

    def test_weighted_terms_build_wsum(self, db):
        spec = db.bind(
            "SELECT * FROM Hotel h, Restaurant r WHERE h.area = r.area "
            "ORDER BY 0.7 * cheap(h.price) + 0.3 * close(h.area, r.area) LIMIT 1"
        )
        assert spec.scoring.combiner == "wsum"
        assert spec.scoring.weights == (0.7, 0.3)

    def test_no_order_by_gives_constant_scoring(self, db):
        spec = db.bind("SELECT * FROM Hotel LIMIT 2")
        assert spec.scoring.predicate_names == ("_unordered",)
        assert spec.k == 2

    def test_no_limit_unbounded(self, db):
        spec = db.bind("SELECT * FROM Hotel ORDER BY cheap(Hotel.price)")
        assert spec.k == UNBOUNDED_K

    def test_function_call_in_where_rejected(self, db):
        with pytest.raises(BindError):
            db.bind(
                "SELECT * FROM Hotel WHERE cheap(Hotel.price) = 1 "
                "ORDER BY cheap(Hotel.price) LIMIT 1"
            )
