"""Tests for the IN and BETWEEN sugar in the SQL dialect."""

import random

import pytest

from repro.engine import Database
from repro.sql.ast import BooleanNode, BinaryOpNode
from repro.sql.parser import parse
from repro.storage import DataType


@pytest.fixture
def db():
    rng = random.Random(117)
    db = Database()
    db.create_table(
        "dish", [("name", DataType.TEXT), ("kind", DataType.TEXT), ("price", DataType.FLOAT)]
    )
    kinds = ["soup", "salad", "main", "dessert"]
    db.insert(
        "dish",
        [
            (f"dish-{i}", rng.choice(kinds), round(rng.uniform(3, 30), 2))
            for i in range(150)
        ],
    )
    db.register_predicate("cheap", ["dish.price"], lambda p: max(0.0, 1 - p / 30))
    db.create_rank_index("dish", "cheap")
    db.analyze()
    return db


class TestParsing:
    def test_in_desugars_to_or(self):
        statement = parse("SELECT * FROM t WHERE kind IN ('a', 'b', 'c')")
        where = statement.where
        assert isinstance(where, BooleanNode) and where.op == "or"
        assert len(where.operands) == 3
        assert all(
            isinstance(op, BinaryOpNode) and op.op == "=" for op in where.operands
        )

    def test_in_single_value(self):
        statement = parse("SELECT * FROM t WHERE kind IN ('a')")
        assert isinstance(statement.where, BinaryOpNode)

    def test_not_in(self):
        statement = parse("SELECT * FROM t WHERE kind NOT IN ('a', 'b')")
        assert statement.where.op == "not"

    def test_between_desugars_to_range(self):
        statement = parse("SELECT * FROM t WHERE price BETWEEN 5 AND 10")
        where = statement.where
        assert isinstance(where, BooleanNode) and where.op == "and"
        assert where.operands[0].op == ">="
        assert where.operands[1].op == "<="

    def test_not_between(self):
        statement = parse("SELECT * FROM t WHERE price NOT BETWEEN 5 AND 10")
        assert statement.where.op == "not"

    def test_between_in_conjunction(self):
        statement = parse(
            "SELECT * FROM t WHERE a = 1 AND price BETWEEN 5 AND 10 AND b = 2"
        )
        assert statement.where.op == "and"
        assert len(statement.where.operands) == 3

    def test_plain_not_still_works(self):
        statement = parse("SELECT * FROM t WHERE NOT a = 1")
        assert statement.where.op == "not"


class TestExecution:
    def test_in_filters_rows(self, db):
        result = db.query(
            "SELECT * FROM dish WHERE dish.kind IN ('soup', 'salad') "
            "ORDER BY cheap(dish.price) LIMIT 20",
            sample_ratio=0.3,
            seed=1,
        )
        assert len(result) > 0
        assert all(row[1] in ("soup", "salad") for row in result.rows)

    def test_not_in_filters_rows(self, db):
        result = db.query(
            "SELECT * FROM dish WHERE dish.kind NOT IN ('soup', 'salad') "
            "ORDER BY cheap(dish.price) LIMIT 20",
            sample_ratio=0.3,
            seed=1,
        )
        assert all(row[1] in ("main", "dessert") for row in result.rows)

    def test_between_filters_rows(self, db):
        result = db.query(
            "SELECT * FROM dish WHERE dish.price BETWEEN 10 AND 20 "
            "ORDER BY cheap(dish.price) LIMIT 20",
            sample_ratio=0.3,
            seed=1,
        )
        assert all(10 <= row[2] <= 20 for row in result.rows)

    def test_between_matches_brute_force(self, db):
        result = db.query(
            "SELECT * FROM dish WHERE dish.price BETWEEN 5 AND 15 "
            "ORDER BY cheap(dish.price) LIMIT 5",
            sample_ratio=0.3,
            seed=1,
        )
        expected = sorted(
            (
                max(0.0, 1 - r[2] / 30)
                for r in db.catalog.table("dish").rows()
                if 5 <= r[2] <= 15
            ),
            reverse=True,
        )[:5]
        assert result.scores == pytest.approx(expected)
