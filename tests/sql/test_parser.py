"""Unit tests for the SQL parser."""

import pytest

from repro.sql.ast import (
    BinaryOpNode,
    BooleanNode,
    CallNode,
    ColumnNode,
    LiteralNode,
)
from repro.sql.parser import ParseError, parse

EXAMPLE1 = """
SELECT * FROM Hotel h, Restaurant r, Museum m
WHERE r.cuisine = 'Italian' AND h.price + r.price < 100 AND r.area = m.area
ORDER BY cheap(h.price) + close(h.addr, r.addr) + related(m.collection, 'dinosaur')
LIMIT 5
"""


class TestSelectStructure:
    def test_star_projection(self):
        statement = parse("SELECT * FROM t")
        assert statement.projection is None

    def test_column_projection(self):
        statement = parse("SELECT a, t.b FROM t")
        assert statement.projection == ["a", "t.b"]

    def test_tables_and_aliases(self):
        statement = parse("SELECT * FROM Hotel h, Restaurant AS r")
        assert [(t.name, t.alias) for t in statement.tables] == [
            ("Hotel", "h"),
            ("Restaurant", "r"),
        ]

    def test_limit(self):
        assert parse("SELECT * FROM t LIMIT 7").limit == 7

    def test_no_limit(self):
        assert parse("SELECT * FROM t").limit is None

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse("SELECT * FROM t garbage extra ,")

    def test_missing_from_rejected(self):
        with pytest.raises(ParseError):
            parse("SELECT *")


class TestWhere:
    def test_conjunction(self):
        statement = parse("SELECT * FROM t WHERE a = 1 AND b < 2 AND c > 3")
        assert isinstance(statement.where, BooleanNode)
        assert statement.where.op == "and"
        assert len(statement.where.operands) == 3

    def test_or_precedence(self):
        statement = parse("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3")
        assert statement.where.op == "or"

    def test_not(self):
        statement = parse("SELECT * FROM t WHERE NOT a = 1")
        assert statement.where.op == "not"

    def test_string_literal(self):
        statement = parse("SELECT * FROM t WHERE cuisine = 'Italian'")
        comparison = statement.where
        assert isinstance(comparison, BinaryOpNode)
        assert comparison.right == LiteralNode("Italian")

    def test_arithmetic_in_comparison(self):
        statement = parse("SELECT * FROM t WHERE h.price + r.price < 100")
        comparison = statement.where
        assert comparison.op == "<"
        assert isinstance(comparison.left, BinaryOpNode)
        assert comparison.left.op == "+"

    def test_parenthesized_boolean(self):
        statement = parse("SELECT * FROM t WHERE (a = 1 OR b = 2) AND c = 3")
        assert statement.where.op == "and"

    def test_bare_boolean_column(self):
        statement = parse("SELECT * FROM t WHERE t.flag")
        assert isinstance(statement.where, ColumnNode)

    def test_diamond_not_equal(self):
        statement = parse("SELECT * FROM t WHERE a <> 1")
        assert statement.where.op == "!="

    def test_multiplication_precedence(self):
        statement = parse("SELECT * FROM t WHERE a + b * 2 < 10")
        left = statement.where.left
        assert left.op == "+"
        assert left.right.op == "*"


class TestOrderBy:
    def test_predicate_calls(self):
        statement = parse(
            "SELECT * FROM t ORDER BY f1(t.a) + f2(t.b, t.c) LIMIT 1"
        )
        assert len(statement.order_by) == 2
        first = statement.order_by[0].expression
        assert isinstance(first, CallNode)
        assert first.name == "f1"
        assert len(statement.order_by[1].expression.args) == 2

    def test_bare_identifier_term(self):
        statement = parse("SELECT * FROM t ORDER BY p1 + p2 LIMIT 1")
        assert all(
            isinstance(term.expression, ColumnNode) for term in statement.order_by
        )

    def test_weighted_terms(self):
        statement = parse("SELECT * FROM t ORDER BY 0.7 * p1 + 0.3 * p2 LIMIT 1")
        assert [term.weight for term in statement.order_by] == [0.7, 0.3]

    def test_desc_suffix_accepted(self):
        statement = parse("SELECT * FROM t ORDER BY p1 DESC LIMIT 1")
        assert len(statement.order_by) == 1

    def test_example1_parses(self):
        statement = parse(EXAMPLE1)
        assert len(statement.tables) == 3
        assert len(statement.order_by) == 3
        assert statement.limit == 5
        names = [term.expression.name for term in statement.order_by]
        assert names == ["cheap", "close", "related"]

    def test_weight_without_star_rejected(self):
        with pytest.raises(ParseError):
            parse("SELECT * FROM t ORDER BY 0.5 p1 LIMIT 1")

    def test_limit_requires_number(self):
        with pytest.raises(ParseError):
            parse("SELECT * FROM t LIMIT k")
