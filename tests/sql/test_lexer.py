"""Unit tests for the SQL lexer."""

import pytest

from repro.sql.lexer import LexError, TokenType, tokenize


def types_and_values(text):
    return [(t.type, t.value) for t in tokenize(text) if t.type is not TokenType.EOF]


class TestTokenize:
    def test_keywords_case_insensitive(self):
        tokens = types_and_values("SELECT select SeLeCt")
        assert all(t == (TokenType.KEYWORD, "select") for t in tokens)

    def test_identifiers(self):
        tokens = types_and_values("hotel h_1 _x")
        assert [t[0] for t in tokens] == [TokenType.IDENTIFIER] * 3
        assert tokens[0][1] == "hotel"

    def test_qualified_name_splits_on_dot(self):
        tokens = types_and_values("h.price")
        assert [t[1] for t in tokens] == ["h", ".", "price"]

    def test_numbers(self):
        tokens = types_and_values("42 3.14 1e-3 0.5")
        assert all(t[0] is TokenType.NUMBER for t in tokens)
        assert [t[1] for t in tokens] == ["42", "3.14", "1e-3", "0.5"]

    def test_integer_then_dot_identifier(self):
        # "1.x" style: number must not swallow the qualifier dot blindly.
        tokens = types_and_values("100 .5")
        assert [t[1] for t in tokens] == ["100", ".5"]

    def test_string_literal(self):
        tokens = types_and_values("'Italian'")
        assert tokens == [(TokenType.STRING, "Italian")]

    def test_unterminated_string(self):
        with pytest.raises(LexError):
            tokenize("'oops")

    def test_operators(self):
        tokens = types_and_values("<= >= <> != = < > + - * /")
        assert all(t[0] is TokenType.OPERATOR for t in tokens)

    def test_two_char_operators_preferred(self):
        tokens = types_and_values("a<=b")
        assert [t[1] for t in tokens] == ["a", "<=", "b"]

    def test_punctuation(self):
        tokens = types_and_values("f(a, b)")
        values = [t[1] for t in tokens]
        assert values == ["f", "(", "a", ",", "b", ")"]

    def test_unknown_character(self):
        with pytest.raises(LexError):
            tokenize("a $ b")

    def test_eof_always_last(self):
        tokens = tokenize("select")
        assert tokens[-1].type is TokenType.EOF

    def test_positions_recorded(self):
        tokens = tokenize("a  b")
        assert tokens[0].position == 0
        assert tokens[1].position == 3

    def test_whitespace_and_newlines(self):
        tokens = types_and_values("select\n\t *\n from  t")
        assert [t[1] for t in tokens] == ["select", "*", "from", "t"]
