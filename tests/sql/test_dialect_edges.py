"""SQL dialect edge cases and error behaviour."""

import pytest

from repro.sql.parser import ParseError, parse


class TestOrderByEdges:
    def test_mixed_product_and_sum_rejected(self):
        # The dialect supports + chains or * chains, not a mix.
        with pytest.raises(ParseError):
            parse("SELECT * FROM t ORDER BY p1 * p2 + p3 LIMIT 1")

    def test_empty_order_by_rejected(self):
        with pytest.raises(ParseError):
            parse("SELECT * FROM t ORDER BY LIMIT 1")

    def test_weighted_product_parses_as_weighted_sum_of_one(self):
        statement = parse("SELECT * FROM t ORDER BY 0.5 * p1 LIMIT 1")
        assert len(statement.order_by) == 1
        assert statement.order_by[0].weight == 0.5
        assert statement.order_by[0].combiner == "sum"

    def test_call_with_no_args(self):
        statement = parse("SELECT * FROM t ORDER BY popularity() LIMIT 1")
        assert statement.order_by[0].expression.args == ()

    def test_nested_arithmetic_in_call_args(self):
        statement = parse(
            "SELECT * FROM t ORDER BY score(t.a + t.b * 2, 'x') LIMIT 1"
        )
        call = statement.order_by[0].expression
        assert len(call.args) == 2


class TestWhereEdges:
    def test_deeply_nested_parentheses(self):
        statement = parse(
            "SELECT * FROM t WHERE ((a = 1 OR (b = 2 AND c = 3)) AND d = 4)"
        )
        assert statement.where is not None

    def test_double_not(self):
        statement = parse("SELECT * FROM t WHERE NOT NOT a = 1")
        assert statement.where.op == "not"
        assert statement.where.operands[0].op == "not"

    def test_comparison_chains_rejected(self):
        # SQL has no "a < b < c"; the second comparison is trailing input.
        with pytest.raises(ParseError):
            parse("SELECT * FROM t WHERE a < b < c")

    def test_arithmetic_only_where_is_allowed_syntactically(self):
        # "WHERE t.flag" — bare truthy column (used by the §6 query).
        statement = parse("SELECT * FROM t WHERE t.flag")
        assert statement.where is not None

    def test_string_comparison_each_side(self):
        statement = parse("SELECT * FROM t WHERE 'a' = kind")
        assert statement.where.op == "="


class TestStatementEdges:
    def test_keywords_not_usable_as_table(self):
        with pytest.raises(ParseError):
            parse("SELECT * FROM select")

    def test_missing_select_rejected(self):
        with pytest.raises(ParseError):
            parse("FROM t")

    def test_limit_float_truncates(self):
        assert parse("SELECT * FROM t LIMIT 3.7").limit == 3

    def test_whitespace_robustness(self):
        statement = parse(
            "select\n\t*\nfrom\tt\nwhere a=1\norder   by p1\nlimit 2"
        )
        assert statement.limit == 2
