"""Product scoring functions through the SQL dialect.

The paper's F is summation throughout but "can be other monotonic
functions such as multiplication" — ``ORDER BY p1 * p2`` selects the
product combiner, and the whole upper-bound machinery must stay sound.
"""

import random

import pytest

from repro.engine import Database
from repro.sql.parser import parse
from repro.storage import DataType


@pytest.fixture
def db():
    rng = random.Random(83)
    db = Database()
    db.create_table("t", [("x", DataType.FLOAT), ("y", DataType.FLOAT)])
    db.insert("t", [(rng.random(), rng.random()) for __ in range(200)])
    db.register_predicate("px", ["t.x"], lambda x: x)
    db.register_predicate("py", ["t.y"], lambda y: y)
    db.create_rank_index("t", "px")
    db.analyze()
    return db


class TestParsing:
    def test_product_terms_marked(self):
        statement = parse("SELECT * FROM t ORDER BY px(t.x) * py(t.y) LIMIT 1")
        assert [term.combiner for term in statement.order_by] == ["product"] * 2

    def test_sum_terms_default(self):
        statement = parse("SELECT * FROM t ORDER BY px(t.x) + py(t.y) LIMIT 1")
        assert [term.combiner for term in statement.order_by] == ["sum"] * 2

    def test_three_way_product(self):
        statement = parse("SELECT * FROM t ORDER BY a * b * c LIMIT 1")
        assert len(statement.order_by) == 3
        assert all(term.combiner == "product" for term in statement.order_by)


class TestBinding:
    def test_product_combiner_selected(self, db):
        spec = db.bind("SELECT * FROM t ORDER BY px(t.x) * py(t.y) LIMIT 3")
        assert spec.scoring.combiner == "product"

    def test_single_term_stays_sum(self, db):
        spec = db.bind("SELECT * FROM t ORDER BY px(t.x) LIMIT 3")
        assert spec.scoring.combiner == "sum"


class TestExecution:
    def test_product_topk_matches_brute_force(self, db):
        result = db.query(
            "SELECT * FROM t ORDER BY px(t.x) * py(t.y) LIMIT 10",
            sample_ratio=0.2,
            seed=2,
        )
        expected = sorted(
            (r[0] * r[1] for r in db.catalog.table("t").rows()), reverse=True
        )[:10]
        assert result.scores == pytest.approx(expected)

    def test_product_scores_descending(self, db):
        result = db.query(
            "SELECT * FROM t ORDER BY px(t.x) * py(t.y) LIMIT 20",
            sample_ratio=0.2,
            seed=2,
        )
        assert result.scores == sorted(result.scores, reverse=True)

    def test_product_agrees_with_traditional(self, db):
        sql = "SELECT * FROM t ORDER BY px(t.x) * py(t.y) LIMIT 7"
        ranked = db.query(sql, sample_ratio=0.2, seed=2)
        spec = db.bind(sql)
        traditional = db.execute(
            db.plan_traditional(sql, sample_ratio=0.2, seed=2),
            spec.scoring,
            k=spec.k,
        )
        assert [round(s, 9) for s in ranked.scores] == [
            round(s, 9) for s in traditional.scores
        ]
