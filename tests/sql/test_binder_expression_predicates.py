"""Binder: expression predicates in ORDER BY (non-registered terms)."""

import pytest

from repro.engine import Database
from repro.storage import DataType


@pytest.fixture
def db():
    db = Database()
    db.create_table(
        "p", [("a", DataType.FLOAT), ("b", DataType.FLOAT), ("tag", DataType.TEXT)]
    )
    db.insert("p", [(i / 10, (10 - i) / 10, f"t{i}") for i in range(11)])
    db.analyze()
    return db


class TestExpressionPredicates:
    def test_column_term_p_max_from_stats(self, db):
        spec = db.bind("SELECT * FROM p ORDER BY p.a LIMIT 3")
        (name,) = spec.scoring.predicate_names
        predicate = spec.scoring.predicate(name)
        assert predicate.cost == 0.0
        assert predicate.p_max == pytest.approx(1.0)  # max(a) = 1.0

    def test_compound_expression_p_max_sums_components(self, db):
        spec = db.bind("SELECT * FROM p ORDER BY p.a + p.b LIMIT 3")
        # One expression predicate per additive term.
        assert len(spec.scoring.predicate_names) == 2

    def test_arithmetic_term_bound(self, db):
        spec = db.bind("SELECT * FROM p ORDER BY (p.a + p.b) / 2 LIMIT 3")
        (name,) = spec.scoring.predicate_names
        predicate = spec.scoring.predicate(name)
        # Conservative bound: sum of |max| of referenced columns = 2.0.
        assert predicate.p_max == pytest.approx(2.0)

    def test_expression_predicate_reused_across_binds(self, db):
        first = db.bind("SELECT * FROM p ORDER BY p.a LIMIT 1")
        second = db.bind("SELECT * FROM p ORDER BY p.a LIMIT 5")
        assert first.scoring.predicate_names == second.scoring.predicate_names
        # Registered once in the catalog, not duplicated.
        name = first.scoring.predicate_names[0]
        assert db.catalog.has_predicate(name)

    def test_expression_query_executes_correctly(self, db):
        result = db.query(
            "SELECT * FROM p ORDER BY p.a LIMIT 3", sample_ratio=0.5, seed=1
        )
        assert [row[0] for row in result.rows] == [1.0, 0.9, 0.8]

    def test_mixed_registered_and_expression_terms(self, db):
        db.register_predicate("pb", ["p.b"], lambda b: b)
        result = db.query(
            "SELECT * FROM p ORDER BY pb(p.b) + p.a LIMIT 3",
            sample_ratio=0.5,
            seed=1,
        )
        # a + b = 1.0 for every row: all tie at 1.0.
        assert result.scores == pytest.approx([1.0, 1.0, 1.0])
