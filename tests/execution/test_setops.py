"""Tests for the rank-aware set operations against the paper's Figure 4
examples and the reference evaluator."""

import pytest

from repro.algebra.operators import (
    LogicalDifference,
    LogicalIntersect,
    LogicalRank,
    LogicalScan,
    LogicalUnion,
    evaluate_logical,
)
from repro.execution import (
    ExecutionContext,
    Mu,
    RankDifference,
    RankIntersect,
    RankUnion,
    SeqScan,
    run_plan,
)

from tests.conftest import assert_descending


def physical_inputs(side_table, predicate):
    return Mu(SeqScan(side_table), predicate)


def _only_a5(paper_db):
    """R2 restricted to a = 5 (only r'3), ranked by p2 — value-disjoint
    from R."""
    from repro.algebra.expressions import col
    from repro.algebra.predicates import BooleanPredicate
    from repro.execution import Filter

    condition = BooleanPredicate(col("R2.a").eq(5), "a=5")
    return Mu(Filter(SeqScan("R2"), condition), "p2")


def run_physical(paper_db, operator):
    context = ExecutionContext(paper_db.catalog, paper_db.F1)
    out = run_plan(operator, context)
    return [
        (s.row.values, round(context.upper_bound(s), 6)) for s in out
    ], context


def run_reference(paper_db, node_type):
    plan = node_type(
        LogicalRank(LogicalScan("R", paper_db.R.schema), "p1"),
        LogicalRank(LogicalScan("R2", paper_db.R2.schema), "p2"),
    )
    result = evaluate_logical(plan, paper_db.catalog, paper_db.F1)
    return [
        (s.row.values, round(paper_db.F1.upper_bound(s.scores), 6)) for s in result
    ]


class TestRankUnion:
    def test_figure_4d(self, paper_db):
        got, __ = run_physical(
            paper_db,
            RankUnion(physical_inputs("R", "p1"), physical_inputs("R2", "p2")),
        )
        assert got == [
            ((1, 2), 1.55),
            ((3, 4), 1.4),
            ((5, 1), 1.35),
            ((2, 3), 1.3),
        ]

    def test_matches_reference(self, paper_db):
        got, __ = run_physical(
            paper_db,
            RankUnion(physical_inputs("R", "p1"), physical_inputs("R2", "p2")),
        )
        assert got == run_reference(paper_db, LogicalUnion)

    def test_output_descending(self, paper_db):
        got, __ = run_physical(
            paper_db,
            RankUnion(physical_inputs("R", "p1"), physical_inputs("R2", "p2")),
        )
        assert_descending([score for __, score in got])

    def test_deduplicates_by_values(self, paper_db):
        got, __ = run_physical(
            paper_db,
            RankUnion(physical_inputs("R", "p1"), physical_inputs("R", "p1")),
        )
        assert len(got) == 3  # R ∪ R = R

    def test_completes_missing_predicates(self, paper_db):
        __, context = run_physical(
            paper_db,
            RankUnion(physical_inputs("R", "p1"), physical_inputs("R2", "p2")),
        )
        # Output order is by {p1, p2}: the union evaluates the other side's
        # predicate for each distinct tuple.
        union_evals = context.metrics.predicate_evaluations
        assert union_evals >= 6 + 4  # µ inputs (3+3) plus ≥1 completion each


class TestRankIntersect:
    def test_figure_4c(self, paper_db):
        got, __ = run_physical(
            paper_db,
            RankIntersect(physical_inputs("R", "p1"), physical_inputs("R2", "p2")),
        )
        assert got == [
            ((1, 2), 1.55),
            ((3, 4), 1.4),
        ]

    def test_matches_reference(self, paper_db):
        got, __ = run_physical(
            paper_db,
            RankIntersect(physical_inputs("R", "p1"), physical_inputs("R2", "p2")),
        )
        assert got == run_reference(paper_db, LogicalIntersect)

    def test_self_intersection_is_identity(self, paper_db):
        got, __ = run_physical(
            paper_db,
            RankIntersect(physical_inputs("R", "p1"), physical_inputs("R", "p2")),
        )
        assert [values for values, __ in got] == [(1, 2), (3, 4), (2, 3)]

    def test_disjoint_inputs_empty(self, paper_db):
        # R2 restricted to a=5 (only r'3) shares nothing with R.
        got, __ = run_physical(
            paper_db,
            RankIntersect(physical_inputs("R", "p1"), _only_a5(paper_db)),
        )
        assert got == []


class TestRankDifference:
    def test_figure_4e(self, paper_db):
        got, __ = run_physical(
            paper_db,
            RankDifference(physical_inputs("R", "p1"), physical_inputs("R2", "p2")),
        )
        assert got == [((2, 3), 1.8)]

    def test_matches_reference(self, paper_db):
        got, __ = run_physical(
            paper_db,
            RankDifference(physical_inputs("R", "p1"), physical_inputs("R2", "p2")),
        )
        assert got == run_reference(paper_db, LogicalDifference)

    def test_self_difference_empty(self, paper_db):
        got, __ = run_physical(
            paper_db,
            RankDifference(physical_inputs("R", "p1"), physical_inputs("R", "p2")),
        )
        assert got == []

    def test_difference_with_disjoint_is_identity(self, paper_db):
        got, __ = run_physical(
            paper_db,
            RankDifference(physical_inputs("R", "p1"), _only_a5(paper_db)),
        )
        assert [values for values, __ in got] == [(1, 2), (2, 3), (3, 4)]

    def test_keeps_outer_order(self, paper_db):
        got, __ = run_physical(
            paper_db,
            RankDifference(physical_inputs("R", "p1"), _only_a5(paper_db)),
        )
        scores = [score for __, score in got]
        assert scores == [1.9, 1.8, 1.7]  # F1_{p1} order of R

    def test_union_compat_enforced(self, paper_db):
        operator = RankDifference(
            physical_inputs("R", "p1"), Mu(SeqScan("S"), "p3")
        )
        # R has 2 columns, S has 2 columns — compatible arity; build a
        # 1-column mismatch via projection instead.
        from repro.execution import Project

        bad = RankDifference(
            Project(physical_inputs("R", "p1"), ("R.a",)),
            physical_inputs("R2", "p2"),
        )
        context = ExecutionContext(paper_db.catalog, paper_db.F1)
        with pytest.raises(RuntimeError):
            bad.open(context)
