"""Unit tests for the physical operators: scans, µ, filter, sort, limit."""

import math

import pytest

from repro.algebra.expressions import col
from repro.algebra.predicates import BooleanPredicate
from repro.execution import (
    ColumnOrderScan,
    ExecutionContext,
    Filter,
    Limit,
    Mu,
    Project,
    RankScan,
    ScanSelect,
    SeqScan,
    Sort,
    run_plan,
)
from repro.storage import MultiKeyIndex

from tests.conftest import assert_descending


def ctx(paper_db, scoring=None):
    return ExecutionContext(paper_db.catalog, scoring or paper_db.F2)


class TestSeqScan:
    def test_heap_order_and_empty_scores(self, paper_db):
        context = ctx(paper_db)
        out = run_plan(SeqScan("S"), context)
        assert len(out) == 6
        assert all(s.scores == {} for s in out)
        assert [s.row.rid[0][1] for s in out] == list(range(6))

    def test_charges_scans(self, paper_db):
        context = ctx(paper_db)
        run_plan(SeqScan("S"), context)
        assert context.metrics.tuples_scanned == 6

    def test_bound_constant_then_exhausted(self, paper_db):
        context = ctx(paper_db)
        scan = SeqScan("S")
        scan.open(context)
        assert scan.bound() == pytest.approx(3.0)
        while scan.next() is not None:
            pass
        assert scan.bound() == -math.inf
        scan.close()

    def test_next_before_open_raises(self, paper_db):
        with pytest.raises(RuntimeError):
            SeqScan("S").next()


class TestRankScan:
    def test_descending_predicate_order(self, paper_db):
        context = ctx(paper_db)
        out = run_plan(RankScan("S", "p3"), context)
        scores = [s.scores["p3"] for s in out]
        assert scores == sorted(scores, reverse=True)

    def test_no_predicate_evaluations_charged(self, paper_db):
        """Rank-scan reads precomputed index scores — free at query time."""
        context = ctx(paper_db)
        run_plan(RankScan("S", "p3"), context)
        assert context.metrics.predicate_evaluations == 0

    def test_bound_tracks_last_score(self, paper_db):
        context = ctx(paper_db)
        scan = RankScan("S", "p3")
        scan.open(context)
        first = scan.next()
        assert scan.bound() == pytest.approx(context.upper_bound(first))
        scan.close()

    def test_missing_index_raises(self, paper_db):
        context = ctx(paper_db)
        scan = RankScan("S", "p4")  # no index on p4
        with pytest.raises(RuntimeError):
            scan.open(context)


class TestColumnOrderScan:
    def test_ascending_column_order(self, paper_db):
        context = ctx(paper_db)
        out = run_plan(ColumnOrderScan("S", "S.a"), context)
        values = [s.row[0] for s in out]
        assert values == sorted(values)

    def test_missing_index_falls_back_to_transient_sort(self, paper_db):
        # No column index on S.c: the scan builds a transient sorted
        # iterator (charging the sort's comparisons) instead of raising.
        context = ctx(paper_db)
        out = run_plan(ColumnOrderScan("S", "S.c"), context)
        table = paper_db.catalog.table("S")
        position = table.schema.index_of("S.c")
        assert [s.row.rid for s in out] == [
            r.rid for r in sorted(table.rows(), key=lambda r: (r[position], r.rid))
        ]
        assert context.metrics.comparisons > 0


class TestScanSelect:
    def test_filters_and_orders(self, paper_db):
        # Build a multi-key index on (a>2 as boolean? -> use c column): the
        # schema has no bool column, so index on a synthetic flag via c==1.
        table = paper_db.catalog.table("S")
        # Use column "a" with truthiness: a is int; treat a==1 rows as True.
        index = MultiKeyIndex(
            "S_mk",
            table.schema,
            "S.a",
            "p4",
            paper_db.p4.compile(table.schema),
        )
        # MultiKeyIndex booleanizes the key column: a != 0 is always true
        # here, so use scan_matching(True) to mean "a truthy".
        table.attach_index(index)
        context = ctx(paper_db)
        out = run_plan(ScanSelect("S", "S.a", "p4"), context)
        scores = [s.scores["p4"] for s in out]
        assert scores == sorted(scores, reverse=True)
        assert len(out) == 6  # all rows have a != 0

    def test_missing_index_raises(self, paper_db):
        context = ctx(paper_db)
        with pytest.raises(RuntimeError):
            ScanSelect("S", "S.a", "p3").open(context)


class TestMu:
    def test_output_descending(self, paper_db):
        context = ctx(paper_db)
        out = run_plan(Mu(RankScan("S", "p3"), "p4"), context)
        assert_descending([context.upper_bound(s) for s in out])

    def test_adds_predicate_to_set(self, paper_db):
        context = ctx(paper_db)
        mu = Mu(RankScan("S", "p3"), "p4")
        mu.open(context)
        assert mu.predicates() == frozenset({"p3", "p4"})
        mu.close()

    def test_idempotent_when_already_evaluated(self, paper_db):
        context = ctx(paper_db)
        plan = Mu(Mu(RankScan("S", "p3"), "p4"), "p4")
        out = run_plan(plan, context)
        # Second µ_p4 re-orders nothing and charges nothing extra:
        # 6 evaluations for the inner µ only.
        assert context.metrics.predicate_evaluations == 6
        assert len(out) == 6

    def test_over_seq_scan_drains_input(self, paper_db):
        """With P = φ below, every input ties at the max bound, so µ must
        consume the entire input before emitting."""
        context = ctx(paper_db)
        mu = Mu(SeqScan("S"), "p3")
        mu.open(context)
        first = mu.next()
        assert first is not None
        assert context.metrics.tuples_scanned == 6
        mu.close()

    def test_invalid_threshold_mode(self, paper_db):
        with pytest.raises(ValueError):
            Mu(SeqScan("S"), "p3", threshold_mode="bogus")

    def test_live_mode_not_worse(self, paper_db):
        """'live' thresholds can only reduce the tuples drawn."""
        drawn_context = ctx(paper_db)
        run_plan(Mu(Mu(RankScan("S", "p3"), "p5"), "p4"), drawn_context, k=1)
        live_context = ctx(paper_db)
        run_plan(
            Mu(
                Mu(RankScan("S", "p3"), "p5", threshold_mode="live"),
                "p4",
                threshold_mode="live",
            ),
            live_context,
            k=1,
        )
        assert (
            live_context.metrics.tuples_scanned
            <= drawn_context.metrics.tuples_scanned
        )


class TestFilter:
    def test_preserves_order(self, paper_db):
        context = ctx(paper_db)
        condition = BooleanPredicate(col("S.a") > 1, "a>1")
        out = run_plan(Filter(RankScan("S", "p3"), condition), context)
        assert all(s.row[0] > 1 for s in out)
        assert_descending([context.upper_bound(s) for s in out])

    def test_charges_boolean_evaluations(self, paper_db):
        context = ctx(paper_db)
        condition = BooleanPredicate(col("S.a") > 1, "a>1")
        run_plan(Filter(SeqScan("S"), condition), context)
        assert context.metrics.boolean_evaluations == 6

    def test_bound_delegates_to_child(self, paper_db):
        context = ctx(paper_db)
        condition = BooleanPredicate(col("S.a") > 0, "true-ish")
        operator = Filter(RankScan("S", "p3"), condition)
        operator.open(context)
        operator.next()
        assert operator.bound() == operator.child.bound()
        operator.close()


class TestProject:
    def test_narrows_layout(self, paper_db):
        context = ctx(paper_db)
        out = run_plan(Project(RankScan("S", "p3"), ("S.c",)), context)
        assert all(len(s.row.values) == 1 for s in out)

    def test_preserves_scores_and_order(self, paper_db):
        context = ctx(paper_db)
        out = run_plan(Project(RankScan("S", "p3"), ("S.c", "S.a")), context)
        assert_descending([context.upper_bound(s) for s in out])
        assert all("p3" in s.scores for s in out)

    def test_schema(self, paper_db):
        context = ctx(paper_db)
        operator = Project(SeqScan("S"), ("S.c",))
        operator.open(context)
        assert operator.schema().qualified_names() == ["S.c"]
        operator.close()


class TestSortAndLimit:
    def test_sort_emits_complete_ranking(self, paper_db):
        context = ctx(paper_db)
        out = run_plan(Sort(SeqScan("S")), context)
        scores = [context.upper_bound(s) for s in out]
        assert_descending(scores)
        assert len(out) == 6

    def test_sort_is_blocking(self, paper_db):
        context = ctx(paper_db)
        sort = Sort(SeqScan("S"))
        sort.open(context)
        sort.next()
        assert context.metrics.tuples_scanned == 6
        sort.close()

    def test_sort_completes_missing_predicates_only(self, paper_db):
        context = ctx(paper_db)
        run_plan(Sort(RankScan("S", "p3")), context)
        # p3 is free; only p4 and p5 are evaluated: 12 calls.
        assert context.metrics.predicate_evaluations == 12

    def test_limit_stops_pulling(self, paper_db):
        context = ctx(paper_db)
        out = run_plan(Limit(RankScan("S", "p3"), 2), context)
        assert len(out) == 2
        assert context.metrics.tuples_scanned == 2

    def test_limit_zero(self, paper_db):
        context = ctx(paper_db)
        assert run_plan(Limit(SeqScan("S"), 0), context) == []

    def test_limit_negative_rejected(self, paper_db):
        with pytest.raises(ValueError):
            Limit(SeqScan("S"), -1)

    def test_limit_larger_than_input(self, paper_db):
        context = ctx(paper_db)
        out = run_plan(Limit(SeqScan("S"), 100), context)
        assert len(out) == 6
