"""Tests for interesting-order propagation and its exploitation by the
sort-merge join."""

import random

import pytest

from repro.algebra.expressions import col
from repro.algebra.predicates import BooleanPredicate, RankingPredicate, ScoringFunction
from repro.execution import (
    ColumnOrderScan,
    ExecutionContext,
    Filter,
    SeqScan,
    SortMergeJoin,
    run_plan,
)
from repro.storage import Catalog, ColumnIndex, DataType, Schema


@pytest.fixture
def two_tables():
    rng = random.Random(61)
    catalog = Catalog()
    left = catalog.create_table(
        "L", Schema.of(("k", DataType.INT), ("x", DataType.FLOAT))
    )
    right = catalog.create_table(
        "R", Schema.of(("k", DataType.INT), ("y", DataType.FLOAT))
    )
    for __ in range(120):
        left.insert([rng.randrange(15), rng.random()])
        right.insert([rng.randrange(15), rng.random()])
    left.attach_index(ColumnIndex("L_k", left.schema, "L.k"))
    right.attach_index(ColumnIndex("R_k", right.schema, "R.k"))
    predicate = RankingPredicate("p", ["L.x"], lambda x: x)
    return catalog, ScoringFunction([predicate])


class TestColumnOrderPropagation:
    def test_scan_exposes_order(self, two_tables):
        catalog, scoring = two_tables
        context = ExecutionContext(catalog, scoring)
        scan = ColumnOrderScan("L", "L.k")
        scan.open(context)
        assert scan.column_order() == "L.k"
        scan.close()

    def test_seq_scan_has_no_order(self, two_tables):
        catalog, scoring = two_tables
        context = ExecutionContext(catalog, scoring)
        scan = SeqScan("L")
        scan.open(context)
        assert scan.column_order() is None
        scan.close()

    def test_filter_preserves_order(self, two_tables):
        catalog, scoring = two_tables
        context = ExecutionContext(catalog, scoring)
        condition = BooleanPredicate(col("L.k") > 2, "k>2")
        operator = Filter(ColumnOrderScan("L", "L.k"), condition)
        operator.open(context)
        assert operator.column_order() == "L.k"
        operator.close()

    def test_smj_exposes_key_order(self, two_tables):
        catalog, scoring = two_tables
        context = ExecutionContext(catalog, scoring)
        join = SortMergeJoin(
            ColumnOrderScan("L", "L.k"), ColumnOrderScan("R", "R.k"), "L.k", "R.k"
        )
        join.open(context)
        assert join.column_order() == "L.k"
        join.close()


class TestSortAvoidance:
    def run_join(self, catalog, scoring, left, right):
        context = ExecutionContext(catalog, scoring)
        out = run_plan(SortMergeJoin(left, right, "L.k", "R.k"), context)
        return out, context.metrics

    def test_same_results_either_way(self, two_tables):
        catalog, scoring = two_tables
        ordered, __ = self.run_join(
            catalog, scoring, ColumnOrderScan("L", "L.k"), ColumnOrderScan("R", "R.k")
        )
        unordered, __ = self.run_join(catalog, scoring, SeqScan("L"), SeqScan("R"))
        assert sorted(s.row.values for s in ordered) == sorted(
            s.row.values for s in unordered
        )

    def test_ordered_inputs_skip_sort_charges(self, two_tables):
        catalog, scoring = two_tables
        __, ordered_metrics = self.run_join(
            catalog, scoring, ColumnOrderScan("L", "L.k"), ColumnOrderScan("R", "R.k")
        )
        __, unordered_metrics = self.run_join(
            catalog, scoring, SeqScan("L"), SeqScan("R")
        )
        assert ordered_metrics.comparisons < unordered_metrics.comparisons
