"""Unit tests for the metrics / simulated-cost substrate."""

import pytest

from repro.execution.metrics import (
    BOOLEAN_EVAL_UNIT,
    JOIN_PAIR_UNIT,
    MOVE_UNIT,
    SCAN_UNIT,
    ExecutionMetrics,
    OperatorStats,
)


class TestOperatorStats:
    def test_selectivity(self):
        stats = OperatorStats("op", tuples_in=10, tuples_out=4)
        assert stats.selectivity == pytest.approx(0.4)

    def test_selectivity_of_source(self):
        assert OperatorStats("scan", tuples_in=0, tuples_out=5).selectivity == 1.0


class TestExecutionMetrics:
    def test_charges_accumulate(self):
        metrics = ExecutionMetrics()
        metrics.charge_scan(3)
        metrics.charge_move(2)
        metrics.charge_boolean(4)
        metrics.charge_join_pair(5)
        metrics.charge_comparisons(6)
        metrics.charge_predicate(10.0, count=2)
        assert metrics.tuples_scanned == 3
        assert metrics.tuples_moved == 2
        assert metrics.boolean_evaluations == 4
        assert metrics.join_pairs_examined == 5
        assert metrics.comparisons == 6
        assert metrics.predicate_evaluations == 2
        assert metrics.predicate_cost_units == 20.0

    def test_simulated_cost_formula(self):
        metrics = ExecutionMetrics()
        metrics.charge_scan(10)
        metrics.charge_move(10)
        metrics.charge_join_pair(10)
        metrics.charge_boolean(10)
        metrics.charge_predicate(7.0)
        expected = (
            10 * SCAN_UNIT
            + 10 * MOVE_UNIT
            + 10 * JOIN_PAIR_UNIT
            + 10 * BOOLEAN_EVAL_UNIT
            + 7.0
        )
        assert metrics.simulated_cost == pytest.approx(expected)

    def test_zero_cost_predicate_counts_but_costs_nothing(self):
        metrics = ExecutionMetrics()
        metrics.charge_predicate(0.0)
        assert metrics.predicate_evaluations == 1
        assert metrics.predicate_cost_units == 0.0

    def test_stats_for_creates_once(self):
        metrics = ExecutionMetrics()
        a = metrics.stats_for("op")
        b = metrics.stats_for("op")
        assert a is b
        assert metrics.stats_for("other") is not a

    def test_summary_keys(self):
        summary = ExecutionMetrics().summary()
        assert set(summary) == {
            "tuples_scanned",
            "tuples_moved",
            "predicate_evaluations",
            "predicate_cost_units",
            "boolean_evaluations",
            "boolean_cost_units",
            "join_pairs_examined",
            "comparisons",
            "simulated_cost",
        }

    def test_unique_operator_names_in_context(self, paper_db):
        from repro.execution import ExecutionContext, Mu, RankScan, run_plan

        context = ExecutionContext(paper_db.catalog, paper_db.F2)
        plan = Mu(Mu(RankScan("S", "p3"), "p4"), "p4")
        run_plan(plan, context, k=1)
        # Two operators with the same label get distinct stats entries.
        names = [n for n in context.metrics.operators if n.startswith("rank_p4")]
        assert len(names) == 2
