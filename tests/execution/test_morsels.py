"""The morsel pool subsystem: ordered gather, knobs, backends — and the
metrics contract (parallel ``charge_*`` totals equal serial totals).
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.execution import ExecutionContext, run_plan
from repro.execution import morsels
from repro.execution.metrics import ExecutionMetrics
from repro.optimizer.plans import lower_to_batch
from repro.workloads import ALL_PLANS, WorkloadConfig, build_workload


# ----------------------------------------------------------------------
# knobs
# ----------------------------------------------------------------------


class TestKnobs:
    def test_default_morsel_size(self, monkeypatch):
        monkeypatch.delenv("REPRO_MORSEL_SIZE", raising=False)
        assert morsels.morsel_size() == morsels.MORSEL_SIZE_DEFAULT

    def test_morsel_size_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_MORSEL_SIZE", "128")
        assert morsels.morsel_size() == 128

    @pytest.mark.parametrize("bad", ["zero", "", "0", "-4"])
    def test_morsel_size_rejects_junk(self, monkeypatch, bad):
        monkeypatch.setenv("REPRO_MORSEL_SIZE", bad)
        with pytest.raises(ValueError, match="REPRO_MORSEL_SIZE"):
            morsels.morsel_size()

    def test_default_backend_is_thread(self, monkeypatch):
        monkeypatch.delenv("REPRO_PARALLEL_BACKEND", raising=False)
        assert morsels.parallel_backend() == "thread"

    def test_backend_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL_BACKEND", "process")
        assert morsels.parallel_backend() == "process"

    def test_backend_rejects_junk(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL_BACKEND", "gpu")
        with pytest.raises(ValueError, match="REPRO_PARALLEL_BACKEND"):
            morsels.parallel_backend()

    def test_hardware_parallelism_positive(self):
        assert morsels.hardware_parallelism() >= 1


# ----------------------------------------------------------------------
# the shared pool
# ----------------------------------------------------------------------


class TestSharedPool:
    def test_pool_is_a_singleton(self):
        assert morsels.shared_pool() is morsels.shared_pool()

    def test_pool_has_at_least_two_workers(self):
        # Single-core hosts still get real concurrency (and real races,
        # which the determinism tests must survive).
        assert morsels.shared_pool()._max_workers >= 2

    def test_pool_summary_keys(self):
        summary = morsels.pool_summary()
        assert set(summary) == {"morsel_pool_started", "morsel_pool_workers"}
        assert summary["morsel_pool_workers"] >= 2


# ----------------------------------------------------------------------
# ordered task execution
# ----------------------------------------------------------------------


class TestRunTasks:
    def test_serial_path_runs_inline(self):
        thread_ids = []

        def task():
            thread_ids.append(threading.get_ident())
            return len(thread_ids)

        assert list(morsels.run_tasks([task, task], dop=1)) == [1, 2]
        assert set(thread_ids) == {threading.get_ident()}

    def test_results_arrive_in_task_order(self):
        # Earlier tasks sleep longer: completion order is the reverse of
        # submission order, yet the gather must restore task order.
        def make(index, delay):
            def task():
                time.sleep(delay)
                return index

            return task

        tasks = [make(i, delay=(8 - i) * 0.002) for i in range(8)]
        assert list(morsels.run_tasks(tasks, dop=4, backend="thread")) == list(
            range(8)
        )

    def test_window_bounds_in_flight_tasks(self):
        active = 0
        peak = 0
        lock = threading.Lock()

        def task():
            nonlocal active, peak
            with lock:
                active += 1
                peak = max(peak, active)
            time.sleep(0.002)
            with lock:
                active -= 1

        list(morsels.run_tasks([task] * 12, dop=3, backend="thread"))
        assert peak <= 3

    def test_exception_surfaces_in_task_order(self):
        seen = []

        def ok(i):
            def task():
                seen.append(i)
                return i

            return task

        def boom():
            raise RuntimeError("morsel 2 failed")

        # Thread backend pinned: the windowed gather yields completed
        # results up to the failing task, then raises in task order.
        results = morsels.run_tasks(
            [ok(0), ok(1), boom, ok(3)], dop=2, backend="thread"
        )
        gathered = []
        with pytest.raises(RuntimeError, match="morsel 2 failed"):
            for value in results:
                gathered.append(value)
        assert gathered == [0, 1]

    def test_lazy_generator_semantics(self):
        # Serial mode must stay lazy: nothing runs until consumed.
        ran = []
        results = morsels.run_tasks([lambda: ran.append(1)], dop=1)
        assert ran == []
        list(results)
        assert ran == [1]


@pytest.mark.skipif(not morsels.fork_available(), reason="no fork on platform")
class TestForkBackend:
    def test_forked_results_in_task_order(self):
        def make(index):
            def task():
                return index * index

            return task

        tasks = [make(i) for i in range(6)]
        assert list(morsels.run_tasks(tasks, dop=3, backend="process")) == [
            i * i for i in range(6)
        ]

    def test_forked_closures_need_no_pickling(self):
        # Closures over unpicklable state (a lock) work: workers inherit
        # them through fork, only results cross the pipe.
        lock = threading.Lock()

        def task():
            with lock:
                return 7

        assert list(morsels.run_tasks([task, task], dop=2, backend="process")) == [
            7,
            7,
        ]


# ----------------------------------------------------------------------
# the metrics contract: parallel totals == serial totals
# ----------------------------------------------------------------------


def _drain_with_metrics(workload, plan_node) -> tuple[list, ExecutionMetrics]:
    context = ExecutionContext(workload.catalog, workload.scoring)
    out = run_plan(plan_node.build(), context)
    rows = [(s.row.rid, s.row.values, dict(s.scores)) for s in out]
    return rows, context.metrics


@pytest.mark.parametrize("plan_name", sorted(ALL_PLANS))
def test_parallel_charge_totals_equal_serial(plan_name, monkeypatch):
    """The satellite regression: for fully-drained queries, every
    ``charge_*`` counter and every per-operator in/out cardinality must be
    identical whether morsels ran serially or at DOP 8."""
    monkeypatch.setenv("REPRO_MORSEL_SIZE", "64")
    workload = build_workload(
        WorkloadConfig(table_size=200, join_selectivity=0.02, k=8, seed=7)
    )
    serial_rows, serial = _drain_with_metrics(
        workload, lower_to_batch(ALL_PLANS[plan_name](workload))
    )
    parallel_rows, parallel = _drain_with_metrics(
        workload, lower_to_batch(ALL_PLANS[plan_name](workload), parallelism=8)
    )
    assert parallel_rows == serial_rows
    assert parallel.summary() == serial.summary()
    serial_ops = {
        name: (s.tuples_in, s.tuples_out) for name, s in serial.operators.items()
    }
    parallel_ops = {
        name: (s.tuples_in, s.tuples_out) for name, s in parallel.operators.items()
    }
    assert parallel_ops == serial_ops


def test_metrics_merge_sums_every_counter():
    a = ExecutionMetrics()
    a.charge_scan(5)
    a.charge_move(3)
    a.charge_predicate(2.0, 4)
    a.charge_boolean(6)
    a.charge_join_pair(7)
    a.charge_comparisons(8)
    a.stats_for("op").tuples_in += 10
    a.stats_for("op").wall_seconds += 0.5
    b = ExecutionMetrics()
    b.charge_scan(1)
    b.stats_for("op").tuples_out += 2
    b.stats_for("other").tuples_in += 3
    b.merge(a)
    assert b.tuples_scanned == 6
    assert b.tuples_moved == 3
    assert b.predicate_evaluations == 4
    assert b.predicate_cost_units == 8.0
    assert b.boolean_evaluations == 6
    assert b.join_pairs_examined == 7
    assert b.comparisons == 8
    assert b.stats_for("op").tuples_in == 10
    assert b.stats_for("op").tuples_out == 2
    assert b.stats_for("op").wall_seconds == 0.5
    assert b.stats_for("other").tuples_in == 3
