"""Unit tests for the batched columnar path: Batch, the batch operators,
the BatchToRow frontier adapter, the top-k sorts, and the storage-side
columnar view / bulk-insert fast paths that feed them."""

from __future__ import annotations

import math

import pytest

from repro.algebra.expressions import col
from repro.algebra.predicates import BooleanPredicate
from repro.execution import (
    BATCH_SIZE,
    BatchColumnOrderScan,
    BatchFilter,
    BatchHashJoin,
    BatchLimit,
    BatchNestedLoopJoin,
    BatchProject,
    BatchScan,
    BatchSort,
    BatchSortMergeJoin,
    BatchToRow,
    ExecutionContext,
    Filter,
    HashJoin,
    Limit,
    NestedLoopJoin,
    Project,
    SeqScan,
    Sort,
    SortMergeJoin,
    run_plan,
)
from repro.storage import Catalog, ColumnIndex, DataType, Schema

from tests.conftest import assert_descending


def ctx(paper_db, scoring=None):
    return ExecutionContext(paper_db.catalog, scoring or paper_db.F2)


def sequence(out):
    """The full observable output: (rid, values, scores) per tuple."""
    return [(s.row.rid, s.row.values, dict(s.scores)) for s in out]


def run_rows(paper_db, plan, scoring=None):
    context = ctx(paper_db, scoring)
    return sequence(run_plan(plan, context)), context.metrics


class TestBatchScan:
    def test_matches_seqscan(self, paper_db):
        row_out, row_metrics = run_rows(paper_db, SeqScan("S"))
        batch_out, batch_metrics = run_rows(paper_db, BatchToRow(BatchScan("S")))
        assert batch_out == row_out
        assert batch_metrics.tuples_scanned == row_metrics.tuples_scanned

    def test_bound_contract(self, paper_db):
        context = ctx(paper_db)
        adapter = BatchToRow(BatchScan("S"))
        adapter.open(context)
        assert adapter.bound() == pytest.approx(3.0)  # F_phi of F2
        assert adapter.predicates() == frozenset()
        while adapter.next() is not None:
            pass
        assert adapter.bound() == -math.inf
        adapter.close()

    def test_columnar_view_invalidated_by_insert(self):
        table = Catalog().create_table(
            "T", Schema.of(("k", DataType.INT), ("x", DataType.FLOAT))
        )
        table.insert_many([(1, 0.5), (2, 0.25)])
        view = table.columns()
        assert len(view) == 2
        assert view is table.columns()  # cached
        table.insert((9, 0.75))
        fresh = table.columns()
        assert fresh is not view
        assert len(fresh) == 3
        assert fresh.columns[0] == [1, 2, 9]
        assert fresh.rids == [r.rid for r in table.rows()]


class TestBatchColumnOrderScan:
    def test_matches_index_scan_order(self, paper_db):
        out, __ = run_rows(paper_db, BatchToRow(BatchColumnOrderScan("S", "S.a")))
        values = [v[1][0] for v in out]
        assert values == sorted(values)

    def test_fallback_without_index(self, paper_db):
        # No column index exists on S.c: transient sort, comparisons charged.
        context = ctx(paper_db)
        out = run_plan(BatchToRow(BatchColumnOrderScan("S", "S.c")), context)
        values = [s.row[1] for s in out]
        assert values == sorted(values)
        assert context.metrics.comparisons > 0


class TestBatchFilterProjectLimit:
    def test_filter_matches_row_filter(self, paper_db):
        condition = BooleanPredicate(col("S.a") > 1, "a>1")
        row_out, row_metrics = run_rows(paper_db, Filter(SeqScan("S"), condition))
        batch_out, batch_metrics = run_rows(
            paper_db, BatchToRow(BatchFilter(BatchScan("S"), condition))
        )
        assert batch_out == row_out
        assert batch_metrics.boolean_evaluations == row_metrics.boolean_evaluations

    def test_project_matches_row_project(self, paper_db):
        columns = ("S.c", "S.a")
        row_out, __ = run_rows(paper_db, Project(SeqScan("S"), columns))
        batch_out, __ = run_rows(
            paper_db, BatchToRow(BatchProject(BatchScan("S"), columns))
        )
        assert batch_out == row_out

    def test_batch_limit_truncates(self, paper_db):
        out, __ = run_rows(paper_db, BatchToRow(BatchLimit(BatchScan("S"), 4)))
        assert len(out) == 4
        out, __ = run_rows(paper_db, BatchToRow(BatchLimit(BatchScan("S"), 0)))
        assert out == []


class TestBatchJoins:
    def test_hash_join_same_order_as_row(self, paper_db):
        row_out, row_metrics = run_rows(
            paper_db, HashJoin(SeqScan("R"), SeqScan("S"), "R.a", "S.a")
        )
        batch_out, batch_metrics = run_rows(
            paper_db,
            BatchToRow(BatchHashJoin(BatchScan("R"), BatchScan("S"), "R.a", "S.a")),
        )
        assert batch_out == row_out
        assert batch_metrics.join_pairs_examined == row_metrics.join_pairs_examined

    def test_sort_merge_join_same_order_as_row(self, paper_db):
        row_out, row_metrics = run_rows(
            paper_db, SortMergeJoin(SeqScan("R"), SeqScan("S"), "R.a", "S.a")
        )
        batch_out, batch_metrics = run_rows(
            paper_db,
            BatchToRow(
                BatchSortMergeJoin(BatchScan("R"), BatchScan("S"), "R.a", "S.a")
            ),
        )
        assert batch_out == row_out
        assert batch_metrics.join_pairs_examined == row_metrics.join_pairs_examined
        assert batch_metrics.comparisons == row_metrics.comparisons

    def test_nested_loop_join_same_order_as_row(self, paper_db):
        condition = BooleanPredicate(col("R.a") < col("S.a"), "R.a<S.a")
        row_out, row_metrics = run_rows(
            paper_db, NestedLoopJoin(SeqScan("R"), SeqScan("S"), condition)
        )
        batch_out, batch_metrics = run_rows(
            paper_db,
            BatchToRow(
                BatchNestedLoopJoin(BatchScan("R"), BatchScan("S"), condition)
            ),
        )
        assert batch_out == row_out
        assert batch_metrics.join_pairs_examined == row_metrics.join_pairs_examined


class TestBatchSortAndTopK:
    def test_batch_sort_matches_row_sort(self, paper_db):
        row_out, row_metrics = run_rows(paper_db, Sort(SeqScan("S")))
        batch_out, batch_metrics = run_rows(
            paper_db, BatchToRow(BatchSort(BatchScan("S")))
        )
        assert batch_out == row_out
        assert (
            batch_metrics.predicate_evaluations == row_metrics.predicate_evaluations
        )
        assert_descending([score for __, __, s in batch_out for score in [sum(s.values())]])

    def test_batch_sort_carries_full_predicate_set(self, paper_db):
        context = ctx(paper_db)
        adapter = BatchToRow(BatchSort(BatchScan("S")))
        adapter.open(context)
        assert adapter.predicates() == frozenset(("p3", "p4", "p5"))
        first = adapter.next()
        assert first is not None
        # Sorted frontier: the bound is the next pending tuple's score.
        assert adapter.bound() <= context.upper_bound(first)
        adapter.close()

    def test_row_sort_topk_hint_same_prefix(self, paper_db):
        full, __ = run_rows(paper_db, Sort(SeqScan("S")))
        limited, metrics = run_rows(paper_db, Limit(Sort(SeqScan("S")), 3))
        assert limited == full[:3]

    def test_topk_sort_charges_fewer_comparisons(self, paper_db):
        __, full = run_rows(paper_db, Limit(Sort(SeqScan("S")), 6))
        __, topk = run_rows(paper_db, Limit(Sort(SeqScan("S")), 2))
        assert topk.comparisons < full.comparisons

    def test_batch_sort_topk_hint_same_prefix(self, paper_db):
        full, __ = run_rows(paper_db, BatchToRow(BatchSort(BatchScan("S"))))
        limited, __ = run_rows(
            paper_db, Limit(BatchToRow(BatchSort(BatchScan("S"))), 3)
        )
        assert limited == full[:3]

    def test_notify_limit_does_not_leak_without_limit(self, paper_db):
        # A cursor-style consumer (no λ) must see the full ordering.
        sort = Sort(SeqScan("S"))
        assert sort.fetch_limit is None
        out, __ = run_rows(paper_db, sort)
        assert len(out) == 6


class TestBulkInsert:
    def schema(self):
        return Schema.of(("k", DataType.INT), ("x", DataType.FLOAT))

    def test_insert_many_equivalent_to_loop(self):
        catalog_a, catalog_b = Catalog(), Catalog()
        bulk = catalog_a.create_table("T", self.schema())
        loop = catalog_b.create_table("T", self.schema())
        for table in (bulk, loop):
            table.attach_index(ColumnIndex("T_k_idx", table.schema, "T.k"))
        rows = [(i % 3, i / 10.0) for i in range(25)]
        assert bulk.insert_many(rows) == 25
        for values in rows:
            loop.insert(values)
        assert [r.values for r in bulk.rows()] == [r.values for r in loop.rows()]
        bulk_index = bulk.find_index(key="T.k")
        loop_index = loop.find_index(key="T.k")
        assert [r.rid for r in bulk_index.scan_ascending()] == [
            r.rid for r in loop_index.scan_ascending()
        ]

    def test_insert_many_validates_before_mutating(self):
        table = Catalog().create_table("T", self.schema())
        table.insert_many([(1, 0.5)])
        with pytest.raises(Exception):
            table.insert_many([(2, 0.25), ("bad", 0.75)])
        # The failed batch left no partial state behind.
        assert table.row_count == 1

    def test_bulk_insert_merges_into_existing_index(self):
        table = Catalog().create_table("T", self.schema())
        table.attach_index(ColumnIndex("T_k_idx", table.schema, "T.k"))
        table.insert_many([(5, 0.1), (1, 0.2)])
        table.insert_many([(3, 0.3), (0, 0.4), (9, 0.5)])
        index = table.find_index(key="T.k")
        keys = [r[0] for r in index.scan_ascending()]
        assert keys == sorted(keys)
        assert len(keys) == 5


class TestFrontierVectorization:
    """The µ-frontier prescore and σ-frontier prefilter hooks."""

    def test_mu_prescore_identical_output_and_charges(self, paper_db):
        from repro.execution import Mu

        row_out, row_metrics = run_rows(paper_db, Mu(SeqScan("S"), "p3"))
        batch_out, batch_metrics = run_rows(
            paper_db, Mu(BatchToRow(BatchScan("S")), "p3")
        )
        assert batch_out == row_out
        assert (
            batch_metrics.predicate_evaluations
            == row_metrics.predicate_evaluations
        )
        assert (
            batch_metrics.predicate_cost_units == row_metrics.predicate_cost_units
        )

    def test_mu_requests_prescore_from_frontier(self, paper_db):
        from repro.execution import Mu

        adapter = BatchToRow(BatchScan("S"))
        mu = Mu(adapter, "p3")
        mu.open(ctx(paper_db))
        assert adapter._prescore == ["p3"]
        first = mu.next()
        assert first is not None and "p3" in first.scores
        mu.close()

    def test_prescore_refused_above_batch_sort(self, paper_db):
        from repro.execution import Mu

        # Above a BatchSort frontier every predicate is already evaluated;
        # the adapter must refuse (P != φ) and µ's idempotent path applies.
        adapter = BatchToRow(BatchSort(BatchScan("S")))
        mu = Mu(adapter, "p3")
        mu.open(ctx(paper_db))
        assert adapter._prescore == []
        row_sorted, __ = run_rows(paper_db, Sort(SeqScan("S")))
        out = []
        while True:
            scored = mu.next()
            if scored is None:
                break
            out.append((scored.row.rid, scored.row.values, dict(scored.scores)))
        mu.close()
        assert out == row_sorted

    def test_prescored_frontier_bound_stays_f_phi(self, paper_db):
        from repro.execution import Mu

        context = ctx(paper_db)
        adapter = BatchToRow(BatchScan("S"))
        mu = Mu(adapter, "p3")
        mu.open(context)
        assert mu.next() is not None
        # Prescored values ride along as a cache; the adapter's bound must
        # keep describing the segment's P = φ while tuples are pending.
        if adapter._position < len(adapter._pending):
            assert adapter.bound() == pytest.approx(
                context.scoring.max_possible()
            )
        mu.close()

    def test_filter_pushes_condition_into_frontier(self, paper_db):
        condition = BooleanPredicate(col("S.a") > 1, "a>1")
        row_out, row_metrics = run_rows(paper_db, Filter(SeqScan("S"), condition))
        adapter = BatchToRow(BatchScan("S"))
        pushed = Filter(adapter, condition)
        batch_out, batch_metrics = run_rows(paper_db, pushed)
        assert batch_out == row_out
        assert (
            batch_metrics.boolean_evaluations == row_metrics.boolean_evaluations
        )
        assert batch_metrics.boolean_cost_units == pytest.approx(
            row_metrics.boolean_cost_units
        )
        # The σ node's actual-input cardinality means the same thing in
        # both modes: every tuple the condition examined, not survivors.
        row_stats = next(
            s for name, s in row_metrics.operators.items() if "filter" in name
        )
        pushed_stats = next(
            s for name, s in batch_metrics.operators.items() if "filter" in name
        )
        assert pushed_stats.tuples_in == row_stats.tuples_in
        assert pushed_stats.tuples_out == row_stats.tuples_out

    def test_prescore_rejects_unknown_consumer_predicates_gracefully(self, paper_db):
        # A second µ for a different predicate above the same frontier is
        # impossible (single parent), but repeated requests for the same
        # predicate must not duplicate work.
        context = ctx(paper_db)
        adapter = BatchToRow(BatchScan("S"))
        adapter.open(context)
        assert adapter.request_prescore("p3")
        assert adapter.request_prescore("p3")
        assert adapter._prescore == ["p3"]
        adapter.close()


class TestBatchSizeBoundary:
    def test_multi_batch_scan(self):
        catalog = Catalog()
        table = catalog.create_table(
            "big", Schema.of(("k", DataType.INT), ("x", DataType.FLOAT))
        )
        n = BATCH_SIZE + 7
        table.insert_many([(i, (i % 97) / 97.0) for i in range(n)])
        from repro.algebra.predicates import RankingPredicate, ScoringFunction

        scoring = ScoringFunction([RankingPredicate("px", ["big.x"], lambda x: x)])
        context = ExecutionContext(catalog, scoring)
        out = run_plan(BatchToRow(BatchScan("big")), context)
        assert len(out) == n
        assert [s.row.rid[0][1] for s in out] == list(range(n))
