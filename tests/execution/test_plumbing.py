"""Tests for the execution plumbing: lifecycle, run_plan, explain,
ExecutionContext helpers."""

import pytest

from repro.execution import (
    ExecutionContext,
    Limit,
    Mu,
    RankScan,
    SeqScan,
    explain_physical,
    run_plan,
)


class TestLifecycle:
    def test_close_idempotent(self, paper_db):
        context = ExecutionContext(paper_db.catalog, paper_db.F2)
        scan = SeqScan("S")
        scan.open(context)
        scan.close()
        scan.close()

    def test_reopen_restarts(self, paper_db):
        context = ExecutionContext(paper_db.catalog, paper_db.F2)
        scan = SeqScan("S")
        scan.open(context)
        first = scan.next()
        scan.close()
        scan.open(context)
        again = scan.next()
        scan.close()
        assert first.row.rid == again.row.rid

    def test_iterate_helper(self, paper_db):
        context = ExecutionContext(paper_db.catalog, paper_db.F2)
        scan = SeqScan("S")
        scan.open(context)
        assert len(list(scan.iterate())) == 6
        scan.close()

    def test_run_plan_closes_on_error(self, paper_db):
        """run_plan must close the tree even if iteration raises."""
        context = ExecutionContext(paper_db.catalog, paper_db.F2)

        class Exploding(SeqScan):
            def _next(self):
                raise RuntimeError("boom")

        plan = Exploding("S")
        with pytest.raises(RuntimeError, match="boom"):
            run_plan(plan, context)
        # close() was called; a fresh open works.
        plan2 = SeqScan("S")
        run_plan(plan2, context)


class TestRunPlan:
    def test_k_none_drains(self, paper_db):
        context = ExecutionContext(paper_db.catalog, paper_db.F2)
        out = run_plan(RankScan("S", "p3"), context, k=None)
        assert len(out) == 6

    def test_k_zero(self, paper_db):
        context = ExecutionContext(paper_db.catalog, paper_db.F2)
        out = run_plan(RankScan("S", "p3"), context, k=0)
        assert out == []

    def test_k_limits(self, paper_db):
        context = ExecutionContext(paper_db.catalog, paper_db.F2)
        out = run_plan(RankScan("S", "p3"), context, k=2)
        assert len(out) == 2


class TestExplainPhysical:
    def test_tree_rendering(self, paper_db):
        plan = Limit(Mu(RankScan("S", "p3"), "p4"), 1)
        text = explain_physical(plan)
        lines = text.splitlines()
        assert lines[0] == "limit(1)"
        assert lines[1] == "  rank_p4"
        assert lines[2] == "    idxScan_p3(S)"


class TestExecutionContext:
    def test_unique_names(self, paper_db):
        context = ExecutionContext(paper_db.catalog, paper_db.F2)
        assert context.unique_name("op") == "op"
        assert context.unique_name("op") == "op#2"
        assert context.unique_name("op") == "op#3"
        assert context.unique_name("other") == "other"

    def test_evaluate_predicate_charges_cost(self, paper_db):
        context = ExecutionContext(paper_db.catalog, paper_db.F2)
        row = next(paper_db.S.rows())
        paper_db.p4.cost = 7.0
        try:
            score = context.evaluate_predicate("p4", row, paper_db.S.schema)
            assert 0.0 <= score <= 1.0
            assert context.metrics.predicate_cost_units == 7.0
        finally:
            paper_db.p4.cost = 1.0

    def test_compiled_evaluators_cached(self, paper_db):
        context = ExecutionContext(paper_db.catalog, paper_db.F2)
        row = next(paper_db.S.rows())
        context.evaluate_predicate("p4", row, paper_db.S.schema)
        context.evaluate_predicate("p4", row, paper_db.S.schema)
        assert len(context.evaluators) == 1

    def test_evaluator_cache_shared_across_contexts(self, paper_db):
        from repro.execution import EvaluatorCache

        shared = EvaluatorCache(paper_db.F2)
        row = next(paper_db.S.rows())
        first = ExecutionContext(paper_db.catalog, paper_db.F2, evaluators=shared)
        first.evaluate_predicate("p4", row, paper_db.S.schema)
        second = ExecutionContext(paper_db.catalog, paper_db.F2, evaluators=shared)
        second.evaluate_predicate("p4", row, paper_db.S.schema)
        assert len(shared) == 1  # compiled once, reused by both contexts

    def test_evaluator_cache_scoring_mismatch_rejected(self, paper_db):
        from repro.execution import EvaluatorCache

        with pytest.raises(ValueError):
            ExecutionContext(
                paper_db.catalog, paper_db.F2, evaluators=EvaluatorCache(paper_db.F1)
            )

    def test_begin_run_resets_naming_counters(self, paper_db):
        context = ExecutionContext(paper_db.catalog, paper_db.F2)
        assert context.unique_name("rank_p4") == "rank_p4"
        assert context.unique_name("rank_p4") == "rank_p4#2"
        context.begin_run()
        # A reused context starts naming afresh — no `#2` leak (see run_plan).
        assert context.unique_name("rank_p4") == "rank_p4"

    def test_upper_bound_uses_scoring(self, paper_db):
        from repro.algebra.rank_relation import ScoredRow

        context = ExecutionContext(paper_db.catalog, paper_db.F2)
        row = next(paper_db.S.rows())
        scored = ScoredRow(row, {"p3": 0.5})
        assert context.upper_bound(scored) == pytest.approx(2.5)
