"""Plan-to-code compilation (:mod:`repro.execution.codegen`).

The compiled regime's contract is *byte-identical observability*: for every
supported plan shape the fused function must emit the same rows, the same
evaluated scores, the same deterministic rid tie order **and** the same
fully-drained metric totals (``charge_*`` accounting) as the interpreted
batch pipeline it replaces.  These tests pin that contract across
parameter bindings and vector backends, plus the lifecycle around it:
generation-bump invalidation (a stale fused function must never run
against a newer table version, and replaced artifacts must not leak) and
the silent-fallback guarantee (unsupported shapes and compile failures
degrade to the interpreter with no client-visible error).
"""

from __future__ import annotations

import gc
import random
import weakref

import pytest

from repro.algebra.expressions import col
from repro.engine.database import Database
from repro.execution import codegen, vectors
from repro.optimizer.compile import compile_plan
from repro.optimizer.plans import BatchSegmentPlan
from repro.storage import DataType


def build_db(execution="auto", rows=400, seed=3):
    """Two tables, one Expression scorer and one callable scorer — enough
    shape for scan/filter/join/sort pipelines with parameter slots."""
    db = Database(execution=execution)
    db.create_table("T", [("k", DataType.INT), ("x", DataType.FLOAT)])
    db.create_table("S", [("k", DataType.INT), ("y", DataType.FLOAT)])
    rng = random.Random(seed)
    db.insert(
        "T", [(rng.randrange(50), round(rng.random(), 6)) for __ in range(rows)]
    )
    db.insert(
        "S",
        [(rng.randrange(50), round(rng.random(), 6)) for __ in range(rows * 3 // 4)],
    )
    db.register_predicate("pa", ["T.x"], col("T.x") * 0.5 + 0.25)
    db.register_predicate("pb", ["S.y"], lambda y: 1.0 - y)
    db.analyze()
    return db


#: parameterized workload templates (sql, binding generator)
TEMPLATES = [
    (
        "SELECT * FROM T WHERE T.x > ? ORDER BY pa(T.x) LIMIT 7",
        lambda rng: (round(rng.random() * 0.8, 3),),
    ),
    (
        "SELECT * FROM T WHERE T.x > ? AND T.k < ? ORDER BY pa(T.x) LIMIT 10",
        lambda rng: (round(rng.random() * 0.5, 3), rng.randrange(10, 50)),
    ),
    (
        "SELECT * FROM T, S WHERE T.k = S.k AND T.x > ? "
        "ORDER BY pa(T.x) + pb(S.y) LIMIT 9",
        lambda rng: (round(rng.random() * 0.6, 3),),
    ),
]


def observe(db, sql, params):
    """Prepare (warm-cached) + fully drain one binding; returns the entry
    and the complete observable sequence plus the metric totals."""
    entry, __ = db.planner.prepare(sql, strategy="traditional", params=params)
    result = db.execute(
        entry.executable, entry.scoring, k=entry.k, evaluators=entry.evaluators
    )
    rows = [
        (tuple(sr.row.values), sr.row.rid, dict(sr.scores))
        for sr in result.scored_rows
    ]
    return entry, rows, result.metrics.summary()


def _backends():
    modes = ["python"]
    if vectors.numpy_available():
        modes.append("numpy")
    return modes


@pytest.fixture
def vector_backend(request):
    before = vectors.backend()
    vectors.set_backend(request.param)
    yield request.param
    vectors.set_backend(before)


# ----------------------------------------------------------------------
# parity: compiled == interpreted, byte for byte
# ----------------------------------------------------------------------


@pytest.mark.parametrize("vector_backend", _backends(), indirect=True)
@pytest.mark.parametrize("template", range(len(TEMPLATES)))
class TestCompiledParity:
    def test_twenty_bindings_identical_rows_scores_and_metrics(
        self, template, vector_backend
    ):
        """≥20 bindings per template: identical rows, scores, rid tie order
        and fully-drained charge totals in both regimes."""
        sql, bind = TEMPLATES[template]
        interpreted = build_db("batch")
        compiled = build_db("compiled")
        rng = random.Random(100 + template)
        compiled_entry = None
        for __ in range(20):
            params = bind(rng)
            __, want_rows, want_metrics = observe(interpreted, sql, params)
            compiled_entry, got_rows, got_metrics = observe(compiled, sql, params)
            assert got_rows == want_rows, params
            assert got_metrics == want_metrics, params
        # The sweep must exercise the compiled path, not silently fall back.
        assert compiled_entry.compiled_segments >= 1
        assert codegen.compiled_segment_count(compiled_entry.executable) >= 1

    def test_warm_bindings_reuse_one_artifact(self, template, vector_backend):
        """Parameter slots are read at call time: rebinding never
        recompiles (one artifact serves every binding of the template)."""
        sql, bind = TEMPLATES[template]
        db = build_db("compiled")
        rng = random.Random(7)
        entry, __, __ = observe(db, sql, bind(rng))
        artifacts = [
            node.compiled
            for node in entry.executable.walk()
            if isinstance(node, BatchSegmentPlan) and node.compiled is not None
        ]
        assert artifacts
        for __ in range(5):
            again, __, __ = observe(db, sql, bind(rng))
            assert again is entry
            assert [
                node.compiled
                for node in again.executable.walk()
                if isinstance(node, BatchSegmentPlan)
                and node.compiled is not None
            ] == artifacts
        assert db.planner.metrics.plans_compiled == 1


# ----------------------------------------------------------------------
# fallback: unsupported shapes and compile failures are invisible
# ----------------------------------------------------------------------


class TestFallback:
    def test_rank_aware_plans_fall_back_without_error(self):
        """µ-frontier plans are not compilable; under forced compiled
        execution they run interpreted and return the row-mode answer."""
        sql = "SELECT * FROM T WHERE T.k > 5 ORDER BY pa(T.x) LIMIT 8"
        row_db = build_db("row")
        compiled_db = build_db("compiled")
        want = row_db.query(sql)
        got = compiled_db.query(sql)
        assert got.rows == want.rows
        assert got.scores == want.scores
        entry, __ = compiled_db.planner.prepare(sql)
        for node in entry.executable.walk():
            if isinstance(node, BatchSegmentPlan):
                assert node.compiled is None

    def test_compile_failure_degrades_to_interpreted_batch(self, monkeypatch):
        """An emitter crash at prepare time must leave the interpreted
        batch pipeline in place — same results, no client-visible error."""
        sql, bind = TEMPLATES[0]
        params = bind(random.Random(1))
        __, want_rows, want_metrics = observe(build_db("batch"), sql, params)

        def boom(*args, **kwargs):
            raise RuntimeError("injected emitter failure")

        monkeypatch.setattr(codegen, "compile_segment", boom)
        db = build_db("compiled")
        entry, got_rows, got_metrics = observe(db, sql, params)
        assert entry.compiled_segments == 0
        assert got_rows == want_rows
        assert got_metrics == want_metrics

    def test_supports_rejects_rank_carrying_segments(self):
        """The pre-check itself: every lowered segment of a rank-aware plan
        is refused (sort-topped P = φ pipelines only).  execution="batch"
        prices batch lowering even when REPRO_BATCH_EXECUTION=false (the
        CI row-mode sweep), so the plan reliably has wrappers to refuse."""
        db = build_db("batch")
        sql = "SELECT * FROM T WHERE T.k > 5 ORDER BY pa(T.x) LIMIT 8"
        entry, __ = db.planner.prepare(sql)
        wrappers = [
            node
            for node in entry.executable.walk()
            if isinstance(node, BatchSegmentPlan)
        ]
        assert wrappers
        for node in wrappers:
            assert not codegen.supports(node.inner, db.catalog, entry.scoring)


# ----------------------------------------------------------------------
# invalidation: generation bumps orphan compiled artifacts
# ----------------------------------------------------------------------


class TestInvalidation:
    def test_insert_invalidation_recompiles_against_new_version(self):
        """A stale fused function must never serve rows from a superseded
        table version: after DML the template recompiles and the answer
        reflects the new data."""
        sql = "SELECT * FROM T ORDER BY pa(T.x) LIMIT 3"
        db = build_db("compiled")
        entry, before_rows, __ = observe(db, sql, None)
        old_artifacts = {
            id(node.compiled)
            for node in entry.executable.walk()
            if isinstance(node, BatchSegmentPlan) and node.compiled is not None
        }
        assert old_artifacts
        # Two rows that beat every existing score under pa = x/2 + 0.25.
        db.insert("T", [(1, 9.0), (2, 8.0)])
        entry2, after_rows, __ = observe(db, sql, None)
        assert entry2 is not entry
        new_artifacts = {
            id(node.compiled)
            for node in entry2.executable.walk()
            if isinstance(node, BatchSegmentPlan) and node.compiled is not None
        }
        assert new_artifacts and not (new_artifacts & old_artifacts)
        assert after_rows != before_rows
        assert [r[0][1] for r in after_rows[:2]] == [9.0, 8.0]
        # The recompiled answer still matches the interpreter on the same data.
        reference = build_db("batch")
        reference.insert("T", [(1, 9.0), (2, 8.0)])
        __, want_rows, __ = observe(reference, sql, None)
        assert after_rows == want_rows

    def test_ddl_invalidation_recompiles(self):
        sql = "SELECT * FROM T ORDER BY pa(T.x) LIMIT 5"
        db = build_db("compiled")
        entry, __, __ = observe(db, sql, None)
        generation = entry.generation
        db.create_column_index("T", "k")
        entry2, __, __ = observe(db, sql, None)
        assert entry2.generation > generation
        assert entry2.compiled_segments >= 1

    def test_replaced_artifacts_are_collected_not_leaked(self):
        """Invalidation + re-prepare must let the old artifact (and its
        generated function) be garbage collected."""
        sql = "SELECT * FROM T ORDER BY pa(T.x) LIMIT 5"
        db = build_db("compiled")
        entry, __, __ = observe(db, sql, None)
        old = [
            node.compiled
            for node in entry.executable.walk()
            if isinstance(node, BatchSegmentPlan) and node.compiled is not None
        ]
        assert old
        refs = [weakref.ref(a) for a in old] + [
            weakref.ref(a.function) for a in old
        ]
        db.insert("T", [(9, 0.5)])
        observe(db, sql, None)  # re-prepare: evicts + replaces the stale entry
        del entry, old
        gc.collect()
        assert all(ref() is None for ref in refs)

    def test_recompile_replaces_artifact_in_place(self):
        """compile_plan on an already-stamped plan rebuilds every artifact
        (fresh objects, same count) instead of appending or keeping."""
        sql = "SELECT * FROM T ORDER BY pa(T.x) LIMIT 5"
        db = build_db("compiled")
        entry, __, __ = observe(db, sql, None)
        first = {
            id(node.compiled)
            for node in entry.executable.walk()
            if isinstance(node, BatchSegmentPlan) and node.compiled is not None
        }
        count, seconds = compile_plan(
            entry.executable, db.catalog, entry.scoring, mode="always"
        )
        second = {
            id(node.compiled)
            for node in entry.executable.walk()
            if isinstance(node, BatchSegmentPlan) and node.compiled is not None
        }
        assert count == len(first) == len(second)
        assert seconds > 0.0
        assert not (first & second)


# ----------------------------------------------------------------------
# observability: explain, metrics, sessions, server
# ----------------------------------------------------------------------


class TestObservability:
    def test_explain_footer_prices_all_three_regimes(self):
        db = build_db("compiled")
        sql = "SELECT * FROM T WHERE T.x > 0.2 ORDER BY pa(T.x) LIMIT 7"
        text = db.explain(sql, strategy="traditional")
        assert "row cost=" in text
        assert "batch cost=" in text
        assert "vs compiled cost=" in text
        assert "-> compiled" in text

    def test_explain_analyze_reports_the_fused_node_time(self):
        db = build_db("compiled")
        sql = "SELECT * FROM T WHERE T.x > 0.2 ORDER BY pa(T.x) LIMIT 7"
        text = db.explain_analyze(sql, strategy="traditional")
        fused = [line for line in text.splitlines() if "compiled[" in line]
        assert fused, text
        assert any("time=" in line and "ms" in line for line in fused)

    def test_planner_metrics_count_compilation(self):
        db = build_db("compiled")
        observe(db, TEMPLATES[0][0], TEMPLATES[0][1](random.Random(2)))
        summary = db.planner.metrics.summary()
        assert summary["plans_compiled"] >= 1
        assert summary["compile_seconds"] > 0.0

    def test_session_splits_compiled_vs_interpreted(self):
        db = build_db("compiled")
        session = db.session(strategy="traditional")
        session.execute("SELECT * FROM T WHERE T.x > 0.2 ORDER BY pa(T.x) LIMIT 7")
        interpreted = db.session()  # rank-aware plans stay on the interpreter
        interpreted.execute("SELECT * FROM T WHERE T.k > 5 ORDER BY pa(T.x) LIMIT 8")
        assert session.summary()["compiled_executions"] == 1
        assert session.summary()["interpreted_executions"] == 0
        assert interpreted.summary()["compiled_executions"] == 0
        assert interpreted.summary()["interpreted_executions"] == 1

    def test_server_summary_reports_compilation_counters(self):
        db = build_db("compiled")
        with db.serve(workers=2) as server:
            with server.session(strategy="traditional") as client:
                client.execute(
                    "SELECT * FROM T WHERE T.x > 0.2 ORDER BY pa(T.x) LIMIT 7"
                )
                summary = server.summary()
        assert summary["sessions_compiled_executions"] == 1
        assert summary["planner_plans_compiled"] >= 1
        assert summary["planner_compile_seconds"] > 0.0
