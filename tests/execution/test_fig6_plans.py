"""Exact reproduction of Figure 6 and Example 3/4: the three equivalent
plans for ``SELECT * FROM S ORDER BY p3+p4+p5 LIMIT 1``.

Checks the answer, the per-operator tuple flow (input/output counts → the
paper's selectivities), the number of tuples scanned, and the predicate
evaluation counts (Example 4's cost analysis: plan (b) costs 3C4 + 2C5,
plan (c) costs 3C4 + 5C5, plan (a) costs 6(C3 + C4 + C5)).
"""

import pytest

from repro.execution import (
    ExecutionContext,
    Limit,
    Mu,
    RankScan,
    SeqScan,
    Sort,
    run_plan,
)


def run_top1(paper_db, plan):
    context = ExecutionContext(paper_db.catalog, paper_db.F2)
    out = run_plan(plan, context, k=1)
    return out, context


def op_stats(context, name):
    return context.metrics.operators[name]


class TestPlanA:
    """Figure 6(a): the traditional materialize-then-sort plan."""

    def test_answer(self, paper_db):
        out, context = run_top1(paper_db, Limit(Sort(SeqScan("S")), 1))
        assert len(out) == 1
        assert out[0].row.values == (1, 1)  # s2
        assert context.upper_bound(out[0]) == pytest.approx(2.55)

    def test_scans_whole_table(self, paper_db):
        __, context = run_top1(paper_db, Limit(Sort(SeqScan("S")), 1))
        assert context.metrics.tuples_scanned == 6

    def test_evaluates_all_predicates_on_all_tuples(self, paper_db):
        """Example 4: cost 6(C3 + C4 + C5) — 18 evaluations."""
        __, context = run_top1(paper_db, Limit(Sort(SeqScan("S")), 1))
        assert context.metrics.predicate_evaluations == 18


class TestPlanB:
    """Figure 6(b): idxScan_p3 → µ_p4 → µ_p5."""

    def make(self):
        return Mu(Mu(RankScan("S", "p3"), "p4"), "p5")

    def test_answer(self, paper_db):
        out, context = run_top1(paper_db, self.make())
        assert out[0].row.values == (1, 1)
        assert context.upper_bound(out[0]) == pytest.approx(2.55)

    def test_scans_three_tuples(self, paper_db):
        __, context = run_top1(paper_db, self.make())
        assert context.metrics.tuples_scanned == 3

    def test_operator_flow_matches_figure(self, paper_db):
        """idxScan outputs 3; µ_p4 consumes 3, outputs 2; µ_p5 2 → 1."""
        __, context = run_top1(paper_db, self.make())
        scan = op_stats(context, "idxScan_p3(S)")
        mu4 = op_stats(context, "rank_p4")
        mu5 = op_stats(context, "rank_p5")
        assert scan.tuples_out == 3
        assert (mu4.tuples_in, mu4.tuples_out) == (3, 2)
        assert (mu5.tuples_in, mu5.tuples_out) == (2, 1)

    def test_selectivities_match_paper(self, paper_db):
        """§4.1: selectivities of µ_p4, µ_p5, idxScan are 2/3, 1/2, 3/6."""
        __, context = run_top1(paper_db, self.make())
        assert op_stats(context, "rank_p4").selectivity == pytest.approx(2 / 3)
        assert op_stats(context, "rank_p5").selectivity == pytest.approx(1 / 2)
        assert op_stats(context, "idxScan_p3(S)").tuples_out / 6 == pytest.approx(3 / 6)

    def test_predicate_cost_3c4_plus_2c5(self, paper_db):
        __, context = run_top1(paper_db, self.make())
        # 3 evaluations of p4 and 2 of p5 (p3 comes free from the index).
        assert context.metrics.predicate_evaluations == 5

    def test_incremental_second_result(self, paper_db):
        """Drawing one more answer continues the pipeline (s1, 2.4)."""
        context = ExecutionContext(paper_db.catalog, paper_db.F2)
        out = run_plan(self.make(), context, k=2)
        assert [s.row.values for s in out] == [(1, 1), (4, 3)]
        assert context.upper_bound(out[1]) == pytest.approx(2.4)


class TestPlanC:
    """Figure 6(c): idxScan_p3 → µ_p5 → µ_p4 (reversed µ order)."""

    def make(self):
        return Mu(Mu(RankScan("S", "p3"), "p5"), "p4")

    def test_answer_same_as_plan_b(self, paper_db):
        out, context = run_top1(paper_db, self.make())
        assert out[0].row.values == (1, 1)
        assert context.upper_bound(out[0]) == pytest.approx(2.55)

    def test_scans_five_tuples(self, paper_db):
        __, context = run_top1(paper_db, self.make())
        assert context.metrics.tuples_scanned == 5

    def test_operator_flow_matches_figure(self, paper_db):
        """idxScan outputs 5; µ_p5 consumes 5, outputs 3; µ_p4 3 → 1."""
        __, context = run_top1(paper_db, self.make())
        mu5 = op_stats(context, "rank_p5")
        mu4 = op_stats(context, "rank_p4")
        assert (mu5.tuples_in, mu5.tuples_out) == (5, 3)
        assert (mu4.tuples_in, mu4.tuples_out) == (3, 1)

    def test_selectivities_match_paper(self, paper_db):
        """§4.1: selectivities 1/3 (µ_p4), 3/5 (µ_p5), 5/6 (idxScan)."""
        __, context = run_top1(paper_db, self.make())
        assert op_stats(context, "rank_p4").selectivity == pytest.approx(1 / 3)
        assert op_stats(context, "rank_p5").selectivity == pytest.approx(3 / 5)
        assert op_stats(context, "idxScan_p3(S)").tuples_out / 6 == pytest.approx(5 / 6)

    def test_predicate_cost_3c4_plus_5c5(self, paper_db):
        __, context = run_top1(paper_db, self.make())
        assert context.metrics.predicate_evaluations == 8

    def test_mu_p5_intermediate_order(self, paper_db):
        """The full F2_{p3,p5} ranking produced by µ_p5 over idxScan_p3.

        Figure 6(c)'s middle box lists the tuples *processed during top-1
        retrieval* (s2, s1, s4, s3, s5); the complete drained order also
        ranks s6 (2.15) above s5 (1.9), checked here.
        """
        context = ExecutionContext(paper_db.catalog, paper_db.F2)
        plan = Mu(RankScan("S", "p3"), "p5")
        out = run_plan(plan, context, k=6)
        got = [(s.row.values, round(context.upper_bound(s), 4)) for s in out]
        assert got == [
            ((1, 1), 2.7),
            ((4, 3), 2.6),
            ((4, 2), 2.35),
            ((1, 2), 2.25),
            ((2, 3), 2.15),
            ((5, 1), 1.9),
        ]
        # The prefix the figure prints (first four) matches exactly.
        assert [v for v, __ in got[:4]] == [(1, 1), (4, 3), (4, 2), (1, 2)]


class TestPlansAgree:
    def test_all_plans_same_full_ranking(self, paper_db):
        """All three plans produce the identical complete ranking."""
        results = []
        for plan in (
            Limit(Sort(SeqScan("S")), 6),
            Mu(Mu(RankScan("S", "p3"), "p4"), "p5"),
            Mu(Mu(RankScan("S", "p3"), "p5"), "p4"),
        ):
            context = ExecutionContext(paper_db.catalog, paper_db.F2)
            out = run_plan(plan, context, k=6)
            results.append([(s.row.values, round(context.upper_bound(s), 6)) for s in out])
        assert results[0] == results[1] == results[2]
        # Figure 6(a) full ranking: s2, s1, s4, s5, s3, s6.
        assert [values for values, __ in results[0]] == [
            (1, 1), (4, 3), (4, 2), (5, 1), (1, 2), (2, 3)
        ]
