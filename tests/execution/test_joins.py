"""Tests for join operators: HRJN, NRJN and the classical baselines."""

import random

import pytest

from repro.algebra.expressions import col
from repro.algebra.predicates import BooleanPredicate, RankingPredicate, ScoringFunction
from repro.execution import (
    ExecutionContext,
    HRJN,
    HashJoin,
    Limit,
    Mu,
    NRJN,
    NestedLoopJoin,
    RankScan,
    SeqScan,
    Sort,
    SortMergeJoin,
    run_plan,
)
from repro.storage import Catalog, DataType, RankIndex, Schema

from tests.conftest import assert_descending, brute_force_topk


def join_condition():
    return BooleanPredicate(col("R.a").eq(col("S.a")), "R.a=S.a")


def scoring_join(paper_db):
    """F over one R predicate and one S predicate with qualified columns."""
    from tests.conftest import RR_SCORES, S_SCORES

    q1 = RankingPredicate("q1", ["R.a", "R.b"], lambda a, b: RR_SCORES[(a, b)][0])
    q3 = RankingPredicate("q3", ["S.c", "S.a"], lambda c, a: S_SCORES[(a, c)][0])
    return ScoringFunction([q1, q3])


class TestHRJNPaperData:
    def test_joins_matching_keys(self, paper_db):
        scoring = scoring_join(paper_db)
        context = ExecutionContext(paper_db.catalog, scoring)
        plan = HRJN(Mu(SeqScan("R"), "q1"), Mu(SeqScan("S"), "q3"), "R.a", "S.a")
        out = run_plan(plan, context)
        # Matches: r1-(s2,s3) on a=1, r2-s6 on a=2.
        assert len(out) == 3
        assert_descending([context.upper_bound(s) for s in out])

    def test_scores_merge_from_both_sides(self, paper_db):
        scoring = scoring_join(paper_db)
        context = ExecutionContext(paper_db.catalog, scoring)
        plan = HRJN(Mu(SeqScan("R"), "q1"), Mu(SeqScan("S"), "q3"), "R.a", "S.a")
        out = run_plan(plan, context)
        top = out[0]
        assert set(top.scores) == {"q1", "q3"}
        # r1 ⋈ s2: q1 = 0.9, q3 = 0.9.
        assert context.upper_bound(top) == pytest.approx(1.8)

    def test_top1_does_not_drain_inputs(self, paper_db):
        """Pipelined behaviour: top-1 stops early on ranked inputs."""
        scoring = scoring_join(paper_db)
        context = ExecutionContext(paper_db.catalog, scoring)
        plan = Limit(
            HRJN(Mu(SeqScan("R"), "q1"), RankScan("S", "p3"), "R.a", "S.a"), 1
        )
        # RankScan provides q3? No — p3; build with µ instead for correct F.
        # (This test only checks early termination, so any ranked S input works.)
        out = run_plan(plan, context, k=1)
        assert len(out) == 1


class TestNRJNPaperData:
    def test_same_result_as_hrjn(self, paper_db):
        scoring = scoring_join(paper_db)
        results = []
        for factory in (
            lambda: HRJN(Mu(SeqScan("R"), "q1"), Mu(SeqScan("S"), "q3"), "R.a", "S.a"),
            lambda: NRJN(Mu(SeqScan("R"), "q1"), Mu(SeqScan("S"), "q3"), join_condition()),
        ):
            context = ExecutionContext(paper_db.catalog, scoring)
            out = run_plan(factory(), context)
            results.append(
                sorted(
                    (s.row.values, round(context.upper_bound(s), 6)) for s in out
                )
            )
        assert results[0] == results[1]

    def test_supports_non_equi_condition(self, paper_db):
        scoring = scoring_join(paper_db)
        context = ExecutionContext(paper_db.catalog, scoring)
        condition = BooleanPredicate(col("R.a") < col("S.a"), "R.a<S.a")
        out = run_plan(
            NRJN(Mu(SeqScan("R"), "q1"), Mu(SeqScan("S"), "q3"), condition), context
        )
        assert all(s.row[0] < s.row[2] for s in out)
        assert_descending([context.upper_bound(s) for s in out])

    def test_charges_pairs_and_booleans(self, paper_db):
        scoring = scoring_join(paper_db)
        context = ExecutionContext(paper_db.catalog, scoring)
        run_plan(
            NRJN(Mu(SeqScan("R"), "q1"), Mu(SeqScan("S"), "q3"), join_condition()),
            context,
        )
        assert context.metrics.join_pairs_examined == 18  # 3 × 6
        assert context.metrics.boolean_evaluations == 18


class TestClassicalJoins:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: SortMergeJoin(SeqScan("R"), SeqScan("S"), "R.a", "S.a"),
            lambda: HashJoin(SeqScan("R"), SeqScan("S"), "R.a", "S.a"),
            lambda: NestedLoopJoin(SeqScan("R"), SeqScan("S"), join_condition()),
        ],
        ids=["smj", "hash", "nlj"],
    )
    def test_same_membership(self, paper_db, factory):
        scoring = scoring_join(paper_db)
        context = ExecutionContext(paper_db.catalog, scoring)
        out = run_plan(factory(), context)
        values = sorted(s.row.values for s in out)
        assert values == [(1, 2, 1, 1), (1, 2, 1, 2), (2, 3, 2, 3)]

    def test_smj_emits_duplicate_key_cross_products(self):
        catalog = Catalog()
        left = catalog.create_table("L", Schema.of(("k", DataType.INT)))
        right = catalog.create_table("Rt", Schema.of(("k", DataType.INT)))
        left.insert_many([(1,), (1,)])
        right.insert_many([(1,), (1,), (1,)])
        predicate = RankingPredicate("p", ["L.k"], lambda k: 1.0)
        scoring = ScoringFunction([predicate])
        context = ExecutionContext(catalog, scoring)
        out = run_plan(SortMergeJoin(SeqScan("L"), SeqScan("Rt"), "L.k", "Rt.k"), context)
        assert len(out) == 6

    def test_nlj_cartesian_with_no_condition(self, paper_db):
        scoring = scoring_join(paper_db)
        context = ExecutionContext(paper_db.catalog, scoring)
        out = run_plan(NestedLoopJoin(SeqScan("R"), SeqScan("S"), None), context)
        assert len(out) == 18

    def test_sort_over_smj_equals_rank_pipeline(self, paper_db):
        """Traditional plan and rank-aware plan agree on the final ranking."""
        scoring = scoring_join(paper_db)
        traditional_context = ExecutionContext(paper_db.catalog, scoring)
        traditional = run_plan(
            Sort(SortMergeJoin(SeqScan("R"), SeqScan("S"), "R.a", "S.a")),
            traditional_context,
        )
        ranked_context = ExecutionContext(paper_db.catalog, scoring)
        ranked = run_plan(
            HRJN(Mu(SeqScan("R"), "q1"), Mu(SeqScan("S"), "q3"), "R.a", "S.a"),
            ranked_context,
        )
        a = [round(traditional_context.upper_bound(s), 9) for s in traditional]
        b = [round(ranked_context.upper_bound(s), 9) for s in ranked]
        assert a == b


class TestRandomizedAgainstOracle:
    def make_random_db(self, rng, n=60, distinct=8):
        catalog = Catalog()
        left = catalog.create_table(
            "L", Schema.of(("k", DataType.INT), ("x", DataType.FLOAT))
        )
        right = catalog.create_table(
            "Rr", Schema.of(("k", DataType.INT), ("y", DataType.FLOAT))
        )
        for __ in range(n):
            left.insert([rng.randrange(distinct), rng.random()])
            right.insert([rng.randrange(distinct), rng.random()])
        pl = RankingPredicate("pl", ["L.x"], lambda x: x)
        pr = RankingPredicate("pr", ["Rr.y"], lambda y: y)
        scoring = ScoringFunction([pl, pr])
        pl_fn = pl.compile(left.schema)
        left.attach_index(RankIndex("L_pl", left.schema, "pl", pl_fn))
        pr_fn = pr.compile(right.schema)
        right.attach_index(RankIndex("R_pr", right.schema, "pr", pr_fn))
        return catalog, scoring

    def expected_topk(self, catalog, k):
        left_rows = [r.values for r in catalog.table("L").rows()]
        right_rows = [r.values for r in catalog.table("Rr").rows()]
        return brute_force_topk(
            [left_rows, right_rows],
            [None, None],
            lambda combo: combo[0][0] == combo[1][0],
            lambda combo: combo[0][1] + combo[1][1],
            k,
        )

    @pytest.mark.parametrize("k", [1, 5, 25])
    def test_hrjn_topk_matches_oracle(self, rng, k):
        catalog, scoring = self.make_random_db(rng)
        expected = self.expected_topk(catalog, k)
        context = ExecutionContext(catalog, scoring)
        plan = HRJN(RankScan("L", "pl"), RankScan("Rr", "pr"), "L.k", "Rr.k")
        out = run_plan(plan, context, k=k)
        got = [round(context.upper_bound(s), 9) for s in out]
        assert got == [round(v, 9) for v in expected]

    def test_nrjn_topk_matches_oracle(self, rng):
        catalog, scoring = self.make_random_db(rng, n=40)
        expected = self.expected_topk(catalog, 10)
        context = ExecutionContext(catalog, scoring)
        condition = BooleanPredicate(col("L.k").eq(col("Rr.k")), "eq")
        plan = NRJN(RankScan("L", "pl"), RankScan("Rr", "pr"), condition)
        out = run_plan(plan, context, k=10)
        got = [round(context.upper_bound(s), 9) for s in out]
        assert got == [round(v, 9) for v in expected]

    def test_hrjn_consumes_less_than_full_drain_for_small_k(self, rng):
        catalog, scoring = self.make_random_db(rng, n=300, distinct=30)
        context = ExecutionContext(catalog, scoring)
        plan = HRJN(RankScan("L", "pl"), RankScan("Rr", "pr"), "L.k", "Rr.k")
        run_plan(plan, context, k=1)
        assert context.metrics.tuples_scanned < 600
