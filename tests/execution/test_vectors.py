"""The vector-kernel backends: python fallback always, NumPy when gated.

Parity is the contract: for every expression/predicate in the vectorizable
subset, the NumPy kernels must produce bit-identical values to the
compiled row evaluators; anything outside the subset must fall back
(return None) rather than diverge.
"""

from __future__ import annotations

import pytest

from repro.algebra.expressions import col, lit
from repro.algebra.predicates import BooleanPredicate, RankingPredicate
from repro.execution import vectors
from repro.execution.batch import Batch
from repro.storage.schema import DataType, Schema

numpy_only = pytest.mark.skipif(
    not vectors.numpy_available(), reason="numpy not installed"
)


@pytest.fixture
def schema():
    return Schema.of(("k", DataType.INT), ("x", DataType.FLOAT)).with_table("T")


def make_batch(schema, rows):
    rids = [(("T", i),) for i in range(len(rows))]
    return Batch(schema, rids, values=[tuple(r) for r in rows])


@pytest.fixture(autouse=True)
def restore_backend():
    before = vectors.backend()
    yield
    vectors.set_backend(before)


class TestBackendGate:
    def test_default_is_python(self):
        assert vectors.backend() in vectors.BACKENDS

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            vectors.set_backend("cuda")

    def test_python_backend_compiles_no_kernels(self, schema):
        vectors.set_backend("python")
        condition = BooleanPredicate(col("T.k") > 1, "k>1")
        assert vectors.boolean_kernel(condition, schema) is None
        predicate = RankingPredicate("pa", ["T.x"], lambda x: x)
        assert vectors.ranking_kernel(predicate, schema) is None

    @numpy_only
    def test_numpy_backend_toggles(self):
        vectors.set_backend("numpy")
        assert vectors.backend() == "numpy"
        vectors.set_backend("python")
        assert vectors.backend() == "python"

    def test_env_gate_rejects_unknown_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_VECTOR_BACKEND", "nunpy")
        with pytest.raises(ValueError):
            vectors._configure_from_env()

    def test_env_gate_accepts_python(self, monkeypatch):
        monkeypatch.setenv("REPRO_VECTOR_BACKEND", "python")
        vectors._configure_from_env()
        assert vectors.backend() == "python"


@numpy_only
class TestBooleanKernelParity:
    CASES = [
        BooleanPredicate(col("T.k") > 1, "gt"),
        BooleanPredicate(col("T.k") >= 2, "ge"),
        BooleanPredicate(col("T.k").eq(3), "eq"),
        BooleanPredicate(col("T.k").ne(3), "ne"),
        BooleanPredicate(col("T.x") * 2 + 1 < col("T.k"), "arith"),
        BooleanPredicate((col("T.k") > 0).and_(col("T.x") < lit(0.5)), "and"),
        BooleanPredicate((col("T.k") > 3).or_(col("T.x") >= lit(0.9)), "or"),
        BooleanPredicate((col("T.k") > 1).not_(), "not"),
        BooleanPredicate(col("T.k"), "bare-truthiness"),
    ]

    @pytest.mark.parametrize("condition", CASES, ids=lambda c: c.name)
    def test_matches_row_evaluator(self, schema, condition):
        rows = [
            (0, 0.1), (1, 0.9), (2, 0.5), (3, 0.4), (4, 0.95), (2, None), (None, 0.3),
        ]
        batch = make_batch(schema, rows)
        evaluate = condition.compile(schema)
        expected = [i for i, t in enumerate(batch.tuples()) if evaluate(t)]
        vectors.set_backend("numpy")
        kernel = vectors.boolean_kernel(condition, schema)
        assert kernel is not None, condition.name
        assert kernel.keep_indices(batch) == expected
        # the shared entry point agrees too
        assert vectors.keep_indices(kernel, evaluate, batch) == expected

    def test_boolean_op_with_literal_operand_does_not_crash(self, schema):
        # Regression: `a > 1 OR 0` — a numeric Literal inside AND/OR used
        # to reach numpy's bitwise ufuncs as a raw float and raise.
        rows = [(0, 0.1), (2, 0.5), (3, 0.4)]
        batch = make_batch(schema, rows)
        vectors.set_backend("numpy")
        for condition in (
            BooleanPredicate((col("T.k") > 1).or_(lit(0)), "or-lit"),
            BooleanPredicate((col("T.k") > 1).and_(lit(5)), "and-lit"),
            BooleanPredicate(lit(0).not_(), "not-lit"),
        ):
            evaluate = condition.compile(schema)
            expected = [i for i, t in enumerate(batch.tuples()) if evaluate(t)]
            got = vectors.keep_indices(
                vectors.boolean_kernel(condition, schema), evaluate, batch
            )
            assert got == expected, condition.name

    def test_huge_integers_fall_back_to_exact_row_semantics(self, schema):
        # Regression: float64 merges integers beyond 2^53; the kernel must
        # refuse the batch so the row evaluator keeps exact comparisons.
        big = 2**53
        rows = [(big, 0.1), (big + 1, 0.2)]
        batch = make_batch(schema, rows)
        condition = BooleanPredicate(col("T.k").eq(big + 1), "eq-big")
        vectors.set_backend("numpy")
        kernel = vectors.boolean_kernel(condition, schema)
        assert kernel is not None
        evaluate = condition.compile(schema)
        assert kernel.keep_indices(batch) is None  # refused, not rounded
        assert vectors.keep_indices(kernel, evaluate, batch) == [1]

    def test_division_by_zero_falls_back(self, schema):
        condition = BooleanPredicate(lit(1.0) / col("T.x") > 2, "div")
        vectors.set_backend("numpy")
        kernel = vectors.boolean_kernel(condition, schema)
        assert kernel is not None
        batch = make_batch(schema, [(1, 0.1), (2, 0.0)])
        assert kernel.keep_indices(batch) is None  # caller loops instead

    def test_text_columns_fall_back(self):
        schema = Schema.of(("name", DataType.TEXT), ("x", DataType.FLOAT)).with_table("T")
        condition = BooleanPredicate(col("T.x") > 0.5, "x>0.5")
        vectors.set_backend("numpy")
        kernel = vectors.boolean_kernel(condition, schema)
        assert kernel is not None
        batch = make_batch(schema, [("a", 0.1), ("b", 0.9)])
        # the referenced column is numeric: vectorizes fine
        assert kernel.keep_indices(batch) == [1]
        # a condition over the text column cannot compile at all
        eq = BooleanPredicate(col("T.name").eq("a"), "name=a")
        assert vectors.boolean_kernel(eq, schema) is None


@numpy_only
class TestRankingKernelParity:
    def scores_both_ways(self, schema, predicate, rows):
        batch = make_batch(schema, rows)
        evaluate = predicate.compile(schema)
        expected = [evaluate(t) for t in batch.tuples()]
        vectors.set_backend("numpy")
        kernel = vectors.ranking_kernel(predicate, schema)
        assert kernel is not None
        got = kernel.scores(batch)
        return expected, got

    def test_expression_scorer(self, schema):
        predicate = RankingPredicate("pe", ["T.x"], lit(1.0) - col("T.x") * 0.5)
        expected, got = self.scores_both_ways(
            schema, predicate, [(0, 0.2), (1, 0.8), (2, 1.9), (3, None)]
        )
        assert got == expected  # clamping + NULL -> 0 replicated exactly

    def test_vectorizable_callable_scorer(self, schema):
        predicate = RankingPredicate("pc", ["T.x"], lambda x: x)
        expected, got = self.scores_both_ways(
            schema, predicate, [(0, 0.25), (1, 0.75), (2, 0.5)]
        )
        assert got == expected

    def test_non_vectorizable_callable_falls_back(self, schema):
        predicate = RankingPredicate("pf", ["T.x"], lambda x: max(0.0, x - 0.1))
        batch = make_batch(schema, [(0, 0.25), (1, 0.75)])
        vectors.set_backend("numpy")
        kernel = vectors.ranking_kernel(predicate, schema)
        assert kernel is not None
        # max() raises on arrays -> per-batch fallback
        assert kernel.scores(batch) is None
        evaluate = predicate.compile(schema)
        assert vectors.score_vector(kernel, evaluate, batch) == [
            evaluate(t) for t in batch.tuples()
        ]

    def test_spin_loops_disable_vectorization(self, schema):
        predicate = RankingPredicate("ps", ["T.x"], lambda x: x, spin_loops=5)
        vectors.set_backend("numpy")
        assert vectors.ranking_kernel(predicate, schema) is None

    def test_callable_scorer_with_nulls_falls_back(self, schema):
        # Regression: a plain callable sees Python None in row mode (it
        # may branch on it or raise); feeding it NaN instead silently
        # changes the outcome, so NULL batches must force the fallback.
        predicate = RankingPredicate(
            "pn", ["T.x"], lambda v: 0.5 if v is None else v
        )
        batch = make_batch(schema, [(0, 0.25), (1, None)])
        vectors.set_backend("numpy")
        kernel = vectors.ranking_kernel(predicate, schema)
        assert kernel is not None
        assert kernel.scores(batch) is None
        evaluate = predicate.compile(schema)
        assert vectors.score_vector(kernel, evaluate, batch) == [0.25, 0.5]

    def test_numeric_strings_never_coerced(self):
        # Regression: np.asarray(['10','20'], float) succeeds — but the
        # row evaluator raises on '10' > 15, and the kernel must defer to
        # it rather than invent a numeric interpretation.
        schema = Schema.of(("s", DataType.TEXT), ("x", DataType.FLOAT)).with_table("T")
        condition = BooleanPredicate(col("T.s") > 15, "s>15")
        vectors.set_backend("numpy")
        kernel = vectors.boolean_kernel(condition, schema)
        assert kernel is not None
        batch = make_batch(schema, [("10", 0.1), ("20", 0.2)])
        assert kernel.keep_indices(batch) is None  # fall back, don't coerce
        predicate = RankingPredicate("pt", ["T.s"], lambda s: 1.0)
        rank_kernel = vectors.ranking_kernel(predicate, schema)
        assert rank_kernel is not None
        assert rank_kernel.scores(batch) is None

    def test_clamping_matches_row_path(self, schema):
        predicate = RankingPredicate("pclamp", ["T.x"], col("T.x") * 3 - 1, p_max=0.8)
        expected, got = self.scores_both_ways(
            schema, predicate, [(0, 0.0), (1, 0.5), (2, 0.9), (3, None)]
        )
        assert got == expected
        assert max(got) <= 0.8 and min(got) >= 0.0


@numpy_only
class TestEndToEndBackendParity:
    def test_lowered_workload_plans_identical_across_backends(self):
        from repro.execution import ExecutionContext, run_plan
        from repro.optimizer.plans import lower_to_batch
        from repro.workloads import ALL_PLANS, WorkloadConfig, build_workload

        w = build_workload(
            WorkloadConfig(table_size=250, join_selectivity=0.04, k=8, seed=5)
        )
        for name in sorted(ALL_PLANS):
            lowered = lower_to_batch(ALL_PLANS[name](w))
            sequences = {}
            for backend in ("python", "numpy"):
                vectors.set_backend(backend)
                context = ExecutionContext(w.catalog, w.scoring)
                out = run_plan(lowered.build(), context, k=8)
                sequences[backend] = [
                    (s.row.rid, s.row.values, dict(s.scores)) for s in out
                ]
            assert sequences["python"] == sequences["numpy"], name
