"""Multi-statement transaction semantics, engine level and on every
client surface: read-your-writes, isolation until commit, atomic apply,
first-committer-wins conflicts with clean retry, rollback, and the
one-open-transaction-per-session discipline."""

from __future__ import annotations

import pytest

from repro.engine.database import Database
from repro.storage.schema import DataType
from repro.storage.transaction import SerializationError, TransactionError

READ = "SELECT * FROM kv WHERE kv.key = :k"


def rmw(db, txn, key: int, value: int) -> None:
    """The canonical register update: delete the key, insert the new row."""
    table = db.catalog.table("kv")
    txn.delete_where(table, column="key", equals=key)
    txn.insert(table, [(key, value)])


# ----------------------------------------------------------------------
# engine level (Database.begin / Transaction)
# ----------------------------------------------------------------------
class TestEngineTransactions:
    def test_read_your_writes_and_isolation_until_commit(self, kv_db, read_kv):
        txn = kv_db.begin()
        rmw(kv_db, txn, 0, 41)
        # the transaction's view sees its buffered write, through SQL
        assert read_kv(kv_db, 0, snapshot=txn.read_view()) == 41
        # ... while the live database still sees the old value
        assert read_kv(kv_db, 0) == 0
        txn.commit()
        assert read_kv(kv_db, 0) == 41

    def test_statements_read_the_begin_snapshot(self, kv_db, read_kv):
        txn = kv_db.begin()
        # an autocommit writer runs after BEGIN ...
        kv_db.delete_where("kv", column="key", equals=5)
        kv_db.insert("kv", [(5, 99)])
        assert read_kv(kv_db, 5) == 99
        # ... but every statement in the transaction reads the BEGIN snapshot
        assert read_kv(kv_db, 5, snapshot=txn.read_view()) == 0
        assert read_kv(kv_db, 5, snapshot=txn.read_view()) == 0
        txn.commit()  # read-only: no writes to validate, nothing published
        assert read_kv(kv_db, 5) == 99

    def test_buffered_delete_hides_row_from_own_view_only(self, kv_db, read_kv):
        txn = kv_db.begin()
        deleted = txn.delete_where(kv_db.catalog.table("kv"), column="key", equals=2)
        assert deleted == 1
        assert read_kv(kv_db, 2, snapshot=txn.read_view()) is None
        assert read_kv(kv_db, 2) == 0
        txn.commit()
        assert read_kv(kv_db, 2) is None

    def test_commit_applies_multi_table_writes_atomically(self, kv_db, read_kv):
        kv_db.create_table("audit", [("key", DataType.INT), ("who", DataType.INT)])
        txn = kv_db.begin()
        rmw(kv_db, txn, 1, 7)
        txn.insert(kv_db.catalog.table("audit"), [(1, txn.txn_id)])
        # neither table shows anything before commit
        assert read_kv(kv_db, 1) == 0
        assert kv_db.query("SELECT * FROM audit").rows == []
        commit_seq = txn.commit()
        assert commit_seq > txn.begin_seq
        assert read_kv(kv_db, 1) == 7
        assert kv_db.query("SELECT * FROM audit").rows == [(1, txn.txn_id)]

    def test_first_committer_wins(self, kv_db, read_kv):
        t1 = kv_db.begin()
        t2 = kv_db.begin()
        rmw(kv_db, t1, 3, 111)
        rmw(kv_db, t2, 3, 222)
        t1.commit()
        with pytest.raises(SerializationError):
            t2.commit()
        assert t2.status == "aborted"
        assert not t2.active
        # the winner's value survives; the loser published nothing
        assert read_kv(kv_db, 3) == 111
        # the retry path: a fresh transaction over the new state succeeds
        t3 = kv_db.begin()
        assert read_kv(kv_db, 3, snapshot=t3.read_view()) == 111
        rmw(kv_db, t3, 3, 222)
        t3.commit()
        assert read_kv(kv_db, 3) == 222
        assert kv_db.transactions.summary()["txn_conflicts"] == 1

    def test_disjoint_writers_do_not_conflict(self, kv_db, read_kv):
        t1 = kv_db.begin()
        t2 = kv_db.begin()
        rmw(kv_db, t1, 1, 11)
        rmw(kv_db, t2, 2, 22)
        t1.commit()
        t2.commit()  # different keys: no first-committer-wins loss
        assert read_kv(kv_db, 1) == 11
        assert read_kv(kv_db, 2) == 22

    def test_rollback_discards_buffered_writes(self, kv_db, read_kv):
        txn = kv_db.begin()
        rmw(kv_db, txn, 4, 1234)
        txn.delete_where(kv_db.catalog.table("kv"), column="key", equals=6)
        txn.rollback()
        assert txn.status == "rolled-back"
        assert not txn.active
        assert read_kv(kv_db, 4) == 0
        assert read_kv(kv_db, 6) == 0

    def test_context_manager_commits_and_rolls_back(self, kv_db, read_kv):
        with kv_db.begin() as txn:
            rmw(kv_db, txn, 0, 5)
        assert txn.status == "committed"
        assert read_kv(kv_db, 0) == 5

        with pytest.raises(RuntimeError, match="boom"):
            with kv_db.begin() as txn:
                rmw(kv_db, txn, 0, 6)
                raise RuntimeError("boom")
        assert txn.status == "rolled-back"
        assert read_kv(kv_db, 0) == 5

    def test_finished_transactions_reject_further_work(self, kv_db):
        txn = kv_db.begin()
        txn.commit()
        table = kv_db.catalog.table("kv")
        with pytest.raises(TransactionError):
            txn.insert(table, [(0, 1)])
        with pytest.raises(TransactionError):
            txn.delete_where(table, column="key", equals=0)
        with pytest.raises(TransactionError):
            txn.commit()
        txn.rollback()  # rollback after finish stays a no-op
        assert txn.status == "committed"

    def test_logical_clock_totally_orders_begin_and_end(self, kv_db):
        t1 = kv_db.begin()
        t2 = kv_db.begin()
        assert t1.begin_seq < t2.begin_seq
        rmw(kv_db, t1, 0, 1)
        t1.commit()
        t2.commit()
        stamps = [t1.begin_seq, t2.begin_seq, t1.end_seq, t2.end_seq]
        assert len(set(stamps)) == len(stamps)
        assert t1.end_seq < t2.end_seq

    def test_manager_counters(self, kv_db):
        base = kv_db.transactions.summary()
        t1 = kv_db.begin()
        rmw(kv_db, t1, 0, 1)
        t1.commit()
        t2 = kv_db.begin()
        t2.rollback()
        summary = kv_db.transactions.summary()
        assert summary["txns_begun"] == base["txns_begun"] + 2
        assert summary["txns_committed"] == base["txns_committed"] + 1
        assert summary["txns_rolled_back"] == base["txns_rolled_back"] + 1


# ----------------------------------------------------------------------
# embedded Session surface
# ----------------------------------------------------------------------
class TestEmbeddedSession:
    def test_session_transaction_roundtrip(self, kv_db):
        session = kv_db.session()
        txn = session.begin()
        assert session.in_transaction
        session.delete_where("kv", column="key", equals=0)
        session.insert("kv", [(0, txn.txn_id)])
        rows = session.execute(READ, params={"k": 0}).rows
        assert rows == [(0, txn.txn_id)]
        # outside the session's transaction nothing is visible yet
        assert kv_db.query(READ, params={"k": 0}).rows == [(0, 0)]
        commit_seq = session.commit()
        assert commit_seq == txn.end_seq
        assert not session.in_transaction
        assert kv_db.query(READ, params={"k": 0}).rows == [(0, txn.txn_id)]

    def test_one_open_transaction_per_session(self, kv_db):
        session = kv_db.session()
        session.begin()
        with pytest.raises(TransactionError, match="already has an open"):
            session.begin()
        session.rollback()
        with pytest.raises(TransactionError, match="no open transaction"):
            session.commit()
        session.rollback()  # rollback with nothing open is a no-op

    def test_close_rolls_back_open_transaction(self, kv_db, read_kv):
        session = kv_db.session()
        txn = session.begin()
        session.insert("kv", [(50, 1)])
        session.close()
        assert txn.status == "rolled-back"
        assert read_kv(kv_db, 50) is None

    def test_autocommit_outside_transaction(self, kv_db, read_kv):
        session = kv_db.session()
        session.insert("kv", [(60, 6)])
        assert read_kv(kv_db, 60) == 6  # applied immediately, no txn open
        session.delete_where("kv", column="key", equals=60)
        assert read_kv(kv_db, 60) is None


# ----------------------------------------------------------------------
# served surfaces: in-process client and the TCP wire protocol
# ----------------------------------------------------------------------
class TestServedSurfaces:
    def test_in_process_client_conflict_and_retry(self, kv_db):
        with kv_db.serve(workers=2) as server:
            c1 = server.session()
            c2 = server.session()
            t1 = c1.begin()
            t2 = c2.begin()
            for client, txn in ((c1, t1), (c2, t2)):
                assert client.execute(READ, params={"k": 7}).rows == [(7, 0)]
                client.delete("kv", column="key", equals=7)
                client.insert("kv", [(7, txn.txn_id)])
            c1.commit()
            with pytest.raises(SerializationError):
                c2.commit()
            # losing client retries from a fresh BEGIN and succeeds
            t2b = c2.begin()
            assert c2.execute(READ, params={"k": 7}).rows == [(7, t1.txn_id)]
            c2.delete("kv", column="key", equals=7)
            c2.insert("kv", [(7, t2b.txn_id)])
            c2.commit()
            assert c1.execute(READ, params={"k": 7}).rows == [(7, t2b.txn_id)]
            c1.close()
            c2.close()

    def test_tcp_wire_transactions(self, kv_db):
        from repro.server.client import connect

        with kv_db.serve(workers=2, port=0) as server:
            host, port = server.address
            with connect(host, port) as s1, connect(host, port) as s2:
                txn1 = s1.begin()
                txn2 = s2.begin()
                assert isinstance(txn1, int) and txn1 != txn2
                for s, txn in ((s1, txn1), (s2, txn2)):
                    assert s.execute(READ, params={"k": 1}).rows == [(1, 0)]
                    s.delete("kv", column="key", equals=1)
                    s.insert("kv", [[1, txn]])
                commit_seq = s1.commit()
                assert isinstance(commit_seq, int)
                with pytest.raises(SerializationError):
                    s2.commit()
                # the loser's session is usable again immediately
                assert s2.execute(READ, params={"k": 1}).rows == [(1, txn1)]
                # and rollback over the wire discards cleanly
                s2.begin()
                s2.insert("kv", [[90, 1]])
                s2.rollback()
                assert s2.execute(READ, params={"k": 90}).rows == []

    def test_wire_commit_without_transaction_is_an_error(self, kv_db):
        from repro.server.client import ServerError, connect

        with kv_db.serve(workers=1, port=0) as server:
            host, port = server.address
            with connect(host, port) as s:
                with pytest.raises(ServerError, match="no open transaction"):
                    s.commit()
                with pytest.raises(ServerError, match="already has an open"):
                    s.begin()
                    s.begin()
                s.rollback()

    def test_server_close_rolls_back_open_transaction(self, kv_db, read_kv):
        with kv_db.serve(workers=1) as server:
            client = server.session()
            client.begin()
            client.insert("kv", [(70, 1)])
            client.close()
            assert read_kv(kv_db, 70) is None


def test_snapshot_capture_is_serialized_with_commits():
    """Database.snapshot() routes through the transaction manager's lock,
    so a snapshot never observes half of a multi-table commit."""
    import threading

    db = Database()
    db.create_table("a", [("v", DataType.INT)])
    db.create_table("b", [("v", DataType.INT)])
    stop = threading.Event()
    torn: list[tuple[int, int]] = []

    def writer() -> None:
        value = 1
        while not stop.is_set():
            txn = db.begin()
            txn.insert(db.catalog.table("a"), [(value,)])
            txn.insert(db.catalog.table("b"), [(value,)])
            txn.commit()
            value += 1

    thread = threading.Thread(target=writer, daemon=True)
    thread.start()
    try:
        for __ in range(300):
            snap = db.snapshot()
            rows_a = snap.table("a").row_count
            rows_b = snap.table("b").row_count
            if rows_a != rows_b:
                torn.append((rows_a, rows_b))
    finally:
        stop.set()
        thread.join(timeout=5)
        db.close()
    assert torn == [], f"snapshots observed half-applied commits: {torn[:5]}"
