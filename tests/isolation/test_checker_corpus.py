"""The known-anomaly corpus: hand-crafted histories exercising every
anomaly class the black-box checker knows, plus clean histories it must
certify.  This is the checker's own test — a checker that cannot reject
these histories proves nothing when it certifies the engine's."""

from __future__ import annotations

import pytest

from repro.verify.checker import (
    BEYOND_SI,
    SI_VIOLATIONS,
    check_snapshot_isolation,
)
from repro.verify.history import History, Op, TransactionRecord, interpret_kv


def txn(txn_id, begin, end, ops, status="committed"):
    """Corpus shorthand: ops are ('r'|'w', key, value) triples."""
    return TransactionRecord(
        txn_id=txn_id,
        begin_seq=begin,
        end_seq=end,
        status=status,
        ops=[Op(kind, key, value) for kind, key, value in ops],
    )


def history(*records, initial=None):
    return History(records, initial=initial if initial is not None else {"x": 0, "y": 0})


# ----------------------------------------------------------------------
# clean histories certify
# ----------------------------------------------------------------------
class TestCleanHistories:
    def test_empty_history(self):
        report = check_snapshot_isolation(history())
        assert report.ok and report.si_ok
        assert report.anomalies == []

    def test_serial_read_write_chain(self):
        report = check_snapshot_isolation(
            history(
                txn(1, 1, 2, [("r", "x", 0), ("w", "x", 1)]),
                txn(2, 3, 4, [("r", "x", 1), ("w", "x", 2)]),
                txn(3, 5, 6, [("r", "x", 2), ("r", "y", 0)]),
            )
        )
        assert report.ok
        assert report.reads_checked == 4

    def test_read_your_writes_and_tombstones(self):
        report = check_snapshot_isolation(
            history(
                txn(
                    1,
                    1,
                    2,
                    [
                        ("r", "x", 0),
                        ("w", "x", 1),
                        ("r", "x", 1),  # own buffered write
                        ("w", "x", None),
                        ("r", "x", None),  # own buffered delete
                    ],
                ),
                txn(2, 3, 4, [("r", "x", None)]),  # the tombstone committed
            )
        )
        assert report.ok

    def test_concurrent_reader_on_old_snapshot_is_fine(self):
        # T2 began before T1 committed: reading the pre-T1 value is exactly SI.
        report = check_snapshot_isolation(
            history(
                txn(1, 1, 3, [("w", "x", 1)]),
                txn(2, 2, 4, [("r", "x", 0)]),
            )
        )
        assert report.ok

    def test_aborted_writer_leaves_no_trace(self):
        report = check_snapshot_isolation(
            history(
                txn(1, 1, 2, [("w", "x", 1)], status="aborted"),
                txn(2, 3, 4, [("r", "x", 0)]),  # correctly ignores the abort
            )
        )
        assert report.ok


# ----------------------------------------------------------------------
# every anomaly class is detected
# ----------------------------------------------------------------------
class TestAnomalyCorpus:
    def test_lost_update(self):
        report = check_snapshot_isolation(
            history(
                txn(1, 1, 3, [("r", "x", 0), ("w", "x", 1)]),
                txn(2, 2, 4, [("r", "x", 0), ("w", "x", 2)]),
            )
        )
        assert not report.si_ok
        assert "lost-update" in report.kinds()
        [anomaly] = [a for a in report.anomalies if a.kind == "lost-update"]
        assert set(anomaly.txns) == {1, 2}
        assert anomaly.key == "x"

    def test_write_skew_is_beyond_si(self):
        report = check_snapshot_isolation(
            history(
                txn(1, 1, 3, [("r", "y", 0), ("w", "x", 1)]),
                txn(2, 2, 4, [("r", "x", 0), ("w", "y", 2)]),
            )
        )
        # SI admits write skew: si_ok holds, but the full verdict does not.
        assert report.si_ok
        assert not report.ok
        assert report.kinds() == {"write-skew"}
        [anomaly] = report.anomalies
        assert anomaly.beyond_si
        assert set(anomaly.txns) == {1, 2}

    def test_no_write_skew_without_crossing_reads(self):
        # Disjoint writes but only one side read the other's key: not skew.
        report = check_snapshot_isolation(
            history(
                txn(1, 1, 3, [("r", "y", 0), ("w", "x", 1)]),
                txn(2, 2, 4, [("w", "y", 2)]),
            )
        )
        assert report.ok

    def test_aborted_read(self):
        report = check_snapshot_isolation(
            history(
                txn(1, 1, 2, [("w", "x", 1)], status="aborted"),
                txn(2, 3, 4, [("r", "x", 1)]),
            )
        )
        assert "aborted-read" in report.kinds()
        assert not report.si_ok

    def test_rolled_back_read_is_an_aborted_read(self):
        report = check_snapshot_isolation(
            history(
                txn(1, 1, 2, [("w", "x", 1)], status="rolled-back"),
                txn(2, 3, 4, [("r", "x", 1)]),
            )
        )
        assert "aborted-read" in report.kinds()

    def test_long_fork(self):
        # Both commits precede T3's begin, but T3's snapshot contains only
        # one of them — the forked-snapshot anomaly SI forbids.
        report = check_snapshot_isolation(
            history(
                txn(1, 1, 2, [("w", "x", 1)]),
                txn(2, 3, 4, [("w", "y", 2)]),
                txn(3, 5, 6, [("r", "x", 1), ("r", "y", 0)]),
            )
        )
        assert "long-fork" in report.kinds()
        assert not report.si_ok

    def test_stale_version_read(self):
        # T3 observes T1's version even though T2 overwrote it before T3
        # began — a stale (superseded) version, reported as a fork.
        report = check_snapshot_isolation(
            history(
                txn(1, 1, 2, [("w", "x", 1)]),
                txn(2, 3, 4, [("w", "x", 2)]),
                txn(3, 5, 6, [("r", "x", 1)]),
            )
        )
        assert "long-fork" in report.kinds()

    def test_future_read(self):
        # T2's snapshot predates T1's commit, yet it observed T1's write.
        report = check_snapshot_isolation(
            history(
                txn(1, 2, 3, [("w", "x", 1)]),
                txn(2, 1, 4, [("r", "x", 1)]),
            )
        )
        assert "future-read" in report.kinds()
        assert not report.si_ok

    def test_non_repeatable_read(self):
        report = check_snapshot_isolation(
            history(
                txn(1, 2, 3, [("w", "x", 1)]),
                txn(2, 1, 4, [("r", "x", 0), ("r", "x", 1)]),
            )
        )
        assert "non-repeatable-read" in report.kinds()
        assert not report.si_ok

    def test_own_write_between_reads_is_not_non_repeatable(self):
        report = check_snapshot_isolation(
            history(txn(1, 1, 2, [("r", "x", 0), ("w", "x", 1), ("r", "x", 1)]))
        )
        assert report.ok

    def test_intermediate_read(self):
        # T1 buffered x=1 then overwrote it with x=2 before committing;
        # nobody may ever observe 1.
        report = check_snapshot_isolation(
            history(
                txn(1, 1, 2, [("w", "x", 1), ("w", "x", 2)]),
                txn(2, 3, 4, [("r", "x", 1)]),
            )
        )
        assert "intermediate-read" in report.kinds()
        assert not report.si_ok

    def test_phantom_value(self):
        report = check_snapshot_isolation(
            history(txn(1, 1, 2, [("r", "x", 99)]))
        )
        assert "phantom-value" in report.kinds()
        assert not report.si_ok


# ----------------------------------------------------------------------
# verdict plumbing
# ----------------------------------------------------------------------
class TestReportSemantics:
    def test_kind_taxonomy_is_disjoint(self):
        assert not (set(SI_VIOLATIONS) & set(BEYOND_SI))

    def test_summary_and_render(self):
        report = check_snapshot_isolation(
            history(
                txn(1, 1, 3, [("w", "x", 1)]),
                txn(2, 2, 4, [("w", "x", 2)]),
            )
        )
        summary = report.summary()
        assert summary["transactions"] == 2
        assert summary["committed"] == 2
        assert summary["si_ok"] is False
        assert summary["by_kind"] == {"lost-update": 1}
        text = report.render()
        assert "SI VIOLATED" in text and "lost-update" in text

    def test_render_marks_beyond_si(self):
        report = check_snapshot_isolation(
            history(
                txn(1, 1, 3, [("r", "y", 0), ("w", "x", 1)]),
                txn(2, 2, 4, [("r", "x", 0), ("w", "y", 2)]),
            )
        )
        assert "(beyond SI)" in report.render()
        assert "OK" in report.render()  # SI itself holds

    def test_json_roundtrip_preserves_the_verdict(self):
        original = history(
            txn(1, 1, 3, [("r", "x", 0), ("w", "x", 1)]),
            txn(2, 2, 4, [("r", "x", 0), ("w", "x", 2)]),
            txn(3, 5, 6, [("w", "y", 3)], status="rolled-back"),
        )
        restored = History.from_json(original.to_json())
        assert len(restored) == len(original)
        assert restored.record(3).status == "rolled-back"
        assert restored.record(1).ops == original.record(1).ops
        before = check_snapshot_isolation(original)
        after = check_snapshot_isolation(restored)
        assert [repr(a) for a in before.anomalies] == [
            repr(a) for a in after.anomalies
        ]


# ----------------------------------------------------------------------
# event interpretation (recorded histories -> key-value ops)
# ----------------------------------------------------------------------
class TestInterpretKv:
    def record(self, events, txn_id=1):
        return TransactionRecord(
            txn_id=txn_id, begin_seq=1, end_seq=2, status="committed", events=events
        )

    def test_maps_register_events(self):
        record = self.record(
            [
                {"op": "query", "sql": "...", "params": {"k": 3}, "rows": [[3, 0]]},
                {"op": "delete", "table": "kv", "column": "key", "equals": 3},
                {"op": "insert", "table": "kv", "rows": [[3, 7]]},
                {"op": "query", "sql": "...", "params": {"k": 9}, "rows": []},
            ]
        )
        out = interpret_kv(History([record], initial={3: 0}))
        assert out.record(1).ops == [
            Op("r", 3, 0),
            Op("w", 3, None),
            Op("w", 3, 7),
            Op("r", 9, None),
        ]
        assert out.record(1).final_writes() == {3: 7}

    def test_other_tables_and_scans_pass_through(self):
        record = self.record(
            [
                {"op": "insert", "table": "audit", "rows": [[1, 2]]},
                {"op": "delete", "table": "audit", "column": "key", "equals": 1},
                {"op": "query", "sql": "...", "params": None, "rows": [[1, 1], [2, 2]]},
            ]
        )
        out = interpret_kv(History([record]))
        assert out.record(1).ops == []

    def test_predicate_delete_on_register_is_rejected(self):
        record = self.record([{"op": "delete", "table": "kv", "column": None}])
        with pytest.raises(ValueError, match="uninterpretable delete"):
            interpret_kv(History([record]))

    def test_multi_row_register_read_is_rejected(self):
        record = self.record(
            [{"op": "query", "sql": "...", "params": {"k": 1}, "rows": [[1, 1], [1, 2]]}]
        )
        with pytest.raises(ValueError, match="keys must be unique"):
            interpret_kv(History([record]))

    def test_does_not_mutate_the_input(self):
        record = self.record(
            [{"op": "insert", "table": "kv", "rows": [[1, 5]]}]
        )
        source = History([record])
        interpret_kv(source)
        assert source.record(1).ops == []
