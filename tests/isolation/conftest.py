"""Shared fixtures for the transaction/isolation suite: the canonical
register table (``kv(key, val)``) the black-box checking literature uses —
small, contended, column-indexed, preloaded with ``val=0`` per key."""

from __future__ import annotations

import pytest

from repro.engine.database import Database
from repro.storage.schema import DataType

KEYS = 8


def build_kv_db(keys: int = KEYS, **db_kwargs) -> Database:
    db = Database(**db_kwargs)
    db.create_table("kv", [("key", DataType.INT), ("val", DataType.INT)])
    db.insert("kv", [(key, 0) for key in range(keys)])
    db.create_column_index("kv", "key")
    db.analyze()
    return db


def read_key(db: Database, key: int, snapshot=None):
    """The register read; returns the key's value (None = absent)."""
    result = db.query(
        "SELECT * FROM kv WHERE kv.key = :k", params={"k": key}, snapshot=snapshot
    )
    rows = result.rows
    assert len(rows) <= 1, f"duplicate register key {key}: {rows}"
    return rows[0][1] if rows else None


@pytest.fixture()
def kv_db() -> Database:
    db = build_kv_db()
    yield db
    db.close()


@pytest.fixture()
def build_kv():
    """Factory fixture for tests that need a custom kv database (extra
    keys, parallelism); closes everything it built on teardown."""
    created: list[Database] = []

    def factory(keys: int = KEYS, **db_kwargs) -> Database:
        db = build_kv_db(keys, **db_kwargs)
        created.append(db)
        return db

    yield factory
    for db in created:
        db.close()


@pytest.fixture()
def read_kv():
    return read_key
