"""The randomized multi-session fuzz driver, scaled down for the tier-1
suite (CI's ``isolation`` job runs the full campaign).  A run certifies
only when the recorded history shows zero anomalies — SI violations *and*
serializability violations — because the workload is serializable by
construction."""

from __future__ import annotations

from repro.verify.fuzz import FuzzConfig, run_fuzz
from repro.verify.history import interpret_kv


class TestFuzzCertification:
    def test_small_campaign_certifies(self):
        result = run_fuzz(sessions=3, transactions=60, keys=4, seed=7)
        assert result.certified, result.report.render()
        assert result.report.si_ok
        assert result.stats["committed"] == 60
        assert result.stats["retries_exhausted"] == 0
        # every committed transaction made it into the recorded history
        committed = result.history.committed()
        assert len(committed) >= result.stats["committed"]

    def test_contention_produces_conflicts_and_retries_absorb_them(self):
        # One hot key across four sessions: first-committer-wins must fire,
        # and the retry path must still land every transaction.
        result = run_fuzz(
            sessions=4,
            transactions=40,
            keys=1,
            seed=3,
            read_fraction=0.2,
            max_retries=100,
        )
        assert result.certified, result.report.render()
        assert result.stats["conflicts"] > 0
        assert result.stats["committed"] == 40
        # aborted attempts are recorded too, with their terminal status
        statuses = {record.status for record in result.history}
        assert "aborted" in statuses

    def test_unique_value_discipline(self):
        # Every committed write stores the writer's txn_id — the discipline
        # that keeps the checker's reads-from mapping unambiguous.
        result = run_fuzz(sessions=2, transactions=30, keys=4, seed=11)
        for record in result.history.committed():
            for key, value in record.final_writes().items():
                assert value == record.txn_id

    def test_read_only_transactions_write_nothing(self):
        result = run_fuzz(sessions=2, transactions=30, keys=4, seed=5)
        pure_reads = [
            r
            for r in result.history.committed()
            if r.ops and not r.final_writes()
        ]
        assert pure_reads, "expected some read-only transactions at 0.5 mix"

    def test_render_mentions_the_seed(self):
        result = run_fuzz(sessions=2, transactions=10, keys=4, seed=42)
        assert "seed=42" in result.render()


class TestFuzzDeterminism:
    def test_intent_stream_is_seed_deterministic(self):
        from repro.verify.fuzz import _transaction_intent

        config = FuzzConfig(seed=9)
        first = [_transaction_intent(config, i) for i in range(50)]
        second = [_transaction_intent(config, i) for i in range(50)]
        assert first == second
        other = [_transaction_intent(FuzzConfig(seed=10), i) for i in range(50)]
        assert first != other

    def test_intent_is_all_reads_or_all_rmw(self):
        # The workload stays serializable by construction only if updaters
        # write every key they read (see the fuzz module docstring).
        config = FuzzConfig(seed=1, transactions=200)
        for serial in range(200):
            kinds = {kind for kind, __ in _intent(config, serial)}
            assert len(kinds) == 1

    def test_config_vs_overrides_are_exclusive(self):
        import pytest

        with pytest.raises(TypeError):
            run_fuzz(FuzzConfig(), seed=1)


def _intent(config, serial):
    from repro.verify.fuzz import _transaction_intent

    return _transaction_intent(config, serial)


class TestHistoryHarvest:
    def test_harvested_history_is_checkable_json(self):
        from repro.verify.checker import check_snapshot_isolation
        from repro.verify.history import History

        result = run_fuzz(sessions=2, transactions=20, keys=4, seed=13)
        restored = interpret_kv(History.from_json(result.history.to_json()))
        # JSON keys arrive as written (ints survive in the op triples), so
        # the checker's verdict must survive the round trip too
        report = check_snapshot_isolation(restored)
        assert report.ok
        assert report.committed == result.report.committed
