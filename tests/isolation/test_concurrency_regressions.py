"""Regression tests for the seams between transactions and the two
previous concurrency layers: snapshot-isolated serving (PR 5) and
morsel-driven intra-query parallelism (PR 6).

* a transaction's read view must stay byte-identical while autocommit
  writers churn the same tables;
* executing inside a transaction-scoped snapshot with DOP > 1 must be
  byte-identical to serial execution of the same view, buffered writes
  included.
"""

from __future__ import annotations

import random
import threading

from repro.engine.database import Database
from repro.storage.schema import DataType
from repro.workloads import WorkloadConfig, build_workload

#: the reader statements (a 3-way join, a µ-over-scan, a plain rank scan)
QUERIES = [
    (
        "SELECT * FROM A, B, C "
        "WHERE A.jc1 = B.jc1 AND B.jc2 = C.jc2 AND A.b AND B.b "
        "ORDER BY f1(A.p1) + f2(A.p2) + f3(B.p1) + f4(B.p2) + f5(C.p1) "
        "LIMIT 10"
    ),
    "SELECT * FROM A WHERE A.b ORDER BY f1(A.p1) + f2(A.p2) LIMIT 8",
    "SELECT * FROM C ORDER BY f5(C.p1) LIMIT 5",
]

#: churn rows with maximal predicate inputs — they would top every ranking
#: if a transaction's view ever leaked a concurrent publication
HOT_ROWS = [(1, 1, True, 0.999, 0.999) for __ in range(5)]


def build_workload_db() -> Database:
    workload = build_workload(
        WorkloadConfig(table_size=150, join_selectivity=0.05, seed=11, k=10)
    )
    return workload.database


def transcript_of(result) -> tuple:
    return (tuple(map(tuple, result.rows)), tuple(result.scores))


class TestTransactionViewUnderChurn:
    def test_transaction_reads_are_frozen_while_writers_churn(self):
        """PR 5 seam: autocommit insert/delete churn publishes version after
        version, but every statement of an open transaction keeps reading
        the BEGIN snapshot — byte-identical transcripts throughout."""
        db = build_workload_db()
        txn = db.begin()
        baseline = {
            sql: transcript_of(
                db.query(sql, snapshot=txn.read_view(), sample_ratio=0.05)
            )
            for sql in QUERIES
        }

        stop = threading.Event()
        errors: list[BaseException] = []

        def churn() -> None:
            try:
                for __ in range(25):
                    db.insert("A", HOT_ROWS)
                    db.insert("C", HOT_ROWS)
                    db.delete_where("A", lambda row: row[3] > 0.99)
                    db.delete_where("C", lambda row: row[3] > 0.99)
            except BaseException as error:  # pragma: no cover - diagnostic
                errors.append(error)
            finally:
                stop.set()

        writer = threading.Thread(target=churn)
        writer.start()
        try:
            reads = 0
            while not stop.is_set() or reads == 0:
                for sql in QUERIES:
                    result = db.query(
                        sql, snapshot=txn.read_view(), sample_ratio=0.05
                    )
                    assert transcript_of(result) == baseline[sql]
                    reads += 1
        finally:
            writer.join()
            db.close()
        assert not errors
        assert reads >= len(QUERIES)
        txn.rollback()

    def test_buffered_writes_stay_visible_and_stable_under_churn(self):
        """The transaction's own buffered rows dominate its view's rankings
        no matter what concurrent writers publish meanwhile."""
        db = build_workload_db()
        txn = db.begin()
        # a join value no generated row has (the generator draws jc1 from
        # a small range), so an indexed point read can pick the row out
        buffered_row = (999, 1, True, 0.5, 0.5)
        txn.insert(db.catalog.table("C"), [buffered_row])
        point_read = "SELECT * FROM C WHERE C.jc1 = :j"
        assert db.query(
            point_read, params={"j": 999}, snapshot=txn.read_view()
        ).rows == [buffered_row]
        # invisible outside the transaction
        assert db.query(point_read, params={"j": 999}).rows == []
        rank_expected = transcript_of(
            db.query(QUERIES[2], snapshot=txn.read_view(), sample_ratio=0.05)
        )

        stop = threading.Event()

        def churn() -> None:
            try:
                for __ in range(25):
                    db.insert("C", HOT_ROWS)
                    db.delete_where("C", lambda row: row[3] > 0.99)
            finally:
                stop.set()

        writer = threading.Thread(target=churn)
        writer.start()
        try:
            while not stop.is_set():
                view = txn.read_view()
                assert db.query(
                    point_read, params={"j": 999}, snapshot=view
                ).rows == [buffered_row]
                rank = db.query(QUERIES[2], snapshot=view, sample_ratio=0.05)
                assert transcript_of(rank) == rank_expected
        finally:
            writer.join()
        # ... and the buffered row never escaped into the live database
        txn.rollback()
        assert db.query(point_read, params={"j": 999}).rows == []
        db.close()


class TestParallelExecutionInsideTransactions:
    """PR 6 seam: the morsel-parallel batch path over a transaction view."""

    SQL = "SELECT * FROM T WHERE T.k > 1 ORDER BY pa(T.x) LIMIT 10"

    def build_db(self, n: int = 8000) -> Database:
        db = Database(batch_execution="auto", parallelism=4)
        db.create_table("T", [("k", DataType.INT), ("x", DataType.FLOAT)])
        rng = random.Random(11)
        db.insert(
            "T", [(rng.randrange(5), round(rng.random(), 6)) for __ in range(n)]
        )
        db.register_predicate("pa", ["T.x"], lambda x: x)
        db.analyze()
        return db

    def test_dop_parity_on_a_transaction_view(self, monkeypatch):
        monkeypatch.setenv("REPRO_MORSEL_SIZE", "256")
        db = self.build_db()
        # the optimizer really picks DOP > 1 for this shape (guards the
        # test against silently degrading into serial-vs-serial)
        assert "batch(dop=4)" in db.explain(self.SQL, sample_ratio=0.5, seed=1)

        txn = db.begin()
        table = db.catalog.table("T")
        # buffered writes that change the top-k: current winners out first,
        # then maximal-x rows in (a later delete with this condition would
        # match the staged rows too and unstage them)
        txn.delete_where(table, lambda row: row[1] > 0.99985)
        txn.insert(table, [(4, 0.9999994), (3, 0.9999991)])

        view = txn.read_view()
        serial = db.query(
            self.SQL, snapshot=view, sample_ratio=0.5, seed=1, parallelism=1
        )
        parallel = db.query(
            self.SQL, snapshot=view, sample_ratio=0.5, seed=1, parallelism=4
        )
        assert transcript_of(parallel) == transcript_of(serial)
        # the buffered inserts won the ranking in both executions
        assert serial.rows[0][1] == 0.9999994
        assert serial.rows[1][1] == 0.9999991
        txn.rollback()
        db.close()

    def test_dop_parity_under_concurrent_churn(self, monkeypatch):
        monkeypatch.setenv("REPRO_MORSEL_SIZE", "256")
        db = self.build_db(4000)
        txn = db.begin()
        view_baseline = transcript_of(
            db.query(
                self.SQL,
                snapshot=txn.read_view(),
                sample_ratio=0.5,
                seed=1,
                parallelism=4,
            )
        )
        stop = threading.Event()

        def churn() -> None:
            try:
                for i in range(15):
                    db.insert("T", [(4, 0.99999) for __ in range(5)])
                    db.delete_where("T", lambda row: row[1] > 0.9999)
            finally:
                stop.set()

        writer = threading.Thread(target=churn)
        writer.start()
        try:
            while not stop.is_set():
                got = transcript_of(
                    db.query(
                        self.SQL,
                        snapshot=txn.read_view(),
                        sample_ratio=0.5,
                        seed=1,
                        parallelism=4,
                    )
                )
                assert got == view_baseline
        finally:
            writer.join()
            txn.rollback()
            db.close()
