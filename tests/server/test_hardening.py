"""Server hardening: the idle-connection reaper, graceful shutdown
(drain → rollback → checkpoint), and the client-side retry helpers on
both session surfaces."""

from __future__ import annotations

import time

import pytest

from repro.engine import Database, load_database
from repro.server import connect
from repro.storage import DataType, SerializationError


def build_kv_db(**kwargs) -> Database:
    db = Database(**kwargs)
    db.create_table("kv", [("key", DataType.INT), ("val", DataType.INT)])
    db.insert("kv", [(0, 0), (1, 0)])
    db.create_column_index("kv", "key")
    db.analyze()
    return db


READ = "SELECT * FROM kv WHERE kv.key = :k"


class TestIdleReaper:
    def test_idle_connection_is_reaped(self):
        db = build_kv_db()
        with db.serve(port=0, workers=2, idle_timeout=0.3) as server:
            host, port = server.address
            client = connect(host, port)
            assert client.execute(READ, params={"k": 0}).rows
            deadline = time.monotonic() + 5.0
            while server.connections_reaped == 0 and time.monotonic() < deadline:
                time.sleep(0.05)
            assert server.connections_reaped == 1
            assert server.summary()["connections_reaped"] == 1
            # the reaped socket is dead from the client's point of view
            with pytest.raises((ConnectionError, OSError)):
                client.execute(READ, params={"k": 0})
            client.close()  # release the client-side fd of the dead link
        db.close()

    def test_active_connection_is_not_reaped(self):
        db = build_kv_db()
        with db.serve(port=0, workers=2, idle_timeout=0.4) as server:
            host, port = server.address
            with connect(host, port) as client:
                for __ in range(6):
                    time.sleep(0.15)  # keep chattering under the timeout
                    assert client.execute(READ, params={"k": 0}).rows
                assert server.connections_reaped == 0
        db.close()

    def test_rejects_nonpositive_idle_timeout(self):
        db = build_kv_db()
        with pytest.raises(ValueError, match="idle_timeout"):
            db.serve(workers=1, idle_timeout=0.0)
        db.close()


class TestGracefulShutdown:
    def test_shutdown_drains_then_refuses_new_work(self):
        db = build_kv_db()
        server = db.serve(workers=2)
        client = server.session()
        assert client.execute(READ, params={"k": 0}).rows
        server.shutdown(drain_timeout=5.0)
        assert server.draining
        assert (
            server.statements_admitted
            == server.statements_completed + server.statements_failed
        )
        # refused either way: draining while the drain runs, stopped after
        with pytest.raises(RuntimeError, match="draining|not running"):
            server.submit(client.session, READ, params={"k": 0})
        db.close()

    def test_shutdown_rolls_back_open_transactions(self):
        db = build_kv_db()
        server = db.serve(workers=2)
        client = server.session()
        client.begin()
        client.delete("kv", column="key", equals=0)
        client.insert("kv", [(0, 123)])
        server.shutdown(drain_timeout=2.0)  # close_all rolls the txn back
        values = {r.values[0]: r.values[1] for r in db.catalog.table("kv").rows()}
        assert values[0] == 0
        db.close()

    def test_shutdown_checkpoints_durable_state(self, tmp_path):
        db = build_kv_db(persist_dir=tmp_path, durability="wal")
        server = db.serve(workers=2)
        with server.session() as client:
            client.run_transaction(
                lambda c: (c.delete("kv", column="key", equals=1), c.insert("kv", [(1, 77)]))
            )
        server.shutdown(drain_timeout=5.0)
        db.close()

        recovered = load_database(tmp_path)
        values = {
            r.values[0]: r.values[1] for r in recovered.catalog.table("kv").rows()
        }
        assert values[1] == 77
        # the shutdown checkpoint rotated the WAL: nothing left to replay
        assert recovered.recovery_stats["replayed"] == 0
        recovered.close()

    def test_shutdown_is_idempotent(self):
        db = build_kv_db()
        server = db.serve(workers=1)
        server.shutdown(drain_timeout=1.0)
        server.shutdown(drain_timeout=1.0)  # second call is a no-op
        db.close()


class TestClientRetryHelpers:
    def test_in_process_run_transaction_retries_conflicts(self):
        db = build_kv_db()
        with db.serve(workers=2) as server:
            with server.session() as victim, server.session() as aggressor:
                attempts = [0]

                def body(c):
                    attempts[0] += 1
                    c.execute(READ, params={"k": 0})
                    if attempts[0] == 1:
                        # land a conflicting commit while we're in flight
                        aggressor.run_transaction(
                            lambda a: (
                                a.delete("kv", column="key", equals=0),
                                a.insert("kv", [(0, 500)]),
                            )
                        )
                    c.delete("kv", column="key", equals=0)
                    c.insert("kv", [(0, 7)])

                victim.run_transaction(body, retries=5, backoff=0.0001)
                assert attempts[0] == 2
                rows = victim.execute(READ, params={"k": 0}).rows
                assert rows[0][1] == 7
        db.close()

    def test_in_process_run_transaction_exhaustion_raises(self):
        db = build_kv_db()
        with db.serve(workers=2) as server:
            with server.session() as victim, server.session() as aggressor:

                def body(c):
                    c.execute(READ, params={"k": 0})
                    aggressor.run_transaction(
                        lambda a: (
                            a.delete("kv", column="key", equals=0),
                            a.insert("kv", [(0, 500)]),
                        )
                    )
                    c.delete("kv", column="key", equals=0)
                    c.insert("kv", [(0, 7)])

                with pytest.raises(SerializationError):
                    victim.run_transaction(body, retries=1, backoff=0.0001)
        db.close()

    def test_remote_run_transaction_retries_conflicts(self):
        db = build_kv_db()
        with db.serve(port=0, workers=2) as server:
            host, port = server.address
            with connect(host, port) as victim, connect(host, port) as aggressor:
                attempts = [0]

                def body(session):
                    attempts[0] += 1
                    session.execute(READ, params={"k": 0})
                    if attempts[0] == 1:
                        aggressor.run_transaction(
                            lambda a: (
                                a.delete("kv", column="key", equals=0),
                                a.insert("kv", [(0, 500)]),
                            )
                        )
                    session.delete("kv", column="key", equals=0)
                    session.insert("kv", [(0, 9)])

                victim.run_transaction(body, retries=5, backoff=0.0001)
                assert attempts[0] == 2
                assert not victim.in_transaction
                rows = victim.execute(READ, params={"k": 0}).rows
                assert rows[0][1] == 9
        db.close()

    def test_remote_run_transaction_rolls_back_on_other_errors(self):
        db = build_kv_db()
        with db.serve(port=0, workers=2) as server:
            host, port = server.address
            with connect(host, port) as client:

                def explodes(session):
                    session.delete("kv", column="key", equals=0)
                    session.insert("kv", [(0, 321)])
                    raise ValueError("boom")

                with pytest.raises(ValueError, match="boom"):
                    client.run_transaction(explodes)
                assert not client.in_transaction
                rows = client.execute(READ, params={"k": 0}).rows
                assert rows[0][1] == 0
        db.close()
