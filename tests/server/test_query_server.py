"""The concurrent query server: smoke, determinism and shared-cache reuse.

The acceptance bar from the serving tentpole:

* 16 concurrent sessions running the mixed workload produce results
  byte-identical to serial execution;
* the shared plan cache reaches a hit rate ≥ 0.9 on repeated templates;
* the TCP front end speaks the documented protocol, including error
  envelopes that keep the connection usable.
"""

from __future__ import annotations

import threading

import pytest

from repro.server import ServerError, SessionError, connect
from repro.server.session import SessionManager

SESSIONS = 16
ROUNDS = 3

#: the plain rank-scan statement used by single-statement smoke tests
TOP_HOTELS = "SELECT * FROM hotel ORDER BY cheap(hotel.price) LIMIT 5"


def run_mixed_workload(client, workload, rounds: int = ROUNDS) -> list[tuple]:
    """Execute the mixed workload ``rounds`` times; returns a flat,
    comparable transcript of (rows, scores) per statement."""
    transcript = []
    for __ in range(rounds):
        for sql, params in workload:
            result = client.execute(sql, params=params)
            transcript.append((tuple(map(tuple, result.rows)), tuple(result.scores)))
    return transcript


class TestInProcessServing:
    def test_two_sessions_share_one_plan(self, serving_db):
        with serving_db.serve(workers=2) as server:
            with server.session() as first, server.session() as second:
                sql = TOP_HOTELS
                a = first.execute(sql)
                b = second.execute(sql)
                assert a.rows == b.rows
                assert not a.plan_cached and b.plan_cached
                assert first.summary()["plan_cache_misses"] == 1
                assert second.summary()["plan_cache_hits"] == 1

    def test_sixteen_sessions_byte_identical_to_serial(self, serving_db, mixed_workload):
        # Serial reference: one session, no concurrency.
        with serving_db.serve(workers=1) as server:
            with server.session() as client:
                reference = run_mixed_workload(client, mixed_workload)
        serving_db.planner.cache.invalidate()

        with serving_db.serve(workers=8) as server:
            clients = [server.session() for __ in range(SESSIONS)]
            transcripts: dict[int, list] = {}
            errors: list[BaseException] = []

            def drive(slot: int) -> None:
                try:
                    transcripts[slot] = run_mixed_workload(clients[slot], mixed_workload)
                except BaseException as error:  # pragma: no cover
                    errors.append(error)

            threads = [
                threading.Thread(target=drive, args=(i,)) for i in range(SESSIONS)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert not errors
            for slot in range(SESSIONS):
                assert transcripts[slot] == reference

            # Shared-cache reuse on repeated templates: across 16 sessions
            # × 3 rounds × 5 templates, only the first execution of each
            # template (plus racing cold builds) may miss.
            summaries = [c.summary() for c in clients]
            hits = sum(s["plan_cache_hits"] for s in summaries)
            misses = sum(s["plan_cache_misses"] for s in summaries)
            assert hits + misses == SESSIONS * ROUNDS * len(mixed_workload)
            assert hits / (hits + misses) >= 0.9
            for client in clients:
                client.close()

    def test_parameterized_template_isolation_under_concurrency(self, serving_db):
        """Concurrent bindings of one template never bleed into each
        other's results (the per-entry execution lock)."""
        sql = (
            "SELECT * FROM hotel WHERE hotel.price <= :max_price "
            "ORDER BY cheap(hotel.price) LIMIT 50"
        )
        bounds = [60.0, 120.0, 240.0, 400.0]
        with serving_db.serve(workers=4) as server:
            with server.session() as warm:
                expected = {
                    bound: tuple(map(tuple, warm.execute(sql, params={"max_price": bound}).rows))
                    for bound in bounds
                }
            errors: list[BaseException] = []

            def drive(bound: float) -> None:
                try:
                    with server.session() as client:
                        for __ in range(15):
                            rows = tuple(
                                map(tuple, client.execute(sql, params={"max_price": bound}).rows)
                            )
                            assert rows == expected[bound]
                            assert all(price <= bound for __, price, *rest in rows)
                except BaseException as error:  # pragma: no cover
                    errors.append(error)

            threads = [
                threading.Thread(target=drive, args=(bound,))
                for bound in bounds
                for __ in range(2)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert not errors

    def test_statement_errors_resolve_futures(self, serving_db):
        with serving_db.serve(workers=2) as server:
            with server.session() as client:
                future = client.submit("SELECT * FROM nope ORDER BY cheap(hotel.price) LIMIT 1")
                with pytest.raises(Exception):
                    future.result(timeout=10)
                # the worker survived the failure
                assert len(client.execute(TOP_HOTELS).rows) == 5
            assert server.summary()["statements_failed"] == 1

    def test_submit_after_stop_is_rejected(self, serving_db):
        server = serving_db.serve(workers=1)
        client = server.session()
        server.stop()
        with pytest.raises(RuntimeError):
            client.execute(TOP_HOTELS)
        server.stop()  # idempotent


class TestSessionManager:
    def test_lifecycle(self, serving_db):
        manager = SessionManager(serving_db)
        session = manager.open()
        assert manager.get(session.session_id) is session
        manager.close(session.session_id)
        with pytest.raises(SessionError):
            manager.get(session.session_id)
        with pytest.raises(SessionError):
            manager.close(session.session_id)
        with pytest.raises(SessionError):
            session.execute("SELECT * FROM hotel ORDER BY cheap(hotel.price) LIMIT 1")

    def test_ids_are_unique_under_concurrency(self, serving_db):
        manager = SessionManager(serving_db)
        ids: list[str] = []
        lock = threading.Lock()

        def open_some() -> None:
            for __ in range(50):
                session = manager.open()
                with lock:
                    ids.append(session.session_id)

        threads = [threading.Thread(target=open_some) for __ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(ids) == len(set(ids)) == 400


class TestTcpFrontEnd:
    def test_hello_query_metrics_close(self, serving_db):
        with serving_db.serve(workers=2, port=0) as server:
            host, port = server.address
            with connect(host, port) as remote:
                result = remote.execute(TOP_HOTELS)
                assert len(result.rows) == 5
                assert result.scores == sorted(result.scores, reverse=True)
                assert result.columns[0] == "hotel.name"
                text = remote.explain(TOP_HOTELS)
                assert "limit" in text
                payload = remote.metrics()
                assert payload["session"]["queries_executed"] == 1
                assert payload["server"]["statements_completed"] == 1

    def test_remote_matches_in_process(self, serving_db, mixed_workload):
        with serving_db.serve(workers=2, port=0) as server:
            host, port = server.address
            with server.session() as local:
                with connect(host, port) as remote:
                    for sql, params in mixed_workload:
                        mine = local.execute(sql, params=params)
                        theirs = remote.execute(sql, params=params)
                        assert [list(r) for r in mine.rows] == [
                            list(r) for r in theirs.rows
                        ]
                        assert mine.scores == pytest.approx(theirs.scores)

    def test_error_envelope_keeps_connection_usable(self, serving_db):
        with serving_db.serve(workers=2, port=0) as server:
            host, port = server.address
            with connect(host, port) as remote:
                with pytest.raises(ServerError):
                    remote.execute("SELECT broken syntax !!!")
                assert len(remote.execute(TOP_HOTELS).rows) == 5

    def test_writes_over_the_wire(self, serving_db):
        with serving_db.serve(workers=2, port=0) as server:
            host, port = server.address
            with connect(host, port) as remote:
                remote.insert("hotel", [["wire", 1.0, 5, 0]])
                top = remote.execute(
                    "SELECT * FROM hotel ORDER BY cheap(hotel.price) LIMIT 1"
                )
                assert top.rows[0][0] == "wire"
                assert remote.delete("hotel", "name", "wire") == 1
                top = remote.execute(
                    "SELECT * FROM hotel ORDER BY cheap(hotel.price) LIMIT 1"
                )
                assert top.rows[0][0] != "wire"

    def test_session_settings_travel_in_hello(self, serving_db):
        with serving_db.serve(workers=1, port=0) as server:
            host, port = server.address
            with connect(host, port, strategy="traditional") as remote:
                result = remote.execute(TOP_HOTELS)
                assert len(result.rows) == 5
