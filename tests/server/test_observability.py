"""Server-side observability: the ``stats`` wire op, the Prometheus
endpoint, lifetime summary folding across closed sessions, and registry
consistency under concurrent sessions."""

import threading
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.cli import build_demo_database
from repro.server.client import connect

SQL = (
    "SELECT * FROM hotel WHERE area < 5 "
    "ORDER BY cheap(hotel.price) + starry(hotel.stars) LIMIT 5"
)


@pytest.fixture()
def db():
    return build_demo_database()


class TestStatsOp:
    def test_stats_over_the_wire(self, db):
        with db.serve(workers=2, port=0) as server:
            host, port = server.address
            with connect(host, port) as remote:
                remote.execute(SQL)
                payload = remote.stats(traces=5)
        assert payload["metrics"]["query.count"] >= 1
        assert payload["metrics"]["query.ms"]["count"] >= 1
        assert payload["traces"], "recent traces must come back"
        newest = payload["traces"][0]
        assert newest["surface"].startswith("server:")
        assert newest["spans"]["name"] == "query"
        assert payload["tracer"]["trace_enabled"] is True

    def test_server_stats_traces_newest_first(self, db):
        with db.serve(workers=2) as server:
            with server.session() as client:
                client.execute(SQL)
                client.execute(SQL)
            stats = server.stats(traces=2)
        first, second = stats["traces"][0], stats["traces"][1]
        assert first["started_at"] >= second["started_at"]


class TestPrometheusEndpoint:
    def test_scrape(self, db):
        with db.serve(workers=2, metrics_port=0) as server:
            with server.session() as client:
                client.execute(SQL)
            url = f"http://127.0.0.1:{server.metrics_port}/metrics"
            with urllib.request.urlopen(url) as response:
                assert response.status == 200
                assert "text/plain" in response.headers["Content-Type"]
                body = response.read().decode("utf-8")
        assert "# TYPE query_count counter" in body
        assert 'query_ms_bucket{le="+Inf"}' in body
        assert "plan_cache_hits" in body

    def test_unknown_path_is_404(self, db):
        with db.serve(workers=1, metrics_port=0) as server:
            url = f"http://127.0.0.1:{server.metrics_port}/nope"
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(url)
            assert excinfo.value.code == 404
            excinfo.value.close()  # the HTTPError owns the response socket

    def test_endpoint_stops_with_the_server(self, db):
        server = db.serve(workers=1, metrics_port=0).start()
        port = server.metrics_port
        server.stop()
        with pytest.raises(OSError):
            urllib.request.urlopen(
                f"http://127.0.0.1:{port}/metrics", timeout=0.5
            )


class TestClosedSessionFold:
    def test_summary_survives_session_close(self, db):
        """The satellite fix: per-session compiled-vs-interpreted counts
        (and the other client totals) must not vanish when the session
        that earned them closes."""
        with db.serve(workers=2) as server:
            with server.session() as client:
                client.execute(SQL)
                client.execute(SQL)
                live = server.summary()
            closed = server.summary()
        assert live["sessions_queries_executed"] == 2
        assert closed["sessions_open"] == 0
        assert closed["sessions_closed"] == 1
        assert closed["sessions_queries_executed"] == 2
        assert closed["sessions_rows_returned"] == live["sessions_rows_returned"]
        assert (
            closed["sessions_compiled_executions"]
            + closed["sessions_interpreted_executions"]
            == 2
        )
        assert (
            closed["sessions_plan_cache_hits"]
            + closed["sessions_plan_cache_misses"]
            == 2
        )

    def test_open_and_closed_totals_add(self, db):
        with db.serve(workers=2) as server:
            done = server.session()
            done.execute(SQL)
            done.close()
            live = server.session()
            live.execute(SQL)
            summary = server.summary()
            assert summary["sessions_open"] == 1
            assert summary["sessions_closed"] == 1
            assert summary["sessions_queries_executed"] == 2
            live.close()

    def test_close_all_folds_everyone(self, db):
        server = db.serve(workers=2).start()
        clients = [server.session() for __ in range(3)]
        for client in clients:
            client.execute(SQL)
        server.stop()  # close_all path
        summary = server.summary()
        assert summary["sessions_closed"] == 3
        assert summary["sessions_queries_executed"] == 3


class TestConcurrentSessions:
    def test_eight_sessions_report_into_one_registry(self, db):
        """Eight concurrent server sessions; the process-wide registry and
        the lifetime summary must account for every statement exactly."""
        per_session = 5
        query_count = db.registry.get("query.count")
        before = query_count.value
        barrier = threading.Barrier(8)

        with db.serve(workers=8) as server:

            def run_one(__):
                with server.session() as client:
                    barrier.wait(timeout=30)
                    for _ in range(per_session):
                        client.execute(SQL)
                    return client.session.queries_executed

            with ThreadPoolExecutor(max_workers=8) as pool:
                totals = list(pool.map(run_one, range(8)))
            summary = server.summary()

        assert totals == [per_session] * 8
        assert summary["sessions_closed"] == 8
        assert summary["sessions_queries_executed"] == 8 * per_session
        assert query_count.value - before == 8 * per_session
        latency = db.registry.get("query.ms")
        assert latency.count >= 8 * per_session
