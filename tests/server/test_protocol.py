"""Unit tests for the line-delimited JSON wire protocol."""

from __future__ import annotations

import pytest

from repro.server import protocol
from repro.server.protocol import ProtocolError, ServerError


class TestEncodeDecode:
    def test_roundtrip(self):
        message = {"op": "query", "sql": "SELECT 1", "params": {"x": 1.5}}
        line = protocol.encode(message)
        assert line.endswith(b"\n")
        assert b"\n" not in line[:-1]
        assert protocol.decode(line) == message

    def test_decode_accepts_str_and_bytes(self):
        assert protocol.decode('{"op": "metrics"}') == {"op": "metrics"}
        assert protocol.decode(b'{"op": "metrics"}\n') == {"op": "metrics"}

    def test_decode_rejects_garbage(self):
        with pytest.raises(ProtocolError):
            protocol.decode(b"not json\n")
        with pytest.raises(ProtocolError):
            protocol.decode(b"\n")
        with pytest.raises(ProtocolError):
            protocol.decode(b"[1, 2]\n")  # must be an object

    def test_null_and_bool_values_survive(self):
        message = {"op": "insert", "table": "t", "rows": [[None, True, 1, 1.5, "s"]]}
        assert protocol.decode(protocol.encode(message)) == message


class TestRequestValidation:
    def test_known_ops(self):
        for op in protocol.OPS:
            assert protocol.request_op({"op": op}) == op

    def test_missing_or_unknown_op(self):
        with pytest.raises(ProtocolError):
            protocol.request_op({})
        with pytest.raises(ProtocolError):
            protocol.request_op({"op": "drop_everything"})


class TestResponses:
    def test_error_payload_carries_type_and_message(self):
        payload = protocol.error_payload(ValueError("boom"))
        assert payload == {
            "ok": False,
            "error": {"type": "ValueError", "message": "boom"},
        }

    def test_check_response_passes_success_through(self):
        message = {"ok": True, "rows": []}
        assert protocol.check_response(message) is message

    def test_check_response_raises_server_error(self):
        with pytest.raises(ServerError) as excinfo:
            protocol.check_response(protocol.error_payload(KeyError("nope")))
        assert excinfo.value.remote_type == "KeyError"
