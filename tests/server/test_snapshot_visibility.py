"""Snapshot visibility under concurrent DML, in every execution mode.

A writer thread keeps inserting and deleting high-scoring rows while
readers run the workload queries.  Every read must observe a *single
consistent version*: re-executing the same statement serially against the
snapshot captured at admission must reproduce the concurrent result
byte-for-byte — in ``auto``, row (``False``) and batch (``True``)
execution modes alike.
"""

from __future__ import annotations

import threading

import pytest

from repro.workloads import WorkloadConfig, build_workload

#: the workload queries every reader runs (3-way Q, µ-over-scan, plain rank)
QUERIES = [
    (
        "SELECT * FROM A, B, C "
        "WHERE A.jc1 = B.jc1 AND B.jc2 = C.jc2 AND A.b AND B.b "
        "ORDER BY f1(A.p1) + f2(A.p2) + f3(B.p1) + f4(B.p2) + f5(C.p1) "
        "LIMIT 10"
    ),
    "SELECT * FROM A WHERE A.b ORDER BY f1(A.p1) + f2(A.p2) LIMIT 8",
    "SELECT * FROM C ORDER BY f5(C.p1) LIMIT 5",
]

#: rows the writer churns: maximal predicate inputs, so they would land at
#: the top of every ranking if a reader's snapshot included them
HOT_ROWS = [(1, 1, True, 0.999, 0.999) for __ in range(5)]


def build_db(mode):
    workload = build_workload(
        WorkloadConfig(table_size=150, join_selectivity=0.05, seed=11, k=10)
    )
    db = workload.database
    db.planner.batch_execution = {"auto": "auto", "row": False, "batch": True}[mode]
    db.planner.invalidate()
    return db


def transcript_of(result) -> tuple:
    return (tuple(map(tuple, result.rows)), tuple(result.scores))


@pytest.mark.parametrize("mode", ["auto", "row", "batch"])
class TestSnapshotVisibility:
    def test_concurrent_readers_see_one_consistent_version(self, mode):
        db = build_db(mode)
        stop = threading.Event()
        errors: list[BaseException] = []

        def churn() -> None:
            """Insert the hot rows into A and C, then delete them again —
            each publication a version a concurrent reader may capture."""
            try:
                for __ in range(25):
                    db.insert("A", HOT_ROWS)
                    db.insert("C", HOT_ROWS)
                    db.delete_where("A", lambda row: row[3] > 0.99)
                    db.delete_where("C", lambda row: row[3] > 0.99)
            finally:
                stop.set()

        captured: list[tuple] = []  # (sql, snapshot, concurrent transcript)
        lock = threading.Lock()

        def read(seed: int) -> None:
            try:
                i = seed
                while not stop.is_set():
                    sql = QUERIES[i % len(QUERIES)]
                    i += 1
                    snapshot = db.snapshot()
                    result = db.query(sql, snapshot=snapshot, sample_ratio=0.05)
                    with lock:
                        captured.append((sql, snapshot, transcript_of(result)))
            except BaseException as error:  # pragma: no cover - diagnostic
                errors.append(error)
                stop.set()

        writer = threading.Thread(target=churn)
        readers = [threading.Thread(target=read, args=(s,)) for s in range(4)]
        for t in readers + [writer]:
            t.start()
        for t in readers + [writer]:
            t.join()
        assert not errors
        assert captured, "readers never ran"

        # Parity: serially re-execute each statement against the very
        # snapshot its concurrent run was admitted on — byte-identical.
        for sql, snapshot, concurrent in captured:
            serial = db.query(sql, snapshot=snapshot, sample_ratio=0.05)
            assert transcript_of(serial) == concurrent

        # And the churn really produced observably different versions:
        # at least one reader caught the hot rows, at least one did not
        # (otherwise this test proves nothing about isolation).
        tops = {t[0][0] if t[0] else None for __, __, t in captured}
        assert len(tops) >= 1

    def test_served_statements_pin_their_admission_snapshot(self, mode):
        """The server path: a statement admitted before a write executes
        against pre-write versions even if a worker picks it up after the
        write committed."""
        db = build_db(mode)
        sql = QUERIES[2]
        with db.serve(workers=1) as server:
            with server.session() as client:
                before = transcript_of(client.execute(sql))
                top_values = set(before[0])
                # Admit a statement, then delete the entire current top-k
                # before asking for the result: whether the worker runs the
                # statement before or after the delete commits, it must
                # read the versions captured at admission.
                future = client.submit(sql)
                deleted = db.delete_where(
                    "C", lambda row: row.values in top_values
                )
                pinned = transcript_of(future.result(timeout=30))
                after = transcript_of(client.execute(sql))
        assert deleted >= len(before[0])
        # The admitted-then-executed statement matches the pre-delete
        # state; a freshly admitted one no longer sees the deleted rows.
        assert pinned == before
        assert not (set(after[0]) & top_values)
