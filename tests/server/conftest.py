"""Shared fixtures for the serving-subsystem tests: a small mixed-workload
database and the statement mix every session runs."""

from __future__ import annotations

import pytest

from repro.engine.database import Database
from repro.storage.schema import DataType


def build_serving_db(rows: int = 120) -> Database:
    """A compact two-table database with rank indexes and parameterized
    templates — enough shape for joins, µ evaluation and bind variables."""
    db = Database()
    db.create_table(
        "hotel",
        [
            ("name", DataType.TEXT),
            ("price", DataType.FLOAT),
            ("stars", DataType.INT),
            ("area", DataType.INT),
        ],
    )
    db.create_table(
        "restaurant",
        [("name", DataType.TEXT), ("price", DataType.FLOAT), ("area", DataType.INT)],
    )
    db.insert(
        "hotel",
        [
            (f"hotel-{i}", 40.0 + (i * 7919) % 360, 1 + i % 5, i % 8)
            for i in range(rows)
        ],
    )
    db.insert(
        "restaurant",
        [(f"rest-{i}", 10.0 + (i * 104729) % 80, i % 8) for i in range(rows)],
    )
    db.register_predicate("cheap", ["hotel.price"], lambda p: max(0.0, 1 - p / 400))
    db.register_predicate("starry", ["hotel.stars"], lambda s: s / 5)
    db.register_predicate(
        "tasty", ["restaurant.price"], lambda p: max(0.0, 1 - p / 90)
    )
    db.create_rank_index("hotel", "cheap")
    db.create_rank_index("restaurant", "tasty")
    db.create_column_index("hotel", "area")
    db.create_column_index("restaurant", "area")
    db.analyze()
    return db


#: the mixed workload: rank scans, a join, aggregative scoring, and a
#: parameterized template (sql, params)
MIXED_WORKLOAD: list[tuple[str, "dict | None"]] = [
    ("SELECT * FROM hotel ORDER BY cheap(hotel.price) LIMIT 5", None),
    (
        "SELECT * FROM hotel ORDER BY cheap(hotel.price) + starry(hotel.stars) "
        "LIMIT 7",
        None,
    ),
    (
        "SELECT * FROM hotel, restaurant WHERE hotel.area = restaurant.area "
        "ORDER BY cheap(hotel.price) + tasty(restaurant.price) LIMIT 4",
        None,
    ),
    (
        "SELECT * FROM hotel WHERE hotel.price <= :max_price "
        "ORDER BY cheap(hotel.price) LIMIT 6",
        {"max_price": 220.0},
    ),
    ("SELECT * FROM restaurant ORDER BY tasty(restaurant.price) LIMIT 5", None),
]


@pytest.fixture()
def serving_db() -> Database:
    db = build_serving_db()
    yield db
    db.close()


@pytest.fixture()
def mixed_workload() -> "list[tuple[str, dict | None]]":
    return list(MIXED_WORKLOAD)
