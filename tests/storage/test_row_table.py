"""Unit tests for rows and heap tables."""

import pytest

from repro.storage import DataType, Row, Schema, SchemaError, Table


class TestRow:
    def test_base_identity(self):
        row = Row.base([1, 2], "t", 7)
        assert row.rid == (("t", 7),)
        assert row.values == (1, 2)

    def test_concat_merges_identity(self):
        left = Row.base([1], "t", 0)
        right = Row.base([2], "u", 3)
        joined = left.concat(right)
        assert joined.values == (1, 2)
        assert joined.rid == (("t", 0), ("u", 3))

    def test_project_keeps_identity(self):
        row = Row.base([1, 2, 3], "t", 0)
        projected = row.project([2, 0])
        assert projected.values == (3, 1)
        assert projected.rid == row.rid

    def test_equality(self):
        assert Row.base([1], "t", 0) == Row.base([1], "t", 0)
        assert Row.base([1], "t", 0) != Row.base([1], "t", 1)

    def test_hash_by_identity(self):
        assert hash(Row.base([1], "t", 0)) == hash(Row.base([9], "t", 0))

    def test_sequence_protocol(self):
        row = Row.base([10, 20], "t", 0)
        assert row[1] == 20
        assert list(row) == [10, 20]
        assert len(row) == 2


class TestTable:
    def make(self):
        return Table("t", Schema.of(("a", DataType.INT), ("b", DataType.FLOAT)))

    def test_insert_assigns_ordinals(self):
        table = self.make()
        first = table.insert([1, 1.0])
        second = table.insert([2, 2.0])
        assert first.rid == (("t", 0),)
        assert second.rid == (("t", 1),)
        assert table.row_count == 2

    def test_insert_validates(self):
        table = self.make()
        with pytest.raises(SchemaError):
            table.insert(["bad", 1.0])

    def test_insert_many(self):
        table = self.make()
        assert table.insert_many([(1, 1.0), (2, 2.0), (3, 3.0)]) == 3

    def test_insert_dicts(self):
        table = self.make()
        table.insert_dicts([{"a": 1, "b": 2.0}, {"a": 2}])
        rows = list(table.rows())
        assert rows[0].values == (1, 2.0)
        assert rows[1].values == (2, None)  # missing column becomes NULL

    def test_insert_dicts_unknown_column(self):
        table = self.make()
        with pytest.raises(SchemaError):
            table.insert_dicts([{"zzz": 1}])

    def test_rows_in_heap_order(self):
        table = self.make()
        table.insert_many([(3, 0.0), (1, 0.0), (2, 0.0)])
        assert [r[0] for r in table.rows()] == [3, 1, 2]

    def test_row_at(self):
        table = self.make()
        table.insert([5, 0.5])
        assert table.row_at(0).values == (5, 0.5)

    def test_schema_qualified_with_table_name(self):
        table = self.make()
        assert table.schema.qualified_names() == ["t.a", "t.b"]

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Table("", Schema.of("a"))


class TestColumnarViewInvalidation:
    """The cached columnar view must refresh after *every* heap-mutating
    path — including the bulk ones (`insert_many`, `insert_dicts`, CSV
    load) — and must survive non-mutating operations (`attach_index`
    backfill) unchanged.  Regression tests for the batched execution path,
    which reads stale views as silently-wrong query results."""

    def make(self):
        return Table("t", Schema.of(("a", DataType.INT), ("b", DataType.FLOAT)))

    def assert_view_current(self, table):
        view = table.columns()
        rows = list(table.rows())
        assert len(view) == len(rows)
        assert view.rids == [r.rid for r in rows]
        assert view.columns[0] == [r[0] for r in rows]
        assert view.columns[1] == [r[1] for r in rows]

    def test_insert_many_after_columnar_read(self):
        table = self.make()
        table.insert_many([(1, 0.1), (2, 0.2)])
        stale = table.columns()
        assert len(stale) == 2
        table.insert_many([(3, 0.3), (4, 0.4)])
        fresh = table.columns()
        assert fresh is not stale
        self.assert_view_current(table)
        # the old snapshot is immutable: it still describes the old state
        assert len(stale) == 2

    def test_insert_dicts_after_columnar_read(self):
        table = self.make()
        table.insert_dicts([{"a": 1, "b": 0.5}])
        stale = table.columns()
        table.insert_dicts([{"a": 2}])
        assert table.columns() is not stale
        self.assert_view_current(table)

    def test_empty_bulk_insert_keeps_cached_view(self):
        table = self.make()
        table.insert_many([(1, 0.1)])
        view = table.columns()
        assert table.insert_many([]) == 0
        assert table.columns() is view  # no mutation, no invalidation

    def test_csv_load_after_columnar_read(self, tmp_path):
        from repro.engine.csv_io import load_csv

        table = self.make()
        table.insert_many([(1, 0.25)])
        stale = table.columns()
        path = tmp_path / "rows.csv"
        path.write_text("a,b\n7,0.75\n8,0.5\n")
        assert load_csv(table, path) == 2
        assert table.columns() is not stale
        self.assert_view_current(table)

    def test_attach_index_backfill_does_not_stale_the_view(self):
        from repro.storage import ColumnIndex

        table = self.make()
        table.insert_many([(3, 0.3), (1, 0.1), (2, 0.2)])
        view = table.columns()
        # Backfilling an index reads the heap but never mutates it: the
        # cached snapshot stays valid (and identical).
        table.attach_index(ColumnIndex("t_a_idx", table.schema, "t.a"))
        assert table.columns() is view
        self.assert_view_current(table)
        # ... and bulk inserts after the backfill refresh both structures.
        table.insert_many([(0, 0.0)])
        self.assert_view_current(table)
        index = table.find_index(key="t.a")
        assert [r[0] for r in index.scan_ascending()] == [0, 1, 2, 3]

    def test_single_insert_after_bulk_read(self):
        table = self.make()
        table.insert_many([(1, 0.1)])
        table.columns()
        table.insert((2, 0.2))
        self.assert_view_current(table)
