"""Copy-on-write table versioning: publication safety and delete semantics.

The serving subsystem's snapshot isolation rests on three storage
guarantees tested here:

* a published :class:`TableVersion` never changes — rows, index entries
  and the cached columnar view a reader captured stay exactly as captured;
* writers publish whole batches atomically (a reader sees all of a bulk
  insert or none of it); and
* deletes never renumber or reuse row identities.
"""

from __future__ import annotations

import threading

import pytest

from repro.storage import ColumnIndex, DataType, DatabaseSnapshot, Schema, Table
from repro.storage.catalog import Catalog


def make_table() -> Table:
    return Table("t", Schema.of(("k", DataType.INT), ("x", DataType.FLOAT)))


class TestVersionPublication:
    def test_version_is_stable_until_a_write(self):
        table = make_table()
        table.insert_many([(1, 0.1), (2, 0.2)])
        version = table.version()
        assert table.version() is version
        table.insert((3, 0.3))
        assert table.version() is not version

    def test_generation_bumps_on_every_write(self):
        table = make_table()
        generations = [table.generation]
        table.insert((1, 0.1))
        generations.append(table.generation)
        table.insert_many([(2, 0.2), (3, 0.3)])
        generations.append(table.generation)
        table.delete_where(lambda row: row[0] == 1)
        generations.append(table.generation)
        assert generations == sorted(set(generations))  # strictly increasing

    def test_old_version_keeps_its_rows_after_insert(self):
        table = make_table()
        table.insert_many([(1, 0.1), (2, 0.2)])
        old = table.version()
        table.insert_many([(3, 0.3)])
        assert [r.values for r in old.rows()] == [(1, 0.1), (2, 0.2)]
        assert [r.values for r in table.rows()] == [(1, 0.1), (2, 0.2), (3, 0.3)]

    def test_old_version_keeps_deleted_rows(self):
        table = make_table()
        table.insert_many([(1, 0.1), (2, 0.2), (3, 0.3)])
        old = table.version()
        assert table.delete_where(lambda row: row[0] == 2) == 1
        assert [r.values for r in old.rows()] == [(1, 0.1), (2, 0.2), (3, 0.3)]
        assert [r.values for r in table.rows()] == [(1, 0.1), (3, 0.3)]

    def test_empty_delete_publishes_nothing(self):
        table = make_table()
        table.insert_many([(1, 0.1)])
        version = table.version()
        assert table.delete_where(lambda row: row[0] == 99) == 0
        assert table.version() is version


class TestColumnarPublicationSafety:
    """The satellite regression: a reader holding an old snapshot keeps its
    old column arrays under the new versioning."""

    def test_reader_keeps_old_column_arrays(self):
        table = make_table()
        table.insert_many([(1, 0.1), (2, 0.2)])
        old_version = table.version()
        old_view = old_version.columns()
        table.insert_many([(3, 0.3)])
        table.delete_where(lambda row: row[0] == 1)
        # The captured view object and its exact arrays are untouched.
        assert old_version.columns() is old_view
        assert old_view.columns[0] == [1, 2]
        assert old_view.columns[1] == [0.1, 0.2]
        assert len(old_view) == 2
        # The current version builds fresh arrays reflecting the writes.
        new_view = table.columns()
        assert new_view is not old_view
        assert new_view.columns[0] == [2, 3]

    def test_view_is_cached_per_version(self):
        table = make_table()
        table.insert_many([(1, 0.1)])
        assert table.columns() is table.columns()
        version = table.version()
        assert version.columns() is table.columns()

    def test_attach_index_carries_view_forward(self):
        table = make_table()
        table.insert_many([(3, 0.3), (1, 0.1)])
        view = table.columns()
        table.attach_index(ColumnIndex("t_k_idx", table.schema, "t.k"))
        # The heap did not change: same view object, no rebuild.
        assert table.columns() is view


class TestIndexPinning:
    def test_pinned_index_ignores_later_inserts(self):
        table = make_table()
        index = ColumnIndex("t_k_idx", table.schema, "t.k")
        table.attach_index(index)
        table.insert_many([(2, 0.2), (1, 0.1)])
        old = table.version()
        pinned = old.find_index(key="t.k")
        assert [r[0] for r in pinned.scan_ascending()] == [1, 2]
        table.insert((0, 0.0))
        table.delete_where(lambda row: row[0] == 1)
        # The pinned snapshot is frozen; the live handle is current.
        assert [r[0] for r in pinned.scan_ascending()] == [1, 2]
        assert [r[0] for r in index.scan_ascending()] == [0, 2]
        assert [r[0] for r in table.find_index(key="t.k").scan_ascending()] == [0, 2]

    def test_delete_filters_every_index(self):
        table = make_table()
        table.attach_index(ColumnIndex("t_k_idx", table.schema, "t.k"))
        table.insert_many([(i, i / 10) for i in range(6)])
        table.delete_where(lambda row: row[0] % 2 == 0)
        assert [r[0] for r in table.find_index(key="t.k").scan_ascending()] == [1, 3, 5]


class TestRowIdentityStability:
    def test_delete_never_renumbers_survivors(self):
        table = make_table()
        table.insert_many([(i, 0.0) for i in range(4)])
        rids_before = {r.values[0]: r.rid for r in table.rows()}
        table.delete_where(lambda row: row[0] in (0, 2))
        for row in table.rows():
            assert row.rid == rids_before[row.values[0]]

    def test_insert_after_delete_does_not_reuse_rids(self):
        table = make_table()
        table.insert_many([(i, 0.0) for i in range(3)])
        all_rids = {r.rid for r in table.rows()}
        table.delete_where(lambda row: True)
        table.insert_many([(10, 1.0), (11, 1.1)])
        new_rids = {r.rid for r in table.rows()}
        assert not (new_rids & all_rids)


class TestSnapshotCapture:
    def test_snapshot_pins_all_tables(self):
        catalog = Catalog()
        t1 = catalog.create_table("t1", Schema.of(("k", DataType.INT)))
        t2 = catalog.create_table("t2", Schema.of(("k", DataType.INT)))
        t1.insert_many([(1,), (2,)])
        snap = DatabaseSnapshot(catalog)
        t1.insert((3,))
        t2.insert((9,))
        assert snap.table("t1").row_count == 2
        assert snap.table("t2").row_count == 0
        assert t1.row_count == 3

    def test_snapshot_raises_catalog_error_for_unknown_tables(self):
        from repro.storage import CatalogError

        snap = DatabaseSnapshot(Catalog())
        with pytest.raises(CatalogError):
            snap.table("nope")


class TestLiveIndexScanConsistency:
    def test_in_progress_scan_survives_concurrent_rebind(self):
        """A scan over the *live* index object captures one rebind state:
        a concurrent delete/insert must not tear it mid-iteration."""
        table = make_table()
        index = ColumnIndex("t_k_idx", table.schema, "t.k")
        table.attach_index(index)
        table.insert_many([(i, 0.0) for i in range(200)])
        scan = index.range_scan()
        seen = [next(scan)[0] for __ in range(3)]
        table.delete_where(lambda row: row[0] >= 3)  # shrink under the scan
        rest = [row[0] for row in scan]  # pre-fix: IndexError / torn pairs
        assert seen + rest == list(range(200))


class TestConcurrentPublication:
    def test_reader_never_sees_a_partial_batch(self):
        """A writer publishing 10-row batches while readers capture
        versions: every observed count is a multiple of the batch size."""
        table = make_table()
        batch = [(i, 0.0) for i in range(10)]
        stop = threading.Event()
        bad_counts: list[int] = []

        def write() -> None:
            for __ in range(60):
                table.insert_many(batch)
            stop.set()

        def read() -> None:
            while not stop.is_set():
                version = table.version()
                count = sum(1 for __ in version.rows())
                if count % 10 != 0 or count != version.row_count:
                    bad_counts.append(count)

        readers = [threading.Thread(target=read) for __ in range(3)]
        writer = threading.Thread(target=write)
        for t in readers + [writer]:
            t.start()
        for t in readers + [writer]:
            t.join()
        assert not bad_counts
        assert table.row_count == 600
