"""Property-based tests for the index structures (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.storage import ColumnIndex, DataType, RankIndex, Schema, Table

keys = st.integers(-50, 50)
scores = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
rows = st.lists(st.tuples(keys, scores), max_size=60)


def build_table(data):
    table = Table("t", Schema.of(("k", DataType.INT), ("s", DataType.FLOAT)))
    column_index = ColumnIndex("c", table.schema, "t.k")
    rank_index = RankIndex("r", table.schema, "p", lambda row: row[1])
    table.attach_index(column_index)
    table.attach_index(rank_index)
    for row in data:
        table.insert(list(row))
    return table, column_index, rank_index


class TestColumnIndexProperties:
    @settings(max_examples=60, deadline=None)
    @given(data=rows)
    def test_ascending_scan_sorted(self, data):
        __, column_index, __ = build_table(data)
        got = [r[0] for r in column_index.scan_ascending()]
        assert got == sorted(got)
        assert len(got) == len(data)

    @settings(max_examples=60, deadline=None)
    @given(data=rows, probe=keys)
    def test_lookup_matches_filter(self, data, probe):
        __, column_index, __ = build_table(data)
        got = sorted(r.rid for r in column_index.lookup(probe))
        expected = sorted(
            (("t", i),) for i, row in enumerate(data) if row[0] == probe
        )
        assert got == expected

    @settings(max_examples=60, deadline=None)
    @given(data=rows, low=keys, high=keys)
    def test_range_scan_matches_filter(self, data, low, high):
        __, column_index, __ = build_table(data)
        got = sorted(r.rid for r in column_index.range_scan(low, high))
        expected = sorted(
            (("t", i),) for i, row in enumerate(data) if low <= row[0] <= high
        )
        assert got == expected


class TestRankIndexProperties:
    @settings(max_examples=60, deadline=None)
    @given(data=rows)
    def test_scan_descending_scores(self, data):
        __, __, rank_index = build_table(data)
        got = [score for score, __ in rank_index.scan_by_score()]
        assert got == sorted((row[1] for row in data), reverse=True)

    @settings(max_examples=60, deadline=None)
    @given(data=rows)
    def test_ties_ascending_rid(self, data):
        __, __, rank_index = build_table(data)
        previous_score = None
        previous_rid = None
        for score, row in rank_index.scan_by_score():
            if previous_score is not None and score == previous_score:
                assert row.rid > previous_rid
            previous_score, previous_rid = score, row.rid

    @settings(max_examples=60, deadline=None)
    @given(data=rows)
    def test_incremental_equals_bulk(self, data):
        """Inserting row-by-row gives the same index as backfilling."""
        incremental_table, __, incremental = build_table(data)
        bulk_table = Table(
            "t", Schema.of(("k", DataType.INT), ("s", DataType.FLOAT))
        )
        for row in data:
            bulk_table.insert(list(row))
        bulk = RankIndex("r", bulk_table.schema, "p", lambda row: row[1])
        bulk_table.attach_index(bulk)
        assert [r.rid for __, r in incremental.scan_by_score()] == [
            r.rid for __, r in bulk.scan_by_score()
        ]
