"""Unit tests for secondary indexes."""

import random

from repro.storage import ColumnIndex, DataType, MultiKeyIndex, RankIndex, Schema, Table


def make_table():
    table = Table(
        "t",
        Schema.of(("k", DataType.INT), ("flag", DataType.BOOL), ("score", DataType.FLOAT)),
    )
    return table


class TestColumnIndex:
    def test_ascending_scan(self):
        table = make_table()
        index = ColumnIndex("idx", table.schema, "t.k")
        table.attach_index(index)
        table.insert_many([(3, True, 0.1), (1, False, 0.2), (2, True, 0.3)])
        assert [r[0] for r in index.scan_ascending()] == [1, 2, 3]

    def test_descending_scan(self):
        table = make_table()
        index = ColumnIndex("idx", table.schema, "t.k")
        table.attach_index(index)
        table.insert_many([(3, True, 0.1), (1, False, 0.2)])
        assert [r[0] for r in index.scan_descending()] == [3, 1]

    def test_lookup_duplicates(self):
        table = make_table()
        index = ColumnIndex("idx", table.schema, "t.k")
        table.attach_index(index)
        table.insert_many([(1, True, 0.1), (2, True, 0.2), (1, False, 0.3)])
        hits = list(index.lookup(1))
        assert len(hits) == 2
        assert all(r[0] == 1 for r in hits)

    def test_lookup_missing(self):
        table = make_table()
        index = ColumnIndex("idx", table.schema, "t.k")
        table.attach_index(index)
        table.insert([1, True, 0.1])
        assert list(index.lookup(42)) == []

    def test_range_scan(self):
        table = make_table()
        index = ColumnIndex("idx", table.schema, "t.k")
        table.attach_index(index)
        table.insert_many([(i, True, 0.0) for i in range(10)])
        assert [r[0] for r in index.range_scan(3, 6)] == [3, 4, 5, 6]
        assert [r[0] for r in index.range_scan(None, 2)] == [0, 1, 2]
        assert [r[0] for r in index.range_scan(8, None)] == [8, 9]

    def test_backfill_on_attach(self):
        table = make_table()
        table.insert_many([(2, True, 0.0), (1, True, 0.0)])
        index = ColumnIndex("idx", table.schema, "t.k")
        table.attach_index(index)
        assert [r[0] for r in index.scan_ascending()] == [1, 2]

    def test_covers(self):
        table = make_table()
        index = ColumnIndex("idx", table.schema, "t.k")
        assert index.covers("t.k")
        assert not index.covers("t.score")
        assert not index.covers(None)


class TestRankIndex:
    def test_descending_score_order(self):
        table = make_table()
        index = RankIndex("ridx", table.schema, "p", lambda r: r[2])
        table.attach_index(index)
        table.insert_many([(1, True, 0.3), (2, True, 0.9), (3, True, 0.5)])
        scores = [s for s, __ in index.scan_by_score()]
        assert scores == [0.9, 0.5, 0.3]

    def test_ties_broken_by_row_id_ascending(self):
        table = make_table()
        index = RankIndex("ridx", table.schema, "p", lambda r: r[2])
        table.attach_index(index)
        table.insert_many([(1, True, 0.5), (2, True, 0.5), (3, True, 0.5)])
        rows = [r for __, r in index.scan_by_score()]
        assert [r.rid[0][1] for r in rows] == [0, 1, 2]

    def test_covers_predicate_name(self):
        index = RankIndex("ridx", make_table().schema, "p", lambda r: r[2])
        assert index.covers("p")
        assert not index.covers("q")

    def test_random_agreement_with_sorted(self, rng):
        table = make_table()
        index = RankIndex("ridx", table.schema, "p", lambda r: r[2])
        table.attach_index(index)
        values = [(i, True, rng.random()) for i in range(200)]
        table.insert_many(values)
        got = [s for s, __ in index.scan_by_score()]
        assert got == sorted((v[2] for v in values), reverse=True)


class TestMultiKeyIndex:
    def test_scan_matching_filters_and_orders(self):
        table = make_table()
        index = MultiKeyIndex("midx", table.schema, "t.flag", "p", lambda r: r[2])
        table.attach_index(index)
        table.insert_many(
            [(1, True, 0.3), (2, False, 0.99), (3, True, 0.8), (4, False, 0.1)]
        )
        hits = list(index.scan_matching(True))
        assert [round(s, 2) for s, __ in hits] == [0.8, 0.3]
        assert all(r[1] is True for __, r in hits)

    def test_scan_matching_false(self):
        table = make_table()
        index = MultiKeyIndex("midx", table.schema, "t.flag", "p", lambda r: r[2])
        table.attach_index(index)
        table.insert_many([(1, True, 0.3), (2, False, 0.9)])
        assert [r[0] for __, r in index.scan_matching(False)] == [2]

    def test_covers_both_keys(self):
        index = MultiKeyIndex("midx", make_table().schema, "t.flag", "p", lambda r: r[2])
        assert index.covers("p")
        assert index.covers("t.flag")
        assert not index.covers("other")


class TestTableIndexIntegration:
    def test_duplicate_index_name_rejected(self):
        import pytest

        table = make_table()
        table.attach_index(ColumnIndex("idx", table.schema, "t.k"))
        with pytest.raises(ValueError):
            table.attach_index(ColumnIndex("idx", table.schema, "t.k"))

    def test_find_index_by_key(self):
        table = make_table()
        column_index = ColumnIndex("c", table.schema, "t.k")
        rank_index = RankIndex("r", table.schema, "p", lambda r: r[2])
        table.attach_index(column_index)
        table.attach_index(rank_index)
        assert table.find_index(key="t.k") is column_index
        assert table.find_index(key="p") is rank_index
        assert table.find_index(key="nope") is None

    def test_inserts_maintain_all_indexes(self):
        table = make_table()
        column_index = ColumnIndex("c", table.schema, "t.k")
        rank_index = RankIndex("r", table.schema, "p", lambda r: r[2])
        table.attach_index(column_index)
        table.attach_index(rank_index)
        table.insert_many([(2, True, 0.5), (1, True, 0.9)])
        assert len(column_index) == 2
        assert len(rank_index) == 2
