"""Unit tests for statistics and the catalog."""

import pytest

from repro.algebra.predicates import RankingPredicate
from repro.storage import Catalog, CatalogError, DataType, Schema, analyze_table
from repro.storage.stats import Histogram


class TestHistogram:
    def test_selectivity_le_bounds(self):
        histogram = Histogram(0.0, 10.0, [10, 10, 10, 10])
        assert histogram.selectivity_le(-1) == 0.0
        assert histogram.selectivity_le(10.0) == 1.0
        assert histogram.selectivity_le(11.0) == 1.0

    def test_selectivity_le_interpolates(self):
        histogram = Histogram(0.0, 10.0, [10, 10, 10, 10])
        assert abs(histogram.selectivity_le(5.0) - 0.5) < 1e-9

    def test_selectivity_between(self):
        histogram = Histogram(0.0, 10.0, [10, 10, 10, 10])
        assert abs(histogram.selectivity_between(2.5, 7.5) - 0.5) < 1e-9

    def test_empty(self):
        histogram = Histogram(0.0, 1.0, [0])
        assert histogram.selectivity_le(0.5) == 0.0


class TestAnalyzeTable:
    def make_catalog(self):
        catalog = Catalog()
        table = catalog.create_table(
            "t",
            Schema.of(("k", DataType.INT), ("x", DataType.FLOAT), ("s", DataType.TEXT)),
        )
        table.insert_many(
            [
                (1, 0.5, "a"),
                (2, 1.5, "b"),
                (2, 2.5, None),
                (3, 3.5, "a"),
            ]
        )
        return catalog, table

    def test_row_count(self):
        __, table = self.make_catalog()
        stats = analyze_table(table)
        assert stats.row_count == 4

    def test_distinct_counts(self):
        __, table = self.make_catalog()
        stats = analyze_table(table)
        assert stats.column("k").n_distinct == 3
        assert stats.column("s").n_distinct == 2

    def test_null_fraction(self):
        __, table = self.make_catalog()
        stats = analyze_table(table)
        assert abs(stats.column("s").null_fraction - 0.25) < 1e-9

    def test_min_max(self):
        __, table = self.make_catalog()
        stats = analyze_table(table)
        assert stats.column("x").min_value == 0.5
        assert stats.column("x").max_value == 3.5

    def test_numeric_histogram_built(self):
        __, table = self.make_catalog()
        stats = analyze_table(table)
        assert stats.column("x").histogram is not None
        assert stats.column("s").histogram is None

    def test_equality_selectivity(self):
        __, table = self.make_catalog()
        stats = analyze_table(table)
        assert abs(stats.column("k").equality_selectivity() - 1 / 3) < 1e-9

    def test_join_selectivity(self):
        catalog, table = self.make_catalog()
        other = catalog.create_table("u", Schema.of(("k", DataType.INT)))
        other.insert_many([(i,) for i in range(10)])
        mine = analyze_table(table)
        theirs = analyze_table(other)
        assert abs(mine.join_selectivity("k", theirs, "k") - 1 / 10) < 1e-9

    def test_empty_table(self):
        catalog = Catalog()
        table = catalog.create_table("e", Schema.of("a"))
        stats = analyze_table(table)
        assert stats.row_count == 0
        assert stats.column("a").n_distinct == 0


class TestCatalog:
    def test_create_and_lookup(self):
        catalog = Catalog()
        table = catalog.create_table("t", Schema.of("a"))
        assert catalog.table("t") is table
        assert catalog.has_table("t")

    def test_duplicate_table_rejected(self):
        catalog = Catalog()
        catalog.create_table("t", Schema.of("a"))
        with pytest.raises(CatalogError):
            catalog.create_table("t", Schema.of("a"))

    def test_unknown_table(self):
        with pytest.raises(CatalogError):
            Catalog().table("nope")

    def test_drop_table(self):
        catalog = Catalog()
        catalog.create_table("t", Schema.of("a"))
        catalog.drop_table("t")
        assert not catalog.has_table("t")
        with pytest.raises(CatalogError):
            catalog.drop_table("t")

    def test_stats_cached_and_refreshed(self):
        catalog = Catalog()
        table = catalog.create_table("t", Schema.of("a"))
        table.insert([1.0])
        first = catalog.stats("t")
        assert first.row_count == 1
        table.insert([2.0])
        # Cached until re-analyzed.
        assert catalog.stats("t").row_count == 1
        assert catalog.analyze("t").row_count == 2

    def test_predicate_registry(self):
        catalog = Catalog()
        predicate = RankingPredicate("p", ["t.a"], lambda v: v)
        catalog.register_predicate(predicate)
        assert catalog.predicate("p") is predicate
        assert catalog.has_predicate("p")
        with pytest.raises(CatalogError):
            catalog.register_predicate(predicate)
        with pytest.raises(CatalogError):
            catalog.predicate("missing")

    def test_tables_iteration(self):
        catalog = Catalog()
        catalog.create_table("a", Schema.of("x"))
        catalog.create_table("b", Schema.of("x"))
        assert sorted(t.name for t in catalog.tables()) == ["a", "b"]
