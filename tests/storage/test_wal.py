"""Unit tests for the write-ahead log layer itself: record codec,
segment naming, torn-tail truncation, group folding, rotation and GC.

Engine-level durability (replay through a Database) lives in
tests/engine/test_durability.py; these tests poke the log directly.
"""

import os
import struct
import zlib

import pytest

from repro.storage.wal import (
    FSYNC_MODES,
    MAX_RECORD_BYTES,
    WALError,
    WriteAheadLog,
    committed_groups,
    encode_record,
    iter_records,
    list_segments,
    scan_segments,
    segment_path,
)

_HEADER = struct.Struct("<II")


def write_records(path, payloads):
    with open(path, "ab") as handle:
        for payload in payloads:
            handle.write(encode_record(payload))


# ---------------------------------------------------------------------------
# record codec
# ---------------------------------------------------------------------------
def test_encode_record_layout():
    payload = {"t": "begin", "txn": 7}
    encoded = encode_record(payload)
    length, crc = _HEADER.unpack(encoded[: _HEADER.size])
    body = encoded[_HEADER.size :]
    assert length == len(body)
    assert crc == zlib.crc32(body)
    assert b'"t":"begin"' in body  # compact separators, no spaces


def test_iter_records_round_trip(tmp_path):
    path = tmp_path / "wal.00000001.log"
    payloads = [
        {"t": "begin", "txn": 1},
        {"t": "insert", "txn": 1, "table": "kv", "rows": [[0, [1, 2]]]},
        {"t": "commit", "txn": 1},
    ]
    write_records(path, payloads)
    decoded = list(iter_records(path))
    assert [p for __, p in decoded] == payloads
    # offsets are the byte positions of each record
    assert decoded[0][0] == 0
    assert decoded[1][0] == len(encode_record(payloads[0]))


def test_iter_records_stops_at_torn_tail(tmp_path):
    path = tmp_path / "wal.00000001.log"
    whole = {"t": "begin", "txn": 1}
    write_records(path, [whole])
    with open(path, "ab") as handle:
        handle.write(encode_record({"t": "commit", "txn": 1})[:-3])
    assert [p for __, p in iter_records(path)] == [whole]


def test_iter_records_stops_at_crc_mismatch(tmp_path):
    path = tmp_path / "wal.00000001.log"
    write_records(path, [{"t": "begin", "txn": 1}, {"t": "commit", "txn": 1}])
    data = bytearray(path.read_bytes())
    data[-1] ^= 0xFF  # flip a byte inside the second record's payload
    path.write_bytes(bytes(data))
    assert [p for __, p in iter_records(path)] == [{"t": "begin", "txn": 1}]


def test_iter_records_rejects_absurd_length_prefix(tmp_path):
    path = tmp_path / "wal.00000001.log"
    path.write_bytes(_HEADER.pack(MAX_RECORD_BYTES + 1, 0) + b"x" * 16)
    assert list(iter_records(path)) == []


# ---------------------------------------------------------------------------
# segment naming & listing
# ---------------------------------------------------------------------------
def test_segment_path_zero_pads_epoch(tmp_path):
    assert segment_path(tmp_path, 3).name == "wal.00000003.log"


def test_list_segments_sorted_and_filtered(tmp_path):
    for epoch in (3, 1, 2):
        segment_path(tmp_path, epoch).touch()
    (tmp_path / "catalog.json").write_text("{}")
    (tmp_path / "kv.ckpt000001.csv").write_text("")
    assert [epoch for epoch, __ in list_segments(tmp_path)] == [1, 2, 3]


def test_list_segments_missing_directory(tmp_path):
    assert list_segments(tmp_path / "nope") == []


def test_list_segments_rejects_garbled_name(tmp_path):
    (tmp_path / "wal.banana.log").touch()
    with pytest.raises(WALError, match="unrecognized"):
        list_segments(tmp_path)


# ---------------------------------------------------------------------------
# scan_segments: torn tails are legal only in the final segment
# ---------------------------------------------------------------------------
def test_scan_segments_truncates_torn_final_segment(tmp_path):
    path = segment_path(tmp_path, 1)
    write_records(path, [{"t": "begin", "txn": 1}, {"t": "commit", "txn": 1}])
    durable_size = path.stat().st_size
    with open(path, "ab") as handle:
        handle.write(encode_record({"t": "begin", "txn": 2})[:-2])
    records = scan_segments(tmp_path)
    assert records == [{"t": "begin", "txn": 1}, {"t": "commit", "txn": 1}]
    assert path.stat().st_size == durable_size  # tail truncated away


def test_scan_segments_truncate_false_preserves_tail(tmp_path):
    path = segment_path(tmp_path, 1)
    write_records(path, [{"t": "begin", "txn": 1}])
    with open(path, "ab") as handle:
        handle.write(b"\x01\x02\x03")
    size = path.stat().st_size
    records = scan_segments(tmp_path, truncate=False)
    assert records == [{"t": "begin", "txn": 1}]
    assert path.stat().st_size == size


def test_scan_segments_raises_on_mid_log_corruption(tmp_path):
    torn = segment_path(tmp_path, 1)
    write_records(torn, [{"t": "begin", "txn": 1}])
    with open(torn, "ab") as handle:
        handle.write(encode_record({"t": "commit", "txn": 1})[:-4])
    # A later segment exists, so segment 1's short tail is corruption,
    # not a torn final append.
    write_records(segment_path(tmp_path, 2), [{"t": "begin", "txn": 2}])
    with pytest.raises(WALError, match="mid-log"):
        scan_segments(tmp_path)


def test_scan_segments_from_epoch_skips_older(tmp_path):
    write_records(segment_path(tmp_path, 1), [{"t": "begin", "txn": 1}])
    write_records(segment_path(tmp_path, 2), [{"t": "begin", "txn": 2}])
    assert scan_segments(tmp_path, from_epoch=2) == [{"t": "begin", "txn": 2}]


# ---------------------------------------------------------------------------
# committed_groups
# ---------------------------------------------------------------------------
def test_committed_groups_orders_by_commit_record():
    ins1 = {"t": "insert", "txn": 1, "table": "kv", "rows": [[0, [0, 1]]]}
    ins2 = {"t": "insert", "txn": 2, "table": "kv", "rows": [[1, [1, 2]]]}
    records = [
        {"t": "begin", "txn": 1},
        {"t": "begin", "txn": 2},
        ins1,
        ins2,
        {"t": "commit", "txn": 2},  # 2 commits first despite beginning later
        {"t": "commit", "txn": 1},
    ]
    groups = committed_groups(records)
    assert [g["txn"] for g in groups] == [2, 1]
    assert groups[0]["ops"] == [ins2]
    assert groups[1]["ops"] == [ins1]


def test_committed_groups_discards_uncommitted_and_rolled_back():
    records = [
        {"t": "begin", "txn": 1},
        {"t": "insert", "txn": 1, "table": "kv", "rows": [[0, [0, 1]]]},
        {"t": "rollback", "txn": 1},
        {"t": "begin", "txn": 2},
        {"t": "insert", "txn": 2, "table": "kv", "rows": [[1, [1, 2]]]},
        # txn 2 was in flight at the crash: no commit record
        {"t": "begin", "txn": 3},
        {"t": "commit", "txn": 3},
    ]
    groups = committed_groups(records)
    assert [g["txn"] for g in groups] == [3]
    assert groups[0]["ops"] == []


def test_committed_groups_rejects_unknown_record_type():
    with pytest.raises(WALError, match="unknown WAL record type"):
        committed_groups([{"t": "compensate", "txn": 1}])


# ---------------------------------------------------------------------------
# WriteAheadLog: append, rotate, GC, fsync modes
# ---------------------------------------------------------------------------
def test_wal_appends_are_readable_back(tmp_path):
    with WriteAheadLog(tmp_path) as wal:
        wal.log_begin(5)
        wal.log_insert(5, "kv", [(0, (1, 10)), (1, (2, 20))])
        wal.log_delete(5, "kv", [7, 9])
        wal.log_commit(5)
        assert wal.records_appended == 4
    records = scan_segments(tmp_path)
    assert records == [
        {"t": "begin", "txn": 5},
        {"t": "insert", "txn": 5, "table": "kv",
         "rows": [[0, [1, 10]], [1, [2, 20]]]},
        {"t": "delete", "txn": 5, "table": "kv", "rids": [7, 9]},
        {"t": "commit", "txn": 5},
    ]


def test_wal_reopen_resumes_latest_epoch(tmp_path):
    with WriteAheadLog(tmp_path) as wal:
        wal.log_begin(1)
        epoch = wal.rotate()
        wal.log_begin(2)
    with WriteAheadLog(tmp_path) as wal:
        assert wal.epoch == epoch
        wal.log_commit(2)
    records = scan_segments(tmp_path, from_epoch=epoch)
    assert records == [{"t": "begin", "txn": 2}, {"t": "commit", "txn": 2}]


def test_wal_rotate_moves_appends_to_new_segment(tmp_path):
    with WriteAheadLog(tmp_path) as wal:
        first = wal.epoch
        wal.log_begin(1)
        second = wal.rotate()
        assert second == first + 1
        assert wal.lsn == (second, 0)
        wal.log_begin(2)
    assert scan_segments(tmp_path, from_epoch=second) == [
        {"t": "begin", "txn": 2}
    ]
    assert scan_segments(tmp_path) == [
        {"t": "begin", "txn": 1},
        {"t": "begin", "txn": 2},
    ]


def test_wal_remove_segments_before(tmp_path):
    with WriteAheadLog(tmp_path) as wal:
        wal.log_begin(1)
        wal.rotate()
        wal.rotate()
        removed = wal.remove_segments_before(wal.epoch)
        assert removed == 2
        assert [e for e, __ in list_segments(tmp_path)] == [wal.epoch]


def test_wal_rejects_unknown_fsync_mode(tmp_path):
    with pytest.raises(WALError, match="fsync"):
        WriteAheadLog(tmp_path, fsync="sometimes")


@pytest.mark.parametrize("mode", FSYNC_MODES)
def test_wal_fsync_modes_all_append(tmp_path, mode):
    directory = tmp_path / mode
    with WriteAheadLog(directory, fsync=mode) as wal:
        wal.log_begin(1)
        wal.log_commit(1)
    assert len(scan_segments(directory)) == 2


def test_wal_lsn_tracks_offset(tmp_path):
    with WriteAheadLog(tmp_path) as wal:
        epoch, offset = wal.lsn
        assert offset == 0
        wal.log_begin(1)
        assert wal.lsn == (
            epoch, len(encode_record({"t": "begin", "txn": 1}))
        )
