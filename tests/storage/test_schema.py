"""Unit tests for schemas and columns."""

import pytest

from repro.storage.schema import Column, DataType, Schema, SchemaError


class TestDataType:
    def test_infer_int(self):
        assert DataType.infer(3) is DataType.INT

    def test_infer_bool_before_int(self):
        # bool is a subclass of int; inference must pick BOOL.
        assert DataType.infer(True) is DataType.BOOL

    def test_infer_float(self):
        assert DataType.infer(1.5) is DataType.FLOAT

    def test_infer_text(self):
        assert DataType.infer("x") is DataType.TEXT

    def test_infer_unsupported(self):
        with pytest.raises(TypeError):
            DataType.infer([1, 2])

    def test_validate_null_always_ok(self):
        for dtype in DataType:
            assert dtype.validate(None)

    def test_validate_int_rejects_bool(self):
        assert not DataType.INT.validate(True)

    def test_validate_float_accepts_int(self):
        assert DataType.FLOAT.validate(3)

    def test_validate_bool(self):
        assert DataType.BOOL.validate(False)
        assert not DataType.BOOL.validate(0)

    def test_validate_text(self):
        assert DataType.TEXT.validate("a")
        assert not DataType.TEXT.validate(1)


class TestColumn:
    def test_qualified_name(self):
        assert Column("price", DataType.FLOAT, "hotel").qualified_name == "hotel.price"

    def test_unqualified_name(self):
        assert Column("price").qualified_name == "price"

    def test_with_table(self):
        column = Column("x").with_table("t")
        assert column.table == "t"
        assert column.qualified_name == "t.x"

    def test_matches_bare(self):
        assert Column("x", table="t").matches("x")

    def test_matches_qualified(self):
        assert Column("x", table="t").matches("t.x")
        assert not Column("x", table="t").matches("u.x")


class TestSchema:
    def test_of_shorthand(self):
        schema = Schema.of("a", ("b", DataType.INT), table="t")
        assert schema.column_names() == ["a", "b"]
        assert schema.column("b").dtype is DataType.INT
        assert schema.qualified_names() == ["t.a", "t.b"]

    def test_index_of_qualified(self):
        schema = Schema.of("a", "b", table="t")
        assert schema.index_of("t.b") == 1

    def test_index_of_bare(self):
        schema = Schema.of("a", "b", table="t")
        assert schema.index_of("b") == 1

    def test_index_of_unknown_raises(self):
        schema = Schema.of("a", table="t")
        with pytest.raises(SchemaError):
            schema.index_of("zzz")

    def test_index_of_ambiguous_raises(self):
        schema = Schema.of("a", table="t").concat(Schema.of("a", table="u"))
        with pytest.raises(SchemaError):
            schema.index_of("a")
        # Qualified lookup disambiguates.
        assert schema.index_of("u.a") == 1

    def test_has_column(self):
        schema = Schema.of("a", table="t")
        assert schema.has_column("a")
        assert not schema.has_column("b")

    def test_concat_preserves_order(self):
        combined = Schema.of("a", table="t").concat(Schema.of("b", table="u"))
        assert combined.qualified_names() == ["t.a", "u.b"]

    def test_project(self):
        schema = Schema.of("a", "b", "c", table="t")
        projected = schema.project(["c", "a"])
        assert projected.qualified_names() == ["t.c", "t.a"]

    def test_with_table_requalifies(self):
        schema = Schema.of("a", table="t").with_table("u")
        assert schema.qualified_names() == ["u.a"]

    def test_validate_row_arity(self):
        schema = Schema.of("a", "b", table="t")
        with pytest.raises(SchemaError):
            schema.validate_row([1.0])

    def test_validate_row_type(self):
        schema = Schema.of(("a", DataType.INT), table="t")
        with pytest.raises(SchemaError):
            schema.validate_row(["not an int"])

    def test_validate_row_accepts_null(self):
        schema = Schema.of(("a", DataType.INT), table="t")
        schema.validate_row([None])

    def test_equality_and_hash(self):
        s1 = Schema.of("a", table="t")
        s2 = Schema.of("a", table="t")
        assert s1 == s2
        assert hash(s1) == hash(s2)

    def test_iteration(self):
        schema = Schema.of("a", "b", table="t")
        assert [c.name for c in schema] == ["a", "b"]
        assert len(schema) == 2
