"""Wall-clock-faithful predicate costs (spin_loops)."""

import time

import pytest

from repro.algebra.predicates import RankingPredicate
from repro.storage import DataType, Row, Schema

SCHEMA = Schema.of(("x", DataType.FLOAT), table="t")


def evaluate_n(predicate, n=300):
    fn = predicate.compile(SCHEMA)
    row = Row.base([0.5], "t", 0)
    start = time.perf_counter()
    for __ in range(n):
        fn(row)
    return time.perf_counter() - start


class TestSpinLoops:
    def test_score_unaffected(self):
        plain = RankingPredicate("p", ["t.x"], lambda x: x)
        spun = RankingPredicate("q", ["t.x"], lambda x: x, spin_loops=1000)
        row = Row.base([0.7], "t", 0)
        assert plain.compile(SCHEMA)(row) == spun.compile(SCHEMA)(row)

    def test_spin_increases_wall_time(self):
        plain = RankingPredicate("p", ["t.x"], lambda x: x)
        spun = RankingPredicate("q", ["t.x"], lambda x: x, spin_loops=20_000)
        fast = evaluate_n(plain)
        slow = evaluate_n(spun)
        assert slow > fast * 3

    def test_negative_spin_rejected(self):
        with pytest.raises(ValueError):
            RankingPredicate("p", ["t.x"], lambda x: x, spin_loops=-1)

    def test_workload_config_scales_spin_by_cost(self):
        from repro.workloads import WorkloadConfig, build_workload

        workload = build_workload(
            WorkloadConfig(
                table_size=50,
                join_selectivity=0.1,
                predicate_cost=2.0,
                spin_loops_per_cost=100,
                seed=3,
            )
        )
        assert workload.predicates["f1"].spin_loops == 200
