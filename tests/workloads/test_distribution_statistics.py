"""Statistical validation of the §6 score distributions (scipy KS tests)."""

import math
import random

import pytest
from scipy import stats

from repro.workloads.distributions import _cosine_cdf, cosine, normal, uniform

N = 3000
ALPHA = 0.01


def sample(fn, n=N, seed=5):
    rng = random.Random(seed)
    return [fn(rng) for __ in range(n)]


class TestUniform:
    def test_ks_against_uniform(self):
        data = sample(uniform)
        statistic, p_value = stats.kstest(data, "uniform")
        assert p_value > ALPHA

    def test_moments(self):
        data = sample(uniform)
        assert abs(sum(data) / len(data) - 0.5) < 0.02
        variance = sum((v - 0.5) ** 2 for v in data) / len(data)
        assert abs(variance - 1 / 12) < 0.01


class TestNormal:
    def test_mean_near_half(self):
        data = sample(normal)
        assert abs(sum(data) / len(data) - 0.5) < 0.03

    def test_clamped_to_unit_interval(self):
        data = sample(normal)
        assert min(data) >= 0.0 and max(data) <= 1.0

    def test_clamping_mass_at_boundaries(self):
        """σ = 0.4 puts ~10.6% of the mass beyond each boundary, which the
        clamp piles onto 0 and 1."""
        data = sample(normal, n=8000)
        at_zero = sum(1 for v in data if v == 0.0) / len(data)
        at_one = sum(1 for v in data if v == 1.0) / len(data)
        expected = stats.norm.cdf(0.0, loc=0.5, scale=0.4)
        assert at_zero == pytest.approx(expected, abs=0.02)
        assert at_one == pytest.approx(expected, abs=0.02)

    def test_interior_shape_gaussian(self):
        """Interior (non-clamped) samples follow the truncated normal."""
        data = [v for v in sample(normal, n=8000) if 0.0 < v < 1.0]
        lo = stats.norm.cdf(0.0, loc=0.5, scale=0.4)
        hi = stats.norm.cdf(1.0, loc=0.5, scale=0.4)

        def truncated_cdf(x):
            return (stats.norm.cdf(x, loc=0.5, scale=0.4) - lo) / (hi - lo)

        __, p_value = stats.kstest(data, truncated_cdf)
        assert p_value > ALPHA


class TestCosine:
    def test_cdf_is_valid(self):
        assert _cosine_cdf(0.0) == pytest.approx(0.0, abs=1e-12)
        assert _cosine_cdf(1.0) == pytest.approx(1.0, abs=1e-12)
        assert _cosine_cdf(0.5) == pytest.approx(0.5, abs=1e-12)
        grid = [i / 100 for i in range(101)]
        values = [_cosine_cdf(x) for x in grid]
        assert values == sorted(values)  # monotone

    def test_ks_against_analytic_cdf(self):
        import numpy as np

        data = sample(cosine)
        # kstest hands the CDF a numpy array; vectorize the scalar CDF.
        vector_cdf = np.vectorize(_cosine_cdf)
        __, p_value = stats.kstest(data, vector_cdf)
        assert p_value > ALPHA

    def test_mass_concentrated_centrally(self):
        data = sample(cosine)
        central = sum(1 for v in data if 0.25 <= v <= 0.75) / len(data)
        # Analytic: F(0.75) − F(0.25) = 0.5 + 1/π ≈ 0.818.
        expected = _cosine_cdf(0.75) - _cosine_cdf(0.25)
        assert central == pytest.approx(expected, abs=0.03)
        assert expected == pytest.approx(0.5 + 1 / math.pi, abs=1e-9)
