"""Threshold-mode ablation at the workload level: "drawn" (paper) vs
"live" (tighter bounds) must agree on answers, and live never draws more."""

import pytest

from repro.execution import ExecutionContext, run_plan
from repro.workloads import WorkloadConfig, build_workload, plan2, plan3, plan4


@pytest.fixture(scope="module")
def workload():
    return build_workload(
        WorkloadConfig(table_size=600, join_selectivity=0.01, seed=23, k=10)
    )


def run(workload, builder, mode):
    context = ExecutionContext(workload.catalog, workload.scoring)
    out = run_plan(
        builder(workload, threshold_mode=mode).build(),
        context,
        k=workload.config.k,
    )
    scores = tuple(round(context.upper_bound(s), 9) for s in out)
    return scores, context.metrics


@pytest.mark.parametrize("builder", [plan2, plan3, plan4], ids=["p2", "p3", "p4"])
class TestThresholdModes:
    def test_same_answers(self, workload, builder):
        drawn, __ = run(workload, builder, "drawn")
        live, __ = run(workload, builder, "live")
        assert drawn == live

    def test_live_scans_no_more(self, workload, builder):
        __, drawn_metrics = run(workload, builder, "drawn")
        __, live_metrics = run(workload, builder, "live")
        assert live_metrics.tuples_scanned <= drawn_metrics.tuples_scanned

    def test_live_evaluates_no_more_predicates(self, workload, builder):
        __, drawn_metrics = run(workload, builder, "drawn")
        __, live_metrics = run(workload, builder, "live")
        assert (
            live_metrics.predicate_evaluations
            <= drawn_metrics.predicate_evaluations
        )
