"""Tests for the Figure 11 plans: all four agree on answers and exhibit the
paper's cost relationships."""

import pytest

from repro.execution import ExecutionContext, run_plan
from repro.workloads import WorkloadConfig, build_workload, plan1, plan2, plan3, plan4


@pytest.fixture(scope="module")
def workload():
    return build_workload(
        WorkloadConfig(table_size=800, join_selectivity=0.01, seed=13, k=10)
    )


def execute(workload, plan):
    context = ExecutionContext(workload.catalog, workload.scoring)
    out = run_plan(plan.build(), context, k=None)
    scores = [round(context.upper_bound(s), 9) for s in out]
    return scores, context


class TestAgreement:
    def test_all_plans_same_topk(self, workload):
        results = [
            execute(workload, builder(workload))[0]
            for builder in (plan1, plan2, plan3, plan4)
        ]
        assert results[0] == results[1] == results[2] == results[3]

    def test_matches_brute_force(self, workload):
        catalog = workload.catalog
        a_rows = [r.values for r in catalog.table("A").rows() if r.values[2]]
        b_rows = [r.values for r in catalog.table("B").rows() if r.values[2]]
        c_rows = [r.values for r in catalog.table("C").rows()]
        b_by_jc1 = {}
        for row in b_rows:
            b_by_jc1.setdefault(row[0], []).append(row)
        c_by_jc2 = {}
        for row in c_rows:
            c_by_jc2.setdefault(row[1], []).append(row)
        scores = []
        for a in a_rows:
            for b in b_by_jc1.get(a[0], ()):
                for c in c_by_jc2.get(b[1], ()):
                    scores.append(a[3] + a[4] + b[3] + b[4] + c[3])
        scores.sort(reverse=True)
        expected = [round(v, 9) for v in scores[: workload.config.k]]
        got, __ = execute(workload, plan2(workload))
        assert got == expected


class TestCostRelationships:
    def test_traditional_most_expensive(self, workload):
        costs = {}
        for name, builder in (
            ("plan1", plan1),
            ("plan2", plan2),
            ("plan3", plan3),
            ("plan4", plan4),
        ):
            __, context = execute(workload, builder(workload))
            costs[name] = context.metrics.simulated_cost
        assert costs["plan1"] > costs["plan2"]
        assert costs["plan1"] > costs["plan3"]
        assert costs["plan1"] > costs["plan4"]

    def test_plan1_evaluates_all_predicates_everywhere(self, workload):
        __, context = execute(workload, plan1(workload))
        # Every surviving A⋈B⋈C tuple gets all five predicates at the sort.
        assert context.metrics.predicate_evaluations > 0
        assert context.metrics.predicate_evaluations % 5 == 0

    def test_plan2_scans_least(self, workload):
        __, plan1_context = execute(workload, plan1(workload))
        __, plan2_context = execute(workload, plan2(workload))
        assert (
            plan2_context.metrics.tuples_scanned
            <= plan1_context.metrics.tuples_scanned
        )

    def test_rank_plans_incremental_in_k(self, workload):
        """Cost grows with k for rank-aware plans (incremental), while the
        traditional plan's cost is k-independent (blocking)."""
        def cost_at(builder, k):
            context = ExecutionContext(workload.catalog, workload.scoring)
            run_plan(builder(workload, k=k).build(), context, k=k)
            return context.metrics.simulated_cost

        assert cost_at(plan2, 1) < cost_at(plan2, 100)
        traditional_1 = cost_at(plan1, 1)
        traditional_100 = cost_at(plan1, 100)
        assert traditional_100 <= traditional_1 * 1.05  # nearly flat
