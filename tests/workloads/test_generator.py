"""Tests for the §6 workload generator and distributions."""

import math
import random

import pytest

from repro.workloads import (
    WorkloadConfig,
    build_workload,
    cosine,
    normal,
    sampler,
    uniform,
)


class TestDistributions:
    def test_uniform_range(self):
        rng = random.Random(1)
        values = [uniform(rng) for __ in range(2000)]
        assert all(0 <= v <= 1 for v in values)
        assert abs(sum(values) / len(values) - 0.5) < 0.05

    def test_normal_clamped(self):
        rng = random.Random(1)
        values = [normal(rng) for __ in range(2000)]
        assert all(0 <= v <= 1 for v in values)
        assert abs(sum(values) / len(values) - 0.5) < 0.05

    def test_cosine_concentrated_around_center(self):
        rng = random.Random(1)
        values = [cosine(rng) for __ in range(2000)]
        assert all(0 <= v <= 1 for v in values)
        middle = sum(1 for v in values if 0.25 <= v <= 0.75)
        # Raised cosine puts ~0.82 of its mass in [0.25, 0.75].
        assert middle / len(values) > 0.7

    def test_sampler_lookup(self):
        assert sampler("uniform") is uniform
        with pytest.raises(ValueError):
            sampler("zipf")


class TestWorkloadConfig:
    def test_distinct_join_values(self):
        assert WorkloadConfig(join_selectivity=0.001).distinct_join_values == 1000
        assert WorkloadConfig(join_selectivity=1e-4).distinct_join_values == 10_000


class TestBuildWorkload:
    @pytest.fixture(scope="class")
    def workload(self):
        return build_workload(
            WorkloadConfig(table_size=1500, join_selectivity=0.005, seed=9, k=5)
        )

    def test_tables_built(self, workload):
        for name in ("A", "B", "C"):
            assert workload.catalog.table(name).row_count == 1500

    def test_bool_selectivity(self, workload):
        table = workload.catalog.table("A")
        flag_position = table.schema.index_of("A.b")
        fraction = sum(1 for r in table.rows() if r[flag_position]) / table.row_count
        assert abs(fraction - 0.4) < 0.05

    def test_join_column_domain(self, workload):
        table = workload.catalog.table("A")
        position = table.schema.index_of("A.jc1")
        values = {r[position] for r in table.rows()}
        assert max(values) < workload.config.distinct_join_values

    def test_predicates_registered(self, workload):
        for name in ("f1", "f2", "f3", "f4", "f5"):
            assert workload.catalog.has_predicate(name)
        assert workload.scoring.predicate_names == ("f1", "f2", "f3", "f4", "f5")

    def test_rank_indexes_attached(self, workload):
        assert workload.catalog.table("A").find_index(key="f1") is not None
        assert workload.catalog.table("C").find_index(key="f5") is not None

    def test_column_indexes_attached(self, workload):
        assert workload.catalog.table("A").find_index(key="A.jc1") is not None
        assert workload.catalog.table("C").find_index(key="C.jc2") is not None

    def test_spec_shape(self, workload):
        spec = workload.spec
        assert spec.tables == ["A", "B", "C"]
        assert len(spec.selections) == 2
        assert len(spec.join_conditions) == 2
        assert all(j.is_equi for j in spec.join_conditions)

    def test_deterministic(self):
        config = WorkloadConfig(table_size=100, seed=5)
        a = build_workload(config)
        b = build_workload(config)
        rows_a = [r.values for r in a.catalog.table("A").rows()]
        rows_b = [r.values for r in b.catalog.table("A").rows()]
        assert rows_a == rows_b

    def test_scores_in_unit_range(self, workload):
        table = workload.catalog.table("B")
        p1 = table.schema.index_of("B.p1")
        p2 = table.schema.index_of("B.p2")
        for row in table.rows():
            assert 0.0 <= row[p1] <= 1.0
            assert 0.0 <= row[p2] <= 1.0
