"""Shared fixtures: the paper's running-example relations and oracles.

``paper_db`` reproduces Figure 2 exactly: relations R, R' (same schema and
predicates p1/p2) and S (predicates p3/p4/p5), with the scoring functions
F1 = p1 + p2 and F2 = p3 + p4 + p5.
"""

from __future__ import annotations

import itertools
import random

import pytest

from repro.algebra.predicates import RankingPredicate, ScoringFunction
from repro.algebra.rank_relation import rank_order_key, ScoredRow
from repro.storage import Catalog, ColumnIndex, DataType, RankIndex, Schema

# Figure 2(a)-(c): TID -> (a, b/c, p-scores...)
R_DATA = [
    # (a, b, p1, p2)
    (1, 2, 0.9, 0.65),  # r1
    (2, 3, 0.8, 0.5),   # r2
    (3, 4, 0.7, 0.7),   # r3
]

R_PRIME_DATA = [
    # (a, b, p1, p2)
    (1, 2, 0.9, 0.65),   # r'1
    (3, 4, 0.7, 0.7),    # r'2
    (5, 1, 0.75, 0.6),   # r'3
]

S_DATA = [
    # (a, c, p3, p4, p5)
    (4, 3, 0.7, 0.8, 0.9),    # s1
    (1, 1, 0.9, 0.85, 0.8),   # s2
    (1, 2, 0.5, 0.45, 0.75),  # s3
    (4, 2, 0.4, 0.7, 0.95),   # s4
    (5, 1, 0.3, 0.9, 0.6),    # s5
    (2, 3, 0.25, 0.45, 0.9),  # s6
]

# score lookups by the (a, b)/(a, c) value pairs (all unique in the data)
R_SCORES = {(a, b): (p1, p2) for a, b, p1, p2 in R_DATA}
R_PRIME_SCORES = {(a, b): (p1, p2) for a, b, p1, p2 in R_PRIME_DATA}
S_SCORES = {(a, c): (p3, p4, p5) for a, c, p3, p4, p5 in S_DATA}

RR_SCORES = dict(R_SCORES)
RR_SCORES.update(R_PRIME_SCORES)


class PaperDB:
    """The Figure 2 database with its predicates and scoring functions."""

    def __init__(self) -> None:
        self.catalog = Catalog()
        self.R = self.catalog.create_table(
            "R", Schema.of(("a", DataType.INT), ("b", DataType.INT))
        )
        self.R2 = self.catalog.create_table(
            "R2", Schema.of(("a", DataType.INT), ("b", DataType.INT))
        )
        self.S = self.catalog.create_table(
            "S", Schema.of(("a", DataType.INT), ("c", DataType.INT))
        )
        for a, b, *__ in R_DATA:
            self.R.insert([a, b])
        for a, b, *__ in R_PRIME_DATA:
            self.R2.insert([a, b])
        for a, c, *__ in S_DATA:
            self.S.insert([a, c])

        # Predicates reference *bare* columns so they resolve on R, R2 and
        # join outputs alike (the paper's R and R' share schema/predicates).
        self.p1 = RankingPredicate("p1", ["a", "b"], lambda a, b: RR_SCORES[(a, b)][0])
        self.p2 = RankingPredicate("p2", ["a", "b"], lambda a, b: RR_SCORES[(a, b)][1])
        self.p3 = RankingPredicate("p3", ["c", "S.a"], self._s_score(0))
        self.p4 = RankingPredicate("p4", ["c", "S.a"], self._s_score(1))
        self.p5 = RankingPredicate("p5", ["c", "S.a"], self._s_score(2))
        for predicate in (self.p1, self.p2, self.p3, self.p4, self.p5):
            self.catalog.register_predicate(predicate)

        self.F1 = ScoringFunction([self.p1, self.p2])
        self.F2 = ScoringFunction([self.p3, self.p4, self.p5])
        # F3 = sum(p1..p5) — used by the Figure 4(f) join example.
        self.F3 = ScoringFunction([self.p1, self.p2, self.p3, self.p4, self.p5])

        # rank indexes used by rank-scan tests (Figure 6 plans)
        self.S.attach_index(
            RankIndex("S_p3", self.S.schema, "p3", self.p3.compile(self.S.schema))
        )
        self.R.attach_index(
            RankIndex("R_p1", self.R.schema, "p1", self.p1.compile(self.R.schema))
        )
        self.S.attach_index(ColumnIndex("S_a", self.S.schema, "S.a"))

    @staticmethod
    def _s_score(position: int):
        def score(c, a):
            return S_SCORES[(a, c)][position]

        return score


@pytest.fixture
def paper_db() -> PaperDB:
    return PaperDB()


@pytest.fixture
def rng() -> random.Random:
    return random.Random(0xC0FFEE)


def brute_force_topk(rows_by_table, selections, join_condition, score_fn, k):
    """Oracle: materialize, filter, score, sort — the canonical Eq. 1 form.

    ``rows_by_table`` is a list of row-lists; ``selections`` a list of
    per-table predicates (or None); ``join_condition`` takes the combined
    tuple; ``score_fn`` maps the combined tuple to its final score.
    Returns the sorted descending score list of the top k.
    """
    filtered = []
    for rows, keep in zip(rows_by_table, selections):
        filtered.append([r for r in rows if keep is None or keep(r)])
    scores = []
    for combo in itertools.product(*filtered):
        if join_condition is not None and not join_condition(combo):
            continue
        scores.append(score_fn(combo))
    scores.sort(reverse=True)
    return scores[:k]


def assert_descending(scores, tolerance=1e-9):
    """Assert a score sequence is non-increasing."""
    for earlier, later in zip(scores, scores[1:]):
        assert earlier >= later - tolerance, f"not descending: {earlier} < {later}"
