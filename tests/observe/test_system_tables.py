"""Tests for the ``system.queries`` / ``system.metrics`` virtual tables,
exercised through every SQL surface (embedded, prepared session, server
session)."""

import pytest

from repro.cli import build_demo_database
from repro.observe.system_tables import (
    SystemResult,
    is_system_query,
    maybe_execute,
)

SQL = (
    "SELECT * FROM hotel WHERE area < 5 "
    "ORDER BY cheap(hotel.price) + starry(hotel.stars) LIMIT 5"
)


@pytest.fixture(scope="module")
def db():
    database = build_demo_database()
    database.query(SQL)
    return database


class TestRecognition:
    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT * FROM system.queries",
            "select * from SYSTEM.METRICS;",
            "SELECT * FROM system.queries WHERE status = 'ok' LIMIT 3",
        ],
    )
    def test_system_queries_match(self, sql):
        assert is_system_query(sql)

    @pytest.mark.parametrize(
        "sql",
        [
            SQL,
            "SELECT * FROM systematic.queries",
            "SELECT name FROM system.queries",
        ],
    )
    def test_ordinary_queries_do_not(self, sql):
        assert not is_system_query(sql)

    def test_non_system_sql_returns_none(self, db):
        assert maybe_execute(SQL, db.tracer, db.registry) is None


class TestSystemQueries:
    def test_rows_are_most_recent_first(self, db):
        result = db.query("SELECT * FROM system.queries")
        assert isinstance(result, SystemResult)
        records = result.to_dicts()
        assert records, "the fixture query must have left a trace"
        assert records[0]["trace_id"] == db.tracer.last().trace_id
        assert any(record["sql"] == SQL for record in records)

    def test_where_filters_by_column(self, db):
        result = db.query(
            "SELECT * FROM system.queries WHERE surface = 'query'"
        )
        assert result.rows
        assert all(
            record["surface"] == "query" for record in result.to_dicts()
        )

    def test_limit(self, db):
        db.query(SQL)
        result = db.query("SELECT * FROM system.queries LIMIT 1")
        assert len(result) == 1

    def test_unknown_column_raises(self, db):
        with pytest.raises(ValueError, match="no column"):
            db.query("SELECT * FROM system.queries WHERE nope = 1")

    def test_introspection_leaves_no_trace(self, db):
        before = db.tracer.traces_finished
        db.query("SELECT * FROM system.queries")
        assert db.tracer.traces_finished == before

    def test_served_sessions_see_the_same_tables(self, db):
        with db.serve(workers=2) as server:
            with server.session() as client:
                client.execute(SQL)
                result = client.session.execute(
                    "SELECT * FROM system.queries LIMIT 5"
                )
                surfaces = {r["surface"] for r in result.to_dicts()}
                assert any(s.startswith("server:") for s in surfaces)
                # interception bypasses session counters on purpose
                assert client.session.queries_executed == 1

    def test_prepared_session_surface(self, db):
        session = db.session()
        result = session.execute("SELECT * FROM system.metrics LIMIT 3")
        assert isinstance(result, SystemResult)
        assert len(result) == 3


class TestSystemMetrics:
    def test_counters_and_histograms_present(self, db):
        records = {
            r["name"]: r
            for r in db.query("SELECT * FROM system.metrics").to_dicts()
        }
        assert records["query.count"]["kind"] == "counter"
        assert records["query.count"]["value"] >= 1
        latency = records["query.ms"]
        assert latency["kind"] == "histogram"
        assert latency["count"] >= 1
        assert latency["p50"] is not None

    def test_where_on_name(self, db):
        result = db.query(
            "SELECT * FROM system.metrics WHERE name = 'query.count'"
        )
        assert len(result) == 1

    def test_result_duck_types_query_result(self, db):
        result = db.query("SELECT * FROM system.metrics LIMIT 2")
        assert result.plan_cached is False
        assert result.scores == [0.0, 0.0]
        assert result.metrics.summary() == {}
        assert result.schema.qualified_names()[0] == "system.name"
        assert result[0] == result.rows[0]
