"""Tests for the structured tracer: span trees, the disabled fast path,
the slow-query log, and ambient-trace-id propagation through the morsel
backends (thread and fork)."""

import json
import threading

import pytest

from repro.execution import morsels
from repro.observe import Tracer, ambient_trace_id, set_ambient_trace_id
from repro.observe.trace import _NULL_CONTEXT


class TestSpanTree:
    def test_nested_spans_build_a_tree(self):
        tracer = Tracer(enabled=True)
        with tracer.trace("SELECT 1", surface="test"):
            with tracer.span("parse"):
                pass
            with tracer.span("execute"):
                with tracer.span("batch_segment", dop=2):
                    pass
        trace = tracer.last()
        names = [span.name for span, __ in trace.spans()]
        assert names == ["query", "parse", "execute", "batch_segment"]
        depths = {span.name: depth for span, depth in trace.spans()}
        assert depths["batch_segment"] == 2
        assert trace.status == "ok"
        assert trace.duration_ms >= 0

    def test_annotate_stamps_trace_fields(self):
        tracer = Tracer(enabled=True)
        with tracer.trace("SELECT 1"):
            tracer.annotate(regime="batch", signature="sig:abc", cache="hit")
        trace = tracer.last()
        assert trace.regime == "batch"
        assert trace.signature == "sig:abc"
        assert trace.root.attrs["cache"] == "hit"

    def test_nested_trace_degrades_to_span(self):
        # A surface re-entering the engine (txn commit inside a session)
        # must not open a second root tree.
        tracer = Tracer(enabled=True)
        with tracer.trace("outer"):
            with tracer.trace("inner", surface="txn"):
                pass
        assert tracer.traces_finished == 1
        names = [span.name for span, __ in tracer.last().spans()]
        assert names == ["query", "txn"]

    def test_exception_marks_trace_error(self):
        tracer = Tracer(enabled=True)
        with pytest.raises(RuntimeError):
            with tracer.trace("SELECT boom"):
                raise RuntimeError("boom")
        assert tracer.last().status == "error"

    def test_open_span_straddles_calls(self):
        tracer = Tracer(enabled=True)
        with tracer.trace("SELECT 1"):
            span = tracer.open_span("batch_segment")
            with tracer.span("sibling"):  # not a child of the open span
                pass
            span.finish()
        trace = tracer.last()
        assert [c.name for c in trace.root.children] == [
            "batch_segment",
            "sibling",
        ]

    def test_capacity_bounds_the_ring(self):
        tracer = Tracer(enabled=True, capacity=4)
        for i in range(10):
            with tracer.trace(f"q{i}"):
                pass
        recent = tracer.recent()
        assert len(recent) == 4
        assert recent[-1].sql == "q9"
        assert tracer.traces_finished == 10

    def test_render_is_human_readable(self):
        tracer = Tracer(enabled=True)
        with tracer.trace("SELECT 1"):
            tracer.annotate(regime="row")
            with tracer.span("execute"):
                pass
        text = tracer.last().render()
        assert "regime=row" in text
        assert "- execute:" in text


class TestDisabledPath:
    def test_disabled_tracer_is_nullary(self):
        tracer = Tracer(enabled=False)
        assert tracer.trace("SELECT 1") is _NULL_CONTEXT
        assert tracer.span("anything") is _NULL_CONTEXT
        assert tracer.open_span("anything") is None
        with tracer.trace("SELECT 1") as trace:
            assert trace is None
        assert tracer.recent() == []

    def test_span_without_active_trace_is_noop(self):
        tracer = Tracer(enabled=True)
        assert tracer.span("orphan") is _NULL_CONTEXT

    def test_env_knob_disables(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "0")
        assert Tracer().enabled is False
        monkeypatch.setenv("REPRO_TRACE", "on")
        assert Tracer().enabled is True


class TestSlowQueryLog:
    def test_slow_queries_emit_one_json_line(self):
        lines = []
        tracer = Tracer(
            enabled=True, slow_query_ms=0.0, slow_query_sink=lines.append
        )
        with tracer.trace("SELECT slow", surface="query"):
            tracer.annotate(regime="batch", signature="sig:123")
            with tracer.span("execute"):
                pass
        assert len(lines) == 1
        record = json.loads(lines[0])
        assert record["event"] == "slow_query"
        assert record["trace_id"] == tracer.last().trace_id
        assert record["signature"] == "sig:123"
        assert record["regime"] == "batch"
        assert record["sql"] == "SELECT slow"
        assert [span["name"] for span in record["top_spans"]] == ["execute"]
        assert tracer.slow_queries == 1

    def test_fast_queries_stay_silent(self):
        lines = []
        tracer = Tracer(
            enabled=True, slow_query_ms=60_000.0, slow_query_sink=lines.append
        )
        with tracer.trace("SELECT fast"):
            pass
        assert lines == []

    def test_env_threshold(self, monkeypatch):
        monkeypatch.setenv("REPRO_SLOW_QUERY_MS", "25")
        assert Tracer().slow_query_ms == 25.0


class TestAmbientTraceId:
    def test_set_returns_previous(self):
        previous = set_ambient_trace_id("t1")
        try:
            assert ambient_trace_id() == "t1"
            assert set_ambient_trace_id("t2") == "t1"
        finally:
            set_ambient_trace_id(previous)

    def test_trace_publishes_and_restores(self):
        tracer = Tracer(enabled=True)
        assert ambient_trace_id() is None
        with tracer.trace("SELECT 1"):
            assert ambient_trace_id() == tracer.current_trace_id()
        assert ambient_trace_id() is None

    def test_propagates_into_thread_morsel_workers(self):
        tracer = Tracer(enabled=True)
        with tracer.trace("SELECT 1"):
            expected = tracer.current_trace_id()
            tasks = [lambda: ambient_trace_id() for __ in range(4)]
            seen = list(morsels.run_tasks(tasks, dop=2, backend="thread"))
        assert seen == [expected] * 4

    @pytest.mark.skipif(
        not morsels.fork_available(), reason="no fork on platform"
    )
    def test_propagates_into_forked_morsel_workers(self):
        tracer = Tracer(enabled=True)
        with tracer.trace("SELECT 1"):
            expected = tracer.current_trace_id()
            tasks = [lambda: ambient_trace_id() for __ in range(3)]
            seen = list(morsels.run_tasks(tasks, dop=3, backend="process"))
        assert seen == [expected] * 3

    def test_worker_does_not_leak_id_to_pool_thread(self):
        # After a traced dispatch, the pooled worker thread must be back
        # to a clean ambient id for whoever dispatches next.
        tracer = Tracer(enabled=True)
        with tracer.trace("SELECT 1"):
            list(morsels.run_tasks([lambda: None] * 2, dop=2, backend="thread"))
        leftovers = list(
            morsels.run_tasks(
                [lambda: ambient_trace_id() for __ in range(2)],
                dop=2,
                backend="thread",
            )
        )
        assert leftovers == [None, None]
