"""End-to-end tracing: one query on any surface produces one correlated
span tree covering the planner, the chosen execution regime, and (for
writes) commit + WAL."""

import random

import pytest

from repro.algebra.expressions import col
from repro.cli import build_demo_database
from repro.engine.database import Database
from repro.storage.schema import DataType

SQL = (
    "SELECT * FROM hotel WHERE area < 5 "
    "ORDER BY cheap(hotel.price) + starry(hotel.stars) LIMIT 5"
)

#: an Expression-scored single-table pipeline — the shape the batch
#: lowering and the fused-function compiler both accept
BATCHABLE_SQL = "SELECT * FROM T WHERE T.x > 0.2 ORDER BY pa(T.x) LIMIT 7"


def build_batchable_db(execution, **kwargs):
    db = Database(execution=execution, **kwargs)
    db.create_table("T", [("k", DataType.INT), ("x", DataType.FLOAT)])
    rng = random.Random(3)
    db.insert(
        "T", [(rng.randrange(50), round(rng.random(), 6)) for __ in range(400)]
    )
    db.register_predicate("pa", ["T.x"], col("T.x") * 0.5 + 0.25)
    db.analyze()
    return db


def span_names(trace):
    return [span.name for span, __ in trace.spans()]


class TestQuerySurface:
    @pytest.fixture()
    def db(self):
        return build_demo_database()

    def test_cold_query_traces_every_planner_phase(self, db):
        db.query(SQL)
        trace = db.tracer.last()
        names = span_names(trace)
        for phase in ("parse", "bind", "optimize", "lower", "execute"):
            assert phase in names, f"missing {phase} span in {names}"
        assert trace.surface == "query"
        assert trace.regime == "row"  # auto mode keeps this plan row-mode
        assert trace.status == "ok"
        assert trace.signature is not None and trace.signature.startswith("sig:")
        assert trace.root.attrs["cache"] == "miss"

    def test_warm_query_marks_cache_hit(self, db):
        db.query(SQL)
        db.query(SQL)
        trace = db.tracer.last()
        assert trace.root.attrs["cache"] == "hit"
        names = span_names(trace)
        # a hit still parses (the signature needs the bound spec) but
        # skips the expensive enumeration entirely
        assert "optimize" not in names
        assert "execute" in names

    def test_batch_regime_traces_segments_and_dispatch(self):
        db = build_batchable_db("batch", parallelism=2)
        db.query(BATCHABLE_SQL, strategy="traditional")
        trace = db.tracer.last()
        assert trace.regime.startswith("batch")
        names = span_names(trace)
        assert "lower" in names
        assert "batch_segment" in names
        segment = next(
            span for span, __ in trace.spans() if span.name == "batch_segment"
        )
        assert segment.end is not None
        assert segment.attrs["dop"] >= 1
        dispatches = [c for c in segment.children if c.name == "morsel_dispatch"]
        if trace.regime.startswith("batch@"):
            assert dispatches and dispatches[0].attrs["dop"] >= 2

    def test_error_query_finishes_with_error_status(self, db):
        with pytest.raises(Exception):
            db.query("SELECT * FROM nonsuch ORDER BY cheap(hotel.price) LIMIT 1")
        assert db.tracer.last().status == "error"

    def test_disabled_tracer_records_nothing(self, db):
        db.tracer.enabled = False
        before = db.tracer.traces_started
        db.query(SQL)
        assert db.tracer.traces_started == before


class TestCompiledRegime:
    def test_fused_call_span_and_regime(self):
        db = build_batchable_db("compiled")
        db.query(BATCHABLE_SQL, strategy="traditional")
        trace = db.tracer.last()
        assert trace.regime == "compiled"
        names = span_names(trace)
        assert "compile" in names
        assert "compiled_call" in names
        call = next(
            span for span, __ in trace.spans() if span.name == "compiled_call"
        )
        assert call.attrs["fn"].startswith("compiled[")


class TestDmlAndTransactions:
    def test_insert_traces_commit_and_wal(self, tmp_path):
        db = Database(persist_dir=tmp_path / "d", durability="wal")
        db.create_table("t", [("a", DataType.INT)])
        db.insert("t", [(1,), (2,)])
        trace = db.tracer.last()
        assert trace.surface == "dml"
        assert trace.regime == "dml"
        names = span_names(trace)
        assert "commit" in names
        assert "wal_fsync" in names
        db.close()

    def test_transaction_commit_joins_the_session_trace(self):
        db = Database()
        db.create_table("t", [("a", DataType.INT)])
        txn = db.begin()
        txn.insert(db.catalog.table("t"), [(1,)])
        txn.commit()
        # the commit ran outside any query trace: no orphan spans, no crash
        assert db.tracer.current_trace() is None


class TestPreparedSurface:
    def test_prepared_runs_are_traced_per_execution(self):
        db = build_demo_database()
        session = db.session()
        session.execute(SQL)
        session.execute(SQL)
        trace = db.tracer.last()
        assert trace.surface == "prepared"
        assert trace.regime == "row"
        finished = [t for t in db.tracer.recent() if t.surface == "prepared"]
        assert len(finished) == 2
