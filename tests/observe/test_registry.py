"""Tests for the process-wide metrics registry (counters, gauges,
bounded histograms) — including thread-safety under concurrent sessions
and the exact-merge property the parallel sinks rely on."""

import math
import threading

import pytest

from repro.observe import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_increments(self):
        c = Counter("c")
        c.inc()
        c.inc(4)
        assert c.value == 5
        assert c.snapshot() == 5


class TestGauge:
    def test_set_and_read(self):
        g = Gauge("g")
        g.set(3.5)
        assert g.value == 3.5

    def test_callback_gauge(self):
        box = {"n": 7}
        g = Gauge("g", fn=lambda: box["n"])
        assert g.value == 7.0
        box["n"] = 9
        assert g.value == 9.0

    def test_callback_exception_reads_nan(self):
        def boom():
            raise RuntimeError("backend gone")

        g = Gauge("g", fn=boom)
        assert math.isnan(g.value)


class TestHistogram:
    def test_snapshot_quantiles_bracket_observations(self):
        h = Histogram("h")
        for value in [1.0, 2.0, 3.0, 100.0]:
            h.observe(value)
        snap = h.snapshot()
        assert snap["count"] == 4
        assert snap["min"] == 1.0 and snap["max"] == 100.0
        assert snap["min"] <= snap["p50"] <= snap["p95"] <= snap["p99"]
        assert snap["p99"] <= snap["max"]

    def test_empty_histogram_has_none_quantiles(self):
        h = Histogram("h")
        snap = h.snapshot()
        assert snap["count"] == 0
        assert snap["p50"] is None and snap["p99"] is None

    def test_merge_is_exact(self):
        # The property that makes per-worker private sinks safe: merged
        # bucket counts equal one histogram fed every observation.
        a, b, whole = Histogram("a"), Histogram("b"), Histogram("w")
        for i in range(50):
            value = 0.1 * (i + 1)
            (a if i % 2 else b).observe(value)
            whole.observe(value)
        a.merge(b)
        assert a.snapshot() == whole.snapshot()
        assert a.bucket_counts() == whole.bucket_counts()

    def test_merge_rejects_incompatible_layouts(self):
        a = Histogram("a", buckets=[1.0, 2.0])
        b = Histogram("b", buckets=[1.0, 5.0])
        with pytest.raises(ValueError):
            a.merge(b)

    def test_overflow_bucket_catches_huge_values(self):
        h = Histogram("h", buckets=[1.0, 2.0])
        h.observe(1e9)
        assert h.count == 1
        assert h.snapshot()["max"] == 1e9


class TestRegistry:
    def test_registration_is_idempotent(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")

    def test_collect_shapes(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        registry.gauge("g").set(1.5)
        registry.histogram("h").observe(3.0)
        collected = registry.collect()
        assert collected["c"] == 2
        assert collected["g"] == 1.5
        assert collected["h"]["count"] == 1

    def test_render_prometheus(self):
        registry = MetricsRegistry()
        registry.counter("query.count", help="queries run").inc(3)
        registry.histogram("query.ms").observe(0.7)
        text = registry.render_prometheus()
        assert "# TYPE query_count counter" in text
        assert "query_count 3.0" in text
        assert 'query_ms_bucket{le="1.0"} 1' in text
        assert 'query_ms_bucket{le="+Inf"} 1' in text
        assert "query_ms_count 1" in text


class TestThreadSafety:
    def test_eight_concurrent_sessions_lose_nothing(self):
        """Eight threads hammering one registry: every increment and
        every observation must land (the server runs exactly this shape —
        eight sessions reporting into one process-wide registry)."""
        registry = MetricsRegistry()
        sessions, per_session = 8, 500
        barrier = threading.Barrier(sessions)

        def session_work(seed: int) -> None:
            # registration races too: all threads ask for the same names
            counter = registry.counter("shared.count")
            histogram = registry.histogram("shared.ms")
            barrier.wait()
            for i in range(per_session):
                counter.inc()
                histogram.observe(0.05 * ((seed + i) % 40 + 1))

        threads = [
            threading.Thread(target=session_work, args=(s,))
            for s in range(sessions)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert registry.counter("shared.count").value == sessions * per_session
        histogram = registry.histogram("shared.ms")
        assert histogram.count == sessions * per_session
        # bucket tallies are internally consistent with the total
        assert histogram.bucket_counts()[-1][1] == histogram.count
