"""Tests for per-operator estimated-vs-actual feedback on cached plans —
the adaptive-replanning hook."""

import pytest

from repro.cli import build_demo_database
from repro.observe.feedback import OperatorFeedback, PlanFeedback

SQL = (
    "SELECT * FROM hotel WHERE area < 5 "
    "ORDER BY cheap(hotel.price) + starry(hotel.stars) LIMIT 5"
)


class TestOperatorFeedback:
    def test_misestimate_factor_is_symmetric(self):
        over = OperatorFeedback("x", 0, estimated_rows=100.0)
        over.actual_out, over.executions = 10, 1
        under = OperatorFeedback("x", 0, estimated_rows=10.0)
        under.actual_out, under.executions = 100, 1
        assert over.misestimate_factor() == pytest.approx(10.0)
        assert under.misestimate_factor() == pytest.approx(10.0)

    def test_factor_none_until_observed(self):
        node = OperatorFeedback("x", 0, estimated_rows=5.0)
        assert node.misestimate_factor() is None
        node.estimated_rows = None
        node.executions = 1
        assert node.misestimate_factor() is None

    def test_zero_rows_do_not_divide_out(self):
        node = OperatorFeedback("x", 0, estimated_rows=0.0)
        node.actual_out, node.executions = 0, 2
        assert node.misestimate_factor() == pytest.approx(1.0)


class TestPlanFeedbackOnCachedPlans:
    @pytest.fixture()
    def db(self):
        return build_demo_database()

    def _entry(self, db):
        entry, __ = db.planner.prepare(SQL)
        return entry

    def test_first_execution_builds_feedback(self, db):
        db.query(SQL)
        feedback = self._entry(db).feedback
        assert isinstance(feedback, PlanFeedback)
        assert feedback.nodes
        assert all(node.executions == 1 for node in feedback.nodes)
        assert feedback.nodes[0].actual_out == 5  # LIMIT 5 at the root

    def test_estimates_recorded_next_to_actuals(self, db):
        db.query(SQL)
        feedback = self._entry(db).feedback
        estimated = [n for n in feedback.nodes if n.estimated_rows is not None]
        assert estimated, "the sampling estimator must price the nodes"

    def test_repeat_executions_accumulate(self, db):
        db.query(SQL)
        db.query(SQL)
        feedback = self._entry(db).feedback
        assert all(node.executions == 2 for node in feedback.nodes)
        root = feedback.nodes[0]
        assert root.actual_out == 10
        assert root.mean_actual_out == pytest.approx(5.0)

    def test_misestimates_filter(self, db):
        db.query(SQL)
        feedback = self._entry(db).feedback
        flagged = feedback.misestimates(factor=1e12)
        assert flagged == []
        for node in feedback.misestimates(factor=0.0):
            assert node.misestimate_factor() > 0.0

    def test_to_dicts_round_trips(self, db):
        db.query(SQL)
        records = self._entry(db).feedback.to_dicts()
        assert records[0]["executions"] == 1
        assert set(records[0]) == {
            "label",
            "depth",
            "estimated_rows",
            "actual_in",
            "actual_out",
            "executions",
            "misestimate_factor",
        }

    def test_shape_change_skips_instead_of_corrupting(self, db):
        db.query(SQL)
        entry = self._entry(db)
        feedback = entry.feedback
        feedback.nodes.append(OperatorFeedback("phantom", 9))
        db.query(SQL)  # recorded pairs no longer match the node count
        assert feedback.nodes[0].executions == 1
