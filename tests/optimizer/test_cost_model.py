"""Unit tests for the cost model."""

import pytest

from repro.algebra.expressions import col
from repro.algebra.predicates import BooleanPredicate
from repro.optimizer import (
    CardinalityEstimator,
    CostModel,
    FilterPlan,
    HRJNPlan,
    LimitPlan,
    MuPlan,
    NRJNPlan,
    RankScanPlan,
    SeqScanPlan,
    SortMergeJoinPlan,
    SortPlan,
)


@pytest.fixture
def model(example5):
    estimator = CardinalityEstimator(
        example5.catalog, example5.spec, ratio=0.25, seed=2
    )
    return CostModel(example5.catalog, example5.spec, estimator)


class TestFullCardinality:
    def test_scan_is_table_size(self, model, example5):
        assert model.full_cardinality(SeqScanPlan("R")) == example5.R.row_count

    def test_filter_scales_by_selectivity(self, model, example5):
        condition = BooleanPredicate(col("R.x") > 0.5, "x>0.5")
        plan = FilterPlan(SeqScanPlan("R"), condition)
        full = model.full_cardinality(plan)
        assert 0 < full < example5.R.row_count
        # ~half the rows pass on uniform data.
        assert full == pytest.approx(example5.R.row_count / 2, rel=0.5)

    def test_mu_keeps_membership(self, model, example5):
        plan = MuPlan(SeqScanPlan("R"), "p1")
        assert model.full_cardinality(plan) == example5.R.row_count

    def test_equi_join_uses_distinct_counts(self, model, example5):
        plan = HRJNPlan(SeqScanPlan("R"), SeqScanPlan("S"), "R.a", "S.a")
        n = example5.R.row_count
        distinct = 20
        assert model.full_cardinality(plan) == pytest.approx(n * n / distinct, rel=0.1)

    def test_limit_caps(self, model, example5):
        plan = LimitPlan(SeqScanPlan("R"), 7)
        assert model.full_cardinality(plan) == 7

    def test_sort_keeps_cardinality(self, model, example5):
        plan = SortPlan(SeqScanPlan("R"), frozenset({"p1"}))
        assert model.full_cardinality(plan) == example5.R.row_count


class TestSelectivities:
    def test_selection_selectivity_measured_on_sample(self, model):
        condition = BooleanPredicate(col("R.x") > 0.9, "x>0.9")
        selectivity = model.selection_selectivity(condition)
        assert 0 < selectivity < 0.35

    def test_selectivity_memoized(self, model):
        condition = BooleanPredicate(col("R.x") > 0.9, "x>0.9")
        assert model.selection_selectivity(condition) == model.selection_selectivity(
            condition
        )

    def test_join_selectivity_from_stats(self, model):
        selectivity = model.join_selectivity("R.a", "S.a")
        assert selectivity == pytest.approx(1 / 20, rel=0.01)


class TestCost:
    def test_cost_positive_and_memoized(self, model):
        plan = MuPlan(RankScanPlan("R", "p1"), "p1")
        first = model.cost(plan)
        assert first > 0
        assert model.cost(plan) == first

    def test_children_cost_included(self, model):
        child = RankScanPlan("S", "p3")
        parent = MuPlan(child, "p4")
        assert model.cost(parent) > model.cost(child)

    def test_sort_costs_more_than_rank_pipeline(self, model):
        """Materialize-then-sort vs µ over a rank-scan for small k: the
        blocking plan evaluates every predicate on every tuple."""
        ranked = MuPlan(RankScanPlan("S", "p3"), "p4")
        blocking = SortPlan(SeqScanPlan("S"), frozenset({"p1", "p3", "p4"}))
        assert model.cost(blocking) > model.cost(ranked)

    def test_expensive_predicate_raises_mu_cost(self, example5):
        estimator = CardinalityEstimator(
            example5.catalog, example5.spec, ratio=0.25, seed=2
        )
        model = CostModel(example5.catalog, example5.spec, estimator)
        cheap_cost = model.cost(MuPlan(RankScanPlan("S", "p3"), "p4"))
        example5.p4.cost = 50.0
        try:
            model_expensive = CostModel(example5.catalog, example5.spec, estimator)
            expensive_cost = model_expensive.cost(
                MuPlan(RankScanPlan("S", "p3"), "p4")
            )
            assert expensive_cost > cheap_cost
        finally:
            example5.p4.cost = 1.0

    def test_nrjn_costs_more_than_hrjn(self, model, example5):
        left = RankScanPlan("R", "p1")
        right = RankScanPlan("S", "p3")
        hrjn = HRJNPlan(left, right, "R.a", "S.a")
        condition = BooleanPredicate(col("R.a").eq(col("S.a")), "j")
        nrjn = NRJNPlan(left, right, condition)
        assert model.cost(nrjn) > model.cost(hrjn)

    def test_blocking_join_uses_full_cardinalities(self, model, example5):
        """An SMJ's cost reflects full drains of both inputs, so it exceeds
        the cost of its (k-sensitive) rank-join counterpart."""
        smj = SortMergeJoinPlan(SeqScanPlan("R"), SeqScanPlan("S"), "R.a", "S.a")
        hrjn = HRJNPlan(RankScanPlan("R", "p1"), RankScanPlan("S", "p3"), "R.a", "S.a")
        assert model.cost(smj) > model.cost(hrjn)

    def test_production_ranked_below_full_for_rank_scan(self, model, example5):
        plan = RankScanPlan("R", "p1")
        assert model.production(plan) <= model.full_cardinality(plan)

    def test_unknown_node_raises(self, model):
        class Strange:
            def fingerprint(self):
                return "?"

            children = ()

        with pytest.raises(TypeError):
            model.full_cardinality(Strange())
