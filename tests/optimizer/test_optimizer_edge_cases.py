"""Optimizer edge cases: Cartesian fallback, single tables, missing
indexes, unbounded k, cost-model blocking semantics."""

import random

import pytest

from repro.algebra.predicates import RankingPredicate, ScoringFunction
from repro.execution import ExecutionContext, run_plan
from repro.optimizer import (
    NRJNPlan,
    NestedLoopJoinPlan,
    QuerySpec,
    RankAwareOptimizer,
)
from repro.storage import Catalog, DataType, Schema


def build_two_tables(n=40, seed=5):
    rng = random.Random(seed)
    catalog = Catalog()
    left = catalog.create_table("L", Schema.of(("x", DataType.FLOAT)))
    right = catalog.create_table("Rr", Schema.of(("y", DataType.FLOAT)))
    for __ in range(n):
        left.insert([rng.random()])
        right.insert([rng.random()])
    pl = RankingPredicate("pl", ["L.x"], lambda x: x)
    pr = RankingPredicate("pr", ["Rr.y"], lambda y: y)
    catalog.register_predicate(pl)
    catalog.register_predicate(pr)
    return catalog, ScoringFunction([pl, pr])


class TestCartesianFallback:
    def test_no_join_condition_still_optimizes(self):
        """With no join condition the optimizer retries with Cartesian
        products enabled and produces a correct plan."""
        catalog, scoring = build_two_tables()
        spec = QuerySpec(tables=["L", "Rr"], scoring=scoring, k=3)
        optimizer = RankAwareOptimizer(catalog, spec, sample_ratio=0.3, seed=1)
        plan = optimizer.optimize()
        assert optimizer.allow_cartesian  # the retry kicked in
        context = ExecutionContext(catalog, scoring)
        out = run_plan(plan.build(), context, k=3)
        xs = sorted((r[0] for r in catalog.table("L").rows()), reverse=True)
        ys = sorted((r[0] for r in catalog.table("Rr").rows()), reverse=True)
        best = max(xs) + max(ys)
        assert context.upper_bound(out[0]) == pytest.approx(best)

    def test_cartesian_plan_uses_product_join(self):
        catalog, scoring = build_two_tables()
        spec = QuerySpec(tables=["L", "Rr"], scoring=scoring, k=3)
        plan = RankAwareOptimizer(
            catalog, spec, sample_ratio=0.3, seed=1, allow_cartesian=True
        ).optimize()
        kinds = {type(node) for node in plan.walk()}
        assert NestedLoopJoinPlan in kinds or NRJNPlan in kinds


class TestSingleTable:
    def test_no_indexes_falls_back_to_seqscan_mu(self):
        catalog, scoring = build_two_tables()
        spec = QuerySpec(tables=["L"], scoring=ScoringFunction(
            [catalog.predicate("pl")]
        ), k=2)
        plan = RankAwareOptimizer(catalog, spec, sample_ratio=0.3, seed=1).optimize()
        labels = [n.label() for n in plan.walk()]
        assert any(label.startswith("seqScan") for label in labels)
        assert "rank_pl" in labels

    def test_unbounded_k(self):
        catalog, scoring = build_two_tables()
        spec = QuerySpec(
            tables=["L"],
            scoring=ScoringFunction([catalog.predicate("pl")]),
            k=10**9,
        )
        plan = RankAwareOptimizer(catalog, spec, sample_ratio=0.3, seed=1).optimize()
        context = ExecutionContext(catalog, scoring)
        out = run_plan(plan.build(), context, k=None)
        assert len(out) == 40  # min(k, |result|), paper's footnote 2


class TestDeterminism:
    def test_same_seed_same_plan(self, example5):
        plans = [
            RankAwareOptimizer(
                example5.catalog, example5.spec, sample_ratio=0.2, seed=9
            )
            .optimize()
            .fingerprint()
            for __ in range(2)
        ]
        assert plans[0] == plans[1]

    def test_plan_count_deterministic(self, example5):
        counts = []
        for __ in range(2):
            optimizer = RankAwareOptimizer(
                example5.catalog, example5.spec, sample_ratio=0.2, seed=9
            )
            optimizer.optimize()
            counts.append(optimizer.plans_generated)
        assert counts[0] == counts[1]
