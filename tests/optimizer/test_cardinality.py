"""Tests for the sampling-based cardinality estimator (§5.2)."""

import math

import pytest

from repro.optimizer import (
    CardinalityEstimator,
    MuPlan,
    RankScanPlan,
    SampleDatabase,
    SeqScanPlan,
)


class TestSampleDatabase:
    def test_tables_mirrored_with_names(self, example5):
        sample = SampleDatabase(example5.catalog, ratio=0.2, seed=1)
        assert sample.catalog.has_table("R")
        assert sample.catalog.has_table("S")

    def test_sample_size_roughly_proportional(self, example5):
        sample = SampleDatabase(example5.catalog, ratio=0.25, seed=1)
        n = sample.catalog.table("R").row_count
        expected = example5.R.row_count * 0.25
        assert 0.4 * expected <= n <= 1.8 * expected

    def test_min_rows_guaranteed(self, example5):
        sample = SampleDatabase(example5.catalog, ratio=1e-9, seed=1, min_rows=2)
        assert sample.catalog.table("R").row_count >= 2

    def test_indexes_mirrored(self, example5):
        sample = SampleDatabase(example5.catalog, ratio=0.2, seed=1)
        sampled_r = sample.catalog.table("R")
        assert sampled_r.find_index(key="p1") is not None
        assert sampled_r.find_index(key="R.a") is not None

    def test_predicates_registered(self, example5):
        sample = SampleDatabase(example5.catalog, ratio=0.2, seed=1)
        assert sample.catalog.has_predicate("p1")

    def test_deterministic_under_seed(self, example5):
        a = SampleDatabase(example5.catalog, ratio=0.2, seed=5)
        b = SampleDatabase(example5.catalog, ratio=0.2, seed=5)
        assert a.catalog.table("R").row_count == b.catalog.table("R").row_count

    def test_invalid_ratio(self, example5):
        with pytest.raises(ValueError):
            SampleDatabase(example5.catalog, ratio=0.0)
        with pytest.raises(ValueError):
            SampleDatabase(example5.catalog, ratio=1.5)


class TestCutoffEstimation:
    def test_cutoff_close_to_true_kth_score(self, example5):
        estimator = CardinalityEstimator(
            example5.catalog, example5.spec, ratio=0.3, seed=2
        )
        true_scores = example5.brute_force_scores(example5.spec.k)
        x = true_scores[-1]
        # The estimate should land in the right region of the score space.
        assert estimator.cutoff == estimator.cutoff  # not NaN
        assert estimator.cutoff <= example5.scoring.max_possible()
        assert abs(estimator.cutoff - x) < 0.75

    def test_insufficient_sample_gives_minus_inf(self, example5_small):
        # A tiny ratio keeps ~1 row per table; the sample join is likely
        # empty, so the cutoff must fall back to -inf (everything passes).
        estimator = CardinalityEstimator(
            example5_small.catalog, example5_small.spec, ratio=0.02, seed=3
        )
        assert estimator.cutoff == -math.inf or estimator.cutoff <= 3.0


class TestScaling:
    def test_seq_scan_estimates_table_size(self, example5):
        estimator = CardinalityEstimator(
            example5.catalog, example5.spec, ratio=0.25, seed=2
        )
        estimate = estimator.estimate(SeqScanPlan("R"))
        # All seq-scan outputs are above any cutoff (bound = max possible):
        # the estimate is sample_count / ratio ≈ table size.
        assert estimate == pytest.approx(example5.R.row_count, rel=0.6)

    def test_mu_estimate_no_larger_than_input(self, example5):
        estimator = CardinalityEstimator(
            example5.catalog, example5.spec, ratio=0.25, seed=2
        )
        scan = RankScanPlan("R", "p1")
        mu = MuPlan(scan, "p1")
        assert estimator.estimate(mu) <= estimator.estimate(scan) * 1.5 + 1

    def test_memoization(self, example5):
        estimator = CardinalityEstimator(
            example5.catalog, example5.spec, ratio=0.25, seed=2
        )
        plan = SeqScanPlan("R")
        first = estimator.estimate(plan)
        assert estimator.estimate(SeqScanPlan("R")) == first
        assert plan.fingerprint() in estimator._memo

    def test_sample_outputs_exposed(self, example5):
        estimator = CardinalityEstimator(
            example5.catalog, example5.spec, ratio=0.25, seed=2
        )
        plan = SeqScanPlan("R")
        estimator.estimate(plan)
        assert estimator.sample_outputs(plan) > 0

    def test_rank_scan_estimate_k_sensitive(self, example5):
        """With a finite cutoff the rank-scan's estimate is below the full
        table size — the k-sensitivity the paper's estimator captures."""
        estimator = CardinalityEstimator(
            example5.catalog, example5.spec, ratio=0.3, seed=2
        )
        if estimator.cutoff == -math.inf:
            pytest.skip("sample too small for a finite cutoff")
        ranked = estimator.estimate(RankScanPlan("R", "p1"))
        full = estimator.estimate(SeqScanPlan("R"))
        assert ranked <= full
