"""Cost-governed hybrid execution: the row-vs-batch decision.

The acceptance bar for ``batch_execution="auto"``: the optimizer prices
both execution regimes per ``P = φ`` segment in one cost model and
demonstrably chooses — small segments stay tuple-at-a-time, large drained
segments lower to the batched columnar path — with identical results
either way and both candidates' costs visible in ``explain``.
"""

from __future__ import annotations

import random

import pytest

from repro.engine.database import Database
from repro.optimizer.cost_model import (
    BATCH_SETUP_UNIT,
    CostModel,
    FRONTIER_TUPLE_UNIT,
)
from repro.optimizer.cardinality import CardinalityEstimator
from repro.optimizer.enumeration import RankAwareOptimizer
from repro.optimizer.hybrid import (
    SegmentDecision,
    decide_batch_lowering,
    price_segment,
    render_decisions,
)
from repro.optimizer.plans import (
    BatchSegmentPlan,
    FilterPlan,
    LimitPlan,
    MuPlan,
    SeqScanPlan,
)
from repro.optimizer.query_spec import QuerySpec
from repro.algebra.expressions import col
from repro.algebra.predicates import BooleanPredicate, RankingPredicate, ScoringFunction
from repro.storage import Catalog, DataType, Schema
from repro.workloads import WorkloadConfig, build_workload

SQL = (
    "SELECT * FROM T WHERE T.k > 1 ORDER BY pa(T.x) LIMIT 10"
)


def single_table_db(n: int, batch_execution="auto", **kwargs) -> Database:
    db = Database(batch_execution=batch_execution, **kwargs)
    db.create_table("T", [("k", DataType.INT), ("x", DataType.FLOAT)])
    rng = random.Random(11)
    db.insert("T", [(rng.randrange(5), round(rng.random(), 6)) for __ in range(n)])
    db.register_predicate("pa", ["T.x"], lambda x: x)
    db.analyze()
    return db


def cost_model_for(db: Database, spec: QuerySpec, ratio=0.5) -> CostModel:
    estimator = CardinalityEstimator(db.catalog, spec, ratio=ratio, seed=1)
    return CostModel(db.catalog, spec, estimator)


def segment_plan(spec: QuerySpec):
    condition = spec.selections[0]
    return LimitPlan(
        MuPlan(FilterPlan(SeqScanPlan("T"), condition), "pa"), spec.k
    )


class TestSegmentPricing:
    """Unit behaviour of the decision pass and the batch-regime formulas."""

    def test_small_segment_keeps_row(self):
        db = single_table_db(60)
        spec = db.bind(SQL)
        decided, decisions = decide_batch_lowering(
            segment_plan(spec), cost_model_for(db, spec)
        )
        assert decisions, "lowerable segment must be priced"
        assert all(d.winner == "row" for d in decisions)
        assert not any(isinstance(n, BatchSegmentPlan) for n in decided.walk())

    def test_large_segment_lowers(self):
        db = single_table_db(2000)
        spec = db.bind(SQL)
        decided, decisions = decide_batch_lowering(
            segment_plan(spec), cost_model_for(db, spec)
        )
        top = decisions[0]
        assert top.winner == "batch"
        wrappers = [n for n in decided.walk() if isinstance(n, BatchSegmentPlan)]
        assert len(wrappers) == 1
        assert wrappers[0].decision is top

    def test_decision_pass_is_idempotent(self):
        db = single_table_db(2000)
        spec = db.bind(SQL)
        model = cost_model_for(db, spec)
        once, __ = decide_batch_lowering(segment_plan(spec), model)
        twice, decisions = decide_batch_lowering(once, model)
        assert twice.fingerprint() == once.fingerprint()
        assert all(d.winner == "batch" for d in decisions)

    def test_priced_comparison_is_consistent(self):
        db = single_table_db(500)
        spec = db.bind(SQL)
        model = cost_model_for(db, spec)
        segment = FilterPlan(SeqScanPlan("T"), spec.selections[0])
        decision = price_segment(segment, model)
        assert decision.row_cost == pytest.approx(model.cost(segment))
        assert decision.batch_cost == pytest.approx(
            model.cost(BatchSegmentPlan(segment))
        )
        # The wrapper's cost decomposes into segment work + setup + frontier.
        n_out = model.production(segment)
        assert decision.batch_cost == pytest.approx(
            model.batch_segment_cost(segment)
            + BATCH_SETUP_UNIT
            + n_out * FRONTIER_TUPLE_UNIT
        )

    def test_bare_scan_never_lowers(self):
        # A lone scan gains nothing from batching (BatchToRow just repacks
        # it); the frontier + setup overhead must keep it on the row path
        # at any size.
        for n in (50, 5000):
            db = single_table_db(n)
            spec = db.bind(SQL)
            model = cost_model_for(db, spec)
            decision = price_segment(SeqScanPlan("T"), model)
            assert decision.winner == "row", f"bare scan lowered at n={n}"

    def test_render_decisions_names_winner(self):
        decision = SegmentDecision("filter(k>1)", row_cost=100.0, batch_cost=80.0)
        text = render_decisions([decision])
        assert "filter(k>1)" in text
        assert "-> batch" in text
        assert "row cost=100" in text and "batch cost=80" in text


class TestParallelismPricing:
    """DOP as a costed decision: the parallel-regime formulas and the
    per-segment choice the decision pass stamps on wrappers."""

    def test_dop1_parallel_cost_is_the_serial_batch_formula(self):
        db = single_table_db(500)
        spec = db.bind(SQL)
        model = cost_model_for(db, spec)
        segment = FilterPlan(SeqScanPlan("T"), spec.selections[0])
        n_out = model.production(segment)
        assert model.parallel_segment_cost(segment, 1) == pytest.approx(
            model.batch_segment_cost(segment)
            + BATCH_SETUP_UNIT
            + n_out * FRONTIER_TUPLE_UNIT
        )

    def test_max_dop1_decision_matches_legacy_shape(self):
        # With no parallelism the decision must be byte-identical to PR 4:
        # dop 1, one candidate, the unchanged summary format.
        db = single_table_db(2000)
        spec = db.bind(SQL)
        model = cost_model_for(db, spec)
        decision = price_segment(
            FilterPlan(SeqScanPlan("T"), spec.selections[0]), model
        )
        assert decision.dop == 1
        assert set(decision.parallel_costs) == {1}
        assert decision.winner == "batch"
        assert "dop" not in decision.summary()

    def test_small_segment_stays_serial_under_high_max_dop(self):
        db = single_table_db(500)
        spec = db.bind(SQL)
        model = cost_model_for(db, spec)
        decision = price_segment(
            FilterPlan(SeqScanPlan("T"), spec.selections[0]), model, max_dop=8
        )
        # Worker setup + morsel dispatch dominate a sub-morsel segment.
        assert decision.dop == 1

    def test_large_segment_chooses_parallel_dop(self, monkeypatch):
        monkeypatch.setenv("REPRO_MORSEL_SIZE", "256")
        db = single_table_db(8000)
        spec = db.bind(SQL)
        model = cost_model_for(db, spec)
        segment = FilterPlan(SeqScanPlan("T"), spec.selections[0])
        decision = price_segment(segment, model, max_dop=4)
        assert decision.dop == 4
        assert decision.winner == "batch(dop=4)"
        assert decision.chosen_batch_cost < decision.batch_cost
        assert "batch@dop=4" in decision.summary()
        # every candidate up to the ceiling was priced
        assert set(decision.parallel_costs) == {1, 2, 4}

    def test_dop_beyond_task_count_prices_worse(self, monkeypatch):
        # min(dop, tasks): a segment splitting into 2 morsels cannot use
        # 8 workers — the extra worker setup must make dop 8 strictly
        # costlier than dop 2, so the decision self-caps.
        monkeypatch.setenv("REPRO_MORSEL_SIZE", "4096")
        db = single_table_db(8000)  # two morsels
        spec = db.bind(SQL)
        model = cost_model_for(db, spec)
        segment = FilterPlan(SeqScanPlan("T"), spec.selections[0])
        decision = price_segment(segment, model, max_dop=8)
        assert decision.parallel_costs[8] > decision.parallel_costs[2]
        assert decision.dop == 2

    def test_memo_keeps_dop_variants_distinct(self):
        db = single_table_db(2000)
        spec = db.bind(SQL)
        model = cost_model_for(db, spec)
        segment = FilterPlan(SeqScanPlan("T"), spec.selections[0])
        serial = model.cost(BatchSegmentPlan(segment))
        parallel = model.cost(BatchSegmentPlan(segment, dop=4))
        again = model.cost(BatchSegmentPlan(segment))
        # dop is not part of the fingerprint; a shared memo entry would
        # make one of these return the other's price
        assert serial == again
        assert parallel != serial

    def test_decision_pass_stamps_dop_on_wrapper(self, monkeypatch):
        monkeypatch.setenv("REPRO_MORSEL_SIZE", "256")
        db = single_table_db(8000)
        spec = db.bind(SQL)
        model = cost_model_for(db, spec)
        decided, decisions = decide_batch_lowering(
            segment_plan(spec), model, max_dop=4
        )
        wrappers = [n for n in decided.walk() if isinstance(n, BatchSegmentPlan)]
        assert len(wrappers) == 1
        assert wrappers[0].dop == decisions[0].dop == 4

    def test_explain_shows_dop_decision_end_to_end(self, monkeypatch):
        monkeypatch.setenv("REPRO_MORSEL_SIZE", "256")
        db = single_table_db(8000, parallelism=4)
        text = db.explain(SQL, sample_ratio=0.5, seed=1)
        assert "-> batch(dop=4)" in text
        assert "batch@dop=4" in text
        # serial-batch candidate stays visible alongside
        assert "row cost=" in text and "batch cost=" in text

    def test_parallelism_is_part_of_the_plan_signature(self):
        db = single_table_db(500)
        entry_serial, __ = db.planner.prepare(
            SQL, sample_ratio=0.5, seed=1, parallelism=1
        )
        entry_parallel, hit = db.planner.prepare(
            SQL, sample_ratio=0.5, seed=1, parallelism=4
        )
        assert not hit  # a different DOP ceiling is a different plan
        assert entry_serial.parallelism == 1
        assert entry_parallel.parallelism == 4


class TestEnumerationPricesBatchAlternatives:
    """The DP's fourth dimension: BatchSegmentPlan candidates in the memo."""

    def workload(self, size):
        return build_workload(
            WorkloadConfig(
                table_size=size, join_selectivity=min(0.5, 10 / size), k=8, seed=7
            )
        )

    def test_traditional_plan_lowers_via_dp(self):
        w = self.workload(2000)
        optimizer = RankAwareOptimizer(
            w.catalog, w.spec, sample_ratio=0.2, seed=1,
            enumerate_ranking=False, batch_execution="auto",
        )
        plan = optimizer.optimize()
        wrappers = [n for n in plan.walk() if isinstance(n, BatchSegmentPlan)]
        assert len(wrappers) == 1  # one maximal segment, sort-inclusive

    def test_knob_off_keeps_enumeration_row_mode(self):
        w = self.workload(2000)
        optimizer = RankAwareOptimizer(
            w.catalog, w.spec, sample_ratio=0.2, seed=1, enumerate_ranking=False
        )
        plan = optimizer.optimize()
        assert not any(isinstance(n, BatchSegmentPlan) for n in plan.walk())

    def test_auto_and_row_enumeration_agree_on_results(self):
        w = self.workload(400)
        from repro.execution import ExecutionContext, run_plan

        outs = []
        for knob in (False, "auto"):
            optimizer = RankAwareOptimizer(
                w.catalog, w.spec, sample_ratio=0.2, seed=1,
                enumerate_ranking=False, batch_execution=knob,
            )
            context = ExecutionContext(w.catalog, w.scoring)
            out = run_plan(optimizer.optimize().build(), context, k=8)
            outs.append([(s.row.rid, s.row.values, dict(s.scores)) for s in out])
        assert outs[0] == outs[1]


class TestAutoModeEndToEnd:
    """Database(batch_execution="auto"): per-query decisions, visible in
    explain, with results identical to both forced modes."""

    def test_tiny_table_stays_row_and_explain_says_so(self):
        db = single_table_db(60)
        entry, __ = db.planner.prepare(SQL, sample_ratio=0.5, seed=1)
        assert entry.decisions  # the segment was priced
        assert all(d.winner == "row" for d in entry.decisions)
        assert not any(
            isinstance(n, BatchSegmentPlan) for n in entry.executable.walk()
        )
        text = db.explain(SQL, sample_ratio=0.5, seed=1)
        assert "-> row" in text
        assert "batch segment" not in text

    def test_large_table_lowers_and_explain_names_the_winner(self):
        db = single_table_db(2000)
        entry, __ = db.planner.prepare(SQL, sample_ratio=0.5, seed=1)
        assert entry.decisions
        assert any(d.winner == "batch" for d in entry.decisions)
        assert any(
            isinstance(n, BatchSegmentPlan) for n in entry.executable.walk()
        )
        text = db.explain(SQL, sample_ratio=0.5, seed=1)
        assert "batch segment" in text
        assert "-> batch" in text
        assert "row cost=" in text and "batch cost=" in text

    @pytest.mark.parametrize("n", [60, 2000])
    def test_results_identical_across_modes(self, n):
        results = {}
        for mode in (False, True, "auto"):
            db = single_table_db(n, batch_execution=mode)
            result = db.query(SQL, sample_ratio=0.5, seed=1)
            results[mode] = (result.rows, result.scores)
        assert results[False] == results[True] == results["auto"]

    def test_explain_analyze_descends_into_lowered_segment(self):
        db = single_table_db(2000)
        text = db.explain_analyze(SQL, sample_ratio=0.5, seed=1)
        assert "batch segment" in text
        assert "hybrid execution decisions" in text
        # per-operator actuals inside the segment stay visible
        assert "filter(" in text and "seqScan(T)" in text

    def test_workload_query_auto_vs_forced_modes(self):
        """The §6 workload query: one small segment decision per strategy,
        same rows and scores in every mode."""
        results = {}
        for mode in (False, True, "auto"):
            w = build_workload(
                WorkloadConfig(table_size=300, join_selectivity=0.04, k=8, seed=3)
            )
            w.database.planner.batch_execution = mode
            for strategy in ("rank-aware", "traditional"):
                r = w.database.session(
                    strategy=strategy, sample_ratio=0.2, seed=1
                ).execute(
                    "SELECT * FROM A, B, C WHERE A.jc1 = B.jc1 AND B.jc2 = C.jc2 "
                    "AND A.b AND B.b ORDER BY f1(A.p1) + f2(A.p2) + f3(B.p1) + "
                    "f4(B.p2) + f5(C.p1) LIMIT 8"
                )
                results.setdefault(strategy, []).append((r.rows, r.scores))
        for strategy, versions in results.items():
            assert versions[0] == versions[1] == versions[2], strategy
