"""Tests for EXPLAIN ANALYZE (estimated vs actual per operator)."""

import pytest

from repro.optimizer import explain_analyze
from repro.workloads import WorkloadConfig, build_workload, plan2


@pytest.fixture(scope="module")
def workload():
    return build_workload(
        WorkloadConfig(table_size=300, join_selectivity=0.02, seed=3, k=5)
    )


@pytest.fixture(scope="module")
def report(workload):
    return explain_analyze(
        workload.catalog, workload.spec, plan2(workload), sample_ratio=0.1, seed=2
    )


class TestAnalyzeReport:
    def test_one_node_per_plan_operator(self, workload, report):
        assert len(report.nodes) == sum(1 for __ in plan2(workload).walk())

    def test_returned_rows(self, report, workload):
        assert report.returned == workload.config.k

    def test_root_actuals(self, report, workload):
        root = report.nodes[0]
        assert root.label.startswith("limit")
        assert root.actual_out == workload.config.k

    def test_estimates_populated(self, report):
        for node in report.nodes:
            assert node.estimated_rows >= 0
            assert node.estimated_cost >= 0

    def test_depths_match_tree(self, report):
        assert report.nodes[0].depth == 0
        assert max(node.depth for node in report.nodes) >= 3

    def test_render_contains_every_operator(self, report):
        text = report.render()
        for node in report.nodes:
            assert node.label in text
        assert "returned 5 rows" in text
        assert "est=" in text and "act=" in text and "in=" in text

    def test_metrics_summary_attached(self, report):
        assert report.metrics_summary["tuples_scanned"] > 0

    def test_row_operators_report_no_wall_time(self, report):
        # plan2 is a fully rank-aware (row-mode) tree: no batch nodes, so
        # no per-node timings — the column stays absent, not zero.
        assert all(node.wall_ms is None for node in report.nodes)


class TestBatchWallTimings:
    def test_batch_nodes_report_wall_time(self, workload):
        from repro.optimizer.plans import lower_to_batch
        from repro.workloads import plan1

        lowered = lower_to_batch(plan1(workload))
        report = explain_analyze(
            workload.catalog, workload.spec, lowered, sample_ratio=0.1, seed=2
        )
        timed = [n for n in report.nodes if n.wall_ms is not None]
        assert timed, "lowered plans must carry batch-node timings"
        assert any(n.wall_ms > 0 for n in timed)
        assert "ms" in report.render()


class TestMisestimateFlag:
    def _report(self, estimated: float, actual: int):
        from repro.optimizer.explain import AnalyzeReport, NodeReport

        node = NodeReport(
            label="scan(t)",
            depth=0,
            estimated_rows=estimated,
            estimated_cost=10.0,
            actual_in=actual,
            actual_out=actual,
        )
        summary = {
            "simulated_cost": 0.0,
            "tuples_scanned": 0,
            "predicate_evaluations": 0,
        }
        return AnalyzeReport([node], actual, summary)

    def test_over_10x_misestimates_are_flagged(self):
        text = self._report(estimated=1000.0, actual=5).render()
        assert "!! 200.0x misestimate" in text

    def test_underestimates_flag_too(self):
        report = self._report(estimated=3.0, actual=90)
        assert report.nodes[0].misestimate_factor == pytest.approx(30.0)
        assert "misestimate" in report.render()

    def test_accurate_estimates_stay_clean(self):
        text = self._report(estimated=10.0, actual=9).render()
        assert "misestimate" not in text


class TestDatabaseEntryPoint:
    def test_explain_analyze_via_sql(self, workload):
        sql = (
            "SELECT * FROM A, B, C "
            "WHERE A.jc1 = B.jc1 AND B.jc2 = C.jc2 AND A.b AND B.b "
            "ORDER BY f1(A.p1) + f2(A.p2) + f3(B.p1) + f4(B.p2) + f5(C.p1) "
            "LIMIT 3"
        )
        text = workload.database.explain_analyze(sql, sample_ratio=0.1, seed=2)
        assert "limit(3)" in text
        assert "est=" in text and "act=" in text
        assert "returned 3 rows" in text
