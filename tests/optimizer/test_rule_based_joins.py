"""Rule-based optimizer: join implementation-rule coverage."""

import random

import pytest

from repro.algebra.expressions import col
from repro.algebra.operators import LogicalJoin, LogicalRank, LogicalScan
from repro.algebra.predicates import BooleanPredicate, RankingPredicate, ScoringFunction
from repro.optimizer import (
    HRJNPlan,
    JoinCondition,
    NRJNPlan,
    NestedLoopJoinPlan,
    QuerySpec,
    RuleBasedOptimizer,
)
from repro.storage import Catalog, DataType, Schema


@pytest.fixture
def join_db():
    rng = random.Random(131)
    catalog = Catalog()
    left = catalog.create_table(
        "L", Schema.of(("k", DataType.INT), ("x", DataType.FLOAT))
    )
    right = catalog.create_table(
        "Rr", Schema.of(("k", DataType.INT), ("y", DataType.FLOAT))
    )
    for __ in range(50):
        left.insert([rng.randrange(8), rng.random()])
        right.insert([rng.randrange(8), rng.random()])
    pl = RankingPredicate("pl", ["L.x"], lambda x: x)
    pr = RankingPredicate("pr", ["Rr.y"], lambda y: y)
    for predicate in (pl, pr):
        catalog.register_predicate(predicate)
    scoring = ScoringFunction([pl, pr])
    condition = BooleanPredicate(col("L.k").eq(col("Rr.k")), "j")
    spec = QuerySpec(
        tables=["L", "Rr"],
        scoring=scoring,
        k=3,
        join_conditions=[JoinCondition.from_predicate(condition)],
    )
    return catalog, spec, scoring, condition


def optimizer_for(catalog, spec):
    return RuleBasedOptimizer(catalog, spec, sample_ratio=0.3, seed=1, max_plans=40)


class TestJoinImplementation:
    def test_equi_join_over_ranked_gets_hrjn_and_nrjn(self, join_db):
        catalog, spec, scoring, condition = join_db
        optimizer = optimizer_for(catalog, spec)
        logical = LogicalJoin(
            LogicalRank(LogicalScan("L", catalog.table("L").schema), "pl"),
            LogicalRank(LogicalScan("Rr", catalog.table("Rr").schema), "pr"),
            condition,
        )
        kinds = {type(p) for p in optimizer.implement(logical)}
        assert HRJNPlan in kinds
        assert NRJNPlan in kinds

    def test_plain_join_gets_classical(self, join_db):
        catalog, spec, scoring, condition = join_db
        optimizer = optimizer_for(catalog, spec)
        logical = LogicalJoin(
            LogicalScan("L", catalog.table("L").schema),
            LogicalScan("Rr", catalog.table("Rr").schema),
            condition,
        )
        kinds = {type(p) for p in optimizer.implement(logical)}
        assert NestedLoopJoinPlan in kinds

    def test_non_equi_over_ranked_only_nrjn(self, join_db):
        catalog, spec, scoring, __ = join_db
        optimizer = optimizer_for(catalog, spec)
        non_equi = BooleanPredicate(col("L.k") < col("Rr.k"), "lt")
        logical = LogicalJoin(
            LogicalRank(LogicalScan("L", catalog.table("L").schema), "pl"),
            LogicalRank(LogicalScan("Rr", catalog.table("Rr").schema), "pr"),
            non_equi,
        )
        kinds = {type(p) for p in optimizer.implement(logical)}
        assert kinds == {NRJNPlan}

    def test_cartesian_over_ranked_gets_true_nrjn(self, join_db):
        catalog, spec, scoring, __ = join_db
        optimizer = optimizer_for(catalog, spec)
        logical = LogicalJoin(
            LogicalRank(LogicalScan("L", catalog.table("L").schema), "pl"),
            LogicalRank(LogicalScan("Rr", catalog.table("Rr").schema), "pr"),
            None,
        )
        plans = optimizer.implement(logical)
        assert len(plans) == 1
        assert isinstance(plans[0], NRJNPlan)
        assert plans[0].condition.name == "true"

    def test_equi_keys_detected_in_either_orientation(self, join_db):
        catalog, spec, scoring, __ = join_db
        optimizer = optimizer_for(catalog, spec)
        flipped = BooleanPredicate(col("Rr.k").eq(col("L.k")), "flipped")
        logical = LogicalJoin(
            LogicalScan("L", catalog.table("L").schema),
            LogicalScan("Rr", catalog.table("Rr").schema),
            flipped,
        )
        keys = optimizer._equi_keys(logical)
        assert keys == ("L.k", "Rr.k")
