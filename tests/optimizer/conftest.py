"""Optimizer test fixtures: a small two-table ranked database (the shape of
Example 5: R ⋈ S on a, predicates p1 on R, p3/p4 on S)."""

from __future__ import annotations

import random

import pytest

from repro.algebra.expressions import col
from repro.algebra.predicates import BooleanPredicate, RankingPredicate, ScoringFunction
from repro.optimizer import JoinCondition, QuerySpec
from repro.storage import Catalog, ColumnIndex, DataType, RankIndex, Schema


class Example5DB:
    """Randomized instance of the Example 5 query environment."""

    def __init__(self, n=400, distinct=20, seed=7, k=5):
        rng = random.Random(seed)
        self.catalog = Catalog()
        self.R = self.catalog.create_table(
            "R", Schema.of(("a", DataType.INT), ("x", DataType.FLOAT))
        )
        self.S = self.catalog.create_table(
            "S",
            Schema.of(("a", DataType.INT), ("y", DataType.FLOAT), ("z", DataType.FLOAT)),
        )
        for __ in range(n):
            self.R.insert([rng.randrange(distinct), rng.random()])
            self.S.insert([rng.randrange(distinct), rng.random(), rng.random()])
        self.p1 = RankingPredicate("p1", ["R.x"], lambda x: x, cost=1.0)
        self.p3 = RankingPredicate("p3", ["S.y"], lambda y: y, cost=1.0)
        self.p4 = RankingPredicate("p4", ["S.z"], lambda z: z, cost=1.0)
        for predicate in (self.p1, self.p3, self.p4):
            self.catalog.register_predicate(predicate)
        self.scoring = ScoringFunction([self.p1, self.p3, self.p4])

        self.R.attach_index(
            RankIndex("R_p1", self.R.schema, "p1", self.p1.compile(self.R.schema))
        )
        self.S.attach_index(
            RankIndex("S_p3", self.S.schema, "p3", self.p3.compile(self.S.schema))
        )
        self.R.attach_index(ColumnIndex("R_a", self.R.schema, "R.a"))
        self.S.attach_index(ColumnIndex("S_a", self.S.schema, "S.a"))

        join = JoinCondition.from_predicate(
            BooleanPredicate(col("R.a").eq(col("S.a")), "R.a=S.a")
        )
        self.spec = QuerySpec(
            tables=["R", "S"], scoring=self.scoring, k=k, join_conditions=[join]
        )

    def brute_force_scores(self, k):
        out = []
        for r in self.R.rows():
            for s in self.S.rows():
                if r[0] == s[0]:
                    out.append(r[1] + s[1] + s[2])
        out.sort(reverse=True)
        return out[:k]


@pytest.fixture
def example5() -> Example5DB:
    return Example5DB()


@pytest.fixture
def example5_small() -> Example5DB:
    return Example5DB(n=80, distinct=8, seed=11, k=3)
