"""Tests for the Volcano-style rule-based optimizer path."""

import pytest

from repro.algebra.operators import (
    LogicalJoin,
    LogicalLimit,
    LogicalRank,
    LogicalScan,
    LogicalSelect,
    LogicalSort,
)
from repro.execution import ExecutionContext, run_plan
from repro.optimizer import (
    MuPlan,
    RankAwareOptimizer,
    RankScanPlan,
    RuleBasedOptimizer,
    SortPlan,
    canonical_logical_plan,
)


class TestCanonicalPlan:
    def test_shape(self, example5):
        plan = canonical_logical_plan(example5.spec, example5.catalog)
        kinds = [type(node).__name__ for node in plan.walk()]
        assert kinds[0] == "LogicalLimit"
        assert "LogicalSort" in kinds
        assert kinds.count("LogicalScan") == 2
        assert "LogicalJoin" in kinds

    def test_join_conditions_attached_to_joins(self, example5):
        plan = canonical_logical_plan(example5.spec, example5.catalog)
        joins = [n for n in plan.walk() if isinstance(n, LogicalJoin)]
        assert len(joins) == 1
        assert joins[0].condition is not None
        # No single-table selections in this spec → no σ node.
        selects = [n for n in plan.walk() if isinstance(n, LogicalSelect)]
        assert selects == []

    def test_selections_collected_above_joins(self, example5):
        from repro.algebra.expressions import col
        from repro.algebra.predicates import BooleanPredicate
        from repro.optimizer import QuerySpec

        spec = QuerySpec(
            tables=example5.spec.tables,
            scoring=example5.spec.scoring,
            k=example5.spec.k,
            selections=[BooleanPredicate(col("R.x") > 0.5, "R.x>0.5")],
            join_conditions=example5.spec.join_conditions,
        )
        plan = canonical_logical_plan(spec, example5.catalog)
        selects = [n for n in plan.walk() if isinstance(n, LogicalSelect)]
        assert len(selects) == 1

    def test_signature_complete(self, example5):
        plan = canonical_logical_plan(example5.spec, example5.catalog)
        assert plan.tables() == frozenset({"R", "S"})
        assert plan.evaluated_predicates() == frozenset({"p1", "p3", "p4"})


class TestImplementationRules:
    def optimizer(self, example5, **kwargs):
        return RuleBasedOptimizer(
            example5.catalog, example5.spec, sample_ratio=0.2, seed=2, **kwargs
        )

    def test_scan_implementation(self, example5):
        optimizer = self.optimizer(example5)
        scan = LogicalScan("R", example5.R.schema)
        plans = optimizer.implement(scan)
        assert [p.label() for p in plans] == ["seqScan(R)"]

    def test_mu_over_indexed_scan_collapses_to_rank_scan(self, example5):
        optimizer = self.optimizer(example5)
        plan = LogicalRank(LogicalScan("R", example5.R.schema), "p1")
        labels = {p.label() for p in optimizer.implement(plan)}
        assert "idxScan_p1(R)" in labels
        assert "rank_p1" in labels

    def test_mu_without_index_stays_mu(self, example5):
        optimizer = self.optimizer(example5)
        plan = LogicalRank(LogicalScan("S", example5.S.schema), "p4")
        labels = {p.label() for p in optimizer.implement(plan)}
        assert labels == {"rank_p4"}

    def test_sort_implementation(self, example5):
        optimizer = self.optimizer(example5)
        plan = LogicalSort(LogicalScan("R", example5.R.schema), example5.scoring)
        (physical,) = optimizer.implement(plan)
        assert isinstance(physical, SortPlan)
        assert physical.rank_predicates == frozenset({"p1", "p3", "p4"})


class TestEndToEnd:
    def test_rule_based_answers_match_brute_force(self, example5):
        optimizer = RuleBasedOptimizer(
            example5.catalog, example5.spec, sample_ratio=0.2, seed=2, max_plans=150
        )
        plan = optimizer.optimize()
        context = ExecutionContext(example5.catalog, example5.scoring)
        out = run_plan(plan.build(), context, k=example5.spec.k)
        got = [round(context.upper_bound(s), 9) for s in out]
        expected = [round(v, 9) for v in example5.brute_force_scores(example5.spec.k)]
        assert got == expected
        assert optimizer.logical_plans_explored > 1

    def test_rule_based_beats_canonical(self, example5):
        """The closure search must find something cheaper than the naive
        materialize-then-sort canonical plan."""
        optimizer = RuleBasedOptimizer(
            example5.catalog, example5.spec, sample_ratio=0.2, seed=2, max_plans=150
        )
        chosen = optimizer.optimize()
        canonical = canonical_logical_plan(example5.spec, example5.catalog)
        (canonical_physical,) = optimizer.implement(canonical)
        assert optimizer.cost_model.cost(chosen) < optimizer.cost_model.cost(
            canonical_physical
        )

    def test_comparable_to_dp_optimizer(self, example5):
        """Both optimizer paths must return correct plans; the DP one may be
        cheaper (it reorders joins freely)."""
        rule_plan = RuleBasedOptimizer(
            example5.catalog, example5.spec, sample_ratio=0.2, seed=2, max_plans=150
        ).optimize()
        dp = RankAwareOptimizer(
            example5.catalog, example5.spec, sample_ratio=0.2, seed=2
        )
        dp_plan = dp.optimize()
        for plan in (rule_plan, dp_plan):
            context = ExecutionContext(example5.catalog, example5.scoring)
            out = run_plan(plan.build(), context, k=example5.spec.k)
            got = [round(context.upper_bound(s), 9) for s in out]
            assert got == [
                round(v, 9) for v in example5.brute_force_scores(example5.spec.k)
            ]
