"""Cost-model calibration: estimated plan costs vs executed costs.

The cost model's absolute accuracy is unimportant; what pruning requires is
that its *ordering* of plans tracks the execution engine's measured
simulated cost.  Checked on the four Figure 11 plans.
"""

import pytest

from repro.execution import ExecutionContext, run_plan
from repro.optimizer import CardinalityEstimator, CostModel, SampleDatabase
from repro.workloads import WorkloadConfig, build_workload, plan1, plan2, plan3, plan4


@pytest.fixture(scope="module")
def calibration():
    workload = build_workload(
        WorkloadConfig(table_size=800, join_selectivity=0.01, seed=29, k=10)
    )
    estimator = CardinalityEstimator(
        workload.catalog,
        workload.spec,
        sample=SampleDatabase(workload.catalog, ratio=0.1, seed=3),
    )
    model = CostModel(workload.catalog, workload.spec, estimator)
    rows = {}
    for name, builder in (
        ("plan1", plan1),
        ("plan2", plan2),
        ("plan3", plan3),
        ("plan4", plan4),
    ):
        plan = builder(workload)
        estimated = model.cost(plan)
        context = ExecutionContext(workload.catalog, workload.scoring)
        run_plan(plan.build(), context, k=workload.config.k)
        rows[name] = (estimated, context.metrics.simulated_cost)
    return rows


class TestCalibration:
    def test_estimates_positive(self, calibration):
        for name, (estimated, measured) in calibration.items():
            assert estimated > 0 and measured > 0, name

    def test_traditional_vs_best_gap_predicted(self, calibration):
        """The model must predict the dominant effect: plan1 ≫ plan2."""
        assert calibration["plan1"][0] > calibration["plan2"][0] * 3

    def test_best_plan_identified(self, calibration):
        """The plan the model ranks cheapest is the measured cheapest (or
        within 2× of it)."""
        by_estimate = min(calibration, key=lambda n: calibration[n][0])
        best_measured = min(v[1] for v in calibration.values())
        assert calibration[by_estimate][1] <= best_measured * 2

    def test_worst_plan_identified(self, calibration):
        by_estimate = max(calibration, key=lambda n: calibration[n][0])
        worst_measured = max(v[1] for v in calibration.values())
        assert calibration[by_estimate][1] >= worst_measured / 2

    def test_estimates_within_order_of_magnitude(self, calibration):
        """Absolute calibration: each estimate within 10× of measurement."""
        for name, (estimated, measured) in calibration.items():
            ratio = estimated / measured
            assert 0.1 <= ratio <= 10, f"{name}: est {estimated:.0f} vs {measured:.0f}"
