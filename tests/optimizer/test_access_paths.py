"""Optimizer access-path selection: rank-scan, scan-based selection,
interesting orders."""

import random

import pytest

from repro.algebra.expressions import col
from repro.algebra.predicates import BooleanPredicate, RankingPredicate, ScoringFunction
from repro.engine import Database
from repro.execution import ExecutionContext, run_plan
from repro.optimizer import (
    QuerySpec,
    RankAwareOptimizer,
    ScanSelectPlan,
)
from repro.storage import DataType


@pytest.fixture
def flagged_db():
    """One table with a selective Boolean flag and a scored column, with
    seq-scan, rank-index and multi-key-index access paths available."""
    rng = random.Random(31)
    db = Database()
    db.create_table("t", [("flag", DataType.BOOL), ("x", DataType.FLOAT)])
    db.insert("t", [(rng.random() < 0.3, rng.random()) for __ in range(500)])
    db.register_predicate("px", ["t.x"], lambda x: x, cost=2.0)
    db.create_rank_index("t", "px")
    db.create_multikey_index("t", "flag", "px")
    db.analyze()
    return db


def spec_for(db, k=5):
    predicate = db.catalog.predicate("px")
    return QuerySpec(
        tables=["t"],
        scoring=ScoringFunction([predicate]),
        k=k,
        selections=[BooleanPredicate(col("t.flag"), "t.flag")],
    )


class TestScanSelect:
    def test_optimizer_considers_scan_select(self, flagged_db):
        optimizer = RankAwareOptimizer(
            flagged_db.catalog, spec_for(flagged_db), sample_ratio=0.2, seed=2
        )
        optimizer.optimize()
        signature = (
            frozenset({"t"}),
            frozenset({"px"}),
            optimizer._selection_names(frozenset({"t"})),
        )
        candidates = optimizer.memo.get(signature, {})
        labels = {c.plan.label() for c in candidates.values()} | {
            node.label()
            for c in candidates.values()
            for node in c.plan.walk()
        }
        assert any(label.startswith("scanSelect") for label in labels)

    def test_scan_select_answers_correct(self, flagged_db):
        spec = spec_for(flagged_db)
        plan = ScanSelectPlan("t", "t.flag", "px")
        context = ExecutionContext(flagged_db.catalog, spec.scoring)
        out = run_plan(plan.build(), context, k=5)
        expected = sorted(
            (r[1] for r in flagged_db.catalog.table("t").rows() if r[0]),
            reverse=True,
        )[:5]
        got = [context.upper_bound(s) for s in out]
        assert got == pytest.approx(expected)

    def test_scan_select_avoids_boolean_evaluations(self, flagged_db):
        """Scan-based selection filters inside the index: no filter calls,
        no predicate evaluations."""
        spec = spec_for(flagged_db)
        context = ExecutionContext(flagged_db.catalog, spec.scoring)
        run_plan(ScanSelectPlan("t", "t.flag", "px").build(), context, k=5)
        assert context.metrics.boolean_evaluations == 0
        assert context.metrics.predicate_evaluations == 0

    def test_end_to_end_query_correct(self, flagged_db):
        spec = spec_for(flagged_db)
        optimizer = RankAwareOptimizer(
            flagged_db.catalog, spec, sample_ratio=0.2, seed=2
        )
        plan = optimizer.optimize()
        context = ExecutionContext(flagged_db.catalog, spec.scoring)
        out = run_plan(plan.build(), context, k=spec.k)
        expected = sorted(
            (r[1] for r in flagged_db.catalog.table("t").rows() if r[0]),
            reverse=True,
        )[: spec.k]
        assert [context.upper_bound(s) for s in out] == pytest.approx(expected)


class TestInterestingOrders:
    def test_column_order_plans_kept_alongside(self, example5):
        """Plans with an interesting column order survive pruning even when
        costlier (System-R's physical-property rule)."""
        optimizer = RankAwareOptimizer(
            example5.catalog, example5.spec, sample_ratio=0.2, seed=2
        )
        optimizer.optimize()
        signature = (
            frozenset({"R"}),
            frozenset(),
            optimizer._selection_names(frozenset({"R"})),
        )
        candidates = optimizer.memo[signature]
        orders = {c.plan.column_order for c in candidates.values()}
        assert None in orders  # the plain seq-scan class
        assert "R.a" in orders  # the idxScan_a interesting order
