"""Plan descriptors for the rank-aware set operations."""

import pytest

from repro.execution import ExecutionContext, RankIntersect, run_plan
from repro.optimizer import (
    LimitPlan,
    MuPlan,
    RankDifferencePlan,
    RankIntersectPlan,
    RankUnionPlan,
    SeqScanPlan,
)


def mu_side(table, predicate):
    return MuPlan(SeqScanPlan(table), predicate)


class TestSetOpPlanNodes:
    def test_union_signature(self, paper_db):
        plan = RankUnionPlan([mu_side("R", "p1"), mu_side("R2", "p2")])
        assert plan.tables == frozenset({"R", "R2"})
        assert plan.rank_predicates == frozenset({"p1", "p2"})

    def test_difference_keeps_outer_predicates(self, paper_db):
        plan = RankDifferencePlan([mu_side("R", "p1"), mu_side("R2", "p2")])
        assert plan.rank_predicates == frozenset({"p1"})

    def test_intersect_identity_label(self, paper_db):
        by_value = RankIntersectPlan([mu_side("R", "p1"), mu_side("R2", "p2")])
        by_identity = RankIntersectPlan(
            [mu_side("R", "p1"), mu_side("R2", "p2")], by_identity=True
        )
        assert by_value.label() == "rankIntersect"
        assert by_identity.label() == "rankIntersect_r"
        assert by_value.fingerprint() != by_identity.fingerprint()

    def test_intersect_build_passes_flag(self, paper_db):
        plan = RankIntersectPlan(
            [mu_side("R", "p1"), mu_side("R2", "p2")], by_identity=True
        )
        operator = plan.build()
        assert isinstance(operator, RankIntersect)
        assert operator.by_identity

    def test_union_executes_figure_4d(self, paper_db):
        plan = LimitPlan(
            RankUnionPlan([mu_side("R", "p1"), mu_side("R2", "p2")]), 4
        )
        context = ExecutionContext(paper_db.catalog, paper_db.F1)
        out = run_plan(plan.build(), context, k=4)
        got = [(s.row.values, round(context.upper_bound(s), 4)) for s in out]
        assert got == [
            ((1, 2), 1.55),
            ((3, 4), 1.4),
            ((5, 1), 1.35),
            ((2, 3), 1.3),
        ]

    def test_identity_intersect_self_preserves_duplicates(self, paper_db):
        """µ_p1(R) ∩_r µ_p2(R) over the same table keeps all rows — the
        Proposition 6 requirement."""
        plan = RankIntersectPlan(
            [mu_side("R", "p1"), mu_side("R", "p2")], by_identity=True
        )
        context = ExecutionContext(paper_db.catalog, paper_db.F1)
        out = run_plan(plan.build(), context)
        assert len(out) == 3
        bounds = [context.upper_bound(s) for s in out]
        assert bounds == sorted(bounds, reverse=True)
