"""Tests for the two-dimensional DP enumerator (Figure 8) and the
Figure 10 heuristics, including the Example 5 / Figure 9 signatures."""

import pytest

from repro.execution import ExecutionContext, run_plan
from repro.optimizer import (
    HRJNPlan,
    LimitPlan,
    MuPlan,
    RankAwareOptimizer,
    RankScanPlan,
    SortPlan,
    optimize_traditional,
)


def run_scores(db, plan, k):
    context = ExecutionContext(db.catalog, db.scoring)
    out = run_plan(plan.build(), context, k=k)
    return [round(context.upper_bound(s), 9) for s in out], context


class TestEnumerationCorrectness:
    def test_optimized_plan_answers_correctly(self, example5):
        optimizer = RankAwareOptimizer(
            example5.catalog, example5.spec, sample_ratio=0.2, seed=2
        )
        plan = optimizer.optimize()
        got, __ = run_scores(example5, plan, example5.spec.k)
        expected = [round(v, 9) for v in example5.brute_force_scores(example5.spec.k)]
        assert got == expected

    def test_root_is_limit(self, example5):
        optimizer = RankAwareOptimizer(
            example5.catalog, example5.spec, sample_ratio=0.2, seed=2
        )
        plan = optimizer.optimize()
        assert isinstance(plan, LimitPlan)
        assert plan.k == example5.spec.k

    def test_signature_of_final_plan(self, example5):
        optimizer = RankAwareOptimizer(
            example5.catalog, example5.spec, sample_ratio=0.2, seed=2
        )
        plan = optimizer.optimize()
        assert plan.tables == frozenset({"R", "S"})
        assert plan.rank_predicates == frozenset({"p1", "p3", "p4"})


class TestFigure9Signatures:
    """Example 5: the memo holds best plans per (|SR|, |SP|) signature."""

    def optimizer(self, example5):
        optimizer = RankAwareOptimizer(
            example5.catalog, example5.spec, sample_ratio=0.2, seed=2
        )
        optimizer.optimize()
        return optimizer

    def test_single_table_signatures_present(self, example5):
        optimizer = self.optimizer(example5)
        r, s = frozenset({"R"}), frozenset({"S"})
        assert optimizer.best_candidate((r, frozenset())) is not None
        assert optimizer.best_candidate((s, frozenset())) is not None
        assert optimizer.best_candidate((r, frozenset({"p1"}))) is not None
        assert optimizer.best_candidate((s, frozenset({"p3"}))) is not None
        assert optimizer.best_candidate((s, frozenset({"p4"}))) is not None
        assert optimizer.best_candidate((s, frozenset({"p3", "p4"}))) is not None

    def test_joined_signatures_present(self, example5):
        optimizer = self.optimizer(example5)
        rs = frozenset({"R", "S"})
        for sp in (
            frozenset(),
            frozenset({"p1"}),
            frozenset({"p1", "p3"}),
            frozenset({"p1", "p3", "p4"}),
        ):
            assert optimizer.best_candidate((rs, sp)) is not None

    def test_predicates_not_evaluable_are_absent(self, example5):
        optimizer = self.optimizer(example5)
        # p3 lives on S; there is no plan for ({R}, {p3}).
        assert optimizer.best_candidate((frozenset({"R"}), frozenset({"p3"}))) is None

    def test_rank_scan_used_for_indexed_predicate(self, example5):
        """Figure 9 row (1,1): idxScan_p3(S) beats µ_p3(seqScan(S))."""
        optimizer = self.optimizer(example5)
        best = optimizer.best_candidate((frozenset({"S"}), frozenset({"p3"})))
        labels = [node.label() for node in best.plan.walk()]
        assert any(label.startswith("idxScan_p3") for label in labels)


class TestHeuristics:
    def test_left_deep_reduces_plans_generated(self, example5):
        exhaustive = RankAwareOptimizer(
            example5.catalog, example5.spec, sample_ratio=0.2, seed=2
        )
        exhaustive.optimize()
        heuristic = RankAwareOptimizer(
            example5.catalog,
            example5.spec,
            sample_ratio=0.2,
            seed=2,
            left_deep=True,
            greedy_mu=True,
        )
        heuristic.optimize()
        assert heuristic.plans_generated <= exhaustive.plans_generated

    def test_heuristic_plan_still_correct(self, example5):
        optimizer = RankAwareOptimizer(
            example5.catalog,
            example5.spec,
            sample_ratio=0.2,
            seed=2,
            left_deep=True,
            greedy_mu=True,
        )
        plan = optimizer.optimize()
        got, __ = run_scores(example5, plan, example5.spec.k)
        expected = [round(v, 9) for v in example5.brute_force_scores(example5.spec.k)]
        assert got == expected

    def test_heuristic_cost_close_to_exhaustive(self, example5):
        exhaustive = RankAwareOptimizer(
            example5.catalog, example5.spec, sample_ratio=0.2, seed=2
        )
        best = exhaustive.optimize()
        heuristic = RankAwareOptimizer(
            example5.catalog,
            example5.spec,
            sample_ratio=0.2,
            seed=2,
            left_deep=True,
            greedy_mu=True,
        )
        chosen = heuristic.optimize()
        best_cost = exhaustive.cost_model.cost(best)
        chosen_cost = heuristic.cost_model.cost(chosen)
        # The heuristic sacrifices optimality but should stay in range.
        assert chosen_cost <= best_cost * 25 + 1


class TestTraditionalBaseline:
    def test_traditional_plan_has_sort(self, example5):
        plan = optimize_traditional(
            example5.catalog, example5.spec, sample_ratio=0.2, seed=2
        )
        kinds = [type(node) for node in plan.walk()]
        assert SortPlan in kinds
        assert MuPlan not in kinds
        assert HRJNPlan not in kinds
        assert RankScanPlan not in kinds

    def test_traditional_answers_match(self, example5):
        plan = optimize_traditional(
            example5.catalog, example5.spec, sample_ratio=0.2, seed=2
        )
        got, __ = run_scores(example5, plan, example5.spec.k)
        expected = [round(v, 9) for v in example5.brute_force_scores(example5.spec.k)]
        assert got == expected

    def test_rank_aware_cheaper_in_measured_cost(self, example5):
        ranked_plan = RankAwareOptimizer(
            example5.catalog, example5.spec, sample_ratio=0.2, seed=2
        ).optimize()
        traditional_plan = optimize_traditional(
            example5.catalog, example5.spec, sample_ratio=0.2, seed=2
        )
        __, ranked_context = run_scores(example5, ranked_plan, example5.spec.k)
        __, traditional_context = run_scores(
            example5, traditional_plan, example5.spec.k
        )
        assert (
            ranked_context.metrics.simulated_cost
            < traditional_context.metrics.simulated_cost
        )


class TestOptimizerChoosesWell:
    def test_chosen_cost_at_most_all_final_candidates(self, example5):
        optimizer = RankAwareOptimizer(
            example5.catalog, example5.spec, sample_ratio=0.2, seed=2
        )
        plan = optimizer.optimize()
        chosen_cost = optimizer.cost_model.cost(plan.children[0])
        final = optimizer._final_candidates(frozenset(example5.spec.tables))
        assert final
        assert all(chosen_cost <= candidate.cost + 1e-9 for candidate in final)
