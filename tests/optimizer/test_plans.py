"""Unit tests for physical plan descriptors."""

import pytest

from repro.algebra.expressions import col
from repro.algebra.predicates import BooleanPredicate
from repro.execution import ExecutionContext, run_plan
from repro.optimizer import (
    ColumnOrderScanPlan,
    FilterPlan,
    HRJNPlan,
    HashJoinPlan,
    LimitPlan,
    MuPlan,
    NestedLoopJoinPlan,
    ProjectPlan,
    RankScanPlan,
    SeqScanPlan,
    SortMergeJoinPlan,
    SortPlan,
)


class TestSignatures:
    def test_scan_signature(self):
        plan = SeqScanPlan("R")
        assert plan.signature == (frozenset({"R"}), frozenset())

    def test_rank_scan_carries_predicate(self):
        plan = RankScanPlan("R", "p1")
        assert plan.signature == (frozenset({"R"}), frozenset({"p1"}))

    def test_mu_accumulates(self):
        plan = MuPlan(MuPlan(SeqScanPlan("R"), "p1"), "p2")
        assert plan.rank_predicates == frozenset({"p1", "p2"})

    def test_join_unions_tables(self):
        plan = HRJNPlan(
            RankScanPlan("R", "p1"), RankScanPlan("S", "p3"), "R.a", "S.a"
        )
        assert plan.tables == frozenset({"R", "S"})
        assert plan.rank_predicates == frozenset({"p1", "p3"})

    def test_sort_carries_all_predicates(self):
        plan = SortPlan(SeqScanPlan("R"), frozenset({"p1", "p2"}))
        assert plan.rank_predicates == frozenset({"p1", "p2"})

    def test_filter_transparent(self):
        condition = BooleanPredicate(col("R.a") > 1, "c")
        plan = FilterPlan(RankScanPlan("R", "p1"), condition)
        assert plan.signature == (frozenset({"R"}), frozenset({"p1"}))


class TestPhysicalProperties:
    def test_column_order_scan_exposes_order(self):
        plan = ColumnOrderScanPlan("R", "R.a")
        assert plan.column_order == "R.a"

    def test_filter_preserves_column_order(self):
        condition = BooleanPredicate(col("R.a") > 1, "c")
        plan = FilterPlan(ColumnOrderScanPlan("R", "R.a"), condition)
        assert plan.column_order == "R.a"

    def test_smj_ranked_only_when_no_predicates(self):
        plain = SortMergeJoinPlan(SeqScanPlan("R"), SeqScanPlan("S"), "R.a", "S.a")
        assert plain.is_ranked
        ranked_input = SortMergeJoinPlan(
            RankScanPlan("R", "p1"), SeqScanPlan("S"), "R.a", "S.a"
        )
        assert not ranked_input.is_ranked

    def test_hash_and_nlj_same_rule(self):
        assert HashJoinPlan(SeqScanPlan("R"), SeqScanPlan("S"), "R.a", "S.a").is_ranked
        assert not HashJoinPlan(
            RankScanPlan("R", "p"), SeqScanPlan("S"), "R.a", "S.a"
        ).is_ranked
        assert NestedLoopJoinPlan(SeqScanPlan("R"), SeqScanPlan("S"), None).is_ranked

    def test_mu_is_ranked(self):
        assert MuPlan(SeqScanPlan("R"), "p").is_ranked


class TestFingerprints:
    def test_identical_plans_same_fingerprint(self):
        a = MuPlan(RankScanPlan("R", "p1"), "p2")
        b = MuPlan(RankScanPlan("R", "p1"), "p2")
        assert a.fingerprint() == b.fingerprint()

    def test_different_plans_different_fingerprint(self):
        a = MuPlan(RankScanPlan("R", "p1"), "p2")
        b = MuPlan(RankScanPlan("R", "p2"), "p1")
        assert a.fingerprint() != b.fingerprint()

    def test_explain_indents(self):
        plan = LimitPlan(MuPlan(SeqScanPlan("R"), "p"), 3)
        text = plan.explain()
        lines = text.splitlines()
        assert lines[0].startswith("limit")
        assert lines[1].startswith("  rank_p")
        assert lines[2].startswith("    seqScan")

    def test_walk_preorder(self):
        plan = LimitPlan(MuPlan(SeqScanPlan("R"), "p"), 3)
        labels = [node.label() for node in plan.walk()]
        assert labels == ["limit(3)", "rank_p", "seqScan(R)"]


class TestBuildRoundTrip:
    def test_build_produces_fresh_operators(self, paper_db):
        plan = LimitPlan(MuPlan(RankScanPlan("S", "p3"), "p4"), 2)
        first = plan.build()
        second = plan.build()
        assert first is not second
        context = ExecutionContext(paper_db.catalog, paper_db.F2)
        out = run_plan(first, context, k=2)
        assert len(out) == 2
        # The second build is untouched and still runnable.
        context2 = ExecutionContext(paper_db.catalog, paper_db.F2)
        out2 = run_plan(second, context2, k=2)
        assert [s.row.values for s in out] == [s.row.values for s in out2]

    def test_project_plan_build(self, paper_db):
        plan = ProjectPlan(MuPlan(RankScanPlan("S", "p3"), "p4"), ["S.c"])
        context = ExecutionContext(paper_db.catalog, paper_db.F2)
        out = run_plan(plan.build(), context, k=3)
        assert all(len(s.row.values) == 1 for s in out)
