"""Tests for the third enumeration dimension: Boolean-predicate scheduling.

§5.1: "dimensional enumeration can incorporate the scheduling of both
selection and ranking predicates by treating Boolean predicates as another
dimension" — implemented behind ``enumerate_selections=True``.

The scenario where scheduling matters: an *expensive* Boolean predicate
(e.g. a user-defined function calling a remote service) should be evaluated
late — after cheap filters and rank operators have cut the cardinality —
instead of being blindly pushed to the scan.
"""

import random

import pytest

from repro.algebra.expressions import col
from repro.algebra.predicates import BooleanPredicate, RankingPredicate, ScoringFunction
from repro.execution import ExecutionContext, run_plan
from repro.optimizer import FilterPlan, QuerySpec, RankAwareOptimizer
from repro.storage import Catalog, ColumnIndex, DataType, RankIndex, Schema


@pytest.fixture
def expensive_filter_db():
    """One table; one cheap and one very expensive Boolean selection."""
    rng = random.Random(53)
    catalog = Catalog()
    table = catalog.create_table(
        "t",
        Schema.of(
            ("a", DataType.INT), ("flag", DataType.BOOL), ("x", DataType.FLOAT)
        ),
    )
    for __ in range(600):
        table.insert([rng.randrange(100), rng.random() < 0.5, rng.random()])
    px = RankingPredicate("px", ["t.x"], lambda x: x, cost=1.0)
    catalog.register_predicate(px)
    table.attach_index(RankIndex("t_px", table.schema, "px", px.compile(table.schema)))
    cheap = BooleanPredicate(col("t.flag"), "t.flag", cost=0.1)
    expensive = BooleanPredicate(col("t.a") < 90, "t.a<90", cost=500.0)
    scoring = ScoringFunction([px])
    spec = QuerySpec(
        tables=["t"], scoring=scoring, k=5, selections=[cheap, expensive]
    )
    return catalog, spec, scoring


def brute_force(catalog, k):
    scores = sorted(
        (
            r[2]
            for r in catalog.table("t").rows()
            if r[1] and r[0] < 90
        ),
        reverse=True,
    )
    return scores[:k]


class TestSelectionScheduling:
    def optimize(self, catalog, spec, **kwargs):
        return RankAwareOptimizer(
            catalog, spec, sample_ratio=0.2, seed=4, **kwargs
        )

    def test_three_dimensional_memo(self, expensive_filter_db):
        catalog, spec, __ = expensive_filter_db
        optimizer = self.optimize(catalog, spec, enumerate_selections=True)
        optimizer.optimize()
        t = frozenset({"t"})
        # Partial-SB signatures exist alongside the complete ones.
        partial = [s for s in optimizer.memo if s[0] == t and s[2] == frozenset()]
        complete = [
            s
            for s in optimizer.memo
            if s[0] == t and s[2] == frozenset({"t.flag", "t.a<90"})
        ]
        assert partial and complete

    def test_answers_identical_with_and_without(self, expensive_filter_db):
        catalog, spec, scoring = expensive_filter_db
        expected = [round(v, 9) for v in brute_force(catalog, spec.k)]
        for flag in (False, True):
            plan = self.optimize(
                catalog, spec, enumerate_selections=flag
            ).optimize()
            context = ExecutionContext(catalog, scoring)
            out = run_plan(plan.build(), context, k=spec.k)
            got = [round(context.upper_bound(s), 9) for s in out]
            assert got == expected, f"enumerate_selections={flag}"

    def test_scheduling_defers_expensive_filter(self, expensive_filter_db):
        """With scheduling on, the expensive filter moves above the rank
        operator chain (fewer evaluations); pushed-down placement would
        evaluate it on the whole scan."""
        catalog, spec, scoring = expensive_filter_db
        scheduled_plan = self.optimize(
            catalog, spec, enumerate_selections=True
        ).optimize()
        pushed_plan = self.optimize(
            catalog, spec, enumerate_selections=False
        ).optimize()

        def measure(plan):
            context = ExecutionContext(catalog, scoring)
            run_plan(plan.build(), context, k=spec.k)
            return context.metrics

        scheduled = measure(scheduled_plan)
        pushed = measure(pushed_plan)
        assert scheduled.boolean_cost_units <= pushed.boolean_cost_units
        assert scheduled.simulated_cost <= pushed.simulated_cost

    def test_estimated_cost_no_worse(self, expensive_filter_db):
        """The 3-D space is a superset: the optimizer can only do better."""
        catalog, spec, __ = expensive_filter_db
        scheduled = self.optimize(catalog, spec, enumerate_selections=True)
        scheduled_cost = scheduled.cost_model.cost(scheduled.optimize())
        pushed = self.optimize(catalog, spec, enumerate_selections=False)
        pushed_cost = pushed.cost_model.cost(pushed.optimize())
        assert scheduled_cost <= pushed_cost + 1e-6

    def test_filter_nodes_present_in_scheduled_plan(self, expensive_filter_db):
        catalog, spec, __ = expensive_filter_db
        plan = self.optimize(catalog, spec, enumerate_selections=True).optimize()
        filters = [n for n in plan.walk() if isinstance(n, FilterPlan)]
        names = {f.condition.name for f in filters}
        assert names == {"t.flag", "t.a<90"}
