"""Unit tests for query specs and join conditions."""

import pytest

from repro.algebra.expressions import col, lit
from repro.algebra.predicates import BooleanPredicate, RankingPredicate, ScoringFunction
from repro.optimizer import JoinCondition, QuerySpec


def scoring_two_tables():
    pr = RankingPredicate("pr", ["R.x"], lambda x: x)
    ps = RankingPredicate("ps", ["S.y"], lambda y: y)
    pj = RankingPredicate("pj", ["R.x", "S.y"], lambda x, y: (x + y) / 2)
    return ScoringFunction([pr, ps, pj])


class TestJoinCondition:
    def test_equi_detection(self):
        predicate = BooleanPredicate(col("R.a").eq(col("S.b")), "j")
        condition = JoinCondition.from_predicate(predicate)
        assert condition.is_equi
        assert condition.key_for("R") == "R.a"
        assert condition.key_for("S") == "S.b"
        assert condition.key_for("T") is None

    def test_non_equi_not_flagged(self):
        predicate = BooleanPredicate(col("R.a") < col("S.b"), "j")
        condition = JoinCondition.from_predicate(predicate)
        assert not condition.is_equi

    def test_comparison_to_literal_not_equi(self):
        predicate = BooleanPredicate(col("R.a").eq(lit(5)), "sel")
        condition = JoinCondition.from_predicate(predicate)
        assert not condition.is_equi

    def test_tables(self):
        predicate = BooleanPredicate(col("R.a").eq(col("S.b")), "j")
        assert JoinCondition.from_predicate(predicate).tables == frozenset({"R", "S"})


class TestQuerySpec:
    def make(self, **kwargs):
        scoring = scoring_two_tables()
        join = JoinCondition.from_predicate(
            BooleanPredicate(col("R.a").eq(col("S.a")), "j")
        )
        defaults = dict(
            tables=["R", "S"], scoring=scoring, k=10, join_conditions=[join]
        )
        defaults.update(kwargs)
        return QuerySpec(**defaults)

    def test_valid_spec(self):
        spec = self.make()
        assert spec.tables == ["R", "S"]

    def test_empty_tables_rejected(self):
        with pytest.raises(ValueError):
            self.make(tables=[])

    def test_duplicate_tables_rejected(self):
        with pytest.raises(ValueError):
            self.make(tables=["R", "R"])

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            self.make(k=-1)

    def test_multi_table_selection_rejected(self):
        bad = BooleanPredicate(col("R.a").eq(col("S.a")), "cross")
        with pytest.raises(ValueError):
            self.make(selections=[bad])

    def test_selections_on(self):
        sel = BooleanPredicate(col("R.a") > 1, "sel")
        spec = self.make(selections=[sel])
        assert spec.selections_on("R") == [sel]
        assert spec.selections_on("S") == []

    def test_join_conditions_between(self):
        spec = self.make()
        found = spec.join_conditions_between(frozenset({"R"}), frozenset({"S"}))
        assert len(found) == 1
        assert spec.join_conditions_between(frozenset({"R"}), frozenset({"T"})) == []

    def test_join_conditions_within(self):
        spec = self.make()
        assert len(spec.join_conditions_within(frozenset({"R", "S"}))) == 1
        assert spec.join_conditions_within(frozenset({"R"})) == []

    def test_predicates_evaluable_on(self):
        spec = self.make()
        assert spec.predicates_evaluable_on(frozenset({"R"})) == ["pr"]
        assert spec.predicates_evaluable_on(frozenset({"S"})) == ["ps"]
        # The rank-join predicate pj needs both tables.
        assert set(spec.predicates_evaluable_on(frozenset({"R", "S"}))) == {
            "pr",
            "ps",
            "pj",
        }
