"""Unit tests for the rank-relation reference model."""

import pytest

from repro.algebra.predicates import RankingPredicate, ScoringFunction
from repro.algebra.rank_relation import RankRelation, ScoredRow, rank_order_key
from repro.storage import Row


def make_scoring():
    pa = RankingPredicate("pa", ["t.x"], lambda x: x)
    pb = RankingPredicate("pb", ["t.x"], lambda x: 1 - x)
    return ScoringFunction([pa, pb])


def scored(ordinal, values, scores):
    return ScoredRow(Row.base(values, "t", ordinal), scores)


class TestScoredRow:
    def test_with_score_copies(self):
        original = scored(0, [1], {"pa": 0.5})
        extended = original.with_score("pb", 0.2)
        assert extended.scores == {"pa": 0.5, "pb": 0.2}
        assert original.scores == {"pa": 0.5}

    def test_merge_concatenates_and_unions(self):
        left = scored(0, [1], {"pa": 0.4})
        right = ScoredRow(Row.base([2], "u", 1), {"pb": 0.6})
        merged = left.merge(right)
        assert merged.row.values == (1, 2)
        assert merged.scores == {"pa": 0.4, "pb": 0.6}
        assert merged.row.rid == (("t", 0), ("u", 1))


class TestRankOrderKey:
    def test_orders_by_descending_upper_bound(self):
        scoring = make_scoring()
        high = scored(0, [1], {"pa": 0.9})
        low = scored(1, [2], {"pa": 0.1})
        assert rank_order_key(scoring, high) < rank_order_key(scoring, low)

    def test_ties_broken_by_rid(self):
        scoring = make_scoring()
        first = scored(0, [1], {"pa": 0.5})
        second = scored(1, [2], {"pa": 0.5})
        assert rank_order_key(scoring, first) < rank_order_key(scoring, second)


class TestRankRelation:
    def test_sorted_on_construction(self):
        scoring = make_scoring()
        relation = RankRelation(
            scoring,
            [scored(0, [1], {"pa": 0.2}), scored(1, [2], {"pa": 0.9})],
        )
        assert [s.row.values for s in relation] == [(2,), (1,)]

    def test_upper_bounds_descending(self):
        scoring = make_scoring()
        relation = RankRelation(
            scoring,
            [scored(i, [i], {"pa": score}) for i, score in enumerate([0.3, 0.9, 0.5])],
        )
        bounds = relation.upper_bounds()
        assert bounds == sorted(bounds, reverse=True)

    def test_top_k(self):
        scoring = make_scoring()
        relation = RankRelation(
            scoring,
            [scored(i, [i], {"pa": i / 10}) for i in range(5)],
        )
        top = relation.top(2)
        assert [s.row.values for s in top] == [(4,), (3,)]
        with pytest.raises(ValueError):
            relation.top(-1)

    def test_evaluated_predicates(self):
        scoring = make_scoring()
        relation = RankRelation(scoring, [scored(0, [1], {"pa": 0.5, "pb": 0.1})])
        assert relation.evaluated_predicates() == {"pa", "pb"}

    def test_same_membership_by_values(self):
        scoring = make_scoring()
        a = RankRelation(scoring, [scored(0, [1], {"pa": 0.5})])
        b = RankRelation(scoring, [scored(7, [1], {"pa": 0.5})])  # different rid
        assert a.same_membership(b)

    def test_same_membership_respects_multiplicity(self):
        scoring = make_scoring()
        a = RankRelation(
            scoring, [scored(0, [1], {"pa": 0.5}), scored(1, [1], {"pa": 0.5})]
        )
        b = RankRelation(scoring, [scored(0, [1], {"pa": 0.5})])
        assert not a.same_membership(b)

    def test_same_ranking_tie_insensitive(self):
        scoring = make_scoring()
        a = RankRelation(
            scoring, [scored(0, [1], {"pa": 0.5}), scored(1, [2], {"pa": 0.5})]
        )
        b = RankRelation(
            scoring, [scored(1, [2], {"pa": 0.5}), scored(0, [1], {"pa": 0.5})]
        )
        assert a.same_ranking(b)
        assert a.equivalent(b)

    def test_same_ranking_rejects_different_scores(self):
        scoring = make_scoring()
        a = RankRelation(scoring, [scored(0, [1], {"pa": 0.5})])
        b = RankRelation(scoring, [scored(0, [1], {"pa": 0.6})])
        assert not a.same_ranking(b)

    def test_same_order_strict(self):
        scoring = make_scoring()
        a = RankRelation(
            scoring, [scored(0, [1], {"pa": 0.9}), scored(1, [2], {"pa": 0.5})]
        )
        b = RankRelation(
            scoring, [scored(0, [1], {"pa": 0.9}), scored(1, [2], {"pa": 0.5})]
        )
        assert a.same_order(b)
