"""NULL semantics of expressions and their interaction with ranking."""

import pytest

from repro.algebra.expressions import BooleanOp, col, lit
from repro.algebra.predicates import RankingPredicate
from repro.storage import DataType, Row, Schema

SCHEMA = Schema.of(("a", DataType.INT), ("x", DataType.FLOAT), table="t")


def row(a, x):
    return Row.base([a, x], "t", 0)


class TestNullPropagation:
    def test_arithmetic_null_left(self):
        fn = (col("a") + col("x")).compile(SCHEMA)
        assert fn(row(None, 1.0)) is None

    def test_arithmetic_null_right(self):
        fn = (col("a") * col("x")).compile(SCHEMA)
        assert fn(row(1, None)) is None

    def test_nested_null_propagates(self):
        fn = ((col("a") + lit(1)) / col("x")).compile(SCHEMA)
        assert fn(row(None, 2.0)) is None

    def test_comparison_with_null_false(self):
        for op_expr in (col("a") < lit(5), col("a") >= lit(5), col("a").eq(lit(5))):
            assert op_expr.compile(SCHEMA)(row(None, 0.0)) is False

    def test_null_comparison_both_sides(self):
        fn = col("a").eq(col("x")).compile(SCHEMA)
        assert fn(row(None, None)) is False

    def test_and_with_null_comparison(self):
        expression = (col("a") > 0).and_(col("x") > 0)
        fn = expression.compile(SCHEMA)
        assert fn(row(None, 1.0)) is False

    def test_or_recovers_from_null(self):
        expression = (col("a") > 0).or_(col("x") > 0)
        fn = expression.compile(SCHEMA)
        assert fn(row(None, 1.0)) is True

    def test_not_of_null_comparison_is_true(self):
        # NULL comparisons collapse to False, so NOT yields True — the
        # documented two-valued simplification of SQL's 3VL.
        expression = BooleanOp("not", [col("a") > 0])
        assert expression.compile(SCHEMA)(row(None, 0.0)) is True


class TestNullInRanking:
    def test_expression_predicate_null_scores_zero(self):
        predicate = RankingPredicate("p", ["t.x"], col("t.x") * lit(0.5))
        fn = predicate.compile(SCHEMA)
        assert fn(row(1, None)) == 0.0

    def test_callable_predicate_none_result_zero(self):
        predicate = RankingPredicate("p", ["t.x"], lambda x: None)
        assert predicate.compile(SCHEMA)(row(1, 1.0)) == 0.0

    def test_null_never_outranks(self):
        predicate = RankingPredicate("p", ["t.x"], lambda x: x)
        fn = predicate.compile(SCHEMA)
        null_score = fn(row(1, None)) if False else None
        # NULL input -> TypeError inside the lambda would be a bug; the
        # engine passes the raw value and the clamp handles None results,
        # so predicates over nullable columns should guard themselves:
        guarded = RankingPredicate("g", ["t.x"], lambda x: x if x is not None else 0.0)
        assert guarded.compile(SCHEMA)(row(1, None)) == 0.0
        assert guarded.compile(SCHEMA)(row(1, 0.9)) == pytest.approx(0.9)
