"""Property-based verification of the algebraic laws on random relations.

The Figure 5 laws claim rank-relational equivalence for *all* inputs; the
law tests on the paper's 3-row examples are necessary but weak.  Here
hypothesis generates random relations (values, duplicate rates, score
distributions) and the closure of each plan under one law application is
checked against the reference evaluator.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.algebra.expressions import col
from repro.algebra.laws import transformations
from repro.algebra.operators import (
    LogicalDifference,
    LogicalIntersect,
    LogicalRank,
    LogicalScan,
    LogicalSelect,
    LogicalSort,
    LogicalUnion,
    evaluate_logical,
)
from repro.algebra.predicates import BooleanPredicate, RankingPredicate, ScoringFunction
from repro.storage import Catalog, DataType, Schema

scores = st.sampled_from([0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0])
rows = st.lists(st.tuples(st.integers(0, 4), scores), min_size=0, max_size=12)


def build(rows_a, rows_b):
    catalog = Catalog()
    table_a = catalog.create_table(
        "A", Schema.of(("k", DataType.INT), ("x", DataType.FLOAT))
    )
    table_b = catalog.create_table(
        "B", Schema.of(("k", DataType.INT), ("x", DataType.FLOAT))
    )
    for row in rows_a:
        table_a.insert(list(row))
    for row in rows_b:
        table_b.insert(list(row))
    pa = RankingPredicate("pa", ["x"], lambda x: x)
    pb = RankingPredicate("pb", ["x"], lambda x: 1 - x)
    scoring = ScoringFunction([pa, pb])
    scan_a = LogicalScan("A", table_a.schema)
    scan_b = LogicalScan("B", table_b.schema)
    return catalog, scoring, scan_a, scan_b


def check_all_rewrites(catalog, scoring, plan):
    reference = evaluate_logical(plan, catalog, scoring)
    for neighbour in transformations(plan, scoring):
        rewritten = evaluate_logical(neighbour, catalog, scoring)
        assert rewritten.equivalent(reference), (
            f"law broke equivalence:\n  from {plan!r}\n  to {neighbour!r}"
        )


class TestLawClosureOnRandomData:
    @settings(max_examples=30, deadline=None)
    @given(rows_a=rows)
    def test_sort_and_mu_chain(self, rows_a):
        catalog, scoring, scan_a, __ = build(rows_a, [])
        check_all_rewrites(catalog, scoring, LogicalSort(scan_a, scoring))
        chain = LogicalRank(LogicalRank(scan_a, "pa"), "pb")
        check_all_rewrites(catalog, scoring, chain)

    @settings(max_examples=30, deadline=None)
    @given(rows_a=rows)
    def test_select_mu_interleavings(self, rows_a):
        catalog, scoring, scan_a, __ = build(rows_a, [])
        condition = BooleanPredicate(col("A.k") > 1, "k>1")
        plan = LogicalSelect(LogicalRank(scan_a, "pa"), condition)
        check_all_rewrites(catalog, scoring, plan)
        inverse = LogicalRank(LogicalSelect(scan_a, condition), "pa")
        check_all_rewrites(catalog, scoring, inverse)

    @settings(max_examples=30, deadline=None)
    @given(rows_a=rows, rows_b=rows)
    def test_setop_pushdowns(self, rows_a, rows_b):
        catalog, scoring, scan_a, scan_b = build(rows_a, rows_b)
        for op in (LogicalUnion, LogicalIntersect, LogicalDifference):
            plan = LogicalRank(op(scan_a, scan_b), "pa")
            check_all_rewrites(catalog, scoring, plan)

    @settings(max_examples=30, deadline=None)
    @given(rows_a=rows, rows_b=rows)
    def test_commutativity_and_associativity(self, rows_a, rows_b):
        catalog, scoring, scan_a, scan_b = build(rows_a, rows_b)
        for op in (LogicalUnion, LogicalIntersect):
            plan = op(LogicalRank(scan_a, "pa"), LogicalRank(scan_b, "pb"))
            check_all_rewrites(catalog, scoring, plan)

    @settings(max_examples=30, deadline=None)
    @given(rows_a=rows)
    def test_multiple_scan_law(self, rows_a):
        catalog, scoring, scan_a, __ = build(rows_a, [])
        plan = LogicalRank(LogicalRank(scan_a, "pb"), "pa")
        check_all_rewrites(catalog, scoring, plan)
