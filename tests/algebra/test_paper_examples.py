"""Exact reproduction of the paper's running example (Figures 2 and 4).

Every table in Figure 2(d)-(f) and every operator result in Figure 4 is
checked value-for-value: output membership, output order, and the
maximal-possible scores ``F_P``.
"""

import pytest

from repro.algebra.expressions import col
from repro.algebra.operators import (
    LogicalDifference,
    LogicalIntersect,
    LogicalJoin,
    LogicalRank,
    LogicalScan,
    LogicalSelect,
    LogicalUnion,
    evaluate_logical,
)
from repro.algebra.predicates import BooleanPredicate


def scan(paper_db, name):
    table = paper_db.catalog.table(name)
    return LogicalScan(name, table.schema)


def rows_and_scores(result):
    return [
        (scored.row.values, round(result.scoring.upper_bound(scored.scores), 6))
        for scored in result
    ]


class TestFigure2RankRelations:
    """Figures 2(d)–(f): base relations ranked by one evaluated predicate."""

    def test_r_p1(self, paper_db):
        plan = LogicalRank(scan(paper_db, "R"), "p1")
        result = evaluate_logical(plan, paper_db.catalog, paper_db.F1)
        assert rows_and_scores(result) == [
            ((1, 2), 1.9),  # r1
            ((2, 3), 1.8),  # r2
            ((3, 4), 1.7),  # r3
        ]

    def test_r_prime_p2(self, paper_db):
        plan = LogicalRank(scan(paper_db, "R2"), "p2")
        result = evaluate_logical(plan, paper_db.catalog, paper_db.F1)
        assert rows_and_scores(result) == [
            ((3, 4), 1.7),   # r'2
            ((1, 2), 1.65),  # r'1
            ((5, 1), 1.6),   # r'3
        ]

    def test_s_p3(self, paper_db):
        plan = LogicalRank(scan(paper_db, "S"), "p3")
        result = evaluate_logical(plan, paper_db.catalog, paper_db.F2)
        assert rows_and_scores(result) == [
            ((1, 1), 2.9),   # s2
            ((4, 3), 2.7),   # s1
            ((1, 2), 2.5),   # s3
            ((4, 2), 2.4),   # s4
            ((5, 1), 2.3),   # s5
            ((2, 3), 2.25),  # s6
        ]


class TestFigure4Operators:
    """Figure 4: results of the extended operators on the running example."""

    def test_4a_mu_p2_on_r_p1(self, paper_db):
        """µ_p2(R_{p1}) = R_{p1,p2} — the complete ranking under F1."""
        plan = LogicalRank(LogicalRank(scan(paper_db, "R"), "p1"), "p2")
        result = evaluate_logical(plan, paper_db.catalog, paper_db.F1)
        assert rows_and_scores(result) == [
            ((1, 2), 1.55),  # r1
            ((3, 4), 1.4),   # r3
            ((2, 3), 1.3),   # r2
        ]

    def test_4b_select_a_gt_1(self, paper_db):
        """σ_{a>1}(R_{p1}): membership filtered, order by p1 preserved."""
        condition = BooleanPredicate(col("R.a") > 1, "a>1")
        plan = LogicalSelect(LogicalRank(scan(paper_db, "R"), "p1"), condition)
        result = evaluate_logical(plan, paper_db.catalog, paper_db.F1)
        assert rows_and_scores(result) == [
            ((2, 3), 1.8),  # r2
            ((3, 4), 1.7),  # r3
        ]

    def test_4c_intersection(self, paper_db):
        """R_{p1} ∩ R'_{p2}: common tuples, aggregate order by {p1, p2}."""
        plan = LogicalIntersect(
            LogicalRank(scan(paper_db, "R"), "p1"),
            LogicalRank(scan(paper_db, "R2"), "p2"),
        )
        result = evaluate_logical(plan, paper_db.catalog, paper_db.F1)
        assert rows_and_scores(result) == [
            ((1, 2), 1.55),  # r1/r'1
            ((3, 4), 1.4),   # r3/r'2
        ]

    def test_4d_union(self, paper_db):
        """R_{p1} ∪ R'_{p2}: all tuples, aggregate order by {p1, p2}."""
        plan = LogicalUnion(
            LogicalRank(scan(paper_db, "R"), "p1"),
            LogicalRank(scan(paper_db, "R2"), "p2"),
        )
        result = evaluate_logical(plan, paper_db.catalog, paper_db.F1)
        assert rows_and_scores(result) == [
            ((1, 2), 1.55),  # r1/r'1
            ((3, 4), 1.4),   # r3/r'2
            ((5, 1), 1.35),  # r'3
            ((2, 3), 1.3),   # r2
        ]

    def test_4e_difference(self, paper_db):
        """R_{p1} − R'_{p2}: keeps the outer order (by p1 alone)."""
        plan = LogicalDifference(
            LogicalRank(scan(paper_db, "R"), "p1"),
            LogicalRank(scan(paper_db, "R2"), "p2"),
        )
        result = evaluate_logical(plan, paper_db.catalog, paper_db.F1)
        assert rows_and_scores(result) == [
            ((2, 3), 1.8),  # r2
        ]

    def test_4f_join(self, paper_db):
        """R_{p1} ⋈ S_{p3} on R.a = S.a under F3 = sum(p1..p5).

        Note: Figure 4(f) prints only the first two join tuples; the data of
        Figure 2 also matches r2 (a=2) with s6 (a=2), which belongs in the
        full result by the operator definition and is checked here.
        """
        condition = BooleanPredicate(col("R.a").eq(col("S.a")), "R.a=S.a")
        plan = LogicalJoin(
            LogicalRank(scan(paper_db, "R"), "p1"),
            LogicalRank(scan(paper_db, "S"), "p3"),
            condition,
        )
        result = evaluate_logical(plan, paper_db.catalog, paper_db.F3)
        assert rows_and_scores(result) == [
            ((1, 2, 1, 1), 4.8),   # r1 ⋈ s2 (in the figure)
            ((1, 2, 1, 2), 4.4),   # r1 ⋈ s3 (in the figure)
            ((2, 3, 2, 3), 4.05),  # r2 ⋈ s6 (omitted by the figure)
        ]


class TestSignatures:
    """Operator signatures (SR, SP) used by the optimizer."""

    def test_scan_signature(self, paper_db):
        plan = scan(paper_db, "R")
        assert plan.signature() == (frozenset({"R"}), frozenset())

    def test_rank_adds_predicate(self, paper_db):
        plan = LogicalRank(LogicalRank(scan(paper_db, "R"), "p1"), "p2")
        assert plan.signature() == (frozenset({"R"}), frozenset({"p1", "p2"}))

    def test_join_merges_signatures(self, paper_db):
        condition = BooleanPredicate(col("R.a").eq(col("S.a")), "j")
        plan = LogicalJoin(
            LogicalRank(scan(paper_db, "R"), "p1"),
            LogicalRank(scan(paper_db, "S"), "p3"),
            condition,
        )
        assert plan.signature() == (
            frozenset({"R", "S"}),
            frozenset({"p1", "p3"}),
        )

    def test_difference_keeps_outer_predicates(self, paper_db):
        plan = LogicalDifference(
            LogicalRank(scan(paper_db, "R"), "p1"),
            LogicalRank(scan(paper_db, "R2"), "p2"),
        )
        assert plan.evaluated_predicates() == frozenset({"p1"})
