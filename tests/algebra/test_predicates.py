"""Unit tests for ranking predicates and scoring functions."""

import pytest

from repro.algebra.expressions import col, lit
from repro.algebra.predicates import (
    BooleanPredicate,
    RankingPredicate,
    ScoringFunction,
    sum_of,
)
from repro.storage import DataType, Row, Schema

SCHEMA = Schema.of(("x", DataType.FLOAT), ("y", DataType.FLOAT), table="t")


def row(x, y):
    return Row.base([x, y], "t", 0)


class TestBooleanPredicate:
    def test_tables_and_join_detection(self):
        selection = BooleanPredicate(col("t.x") > 1)
        join = BooleanPredicate(col("t.x").eq(col("u.y")))
        assert selection.tables() == {"t"}
        assert not selection.is_join_predicate
        assert join.is_join_predicate

    def test_compile(self):
        predicate = BooleanPredicate(col("t.x") > 0.5)
        assert predicate.compile(SCHEMA)(row(0.7, 0.0)) is True

    def test_default_name_from_expression(self):
        predicate = BooleanPredicate(col("t.x") > 1)
        assert "t.x" in predicate.name


class TestRankingPredicate:
    def test_callable_scorer(self):
        predicate = RankingPredicate("p", ["t.x", "t.y"], lambda x, y: (x + y) / 2)
        fn = predicate.compile(SCHEMA)
        assert fn(row(0.4, 0.8)) == pytest.approx(0.6)

    def test_expression_scorer(self):
        predicate = RankingPredicate("p", ["t.x"], col("t.x") * lit(0.5))
        fn = predicate.compile(SCHEMA)
        assert fn(row(0.8, 0.0)) == pytest.approx(0.4)

    def test_scores_clamped_to_p_max(self):
        predicate = RankingPredicate("p", ["t.x"], lambda x: x * 10, p_max=1.0)
        fn = predicate.compile(SCHEMA)
        assert fn(row(0.9, 0.0)) == 1.0

    def test_negative_scores_clamped_to_zero(self):
        predicate = RankingPredicate("p", ["t.x"], lambda x: -x)
        fn = predicate.compile(SCHEMA)
        assert fn(row(0.5, 0.0)) == 0.0

    def test_none_score_becomes_zero(self):
        predicate = RankingPredicate("p", ["t.x"], lambda x: None)
        assert predicate.compile(SCHEMA)(row(0.5, 0.0)) == 0.0

    def test_custom_p_max(self):
        predicate = RankingPredicate("p", ["t.x"], lambda x: x * 5, p_max=5.0)
        assert predicate.compile(SCHEMA)(row(0.9, 0.0)) == pytest.approx(4.5)

    def test_tables_from_columns(self):
        predicate = RankingPredicate("p", ["t.x", "u.y"], lambda a, b: 0.0)
        assert predicate.tables() == {"t", "u"}
        assert predicate.is_join_predicate

    def test_evaluable_on(self):
        predicate = RankingPredicate("p", ["t.x"], lambda x: x)
        assert predicate.evaluable_on(SCHEMA)
        other = Schema.of("z", table="u")
        assert not predicate.evaluable_on(other)

    def test_validation(self):
        with pytest.raises(ValueError):
            RankingPredicate("", ["t.x"], lambda x: x)
        with pytest.raises(ValueError):
            RankingPredicate("p", ["t.x"], lambda x: x, cost=-1)
        with pytest.raises(ValueError):
            RankingPredicate("p", ["t.x"], lambda x: x, p_max=0)


def make_predicates():
    pa = RankingPredicate("pa", ["t.x"], lambda x: x)
    pb = RankingPredicate("pb", ["t.y"], lambda y: y)
    pc = RankingPredicate("pc", ["t.x"], lambda x: 1 - x)
    return pa, pb, pc


class TestScoringFunction:
    def test_sum(self):
        pa, pb, __ = make_predicates()
        scoring = ScoringFunction([pa, pb])
        assert scoring.combine([0.2, 0.3]) == pytest.approx(0.5)

    def test_weighted_sum(self):
        pa, pb, __ = make_predicates()
        scoring = ScoringFunction([pa, pb], combiner="wsum", weights=[2.0, 1.0])
        assert scoring.combine([0.5, 0.5]) == pytest.approx(1.5)

    def test_product(self):
        pa, pb, __ = make_predicates()
        scoring = ScoringFunction([pa, pb], combiner="product")
        assert scoring.combine([0.5, 0.4]) == pytest.approx(0.2)

    def test_min_max_avg(self):
        pa, pb, __ = make_predicates()
        assert ScoringFunction([pa, pb], combiner="min").combine([0.1, 0.9]) == 0.1
        assert ScoringFunction([pa, pb], combiner="max").combine([0.1, 0.9]) == 0.9
        assert ScoringFunction([pa, pb], combiner="avg").combine([0.1, 0.9]) == 0.5

    def test_upper_bound_substitutes_p_max(self):
        pa, pb, __ = make_predicates()
        scoring = ScoringFunction([pa, pb])
        # Only pa evaluated: pb assumed at its maximum (1.0).
        assert scoring.upper_bound({"pa": 0.3}) == pytest.approx(1.3)

    def test_upper_bound_with_custom_p_max(self):
        pa = RankingPredicate("pa", ["t.x"], lambda x: x, p_max=2.0)
        pb = RankingPredicate("pb", ["t.y"], lambda y: y)
        scoring = ScoringFunction([pa, pb])
        assert scoring.upper_bound({}) == pytest.approx(3.0)

    def test_upper_bound_complete_equals_final(self):
        pa, pb, __ = make_predicates()
        scoring = ScoringFunction([pa, pb])
        scores = {"pa": 0.2, "pb": 0.7}
        assert scoring.upper_bound(scores) == scoring.final_score(scores)

    def test_final_score_requires_all(self):
        pa, pb, __ = make_predicates()
        scoring = ScoringFunction([pa, pb])
        with pytest.raises(ValueError):
            scoring.final_score({"pa": 0.5})

    def test_max_possible(self):
        pa, pb, pc = make_predicates()
        assert ScoringFunction([pa, pb, pc]).max_possible() == pytest.approx(3.0)

    def test_monotonicity_of_upper_bound(self):
        # More evaluated predicates can only lower the upper bound.
        pa, pb, pc = make_predicates()
        scoring = ScoringFunction([pa, pb, pc])
        partial = scoring.upper_bound({"pa": 0.4})
        fuller = scoring.upper_bound({"pa": 0.4, "pb": 0.2})
        assert fuller <= partial

    def test_subset(self):
        pa, pb, pc = make_predicates()
        scoring = ScoringFunction([pa, pb, pc])
        assert scoring.subset(["pc", "pa"]) == (pa, pc)
        with pytest.raises(KeyError):
            scoring.subset(["zz"])

    def test_contains_and_lookup(self):
        pa, pb, __ = make_predicates()
        scoring = ScoringFunction([pa, pb])
        assert "pa" in scoring
        assert scoring.predicate("pb") is pb
        with pytest.raises(KeyError):
            scoring.predicate("nope")

    def test_duplicate_names_rejected(self):
        pa, __, __ = make_predicates()
        with pytest.raises(ValueError):
            ScoringFunction([pa, pa])

    def test_wsum_needs_weights(self):
        pa, pb, __ = make_predicates()
        with pytest.raises(ValueError):
            ScoringFunction([pa, pb], combiner="wsum")
        with pytest.raises(ValueError):
            ScoringFunction([pa, pb], combiner="wsum", weights=[1.0])
        with pytest.raises(ValueError):
            ScoringFunction([pa, pb], combiner="wsum", weights=[1.0, -1.0])

    def test_unknown_combiner(self):
        pa, __, __ = make_predicates()
        with pytest.raises(ValueError):
            ScoringFunction([pa], combiner="median")

    def test_sum_of_shorthand(self):
        pa, pb, __ = make_predicates()
        scoring = sum_of(pa, pb)
        assert scoring.combiner == "sum"
        assert scoring.predicate_names == ("pa", "pb")
