"""Unit tests for logical plan nodes and the reference evaluator details
not covered by the paper-example tests."""

import pytest

from repro.algebra.expressions import col
from repro.algebra.operators import (
    LogicalJoin,
    LogicalLimit,
    LogicalProject,
    LogicalRank,
    LogicalRankScan,
    LogicalScan,
    LogicalSelect,
    LogicalSort,
    LogicalUnion,
    evaluate_logical,
    explain,
)
from repro.algebra.predicates import BooleanPredicate


def scan(paper_db, name):
    return LogicalScan(name, paper_db.catalog.table(name).schema)


class TestNodeMechanics:
    def test_with_children_rebuilds(self, paper_db):
        plan = LogicalRank(scan(paper_db, "R"), "p1")
        replacement = scan(paper_db, "R2")
        rebuilt = plan.with_children([replacement])
        assert rebuilt.child is replacement
        assert rebuilt.predicate_name == "p1"

    def test_scan_with_children_rejects(self, paper_db):
        with pytest.raises(ValueError):
            scan(paper_db, "R").with_children([scan(paper_db, "R2")])

    def test_walk(self, paper_db):
        plan = LogicalLimit(LogicalRank(scan(paper_db, "R"), "p1"), 2)
        kinds = [type(node).__name__ for node in plan.walk()]
        assert kinds == ["LogicalLimit", "LogicalRank", "LogicalScan"]

    def test_explain(self, paper_db):
        plan = LogicalLimit(LogicalRank(scan(paper_db, "R"), "p1"), 2)
        text = explain(plan)
        assert "Limit(2)" in text
        assert "Rank(mu_p1)" in text

    def test_union_arity_mismatch_rejected(self, paper_db):
        narrow = LogicalProject(scan(paper_db, "R"), ["R.a"])
        with pytest.raises(ValueError):
            LogicalUnion(narrow, scan(paper_db, "R2"))

    def test_limit_negative_rejected(self, paper_db):
        with pytest.raises(ValueError):
            LogicalLimit(scan(paper_db, "R"), -1)


class TestReferenceEvaluator:
    def test_rank_scan_node(self, paper_db):
        plan = LogicalRankScan("S", paper_db.S.schema, "p3")
        result = evaluate_logical(plan, paper_db.catalog, paper_db.F2)
        assert result.evaluated_predicates() == {"p3"}
        bounds = result.upper_bounds()
        assert bounds == sorted(bounds, reverse=True)

    def test_project(self, paper_db):
        plan = LogicalProject(LogicalRank(scan(paper_db, "R"), "p1"), ["R.b"])
        result = evaluate_logical(plan, paper_db.catalog, paper_db.F1)
        assert [s.row.values for s in result] == [(2,), (3,), (4,)]

    def test_sort_completes_all_predicates(self, paper_db):
        plan = LogicalSort(scan(paper_db, "R"), paper_db.F1)
        result = evaluate_logical(plan, paper_db.catalog, paper_db.F1)
        assert result.evaluated_predicates() == {"p1", "p2"}

    def test_limit(self, paper_db):
        plan = LogicalLimit(LogicalRank(scan(paper_db, "R"), "p1"), 2)
        result = evaluate_logical(plan, paper_db.catalog, paper_db.F1)
        assert len(result) == 2
        assert [s.row.values for s in result] == [(1, 2), (2, 3)]

    def test_cartesian_product_via_none_condition(self, paper_db):
        plan = LogicalJoin(scan(paper_db, "R"), scan(paper_db, "S"), None)
        result = evaluate_logical(plan, paper_db.catalog, paper_db.F3)
        assert len(result) == 18

    def test_select_after_rank_keeps_order(self, paper_db):
        condition = BooleanPredicate(col("R.b") > 2, "b>2")
        plan = LogicalSelect(LogicalRank(scan(paper_db, "R"), "p1"), condition)
        result = evaluate_logical(plan, paper_db.catalog, paper_db.F1)
        assert [s.row.values for s in result] == [(2, 3), (3, 4)]

    def test_unknown_node_type_raises(self, paper_db):
        class Weird:
            pass

        with pytest.raises(TypeError):
            evaluate_logical(Weird(), paper_db.catalog, paper_db.F1)
