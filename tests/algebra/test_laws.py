"""Tests for the algebraic laws (Figure 5, Propositions 1–6).

Each law is checked two ways: the rewrite fires structurally, and the
rewritten plan is *rank-relationally equivalent* to the original (same
membership, same score-order) on the paper's data — verified by the
reference evaluator.
"""

import pytest

from repro.algebra.expressions import col
from repro.algebra.laws import (
    associate_left,
    associate_right,
    commute_binary,
    equivalence_closure,
    merge_ranks_to_sort,
    multiple_scan,
    plans_equivalent,
    push_rank_into_join,
    push_rank_into_setop,
    pull_rank_above,
    split_sort,
    swap_rank_rank,
    swap_rank_select,
    swap_select_rank,
    transformations,
)
from repro.algebra.operators import (
    LogicalDifference,
    LogicalIntersect,
    LogicalJoin,
    LogicalRank,
    LogicalScan,
    LogicalSelect,
    LogicalSort,
    LogicalUnion,
)
from repro.algebra.predicates import BooleanPredicate


def scan(paper_db, name):
    return LogicalScan(name, paper_db.catalog.table(name).schema)


def equivalent(paper_db, left, right, scoring=None):
    return plans_equivalent(
        left, right, paper_db.catalog, scoring or paper_db.F1
    )


class TestProposition1Splitting:
    def test_split_sort_into_mu_chain(self, paper_db):
        sorted_plan = LogicalSort(scan(paper_db, "R"), paper_db.F1)
        rewritten = split_sort(sorted_plan, paper_db.F1)
        assert isinstance(rewritten, LogicalRank)
        assert rewritten.evaluated_predicates() == frozenset({"p1", "p2"})
        assert equivalent(paper_db, sorted_plan, rewritten)

    def test_split_skips_already_evaluated(self, paper_db):
        inner = LogicalRank(scan(paper_db, "R"), "p1")
        sorted_plan = LogicalSort(inner, paper_db.F1)
        rewritten = split_sort(sorted_plan, paper_db.F1)
        # Only p2 remains to be split in.
        assert isinstance(rewritten, LogicalRank)
        assert rewritten.predicate_name == "p2"
        assert rewritten.child is inner

    def test_split_not_applicable_elsewhere(self, paper_db):
        assert split_sort(scan(paper_db, "R"), paper_db.F1) is None

    def test_merge_ranks_back_to_sort(self, paper_db):
        chain = LogicalRank(LogicalRank(scan(paper_db, "R"), "p2"), "p1")
        merged = merge_ranks_to_sort(chain, paper_db.F1)
        assert isinstance(merged, LogicalSort)
        assert equivalent(paper_db, chain, merged)

    def test_merge_requires_complete_chain(self, paper_db):
        partial = LogicalRank(scan(paper_db, "R"), "p1")
        assert merge_ranks_to_sort(partial, paper_db.F1) is None


class TestProposition2Commutativity:
    def test_union_commutes(self, paper_db):
        left = LogicalRank(scan(paper_db, "R"), "p1")
        right = LogicalRank(scan(paper_db, "R2"), "p2")
        plan = LogicalUnion(left, right)
        swapped = commute_binary(plan, paper_db.F1)
        assert isinstance(swapped, LogicalUnion)
        assert equivalent(paper_db, plan, swapped)

    def test_intersection_commutes(self, paper_db):
        plan = LogicalIntersect(
            LogicalRank(scan(paper_db, "R"), "p1"),
            LogicalRank(scan(paper_db, "R2"), "p2"),
        )
        swapped = commute_binary(plan, paper_db.F1)
        assert swapped is not None
        assert equivalent(paper_db, plan, swapped)

    def test_join_not_structurally_commuted(self, paper_db):
        condition = BooleanPredicate(col("R.a").eq(col("S.a")), "j")
        plan = LogicalJoin(scan(paper_db, "R"), scan(paper_db, "S"), condition)
        assert commute_binary(plan, paper_db.F3) is None


class TestProposition3Associativity:
    def make_three_way(self, paper_db, op):
        r = LogicalRank(scan(paper_db, "R"), "p1")
        r2 = LogicalRank(scan(paper_db, "R2"), "p2")
        r3 = scan(paper_db, "R")
        return op(r, op(r2, r3))

    def test_union_associates_left(self, paper_db):
        plan = self.make_three_way(paper_db, LogicalUnion)
        rewritten = associate_left(plan, paper_db.F1)
        assert rewritten is not None
        assert equivalent(paper_db, plan, rewritten)

    def test_union_associates_right_roundtrip(self, paper_db):
        plan = self.make_three_way(paper_db, LogicalUnion)
        left_assoc = associate_left(plan, paper_db.F1)
        round_trip = associate_right(left_assoc, paper_db.F1)
        assert round_trip is not None
        assert equivalent(paper_db, plan, round_trip)

    def test_intersection_associates(self, paper_db):
        plan = self.make_three_way(paper_db, LogicalIntersect)
        rewritten = associate_left(plan, paper_db.F1)
        assert rewritten is not None
        assert equivalent(paper_db, plan, rewritten)


class TestProposition4CommutingMu:
    def test_mu_mu_swap(self, paper_db):
        plan = LogicalRank(LogicalRank(scan(paper_db, "S"), "p4"), "p3")
        swapped = swap_rank_rank(plan, paper_db.F2)
        assert swapped is not None
        assert swapped.predicate_name == "p4"
        assert equivalent(paper_db, plan, swapped, paper_db.F2)

    def test_select_mu_swap(self, paper_db):
        condition = BooleanPredicate(col("R.a") > 1, "a>1")
        plan = LogicalSelect(LogicalRank(scan(paper_db, "R"), "p1"), condition)
        swapped = swap_rank_select(plan, paper_db.F1)
        assert isinstance(swapped, LogicalRank)
        assert equivalent(paper_db, plan, swapped)

    def test_mu_select_swap_inverse(self, paper_db):
        condition = BooleanPredicate(col("R.a") > 1, "a>1")
        plan = LogicalRank(LogicalSelect(scan(paper_db, "R"), condition), "p1")
        swapped = swap_select_rank(plan, paper_db.F1)
        assert isinstance(swapped, LogicalSelect)
        assert equivalent(paper_db, plan, swapped)


class TestProposition5PushingMu:
    def test_push_mu_into_join_left_side(self, paper_db):
        # Qualified predicates: q1 lives on R only, q3 on S only, so µ_q1
        # pushes to the join's left operand.
        from tests.conftest import RR_SCORES, S_SCORES
        from repro.algebra.predicates import RankingPredicate, ScoringFunction

        q1 = RankingPredicate("q1", ["R.a", "R.b"], lambda a, b: RR_SCORES[(a, b)][0])
        q3 = RankingPredicate("q3", ["S.c", "S.a"], lambda c, a: S_SCORES[(a, c)][0])
        scoring = ScoringFunction([q1, q3])
        condition = BooleanPredicate(col("R.a").eq(col("S.a")), "j")
        join = LogicalJoin(scan(paper_db, "R"), scan(paper_db, "S"), condition)
        plan = LogicalRank(join, "q1")
        rewritten = push_rank_into_join(plan, scoring)
        assert rewritten is not None
        assert isinstance(rewritten, LogicalJoin)
        assert isinstance(rewritten.left, LogicalRank)
        assert equivalent(paper_db, plan, rewritten, scoring)

    def test_push_mu_into_union_both_sides(self, paper_db):
        union = LogicalUnion(scan(paper_db, "R"), scan(paper_db, "R2"))
        plan = LogicalRank(union, "p1")
        rewritten = push_rank_into_setop(plan, paper_db.F1)
        assert isinstance(rewritten, LogicalUnion)
        assert isinstance(rewritten.left, LogicalRank)
        assert isinstance(rewritten.right, LogicalRank)
        assert equivalent(paper_db, plan, rewritten)

    def test_push_mu_into_intersection(self, paper_db):
        plan = LogicalRank(
            LogicalIntersect(scan(paper_db, "R"), scan(paper_db, "R2")), "p2"
        )
        rewritten = push_rank_into_setop(plan, paper_db.F1)
        assert rewritten is not None
        assert equivalent(paper_db, plan, rewritten)

    def test_push_mu_into_difference_outer_only(self, paper_db):
        plan = LogicalRank(
            LogicalDifference(scan(paper_db, "R"), scan(paper_db, "R2")), "p1"
        )
        rewritten = push_rank_into_setop(plan, paper_db.F1)
        assert isinstance(rewritten, LogicalDifference)
        assert isinstance(rewritten.left, LogicalRank)
        assert not isinstance(rewritten.right, LogicalRank)
        assert equivalent(paper_db, plan, rewritten)

    def test_pull_mu_above_union(self, paper_db):
        plan = LogicalUnion(
            LogicalRank(scan(paper_db, "R"), "p1"),
            LogicalRank(scan(paper_db, "R2"), "p1"),
        )
        pulled = pull_rank_above(plan, paper_db.F1)
        assert isinstance(pulled, LogicalRank)
        assert equivalent(paper_db, plan, pulled)


class TestProposition6MultipleScan:
    def test_multiple_scan_rewrite(self, paper_db):
        plan = LogicalRank(LogicalRank(scan(paper_db, "R"), "p2"), "p1")
        rewritten = multiple_scan(plan, paper_db.F1)
        assert isinstance(rewritten, LogicalIntersect)
        assert equivalent(paper_db, plan, rewritten)

    def test_requires_base_scan(self, paper_db):
        condition = BooleanPredicate(col("R.a") > 0, "c")
        plan = LogicalRank(
            LogicalRank(LogicalSelect(scan(paper_db, "R"), condition), "p2"), "p1"
        )
        assert multiple_scan(plan, paper_db.F1) is None


class TestClosure:
    def test_transformations_yield_equivalent_plans(self, paper_db):
        plan = LogicalSort(scan(paper_db, "R"), paper_db.F1)
        neighbours = list(transformations(plan, paper_db.F1))
        assert neighbours
        for neighbour in neighbours:
            assert equivalent(paper_db, plan, neighbour)

    def test_closure_bounded_and_equivalent(self, paper_db):
        plan = LogicalSort(scan(paper_db, "S"), paper_db.F2)
        closure = equivalence_closure(plan, paper_db.F2, max_plans=40)
        assert 1 < len(closure) <= 40
        for candidate in closure:
            assert equivalent(paper_db, plan, candidate, paper_db.F2)

    def test_closure_contains_full_mu_chain(self, paper_db):
        plan = LogicalSort(scan(paper_db, "R"), paper_db.F1)
        closure = equivalence_closure(plan, paper_db.F1, max_plans=60)
        chains = [
            p
            for p in closure
            if isinstance(p, LogicalRank)
            and p.evaluated_predicates() == frozenset({"p1", "p2"})
        ]
        assert chains, "splitting law should produce a µ-chain plan"
