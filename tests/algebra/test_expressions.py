"""Unit tests for scalar expressions."""

import pytest

from repro.algebra.expressions import (
    Arithmetic,
    BooleanOp,
    ColumnRef,
    Comparison,
    FunctionCall,
    Literal,
    col,
    conjunction,
    lit,
    split_conjuncts,
)
from repro.storage import DataType, Row, Schema


SCHEMA = Schema.of(("a", DataType.INT), ("b", DataType.FLOAT), table="t")


def row(a, b):
    return Row.base([a, b], "t", 0)


class TestBasics:
    def test_column_ref(self):
        fn = col("t.a").compile(SCHEMA)
        assert fn(row(7, 0.0)) == 7

    def test_bare_column_ref(self):
        fn = col("b").compile(SCHEMA)
        assert fn(row(0, 2.5)) == 2.5

    def test_literal(self):
        fn = lit(42).compile(SCHEMA)
        assert fn(row(0, 0.0)) == 42

    def test_references(self):
        expression = (col("t.a") + col("t.b")) < lit(10)
        assert expression.references() == {"t.a", "t.b"}

    def test_tables(self):
        expression = col("t.a").eq(col("u.x"))
        assert expression.tables() == {"t", "u"}


class TestArithmetic:
    @pytest.mark.parametrize(
        "op,expected",
        [("+", 7.5), ("-", 2.5), ("*", 12.5), ("/", 2.0)],
    )
    def test_operators(self, op, expected):
        fn = Arithmetic(op, col("a"), col("b")).compile(SCHEMA)
        assert fn(row(5, 2.5)) == expected

    def test_modulo(self):
        fn = Arithmetic("%", col("a"), lit(3)).compile(SCHEMA)
        assert fn(row(7, 0.0)) == 1

    def test_null_propagation(self):
        fn = (col("a") + col("b")).compile(SCHEMA)
        assert fn(row(None, 1.0)) is None

    def test_unknown_operator(self):
        with pytest.raises(ValueError):
            Arithmetic("**", col("a"), col("b"))

    def test_operator_overloading_builds_tree(self):
        expression = (col("a") + 1) * 2
        assert isinstance(expression, Arithmetic)
        fn = expression.compile(SCHEMA)
        assert fn(row(3, 0.0)) == 8


class TestComparison:
    @pytest.mark.parametrize(
        "op,a,expected",
        [
            ("=", 5, True),
            ("!=", 5, False),
            ("<", 4, True),
            ("<=", 5, True),
            (">", 6, True),
            (">=", 5, True),
        ],
    )
    def test_operators(self, op, a, expected):
        fn = Comparison(op, col("a"), lit(5)).compile(SCHEMA)
        assert fn(row(a, 0.0)) is expected

    def test_null_compares_false(self):
        fn = (col("a") < lit(5)).compile(SCHEMA)
        assert fn(row(None, 0.0)) is False

    def test_unknown_operator(self):
        with pytest.raises(ValueError):
            Comparison("~", col("a"), lit(1))


class TestBooleanOp:
    def test_and(self):
        fn = (col("a") > 1).and_(col("b") > 1).compile(SCHEMA)
        assert fn(row(2, 2.0)) is True
        assert fn(row(2, 0.5)) is False

    def test_or(self):
        fn = (col("a") > 1).or_(col("b") > 1).compile(SCHEMA)
        assert fn(row(0, 2.0)) is True
        assert fn(row(0, 0.0)) is False

    def test_not(self):
        fn = (col("a") > 1).not_().compile(SCHEMA)
        assert fn(row(0, 0.0)) is True

    def test_not_arity(self):
        with pytest.raises(ValueError):
            BooleanOp("not", [lit(True), lit(False)])

    def test_empty_and_rejected(self):
        with pytest.raises(ValueError):
            BooleanOp("and", [])


class TestFunctionCall:
    def test_call(self):
        fn = FunctionCall("add", lambda x, y: x + y, [col("a"), lit(1)]).compile(SCHEMA)
        assert fn(row(4, 0.0)) == 5

    def test_repr(self):
        call = FunctionCall("f", lambda x: x, [col("a")])
        assert "f(" in repr(call)


class TestConjunctions:
    def test_conjunction_single_passthrough(self):
        term = col("a") > 1
        assert conjunction([term]) is term

    def test_conjunction_empty_rejected(self):
        with pytest.raises(ValueError):
            conjunction([])

    def test_split_flattens_nested_ands(self):
        e1, e2, e3 = col("a") > 1, col("b") > 2, col("a") < 9
        nested = BooleanOp("and", [e1, BooleanOp("and", [e2, e3])])
        assert split_conjuncts(nested) == [e1, e2, e3]

    def test_split_leaves_or_alone(self):
        expression = (col("a") > 1).or_(col("b") > 2)
        assert split_conjuncts(expression) == [expression]

    def test_roundtrip(self):
        terms = [col("a") > 0, col("b") > 0, col("a") < 5]
        assert split_conjuncts(conjunction(terms)) == terms
