"""Public API surface tests: imports, __all__, version, docstrings."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.algebra",
    "repro.execution",
    "repro.optimizer",
    "repro.storage",
    "repro.sql",
    "repro.engine",
    "repro.server",
    "repro.workloads",
]


class TestImports:
    @pytest.mark.parametrize("name", PACKAGES)
    def test_package_imports(self, name):
        module = importlib.import_module(name)
        assert module is not None

    @pytest.mark.parametrize("name", PACKAGES)
    def test_all_entries_resolve(self, name):
        module = importlib.import_module(name)
        for symbol in getattr(module, "__all__", []):
            assert hasattr(module, symbol), f"{name}.{symbol} missing"

    @pytest.mark.parametrize("name", PACKAGES)
    def test_module_docstrings(self, name):
        module = importlib.import_module(name)
        assert module.__doc__, f"{name} lacks a module docstring"

    def test_version(self):
        import repro

        assert repro.__version__


class TestCoreSurface:
    def test_core_exports_the_papers_pieces(self):
        from repro import core

        # the three contributions: algebra, execution model, optimizer
        for symbol in (
            "RankingPredicate",
            "ScoringFunction",
            "LogicalRank",
            "Mu",
            "HRJN",
            "RankAwareOptimizer",
            "CardinalityEstimator",
            "Database",
        ):
            assert hasattr(core, symbol)

    def test_top_level_quickstart_symbols(self):
        import repro

        for symbol in ("Database", "DataType", "RankingPredicate", "col", "lit"):
            assert hasattr(repro, symbol)

    def test_public_classes_documented(self):
        """Every exported class and function carries a docstring."""
        import inspect

        undocumented = []
        for name in PACKAGES:
            module = importlib.import_module(name)
            for symbol in getattr(module, "__all__", []):
                obj = getattr(module, symbol)
                if inspect.isclass(obj) or inspect.isfunction(obj):
                    if not inspect.getdoc(obj):
                        undocumented.append(f"{name}.{symbol}")
        assert not undocumented, f"undocumented: {undocumented}"
