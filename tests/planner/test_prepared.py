"""Prepared statements and sessions: plan-once, run-many semantics."""

from __future__ import annotations

import pytest

from repro.cli import build_demo_database

SQL = "SELECT * FROM hotel ORDER BY cheap(hotel.price) LIMIT 5"


@pytest.fixture
def db():
    return build_demo_database(seed=7)


class TestPreparedQuery:
    def test_run_matches_adhoc_query(self, db):
        adhoc = db.query(SQL)
        prepared = db.prepare(SQL)
        result = prepared.run()
        assert result.rows == adhoc.rows
        assert result.scores == adhoc.scores
        assert result.plan_cached

    def test_repeated_prepare_hits_cache(self, db):
        first = db.prepare(SQL)
        second = db.prepare(SQL)
        assert not first.from_cache
        assert second.from_cache
        assert second.plan is first.plan

    def test_run_with_smaller_k(self, db):
        prepared = db.prepare(SQL)
        assert len(prepared.run(k=2)) == 2

    def test_run_with_larger_k_than_limit(self, db):
        prepared = db.prepare(SQL)
        result = prepared.run(k=12)
        assert len(result) == 12
        scores = result.scores
        assert scores == sorted(scores, reverse=True)

    def test_rerun_skips_planning(self, db):
        prepared = db.prepare(SQL)
        built = db.planner.metrics.plans_built
        for __ in range(3):
            prepared.run()
        assert db.planner.metrics.plans_built == built

    def test_replans_after_catalog_change(self, db):
        prepared = db.prepare(SQL)
        db.insert("hotel", [("hotel-best", 1.0, 5, 0)])
        db.analyze("hotel")
        result = prepared.run()
        assert result.rows[0][0] == "hotel-best"  # not a stale plan
        assert not result.plan_cached  # the run re-optimized; don't claim a hit
        assert prepared.run().plan_cached  # the next one is warm again

    def test_cursor_is_unbounded(self, db):
        prepared = db.prepare(SQL)
        with prepared.cursor() as cursor:
            rows = cursor.fetch_many(20)  # past the prepared LIMIT 5
        assert len(rows) == 20

    def test_explain_renders_plan(self, db):
        assert "limit(5)" in db.prepare(SQL).explain()

    def test_traditional_strategy(self, db):
        prepared = db.prepare(SQL, strategy="traditional")
        assert "sort" in prepared.plan.explain()
        assert prepared.run().rows == db.query(SQL).rows

    def test_unknown_strategy_rejected(self, db):
        with pytest.raises(ValueError):
            db.prepare(SQL, strategy="quantum")


class TestSession:
    def test_execute_accumulates_metrics(self, db):
        session = db.session(sample_ratio=0.05, seed=1)
        session.execute(SQL)
        session.execute(SQL)
        summary = session.summary()
        assert summary["queries_executed"] == 2
        assert summary["rows_returned"] == 10
        assert summary["statements_cached"] == 1
        assert summary["statement_hits"] == 1
        assert summary["simulated_cost"] > 0

    def test_first_run_of_cold_plan_reports_uncached(self, db):
        session = db.session()
        cold = session.execute(SQL)   # plan built during this statement
        warm = session.execute(SQL)   # pure reuse
        assert not cold.plan_cached
        assert warm.plan_cached

    def test_statement_cache_reuses_prepared(self, db):
        session = db.session()
        assert session.prepare(SQL) is session.prepare(SQL)

    def test_statement_cache_is_bounded_lru(self, db):
        session = db.session(max_statements=2)
        statements = [
            f"SELECT * FROM hotel ORDER BY cheap(hotel.price) LIMIT {k}"
            for k in (1, 2, 3)
        ]
        first = session.prepare(statements[0])
        session.prepare(statements[1])
        assert session.prepare(statements[0]) is first  # touch: LRU order
        session.prepare(statements[2])                  # evicts statements[1]
        assert session.summary()["statements_cached"] == 2
        assert session.prepare(statements[0]) is first  # survivor

    def test_max_statements_validated(self, db):
        with pytest.raises(ValueError):
            db.session(max_statements=0)

    def test_session_settings_apply(self, db):
        session = db.session(strategy="traditional")
        assert "sort" in session.explain(SQL)

    def test_sessions_share_plan_cache(self, db):
        db.session().execute(SQL)
        result = db.session().execute(SQL)
        assert result.plan_cached

    def test_closed_session_rejects_statements(self, db):
        with db.session() as session:
            session.execute(SQL)
        with pytest.raises(RuntimeError):
            session.prepare(SQL)

    def test_session_cursor(self, db):
        session = db.session()
        with session.cursor(SQL) as cursor:
            assert len(cursor.fetch_many(8)) == 8
