"""Normalized query signatures: equal exactly when a plan is reusable."""

from __future__ import annotations

import pytest

from repro.cli import build_demo_database
from repro.planner import plan_signature, spec_signature

SQL = "SELECT * FROM hotel ORDER BY cheap(hotel.price) LIMIT 5"
JOIN_SQL = (
    "SELECT * FROM hotel, restaurant WHERE hotel.area = restaurant.area "
    "ORDER BY cheap(hotel.price) + tasty(restaurant.price) LIMIT 5"
)


@pytest.fixture
def db():
    return build_demo_database(seed=7)


class TestSpecSignature:
    def test_same_sql_same_signature(self, db):
        assert spec_signature(db.bind(SQL)) == spec_signature(db.bind(SQL))

    def test_join_query_stable(self, db):
        assert spec_signature(db.bind(JOIN_SQL)) == spec_signature(db.bind(JOIN_SQL))

    def test_k_differentiates(self, db):
        other = "SELECT * FROM hotel ORDER BY cheap(hotel.price) LIMIT 6"
        assert spec_signature(db.bind(SQL)) != spec_signature(db.bind(other))

    def test_scoring_differentiates(self, db):
        other = "SELECT * FROM hotel ORDER BY starry(hotel.stars) LIMIT 5"
        assert spec_signature(db.bind(SQL)) != spec_signature(db.bind(other))

    def test_selection_order_normalized(self, db):
        ab = (
            "SELECT * FROM hotel WHERE hotel.price < 300 AND hotel.stars > 1 "
            "ORDER BY cheap(hotel.price) LIMIT 5"
        )
        ba = (
            "SELECT * FROM hotel WHERE hotel.stars > 1 AND hotel.price < 300 "
            "ORDER BY cheap(hotel.price) LIMIT 5"
        )
        assert spec_signature(db.bind(ab)) == spec_signature(db.bind(ba))

    def test_selection_value_differentiates(self, db):
        lo = (
            "SELECT * FROM hotel WHERE hotel.price < 100 "
            "ORDER BY cheap(hotel.price) LIMIT 5"
        )
        hi = (
            "SELECT * FROM hotel WHERE hotel.price < 200 "
            "ORDER BY cheap(hotel.price) LIMIT 5"
        )
        assert spec_signature(db.bind(lo)) != spec_signature(db.bind(hi))

    def test_signature_is_hashable(self, db):
        hash(spec_signature(db.bind(JOIN_SQL)))

    def test_mixed_literal_types_do_not_crash(self, db):
        # Structurally equal selections whose literals are not mutually
        # orderable (int vs str) must still produce a signature.
        sql = (
            "SELECT * FROM hotel WHERE hotel.name = 5 AND hotel.name = '5' "
            "ORDER BY cheap(hotel.price) LIMIT 3"
        )
        signature = spec_signature(db.bind(sql))
        assert signature == spec_signature(db.bind(sql))
        assert len(db.query(sql)) == 0  # contradictory filter still executes

    def test_same_name_different_scorer_differentiates(self):
        # Hand-built specs may reuse a predicate *name* with different
        # scoring behaviour; colliding would silently serve wrong results.
        from repro import QuerySpec, RankingPredicate, ScoringFunction

        def spec(scorer):
            predicate = RankingPredicate("s", ["t.x"], scorer)
            return QuerySpec(tables=["t"], scoring=ScoringFunction([predicate]), k=1)

        ascending = spec(lambda x: x)
        descending = spec(lambda x: 1 - x)
        assert spec_signature(ascending) != spec_signature(descending)

    def test_aliased_selection_names_differentiate(self):
        # Explicit BooleanPredicate names can alias distinct expressions;
        # the signature must key on the expression, not the label.
        from repro import BooleanPredicate, QuerySpec, RankingPredicate, ScoringFunction
        from repro.algebra.expressions import ColumnRef, Comparison, Literal

        predicate = RankingPredicate("s", ["t.x"], lambda x: x)

        def spec(threshold):
            condition = BooleanPredicate(
                Comparison("<", ColumnRef("t.x"), Literal(threshold)), name="cheap"
            )
            return QuerySpec(
                tables=["t"],
                scoring=ScoringFunction([predicate]),
                k=1,
                selections=[condition],
            )

        assert spec_signature(spec(10)) != spec_signature(spec(20))

    def test_function_call_selections_differentiate_by_callable(self):
        # FunctionCall repr hides the wrapped callable ("keep(t.x)" for
        # both); keying on repr alone served the wrong plan silently.
        from repro import BooleanPredicate, QuerySpec, RankingPredicate, ScoringFunction
        from repro.algebra.expressions import ColumnRef, FunctionCall

        predicate = RankingPredicate("s", ["t.x"], lambda x: x)

        def spec(fn):
            condition = BooleanPredicate(
                FunctionCall("keep", fn, [ColumnRef("t.x")])
            )
            return QuerySpec(
                tables=["t"],
                scoring=ScoringFunction([predicate]),
                k=2,
                selections=[condition],
            )

        below = spec(lambda x: x < 2.5)
        above = spec(lambda x: x > 2.5)
        assert spec_signature(below) != spec_signature(above)

    def test_function_call_scorer_differentiates_by_callable(self):
        from repro import QuerySpec, RankingPredicate, ScoringFunction
        from repro.algebra.expressions import ColumnRef, FunctionCall

        def spec(fn):
            scorer = FunctionCall("score", fn, [ColumnRef("t.x")])
            predicate = RankingPredicate("s", ["t.x"], scorer)
            return QuerySpec(tables=["t"], scoring=ScoringFunction([predicate]), k=1)

        assert spec_signature(spec(lambda x: x)) != spec_signature(
            spec(lambda x: 1 - x)
        )


class TestPlanSignature:
    def test_strategy_differentiates(self, db):
        spec = db.bind(SQL)
        assert plan_signature(spec, "rank-aware") != plan_signature(spec, "traditional")

    def test_knobs_differentiate(self, db):
        spec = db.bind(SQL)
        assert plan_signature(spec, "rank-aware", {"left_deep": True}) != plan_signature(
            spec, "rank-aware", {"left_deep": False}
        )

    def test_knob_order_normalized(self, db):
        spec = db.bind(SQL)
        assert plan_signature(
            spec, "rank-aware", {"left_deep": True, "greedy_mu": False}
        ) == plan_signature(
            spec, "rank-aware", {"greedy_mu": False, "left_deep": True}
        )
