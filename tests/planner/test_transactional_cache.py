"""The shared plan cache under transactional DML.

Autocommit DML invalidates the plan cache at publication (every insert /
delete bumps the planner generation).  Transactions must not leak that
cost early or double-pay it: buffered writes are session-private, so the
generation moves only when a *dirty commit* publishes — exactly once per
commit, never on rollback, never on a read-only commit."""

from __future__ import annotations

import pytest

from repro.engine.database import Database
from repro.storage.schema import DataType
from repro.storage.transaction import SerializationError

SQL = "SELECT * FROM kv WHERE kv.key = :k"


@pytest.fixture()
def db():
    database = Database()
    database.create_table("kv", [("key", DataType.INT), ("val", DataType.INT)])
    database.insert("kv", [(key, 0) for key in range(4)])
    database.create_column_index("kv", "key")
    database.analyze()
    yield database
    database.close()


def rmw(db, txn, key, value):
    table = db.catalog.table("kv")
    txn.delete_where(table, column="key", equals=key)
    txn.insert(table, [(key, value)])


def test_autocommit_dml_still_invalidates(db):
    generation = db.planner.generation
    db.insert("kv", [(9, 9)])
    assert db.planner.generation > generation


def test_buffered_writes_do_not_bump_the_generation(db):
    txn = db.begin()
    generation = db.planner.generation
    rmw(db, txn, 0, 1)
    rmw(db, txn, 1, 2)
    # reads inside the transaction plan against the cache as usual
    db.query(SQL, params={"k": 0}, snapshot=txn.read_view())
    assert db.planner.generation == generation
    txn.rollback()


def test_dirty_commit_invalidates_exactly_once(db):
    txn = db.begin()
    rmw(db, txn, 0, 1)
    rmw(db, txn, 1, 2)  # several buffered statements, one publication
    generation = db.planner.generation
    txn.commit()
    assert db.planner.generation == generation + 1


def test_rollback_does_not_invalidate(db):
    txn = db.begin()
    rmw(db, txn, 0, 1)
    generation = db.planner.generation
    txn.rollback()
    assert db.planner.generation == generation


def test_read_only_commit_does_not_invalidate(db):
    txn = db.begin()
    db.query(SQL, params={"k": 0}, snapshot=txn.read_view())
    generation = db.planner.generation
    txn.commit()
    assert db.planner.generation == generation


def test_conflict_abort_does_not_invalidate(db):
    winner = db.begin()
    loser = db.begin()
    rmw(db, winner, 0, 1)
    rmw(db, loser, 0, 2)
    winner.commit()
    generation = db.planner.generation
    with pytest.raises(SerializationError):
        loser.commit()
    # the loser published nothing, so cached plans stay valid
    assert db.planner.generation == generation


def test_cached_plan_survives_a_transaction_and_expires_at_commit(db):
    # a rank query: unordered statements carry per-bind scoring closures
    # in their signature and never hit the shared cache
    db.register_predicate("hot", ["kv.val"], lambda v: v)
    literal = "SELECT * FROM kv ORDER BY hot(kv.val) LIMIT 2"
    entry_before, __ = db.planner.prepare(literal)
    __, hit_before = db.planner.prepare(literal)
    assert hit_before  # warmed by the first prepare

    txn = db.begin()
    rmw(db, txn, 0, 1)
    entry_during, hit_during = db.planner.prepare(literal)
    assert hit_during  # buffered writes never orphan shared plans
    assert entry_during is entry_before

    txn.commit()
    __, hit_after = db.planner.prepare(literal)
    assert not hit_after  # the commit's publication orphaned the entry
