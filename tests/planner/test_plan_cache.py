"""Plan-cache correctness: warm runs are identical, invalidation is exact.

The acceptance bar: executing the same query twice hits the plan cache
(observable via planner metrics) and returns byte-identical results —
same rows, same order (ties included), same scores — while any change to
tables, indexes or statistics invalidates every cached plan.
"""

from __future__ import annotations

import pytest

from repro.cli import build_demo_database
from repro.planner import CachedPlan, PlanCache

SQL = "SELECT * FROM hotel ORDER BY cheap(hotel.price) + starry(hotel.stars) LIMIT 7"
JOIN_SQL = (
    "SELECT * FROM hotel, restaurant WHERE hotel.area = restaurant.area "
    "ORDER BY cheap(hotel.price) + tasty(restaurant.price) LIMIT 5"
)


@pytest.fixture
def db():
    return build_demo_database(seed=7)


def assert_identical(cold, warm):
    assert warm.rows == cold.rows          # same tuples, same (tie) order
    assert warm.scores == cold.scores
    assert warm.schema == cold.schema
    assert warm.plan.fingerprint() == cold.plan.fingerprint()


class TestCacheHits:
    def test_second_run_hits_cache(self, db):
        cold = db.query(SQL)
        warm = db.query(SQL)
        assert not cold.plan_cached
        assert warm.plan_cached
        assert db.planner.cache.stats.hits == 1
        assert db.planner.cache.stats.misses == 1
        assert_identical(cold, warm)

    def test_join_query_hits_cache(self, db):
        cold = db.query(JOIN_SQL, sample_ratio=0.05, seed=1)
        warm = db.query(JOIN_SQL, sample_ratio=0.05, seed=1)
        assert warm.plan_cached
        assert_identical(cold, warm)

    def test_warm_run_does_identical_execution_work(self, db):
        cold = db.query(SQL)
        warm = db.query(SQL)
        # Same plan, same data: the execution metrics must agree exactly.
        assert warm.metrics.summary() == cold.metrics.summary()

    def test_distinct_knobs_planned_separately(self, db):
        db.query(SQL)
        result = db.query(SQL, left_deep=True)
        assert not result.plan_cached
        assert db.planner.cache.stats.hits == 0

    def test_planner_metrics_observable(self, db):
        db.query(SQL)
        db.query(SQL)
        metrics = db.planner.metrics
        assert metrics.prepares == 2
        assert metrics.plans_built == 1
        assert metrics.by_strategy == {"rank-aware": 1}
        assert db.planner.cache.stats.hit_rate == 0.5


class TestInvalidation:
    def test_insert_invalidates(self, db):
        db.query(SQL)
        # A new best hotel must surface — a stale cached plan would at
        # minimum be re-planned; the result must include the new row.
        db.insert("hotel", [("hotel-new", 1.0, 5, 3)])
        db.analyze("hotel")
        result = db.query(SQL)
        assert not result.plan_cached
        assert result.rows[0][0] == "hotel-new"

    def test_create_rank_index_invalidates(self, db):
        db.query(SQL)
        assert len(db.planner.cache) == 1
        db.create_rank_index("hotel", "starry")
        assert len(db.planner.cache) == 0
        result = db.query(SQL)
        assert not result.plan_cached

    def test_analyze_invalidates(self, db):
        db.query(SQL)
        db.analyze()
        result = db.query(SQL)
        assert not result.plan_cached

    def test_results_identical_across_invalidation(self, db):
        cold = db.query(SQL)
        db.analyze()  # stats refresh without data change
        replanned = db.query(SQL)
        assert replanned.rows == cold.rows
        assert replanned.scores == cold.scores

    def test_generation_advances(self, db):
        before = db.planner.generation
        db.insert("hotel", [("h", 50.0, 2, 1)])
        assert db.planner.generation == before + 1

    def test_spec_mutation_cannot_corrupt_cached_entry(self, db):
        # k/scoring are snapshotted at prepare time: mutating a spec after
        # querying must not truncate later hits keyed under the old k.
        spec = db.bind(SQL)
        assert len(db.query(spec)) == 7
        spec.k = 2
        fresh = db.bind(SQL)  # same signature as the cached k=7 entry
        result = db.query(fresh)
        assert result.plan_cached
        assert len(result) == 7


class TestPlanCacheUnit:
    @staticmethod
    def entry(signature, generation=0, plan_cost=0.0):
        return CachedPlan(
            signature=signature,
            spec=None,
            plan=None,
            strategy="rank-aware",
            evaluators=None,
            generation=generation,
            plan_cost=plan_cost,
        )

    def test_lru_eviction(self):
        cache = PlanCache(capacity=2)
        cache.put(self.entry(("a",)))
        cache.put(self.entry(("b",)))
        assert cache.get(("a",), 0) is not None  # touch: "a" is now MRU
        cache.put(self.entry(("c",)))            # evicts "b"
        assert cache.get(("b",), 0) is None
        assert cache.get(("a",), 0) is not None
        assert cache.stats.evictions == 1

    def test_stale_generation_is_a_miss(self):
        cache = PlanCache(capacity=4)
        cache.put(self.entry(("a",), generation=0))
        assert cache.get(("a",), 1) is None
        assert ("a",) not in cache  # stale entries are dropped eagerly

    def test_invalidate_clears(self):
        cache = PlanCache(capacity=4)
        cache.put(self.entry(("a",)))
        cache.put(self.entry(("b",)))
        cache.invalidate()
        assert len(cache) == 0
        assert cache.stats.invalidations == 1

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            PlanCache(capacity=0)


class TestCostWeightedEviction:
    """Eviction weighs recency by replanning cost (`plan_cost / age`):
    expensive-to-replan templates survive pressure that would LRU-evict
    them, while uniform costs degrade to plain LRU."""

    entry = staticmethod(TestPlanCacheUnit.entry)

    def test_expensive_entry_survives_lru_pressure(self):
        cache = PlanCache(capacity=2)
        cache.put(self.entry(("costly",), plan_cost=10.0))
        cache.put(self.entry(("cheap-1",), plan_cost=0.001))
        # LRU would evict "costly" (least recently used); cost-weighting
        # sacrifices the cheap, newer entry instead.
        cache.put(self.entry(("cheap-2",), plan_cost=0.001))
        assert ("costly",) in cache
        assert ("cheap-1",) not in cache
        assert ("cheap-2",) in cache
        assert cache.stats.evictions == 1

    def test_uniform_costs_degrade_to_lru(self):
        cache = PlanCache(capacity=2)
        cache.put(self.entry(("a",), plan_cost=1.0))
        cache.put(self.entry(("b",), plan_cost=1.0))
        assert cache.get(("a",), 0) is not None  # touch: "a" is now MRU
        cache.put(self.entry(("c",), plan_cost=1.0))  # evicts "b" (LRU)
        assert ("b",) not in cache
        assert ("a",) in cache and ("c",) in cache

    def test_aged_costly_entry_outweighs_fresh_cheap_ones(self):
        cache = PlanCache(capacity=2)
        cache.put(self.entry(("costly",), plan_cost=5.0))
        cache.put(self.entry(("cheap-hot",), plan_cost=0.01))
        # Age the costly entry hard: 50 touches on the cheap one.
        for __ in range(50):
            assert cache.get(("cheap-hot",), 0) is not None
        cache.put(self.entry(("newcomer",), plan_cost=0.01))
        # costly: 5 / ~52 ticks ≈ 0.10 still beats either cheap entry's
        # 0.01 / 1 — recency discounts the cost, but fifty touches on a
        # hundredth of the cost do not overturn it.
        assert ("costly",) in cache
        assert cache.stats.evictions == 1

    def test_sustained_heat_eventually_overturns_cost(self):
        cache = PlanCache(capacity=2)
        cache.put(self.entry(("costly",), plan_cost=5.0))
        cache.put(self.entry(("cheap-hot",), plan_cost=0.01))
        # Enough age makes even a 500× cost gap lose: after ~1000 ticks the
        # costly entry scores 5/1000 < 0.01/1.
        for __ in range(1000):
            assert cache.get(("cheap-hot",), 0) is not None
        cache.put(self.entry(("newcomer",), plan_cost=0.01))
        assert ("costly",) not in cache
        assert ("cheap-hot",) in cache and ("newcomer",) in cache

    def test_planner_stamps_measured_plan_cost(self, db):
        db.query(SQL)
        entries = db.planner.cache.entries()
        assert len(entries) == 1
        assert entries[0].plan_cost > 0.0  # measured planning seconds
