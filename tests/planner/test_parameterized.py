"""Parameterized prepared statements: template-level plan reuse.

The tentpole property: one cached plan serves *every* binding of a
template.  These tests pin down the three guarantees that makes sense of:

* sharing — same template + different constants hit one cache entry and
  build one plan;
* correctness — each execution honours *its* bindings, byte-identical to
  the literal query;
* isolation — parameterized signatures never collide with literal ones,
  and binding errors are loud and specific.
"""

from __future__ import annotations

import pytest

from repro import ParameterError
from repro.cli import build_demo_database
from repro.planner import spec_signature

TEMPLATE = (
    "SELECT * FROM hotel WHERE hotel.price <= :max_price "
    "ORDER BY cheap(hotel.price) + starry(hotel.stars) LIMIT 5"
)
KNOBS = dict(sample_ratio=0.05, seed=1)


@pytest.fixture
def db():
    return build_demo_database(seed=7)


def literal(max_price: float) -> str:
    return TEMPLATE.replace(":max_price", repr(max_price))


class TestTemplateSharing:
    def test_one_plan_serves_many_bindings(self, db):
        bindings = [60.0, 120.0, 250.0, 399.0]
        for value in bindings:
            db.query(TEMPLATE, params={"max_price": value}, **KNOBS)
        assert db.planner.metrics.plans_built == 1
        assert db.planner.cache.stats.hits == len(bindings) - 1
        assert len(db.planner.cache) == 1

    def test_warm_template_runs_report_plan_cached(self, db):
        first = db.query(TEMPLATE, params={"max_price": 100.0}, **KNOBS)
        second = db.query(TEMPLATE, params={"max_price": 300.0}, **KNOBS)
        assert not first.plan_cached  # cold template build
        assert second.plan_cached

    def test_bindings_are_execution_correct_per_run(self, db):
        for value in (60.0, 120.0, 350.0):
            result = db.query(TEMPLATE, params={"max_price": value}, **KNOBS)
            assert result.rows, f"no rows for max_price={value}"
            assert all(row[1] <= value for row in result.rows)
            assert result.rows == db.query(literal(value), **KNOBS).rows

    def test_bindings_differ_across_runs(self, db):
        tight = db.query(
            "SELECT * FROM hotel WHERE hotel.price >= :min_price "
            "ORDER BY starry(hotel.stars) LIMIT 5",
            params={"min_price": 390.0},
            **KNOBS,
        )
        loose = db.query(
            "SELECT * FROM hotel WHERE hotel.price >= :min_price "
            "ORDER BY starry(hotel.stars) LIMIT 5",
            params={"min_price": 40.0},
            **KNOBS,
        )
        assert loose.plan_cached
        assert tight.rows != loose.rows
        assert all(row[1] >= 390.0 for row in tight.rows)

    def test_two_statements_share_one_template_entry(self, db):
        a = db.prepare(TEMPLATE, params={"max_price": 90.0}, **KNOBS)
        b = db.prepare(TEMPLATE, params={"max_price": 210.0}, **KNOBS)
        assert not a.from_cache
        assert b.from_cache
        assert a.plan is b.plan

    def test_positional_template_reuse(self, db):
        sql = (
            "SELECT * FROM hotel WHERE hotel.price <= ? AND hotel.stars >= ? "
            "ORDER BY cheap(hotel.price) LIMIT 3"
        )
        first = db.query(sql, params=[150.0, 2], **KNOBS)
        second = db.query(sql, params=[300.0, 4], **KNOBS)
        assert second.plan_cached
        assert all(row[1] <= 300.0 and row[2] >= 4 for row in second.rows)
        assert db.planner.metrics.plans_built == 1
        assert first.rows != second.rows


class TestSignatures:
    def test_parameterized_never_collides_with_literal(self, db):
        parameterized = db.bind(TEMPLATE)
        for value in ("60.0", "120.0"):
            lit_spec = db.bind(TEMPLATE.replace(":max_price", value))
            assert spec_signature(parameterized) != spec_signature(lit_spec)

    def test_all_bindings_share_the_signature(self, db):
        assert spec_signature(db.bind(TEMPLATE)) == spec_signature(db.bind(TEMPLATE))

    def test_positional_and_named_templates_differ(self, db):
        named = db.bind(TEMPLATE)
        positional = db.bind(TEMPLATE.replace(":max_price", "?"))
        assert spec_signature(named) != spec_signature(positional)

    def test_different_placeholder_position_differs(self, db):
        on_price = db.bind(
            "SELECT * FROM hotel WHERE hotel.price <= :v "
            "ORDER BY cheap(hotel.price) LIMIT 5"
        )
        on_stars = db.bind(
            "SELECT * FROM hotel WHERE hotel.stars <= :v "
            "ORDER BY cheap(hotel.price) LIMIT 5"
        )
        assert spec_signature(on_price) != spec_signature(on_stars)


class TestBindingErrors:
    def test_missing_bindings_rejected(self, db):
        with pytest.raises(ParameterError, match="unbound parameter"):
            db.query(TEMPLATE, **KNOBS)

    def test_wrong_name_lists_missing_and_extra(self, db):
        with pytest.raises(ParameterError, match="missing :max_price"):
            db.query(TEMPLATE, params={"maxprice": 10.0}, **KNOBS)

    def test_type_mismatch_rejected(self, db):
        with pytest.raises(ParameterError, match="expects float"):
            db.query(TEMPLATE, params={"max_price": "expensive"}, **KNOBS)

    def test_literal_query_rejects_params(self, db):
        with pytest.raises(ParameterError, match="takes no parameters"):
            db.query(
                "SELECT * FROM hotel ORDER BY cheap(hotel.price) LIMIT 5",
                params={"max_price": 10.0},
                **KNOBS,
            )

    def test_every_run_needs_full_bindings(self, db):
        prepared = db.prepare(TEMPLATE, **KNOBS)
        prepared.run(params={"max_price": 100.0})
        with pytest.raises(ParameterError, match="unbound parameter"):
            prepared.run()  # bindings are per-run, never remembered


class TestPreparedParameterized:
    def test_planning_deferred_until_first_run(self, db):
        prepared = db.prepare(TEMPLATE, **KNOBS)
        assert prepared.parameterized
        assert prepared.parameter_keys == (":max_price",)
        assert db.planner.metrics.plans_built == 0
        result = prepared.run(params={"max_price": 100.0})
        assert db.planner.metrics.plans_built == 1
        assert not result.plan_cached  # cold template build on first run
        again = prepared.run(params={"max_price": 200.0})
        assert again.plan_cached

    def test_plan_property_requires_planning(self, db):
        prepared = db.prepare(TEMPLATE, **KNOBS)
        with pytest.raises(ParameterError, match="not planned yet"):
            prepared.plan  # noqa: B018 - the property raises

    def test_eager_prepare_with_initial_params(self, db):
        prepared = db.prepare(TEMPLATE, params={"max_price": 100.0}, **KNOBS)
        assert db.planner.metrics.plans_built == 1
        result = prepared.run(params={"max_price": 100.0})
        assert not result.plan_cached  # still the entry's first execution

    def test_explain_accepts_params(self, db):
        prepared = db.prepare(TEMPLATE, **KNOBS)
        assert "limit" in prepared.explain(params={"max_price": 100.0})

    def test_explain_after_invalidation_needs_params_to_replan(self, db):
        prepared = db.prepare(TEMPLATE, params={"max_price": 100.0}, **KNOBS)
        assert "limit" in prepared.explain()  # warm: no bindings needed
        db.insert("hotel", [("hotel-new", 41.0, 5, 1)])
        # The cached template is orphaned; re-planning peeks values like run.
        with pytest.raises(ParameterError, match="unbound parameter"):
            prepared.explain()
        assert "limit" in prepared.explain(params={"max_price": 100.0})

    def test_warm_explain_still_validates_params(self, db):
        prepared = db.prepare(TEMPLATE, **KNOBS)
        prepared.run(params={"max_price": 100.0})  # entry is warm now
        with pytest.raises(ParameterError, match="missing :max_price"):
            prepared.explain(params={"wrong_name": 1.0})
        # ...but a warm explain without params needs no bindings at all
        assert "limit" in prepared.explain()

    def test_replans_after_catalog_change(self, db):
        prepared = db.prepare(TEMPLATE, **KNOBS)
        prepared.run(params={"max_price": 100.0})
        db.insert("hotel", [("hotel-new", 41.0, 5, 1)])
        result = prepared.run(params={"max_price": 100.0})
        assert not result.plan_cached  # invalidation forced a fresh template
        assert any(row[0] == "hotel-new" for row in result.rows)

    def test_cursor_with_params(self, db):
        prepared = db.prepare(TEMPLATE, **KNOBS)
        with prepared.cursor(params={"max_price": 80.0}) as cursor:
            rows = cursor.fetch_many(10)
        assert rows
        assert all(row[1] <= 80.0 for row in rows)

    def test_interleaved_cursors_keep_their_own_bindings(self, db):
        # Two independent cursors over the same template must not clobber
        # each other through the shared cached-plan slots.
        sql = (
            "SELECT * FROM hotel WHERE hotel.stars >= :min "
            "ORDER BY cheap(hotel.price) LIMIT 3"
        )
        c1 = db.open_cursor(sql, params={"min": 5}, **KNOBS)
        assert c1.fetch_next()[2] >= 5
        c2 = db.open_cursor(sql, params={"min": 1}, **KNOBS)
        for __ in range(6):  # c1 must keep filtering at stars >= 5
            row = c1.fetch_next()
            assert row[2] >= 5, f"cursor lost its binding: {row}"
        assert c2.fetch_next() is not None
        c1.close()
        c2.close()

    def test_open_cursor_survives_later_runs_of_same_template(self, db):
        prepared = db.prepare(TEMPLATE, **KNOBS)
        cursor = prepared.cursor(params={"max_price": 60.0})
        assert cursor.fetch_next()[1] <= 60.0
        prepared.run(params={"max_price": 400.0})  # rebinds the template
        for __ in range(6):
            row = cursor.fetch_next()
            if row is None:
                break
            assert row[1] <= 60.0, f"cursor lost its binding: {row}"
        cursor.close()

    def test_run_k_override_with_params(self, db):
        prepared = db.prepare(TEMPLATE, **KNOBS)
        big = prepared.run(k=20, params={"max_price": 300.0})
        assert len(big) == 20


class TestSessionParameterized:
    def test_session_statement_cache_is_per_template(self, db):
        session = db.session(**KNOBS)
        session.execute(TEMPLATE, params={"max_price": 60.0})
        session.execute(TEMPLATE, params={"max_price": 200.0})
        session.execute(TEMPLATE, params={"max_price": 350.0})
        assert session.statement_hits == 2
        assert db.planner.metrics.plans_built == 1

    def test_session_results_are_binding_correct(self, db):
        sql = (
            "SELECT * FROM hotel WHERE hotel.price >= :min_price "
            "ORDER BY cheap(hotel.price) LIMIT 5"
        )
        session = db.session(**KNOBS)
        low = session.execute(sql, params={"min_price": 40.0})
        high = session.execute(sql, params={"min_price": 200.0})
        assert all(row[1] >= 200.0 for row in high.rows)
        assert low.rows != high.rows
