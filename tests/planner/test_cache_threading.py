"""Multi-threaded stress for the shared plan cache.

Eight threads hammer one :class:`PlanCache` — and, separately, one real
:class:`Planner` — and every invariant the single-threaded accounting
gives must survive: no lost entries, no double evictions, consistent
hit/miss totals, capacity never exceeded.
"""

from __future__ import annotations

import threading

from repro.engine.database import Database
from repro.planner.cache import CachedPlan, PlanCache
from repro.storage.schema import DataType

THREADS = 8


def entry_for(signature, generation: int = 0, cost: float = 0.0) -> CachedPlan:
    """A minimal synthetic entry (the cache never inspects the plan)."""
    return CachedPlan(
        signature=signature,
        spec=None,
        plan=None,
        strategy="rank-aware",
        evaluators=None,
        generation=generation,
        plan_cost=cost,
    )


class TestPlanCacheStress:
    def test_no_lost_entries_or_double_evictions(self):
        """THREADS threads × unique signatures: every put either survives
        or is counted as exactly one eviction."""
        cache = PlanCache(capacity=32)
        per_thread = 200

        def hammer(thread_id: int) -> None:
            for i in range(per_thread):
                signature = (thread_id, i)
                cache.put(entry_for(signature))
                cache.get(signature, 0)  # may hit or already be evicted

        threads = [
            threading.Thread(target=hammer, args=(t,)) for t in range(THREADS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        puts = THREADS * per_thread
        assert len(cache) <= 32
        # Conservation: every inserted entry is either resident or was
        # evicted exactly once (a double eviction would overcount, a lost
        # entry would undercount).
        assert cache.stats.evictions + len(cache) == puts
        # Every get was counted exactly once, as a hit or a miss.
        assert cache.stats.hits + cache.stats.misses == puts

    def test_concurrent_gets_count_every_lookup(self):
        cache = PlanCache(capacity=64)
        for i in range(16):
            cache.put(entry_for(("shared", i)))
        lookups_per_thread = 500

        def hammer() -> None:
            for i in range(lookups_per_thread):
                assert cache.get(("shared", i % 16), 0) is not None

        threads = [threading.Thread(target=hammer) for __ in range(THREADS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert cache.stats.hits == THREADS * lookups_per_thread
        assert len(cache) == 16

    def test_invalidation_races_never_corrupt(self):
        """get/put racing generation bumps: stale entries are dropped, the
        cache stays within capacity, and no operation raises."""
        cache = PlanCache(capacity=16)
        stop = threading.Event()

        def mutate() -> None:
            for generation in range(300):
                cache.put(entry_for(("g", generation % 24), generation % 3))
            stop.set()

        def probe() -> None:
            while not stop.is_set():
                for i in range(24):
                    cache.get(("g", i), 1)
                cache.entries()
                len(cache)

        def invalidate() -> None:
            while not stop.is_set():
                cache.invalidate()

        threads = (
            [threading.Thread(target=mutate)]
            + [threading.Thread(target=probe) for __ in range(THREADS - 2)]
            + [threading.Thread(target=invalidate)]
        )
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(cache) <= 16


class TestGenerationOrdering:
    def test_stale_reader_cannot_evict_a_fresher_entry(self):
        """A get() with a generation read before a concurrent invalidation
        must miss without destroying the fresher entry."""
        cache = PlanCache(capacity=8)
        fresh = entry_for("sig", generation=6)
        cache.put(fresh)
        assert cache.get("sig", 5) is None  # stale reader: miss...
        assert cache.get("sig", 6) is fresh  # ...but the entry survives

    def test_stale_build_cannot_replace_a_fresher_entry(self):
        cache = PlanCache(capacity=8)
        fresh = entry_for("sig", generation=6)
        cache.put(fresh)
        cache.put(entry_for("sig", generation=5))  # stale-on-arrival build
        assert cache.get("sig", 6) is fresh

    def test_older_entries_are_still_dropped_eagerly(self):
        cache = PlanCache(capacity=8)
        cache.put(entry_for("sig", generation=3))
        assert cache.get("sig", 4) is None
        assert len(cache) == 0


class TestPlannerStress:
    def test_eight_threads_share_templates(self):
        """Eight threads × six templates against one real planner: results
        stay correct, the cache converges to one entry per template, and
        reuse dominates."""
        db = Database()
        db.create_table("h", [("name", DataType.TEXT), ("price", DataType.FLOAT)])
        db.insert("h", [(f"x{i}", float(i)) for i in range(60)])
        db.register_predicate("cheap", ["h.price"], lambda p: max(0.0, 1 - p / 60))
        db.create_rank_index("h", "cheap")
        db.analyze()

        templates = [
            f"SELECT * FROM h WHERE h.price <= {bound} "
            f"ORDER BY cheap(h.price) LIMIT 5"
            for bound in (10, 20, 30, 40, 50, 60)
        ]
        expected = [db.query(sql).rows for sql in templates]
        db.planner.cache.invalidate()  # measure the threaded phase alone
        stats = db.planner.cache.stats
        base_hits, base_misses = stats.hits, stats.misses

        errors: list[BaseException] = []

        def hammer() -> None:
            try:
                for __ in range(20):
                    for sql, want in zip(templates, expected):
                        assert db.query(sql).rows == want
            except BaseException as error:  # pragma: no cover - diagnostic
                errors.append(error)

        threads = [threading.Thread(target=hammer) for __ in range(THREADS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert not errors
        # One surviving entry per template; concurrent first-misses may
        # have built a few duplicates, but the put is last-wins by key.
        assert len(db.planner.cache) == len(templates)
        total = THREADS * 20 * len(templates)
        hits = stats.hits - base_hits
        misses = stats.misses - base_misses
        assert hits + misses == total
        # Reuse must dominate: at most one cold build per (thread, template)
        # even under the worst racing.
        assert misses <= THREADS * len(templates)
        assert hits / total > 0.9
