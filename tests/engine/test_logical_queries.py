"""Engine-level tests for hand-built logical plans (set operations)."""

import random

import pytest

from repro.algebra.operators import (
    LogicalDifference,
    LogicalIntersect,
    LogicalLimit,
    LogicalRank,
    LogicalScan,
    LogicalUnion,
)
from repro.algebra.predicates import RankingPredicate, ScoringFunction
from repro.engine import Database
from repro.optimizer import QuerySpec
from repro.storage import DataType


@pytest.fixture
def movie_db():
    """Two union-compatible tables: streaming and cinema movies."""
    rng = random.Random(17)
    db = Database()
    for name in ("streaming", "cinema"):
        db.create_table(
            name, [("title", DataType.TEXT), ("rating", DataType.FLOAT)]
        )
    titles = [f"movie-{i}" for i in range(60)]
    ratings = {t: round(rng.random(), 3) for t in titles}
    streaming_titles = titles[:40]
    cinema_titles = titles[25:]
    db.insert("streaming", [(t, ratings[t]) for t in streaming_titles])
    db.insert("cinema", [(t, ratings[t]) for t in cinema_titles])
    # Two predicates over the shared (bare) columns so they evaluate on
    # either operand: critic score = rating, freshness = 1 - rating/2.
    critic = db.register_predicate("critic", ["rating"], lambda r: r)
    fresh = db.register_predicate("fresh", ["rating"], lambda r: 1 - r / 2)
    db.analyze()
    scoring = ScoringFunction([critic, fresh])
    return db, scoring, ratings, set(streaming_titles), set(cinema_titles)


def ranked_sides(db):
    streaming = LogicalRank(
        LogicalScan("streaming", db.catalog.table("streaming").schema), "critic"
    )
    cinema = LogicalRank(
        LogicalScan("cinema", db.catalog.table("cinema").schema), "fresh"
    )
    return streaming, cinema


def spec_for(db, scoring, k):
    return QuerySpec(tables=["streaming"], scoring=scoring, k=k)


def final_score(ratings, title):
    r = ratings[title]
    return r + (1 - r / 2)


class TestLogicalSetQueries:
    def test_union_topk(self, movie_db):
        db, scoring, ratings, streaming, cinema = movie_db
        left, right = ranked_sides(db)
        plan = LogicalLimit(LogicalUnion(left, right), 5)
        result = db.query_logical(
            plan, spec_for(db, scoring, 5), sample_ratio=0.3, seed=1, max_plans=30
        )
        expected = sorted(
            (final_score(ratings, t) for t in streaming | cinema), reverse=True
        )[:5]
        assert [round(s, 9) for s in result.scores] == [round(v, 9) for v in expected]

    def test_intersection_topk(self, movie_db):
        db, scoring, ratings, streaming, cinema = movie_db
        left, right = ranked_sides(db)
        plan = LogicalLimit(LogicalIntersect(left, right), 5)
        result = db.query_logical(
            plan, spec_for(db, scoring, 5), sample_ratio=0.3, seed=1, max_plans=30
        )
        both = streaming & cinema
        expected = sorted(
            (final_score(ratings, t) for t in both), reverse=True
        )[:5]
        assert [round(s, 9) for s in result.scores] == [round(v, 9) for v in expected]

    def test_difference_membership(self, movie_db):
        db, scoring, ratings, streaming, cinema = movie_db
        left, right = ranked_sides(db)
        plan = LogicalLimit(LogicalDifference(left, right), 10)
        result = db.query_logical(
            plan, spec_for(db, scoring, 10), sample_ratio=0.3, seed=1, max_plans=30
        )
        only_streaming = streaming - cinema
        got_titles = {row[0] for row in result.rows}
        assert got_titles <= only_streaming
        assert len(result) == min(10, len(only_streaming))

    def test_union_plan_uses_rank_operators(self, movie_db):
        db, scoring, *__ = movie_db
        left, right = ranked_sides(db)
        plan = LogicalLimit(LogicalUnion(left, right), 3)
        result = db.query_logical(
            plan, spec_for(db, scoring, 3), sample_ratio=0.3, seed=1, max_plans=30
        )
        assert "rankUnion" in result.explain()
