"""Engine-level durability: WAL-backed commits survive abrupt death and
replay through ``load_database``; un-acknowledged work never survives.

Abandoning a database here means closing only its WAL file handle —
``db.close()`` would checkpoint and make everything durable, defeating
the point.  That mirrors what a real crash leaves behind: whatever the
log already holds, and nothing else.
"""

import pytest

from repro.engine import Database, load_database
from repro.storage import DataType, FaultInjector, InjectedCrash
from repro.storage.wal import list_segments


def make_db(tmp_path, **kwargs):
    db = Database(persist_dir=tmp_path, durability="wal", **kwargs)
    db.create_table("kv", [("key", DataType.INT), ("val", DataType.INT)])
    return db


def abandon(db):
    """Simulate process death: drop the WAL handle, checkpoint nothing."""
    if db.wal is not None:
        db.wal.close()


def state(db):
    return {row.values[0]: row.values[1] for row in db.catalog.table("kv").rows()}


def test_committed_transaction_survives_crash(tmp_path):
    db = make_db(tmp_path)
    with db.begin() as txn:
        txn.insert(db.catalog.table("kv"), [(1, 10), (2, 20)])
    with db.begin() as txn:
        txn.delete_where(db.catalog.table("kv"), column="key", equals=1)
        txn.insert(db.catalog.table("kv"), [(1, 11)])
    abandon(db)

    recovered = load_database(tmp_path)
    assert state(recovered) == {1: 11, 2: 20}
    assert recovered.recovery_stats["replayed"] == 2
    recovered.close()


def test_uncommitted_transaction_does_not_survive(tmp_path):
    db = make_db(tmp_path)
    db.insert("kv", [(1, 10)])
    txn = db.begin()
    txn.insert(db.catalog.table("kv"), [(2, 20)])
    # no commit — the crash takes the in-flight transaction with it
    abandon(db)

    recovered = load_database(tmp_path)
    assert state(recovered) == {1: 10}
    recovered.close()


def test_rolled_back_transaction_writes_no_wal_records(tmp_path):
    db = make_db(tmp_path)
    before = db.wal.records_appended
    txn = db.begin()
    txn.insert(db.catalog.table("kv"), [(1, 10)])
    txn.rollback()
    # nothing is logged until commit, so a rollback costs zero records
    assert db.wal.records_appended == before
    abandon(db)

    recovered = load_database(tmp_path)
    assert state(recovered) == {}
    recovered.close()


def test_crash_before_commit_record_loses_transaction(tmp_path):
    injector = FaultInjector(seed=1)
    db = make_db(tmp_path, fault_injector=injector)
    db.insert("kv", [(1, 10)])
    txn = db.begin()
    txn.insert(db.catalog.table("kv"), [(2, 20)])
    # the commit group is begin, insert, commit: crash on the 3rd append
    # leaves the commit record unwritten, so the commit was never durable
    injector.arm("wal.append.before", hits=3)
    with pytest.raises(InjectedCrash):
        txn.commit()
    abandon(db)

    recovered = load_database(tmp_path)
    assert state(recovered) == {1: 10}
    recovered.close()


def test_crash_after_commit_fsync_keeps_transaction(tmp_path):
    injector = FaultInjector(seed=1)
    db = make_db(tmp_path, fault_injector=injector)
    db.insert("kv", [(1, 10)])
    txn = db.begin()
    txn.insert(db.catalog.table("kv"), [(2, 20)])
    # the crash fires after the commit record hit the disk: the commit is
    # durable even though the caller never saw an acknowledgement
    injector.arm("wal.fsync.after", hits=1)
    with pytest.raises(InjectedCrash):
        txn.commit()
    abandon(db)

    recovered = load_database(tmp_path)
    assert state(recovered) == {1: 10, 2: 20}
    recovered.close()


def test_autocommit_dml_is_durable(tmp_path):
    db = make_db(tmp_path)
    db.insert("kv", [(1, 10), (2, 20), (3, 30)])
    db.delete_where("kv", column="key", equals=2)
    abandon(db)

    recovered = load_database(tmp_path)
    assert state(recovered) == {1: 10, 3: 30}
    recovered.close()


def test_ddl_checkpoints_immediately(tmp_path):
    db = make_db(tmp_path)
    db.create_table("extra", [("x", DataType.TEXT)])
    abandon(db)

    recovered = load_database(tmp_path)
    assert recovered.catalog.has_table("extra")
    recovered.close()


def test_checkpoint_rotates_and_garbage_collects(tmp_path):
    db = make_db(tmp_path)
    db.insert("kv", [(1, 10)])
    old_epoch = db.wal.epoch
    db.checkpoint()
    assert db.wal.epoch == old_epoch + 1
    epochs = [epoch for epoch, __ in list_segments(tmp_path)]
    assert epochs == [db.wal.epoch]
    # post-checkpoint commits land in the fresh segment and still replay
    db.insert("kv", [(2, 20)])
    abandon(db)

    recovered = load_database(tmp_path)
    assert state(recovered) == {1: 10, 2: 20}
    assert recovered.recovery_stats["replayed"] == 1  # only the tail
    recovered.close()


def test_recovery_resumes_txn_ids_above_replayed(tmp_path):
    db = make_db(tmp_path)
    with db.begin() as txn:
        txn.insert(db.catalog.table("kv"), [(1, txn.txn_id)])
        high = txn.txn_id
    abandon(db)

    recovered = load_database(tmp_path)
    assert recovered.recovery_stats["max_txn"] == high
    with recovered.begin() as txn:
        assert txn.txn_id > high
        txn.insert(recovered.catalog.table("kv"), [(2, txn.txn_id)])
    recovered.close()


def test_reopened_database_stays_wal_durable(tmp_path):
    db = make_db(tmp_path)
    db.insert("kv", [(1, 10)])
    abandon(db)

    second = load_database(tmp_path)
    assert second.durability == "wal"
    second.insert("kv", [(2, 20)])
    abandon(second)

    third = load_database(tmp_path)
    assert state(third) == {1: 10, 2: 20}
    third.close()


def test_checkpoint_mode_is_durable_only_at_checkpoints(tmp_path):
    db = Database(persist_dir=tmp_path, durability="checkpoint")
    db.create_table("kv", [("key", DataType.INT), ("val", DataType.INT)])
    assert db.wal is None
    db.insert("kv", [(1, 10)])
    db.checkpoint()
    db.insert("kv", [(2, 20)])  # after the checkpoint: not durable

    recovered = load_database(tmp_path)
    assert state(recovered) == {1: 10}
    assert recovered.durability == "checkpoint"
    recovered.close()


def test_durability_requires_persist_dir():
    with pytest.raises(ValueError, match="persist_dir"):
        Database(durability="wal")


def test_unknown_durability_mode_rejected(tmp_path):
    with pytest.raises(ValueError, match="durability mode"):
        Database(persist_dir=tmp_path, durability="prayers")


def test_load_with_durability_none_detaches(tmp_path):
    db = make_db(tmp_path)
    db.insert("kv", [(1, 10)])
    abandon(db)

    readonly = load_database(tmp_path, durability=None)
    assert readonly.durability is None
    assert readonly.wal is None
    assert state(readonly) == {1: 10}
    readonly.close(flush=False)
