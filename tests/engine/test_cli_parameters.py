"""Shell bind variables: \\set / \\unset and :name placeholder execution."""

from __future__ import annotations

import io

import pytest

from repro.cli import (
    ShellState,
    build_demo_database,
    parse_variable_value,
    run_statement,
    statement_params,
)

TEMPLATE = (
    "SELECT * FROM hotel WHERE hotel.price <= :max_price "
    "ORDER BY cheap(hotel.price) LIMIT 3"
)


@pytest.fixture
def state():
    return ShellState(build_demo_database(seed=7))


def run(state, text):
    out = io.StringIO()
    run_statement(state, text, out)
    return out.getvalue()


class TestParseVariableValue:
    def test_numbers_booleans_strings(self):
        assert parse_variable_value("3") == 3
        assert parse_variable_value("3.5") == 3.5
        assert parse_variable_value("true") is True
        assert parse_variable_value("FALSE") is False
        assert parse_variable_value("'thai'") == "thai"
        assert parse_variable_value("bare") == "bare"


class TestStatementParams:
    def test_literal_statement_has_none(self, state):
        assert statement_params(state, "SELECT * FROM hotel LIMIT 1") is None

    def test_positional_rejected_in_shell(self, state):
        with pytest.raises(ValueError, match="positional"):
            statement_params(state, "SELECT * FROM hotel WHERE hotel.price < ?")

    def test_unset_variable_reported(self, state):
        with pytest.raises(ValueError, match="unset parameter.*max_price"):
            statement_params(state, TEMPLATE)

    def test_set_variables_supplied(self, state):
        run(state, "\\set max_price 100")
        assert statement_params(state, TEMPLATE) == {"max_price": 100}


class TestShellExecution:
    def test_set_then_query_uses_binding(self, state):
        run(state, "\\set max_price 60")
        output = run(state, TEMPLATE)
        assert "(3 rows)" in output

    def test_reset_variable_reuses_plan(self, state):
        run(state, "\\set max_price 60")
        run(state, TEMPLATE)
        run(state, "\\set max_price 300")
        run(state, TEMPLATE)
        assert state.db.planner.metrics.plans_built == 1
        assert state.session.statement_hits == 1

    def test_set_lists_and_unset_removes(self, state):
        run(state, "\\set max_price 60")
        listing = run(state, "\\set")
        assert "max_price = 60" in listing
        assert "unset max_price" in run(state, "\\unset max_price")
        assert "not set" in run(state, "\\unset max_price")

    def test_explain_with_variables(self, state):
        run(state, "\\set max_price 60")
        output = run(state, f"\\explain {TEMPLATE}")
        assert "limit" in output


class TestInteractiveLoopErrors:
    def _run_interactive(self, monkeypatch, lines):
        from repro.cli import main

        inputs = iter(lines)

        def fake_input(prompt=""):
            try:
                return next(inputs)
            except StopIteration:
                raise EOFError

        monkeypatch.setattr("builtins.input", fake_input)
        out = io.StringIO()
        code = main(["--demo"], out=out)
        return code, out.getvalue()

    def test_meta_command_error_keeps_shell_alive(self, monkeypatch):
        # \explain with an unset :name must print the friendly message and
        # keep the REPL running, not kill it with a traceback.
        code, output = self._run_interactive(
            monkeypatch,
            [
                f"\\explain {TEMPLATE}",
                "\\set max_price 60",
                f"\\explain {TEMPLATE}",
                "\\quit",
            ],
        )
        assert code == 0
        assert "unset parameter(s): max_price" in output
        assert "limit" in output  # the second \explain succeeded
