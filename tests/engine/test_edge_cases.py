"""Edge cases through the whole stack: empty tables, k = 0, NULLs,
degenerate samples, single rows."""

import pytest

from repro.engine import Database
from repro.storage import DataType


@pytest.fixture
def empty_db():
    db = Database()
    db.create_table("t", [("x", DataType.FLOAT), ("flag", DataType.BOOL)])
    db.register_predicate("px", ["t.x"], lambda x: x if x is not None else 0.0)
    db.create_rank_index("t", "px")
    db.analyze()
    return db


class TestEmptyTable:
    def test_topk_over_empty(self, empty_db):
        result = empty_db.query(
            "SELECT * FROM t ORDER BY px(t.x) LIMIT 5", sample_ratio=0.5, seed=1
        )
        assert len(result) == 0
        assert result.rows == []

    def test_traditional_over_empty(self, empty_db):
        sql = "SELECT * FROM t ORDER BY px(t.x) LIMIT 5"
        spec = empty_db.bind(sql)
        plan = empty_db.plan_traditional(sql, sample_ratio=0.5, seed=1)
        result = empty_db.execute(plan, spec.scoring, k=spec.k)
        assert len(result) == 0


class TestSmallInputs:
    def test_single_row(self, empty_db):
        empty_db.insert("t", [(0.5, True)])
        result = empty_db.query(
            "SELECT * FROM t ORDER BY px(t.x) LIMIT 5", sample_ratio=0.5, seed=1
        )
        assert len(result) == 1
        assert result.scores[0] == pytest.approx(0.5)

    def test_k_zero(self, empty_db):
        empty_db.insert("t", [(0.5, True)])
        result = empty_db.query(
            "SELECT * FROM t ORDER BY px(t.x) LIMIT 0", sample_ratio=0.5, seed=1
        )
        assert len(result) == 0

    def test_k_exceeds_rows(self, empty_db):
        empty_db.insert("t", [(0.1, True), (0.9, False)])
        result = empty_db.query(
            "SELECT * FROM t ORDER BY px(t.x) LIMIT 100", sample_ratio=0.5, seed=1
        )
        assert len(result) == 2  # min(k, |result|), per the paper's footnote

    def test_all_rows_filtered_out(self, empty_db):
        empty_db.insert("t", [(0.1, False), (0.2, False)])
        result = empty_db.query(
            "SELECT * FROM t WHERE t.flag ORDER BY px(t.x) LIMIT 5",
            sample_ratio=0.5,
            seed=1,
        )
        assert len(result) == 0


class TestNulls:
    def test_null_scores_rank_last(self, empty_db):
        empty_db.insert("t", [(None, True), (0.9, True), (0.5, True)])
        result = empty_db.query(
            "SELECT * FROM t ORDER BY px(t.x) LIMIT 3", sample_ratio=0.9, seed=1
        )
        assert len(result) == 3
        # NULL maps to score 0 → last.
        assert result.rows[-1][0] is None

    def test_null_in_where_is_false(self, empty_db):
        empty_db.insert("t", [(None, True), (0.9, True)])
        result = empty_db.query(
            "SELECT * FROM t WHERE t.x > 0 ORDER BY px(t.x) LIMIT 5",
            sample_ratio=0.9,
            seed=1,
        )
        assert len(result) == 1


class TestTies:
    def test_tied_scores_all_returned(self, empty_db):
        empty_db.insert("t", [(0.5, True)] * 4)
        result = empty_db.query(
            "SELECT * FROM t ORDER BY px(t.x) LIMIT 4", sample_ratio=0.9, seed=1
        )
        assert len(result) == 4
        assert all(s == pytest.approx(0.5) for s in result.scores)

    def test_deterministic_across_runs(self, empty_db):
        empty_db.insert("t", [(0.5, True), (0.5, False), (0.7, True)])
        sql = "SELECT * FROM t ORDER BY px(t.x) LIMIT 2"
        a = empty_db.query(sql, sample_ratio=0.9, seed=1)
        b = empty_db.query(sql, sample_ratio=0.9, seed=1)
        assert a.rows == b.rows
