"""Tests for the incremental Cursor API."""

import random

import pytest

from repro.engine import Database
from repro.storage import DataType


@pytest.fixture
def db():
    rng = random.Random(41)
    db = Database()
    db.create_table("t", [("name", DataType.TEXT), ("x", DataType.FLOAT)])
    db.insert("t", [(f"r{i}", rng.random()) for i in range(300)])
    db.register_predicate("px", ["t.x"], lambda x: x, cost=1.0)
    db.create_rank_index("t", "px")
    db.analyze()
    return db


SQL = "SELECT * FROM t ORDER BY px(t.x) LIMIT 5"


class TestCursor:
    def test_fetch_next_in_order(self, db):
        with db.open_cursor(SQL, sample_ratio=0.1, seed=1) as cursor:
            scores = []
            for __ in range(10):
                pair = cursor.fetch_next_scored()
                assert pair is not None
                scores.append(pair[1])
            assert scores == sorted(scores, reverse=True)

    def test_fetch_beyond_limit(self, db):
        """Cursors ignore the LIMIT: k 'not even specified beforehand'."""
        with db.open_cursor(SQL, sample_ratio=0.1, seed=1) as cursor:
            rows = cursor.fetch_many(50)
            assert len(rows) == 50  # past the LIMIT 5

    def test_exhaustion_returns_none(self, db):
        with db.open_cursor(SQL, sample_ratio=0.1, seed=1) as cursor:
            rows = cursor.fetch_many(10_000)
            assert len(rows) == 300
            assert cursor.fetch_next() is None
            assert cursor.fetch_many(3) == []

    def test_work_proportional_to_fetched(self, db):
        with db.open_cursor(SQL, sample_ratio=0.1, seed=1) as cursor:
            cursor.fetch_next()
            early = cursor.metrics.simulated_cost
            cursor.fetch_many(200)
            later = cursor.metrics.simulated_cost
            assert early < later
            # The first result must not require draining the table.
            assert early < later / 2

    def test_matches_query_results(self, db):
        result = db.query(SQL, sample_ratio=0.1, seed=1)
        with db.open_cursor(SQL, sample_ratio=0.1, seed=1) as cursor:
            fetched = cursor.fetch_many(5)
        assert fetched == result.rows

    def test_iteration_protocol(self, db):
        with db.open_cursor(SQL, sample_ratio=0.1, seed=1) as cursor:
            first_three = []
            for row in cursor:
                first_three.append(row)
                if len(first_three) == 3:
                    break
            assert len(first_three) == 3

    def test_closed_cursor_raises(self, db):
        cursor = db.open_cursor(SQL, sample_ratio=0.1, seed=1)
        cursor.close()
        with pytest.raises(RuntimeError):
            cursor.fetch_next()

    def test_close_idempotent(self, db):
        cursor = db.open_cursor(SQL, sample_ratio=0.1, seed=1)
        cursor.close()
        cursor.close()

    def test_projection_preserved(self, db):
        sql = "SELECT name FROM t ORDER BY px(t.x) LIMIT 2"
        with db.open_cursor(sql, sample_ratio=0.1, seed=1) as cursor:
            row = cursor.fetch_next()
            assert row is not None
            assert len(row) == 1
            assert cursor.schema.qualified_names() == ["t.name"]
