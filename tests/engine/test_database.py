"""Integration tests for the Database façade."""

import random

import pytest

from repro.engine import Database
from repro.optimizer import LimitPlan
from repro.storage import DataType


@pytest.fixture
def db():
    rng = random.Random(21)
    db = Database()
    db.create_table(
        "item", [("name", DataType.TEXT), ("price", DataType.FLOAT), ("stock", DataType.INT)]
    )
    db.insert(
        "item",
        [(f"i{i}", round(rng.uniform(1, 100), 2), rng.randrange(50)) for i in range(200)],
    )
    db.register_predicate("cheap", ["item.price"], lambda p: 1 - p / 100, cost=1.0)
    db.register_predicate("stocked", ["item.stock"], lambda s: s / 50, cost=1.0)
    db.create_rank_index("item", "cheap")
    db.analyze()
    return db


class TestSchemaManagement:
    def test_create_table_specs(self):
        db = Database()
        table = db.create_table("t", ["x", ("n", DataType.INT)])
        assert table.schema.column_names() == ["x", "n"]
        assert table.schema.column("n").dtype is DataType.INT

    def test_insert_returns_count(self, db):
        assert db.insert("item", [("new", 5.0, 1)]) == 1

    def test_insert_dicts(self, db):
        db.insert_dicts("item", [{"name": "d1", "price": 2.0, "stock": 3}])
        assert db.catalog.table("item").row_count == 201


class TestQueries:
    def test_single_table_topk(self, db):
        result = db.query(
            "SELECT * FROM item ORDER BY cheap(item.price) LIMIT 5",
            sample_ratio=0.2,
            seed=1,
        )
        assert len(result) == 5
        prices = sorted(r.values[1] for r in db.catalog.table("item").rows())
        # Top-5 cheapest items.
        got_prices = sorted(row[1] for row in result.rows)
        assert got_prices == prices[:5]

    def test_scores_descending(self, db):
        result = db.query(
            "SELECT * FROM item ORDER BY cheap(item.price) + stocked(item.stock) LIMIT 10",
            sample_ratio=0.2,
            seed=1,
        )
        assert result.scores == sorted(result.scores, reverse=True)

    def test_projection(self, db):
        result = db.query(
            "SELECT name FROM item ORDER BY cheap(item.price) LIMIT 3",
            sample_ratio=0.2,
            seed=1,
        )
        assert all(len(row) == 1 for row in result.rows)
        assert result.schema.qualified_names() == ["item.name"]

    def test_where_filtering(self, db):
        result = db.query(
            "SELECT * FROM item WHERE item.stock > 25 "
            "ORDER BY cheap(item.price) LIMIT 5",
            sample_ratio=0.2,
            seed=1,
        )
        assert all(row[2] > 25 for row in result.rows)

    def test_to_dicts(self, db):
        result = db.query(
            "SELECT * FROM item ORDER BY cheap(item.price) LIMIT 2",
            sample_ratio=0.2,
            seed=1,
        )
        records = result.to_dicts()
        assert len(records) == 2
        assert "item.price" in records[0]
        assert "score" in records[0]

    def test_result_iteration_and_indexing(self, db):
        result = db.query(
            "SELECT * FROM item ORDER BY cheap(item.price) LIMIT 3",
            sample_ratio=0.2,
            seed=1,
        )
        assert list(result)[0] == result[0]

    def test_metrics_exposed(self, db):
        result = db.query(
            "SELECT * FROM item ORDER BY cheap(item.price) LIMIT 1",
            sample_ratio=0.2,
            seed=1,
        )
        assert result.metrics.simulated_cost > 0
        assert result.metrics.tuples_scanned >= 1

    def test_explain_returns_plan_text(self, db):
        text = db.explain(
            "SELECT * FROM item ORDER BY cheap(item.price) LIMIT 1",
            sample_ratio=0.2,
            seed=1,
        )
        assert "limit(1)" in text

    def test_plan_returns_limit_root(self, db):
        plan = db.plan(
            "SELECT * FROM item ORDER BY cheap(item.price) LIMIT 4",
            sample_ratio=0.2,
            seed=1,
        )
        assert isinstance(plan, LimitPlan)

    def test_traditional_matches_rank_aware(self, db):
        sql = (
            "SELECT * FROM item ORDER BY cheap(item.price) + stocked(item.stock) LIMIT 7"
        )
        ranked = db.query(sql, sample_ratio=0.2, seed=1)
        spec = db.bind(sql)
        traditional = db.execute(
            db.plan_traditional(sql, sample_ratio=0.2, seed=1), spec.scoring, k=spec.k
        )
        assert [round(s, 9) for s in ranked.scores] == [
            round(s, 9) for s in traditional.scores
        ]

    def test_non_ranking_query(self, db):
        result = db.query("SELECT * FROM item LIMIT 10", sample_ratio=0.2, seed=1)
        assert len(result) == 10


class TestMultiTableQueries:
    @pytest.fixture
    def shop(self):
        rng = random.Random(3)
        db = Database()
        db.create_table("p", [("cat", DataType.INT), ("quality", DataType.FLOAT)])
        db.create_table("v", [("cat", DataType.INT), ("rating", DataType.FLOAT)])
        for __ in range(150):
            db.insert("p", [(rng.randrange(10), rng.random())])
            db.insert("v", [(rng.randrange(10), rng.random())])
        db.register_predicate("good", ["p.quality"], lambda q: q)
        db.register_predicate("rated", ["v.rating"], lambda r: r)
        db.create_rank_index("p", "good")
        db.create_rank_index("v", "rated")
        db.analyze()
        return db

    def test_join_topk_matches_brute_force(self, shop):
        result = shop.query(
            "SELECT * FROM p, v WHERE p.cat = v.cat "
            "ORDER BY good(p.quality) + rated(v.rating) LIMIT 10",
            sample_ratio=0.2,
            seed=4,
        )
        expected = sorted(
            (
                pr[1] + vr[1]
                for pr in shop.catalog.table("p").rows()
                for vr in shop.catalog.table("v").rows()
                if pr[0] == vr[0]
            ),
            reverse=True,
        )[:10]
        assert [round(s, 9) for s in result.scores] == [round(v, 9) for v in expected]

    def test_heuristic_optimizer_same_answers(self, shop):
        sql = (
            "SELECT * FROM p, v WHERE p.cat = v.cat "
            "ORDER BY good(p.quality) + rated(v.rating) LIMIT 5"
        )
        full = shop.query(sql, sample_ratio=0.2, seed=4)
        heuristic = shop.query(
            sql, sample_ratio=0.2, seed=4, left_deep=True, greedy_mu=True
        )
        assert [round(s, 9) for s in full.scores] == [
            round(s, 9) for s in heuristic.scores
        ]
