"""Database lifecycle: context manager, close(), persistence flushing."""

from __future__ import annotations

import pytest

from repro import Database
from repro.engine import load_database

SQL = "SELECT * FROM pets ORDER BY fluffy(pets.fur) LIMIT 2"


def make_db(persist_dir=None) -> Database:
    from repro.storage.schema import DataType

    db = Database(persist_dir=persist_dir)
    db.create_table("pets", [("name", DataType.TEXT), ("fur", DataType.FLOAT)])
    db.insert("pets", [("rex", 0.4), ("mia", 0.9), ("ivy", 0.7)])
    db.register_predicate("fluffy", ["pets.fur"], lambda fur: fur)
    db.analyze()
    return db


class TestContextManager:
    def test_with_block_closes(self):
        with make_db() as db:
            assert len(db.query(SQL)) == 2
        assert db.closed

    def test_close_is_idempotent(self):
        db = make_db()
        db.close()
        db.close()
        assert db.closed

    def test_closed_database_rejects_use(self):
        db = make_db()
        db.close()
        with pytest.raises(RuntimeError):
            db.query(SQL)
        with pytest.raises(RuntimeError):
            db.insert("pets", [("bo", 0.1)])
        with pytest.raises(RuntimeError):
            db.prepare(SQL)

    def test_close_invalidates_cached_plans(self):
        db = make_db()
        db.query(SQL)
        assert len(db.planner.cache) == 1
        db.close()
        assert len(db.planner.cache) == 0


class TestPersistenceFlush:
    def test_exit_flushes_to_persist_dir(self, tmp_path):
        directory = tmp_path / "petsdb"
        with make_db(persist_dir=directory):
            pass  # close() at block exit must write everything out
        assert (directory / "catalog.json").exists()
        restored = load_database(directory, predicates={"fluffy": lambda fur: fur})
        assert restored.query(SQL).rows == [("mia", 0.9), ("ivy", 0.7)]

    def test_exception_exit_does_not_flush(self, tmp_path):
        directory = tmp_path / "petsdb"
        with make_db(persist_dir=directory):
            pass  # clean exit: 3 rows on disk
        with pytest.raises(RuntimeError):
            with load_database(
                directory, predicates={"fluffy": lambda fur: fur}, persist=True
            ) as db:
                db.insert("pets", [("half", 0.5)])
                raise RuntimeError("mid-transaction failure")
        # The half-mutated state must NOT have overwritten the snapshot.
        reloaded = load_database(directory, predicates={"fluffy": lambda fur: fur})
        assert reloaded.catalog.table("pets").row_count == 3

    def test_flush_without_persist_dir_is_noop(self):
        db = make_db()
        db.flush()  # must not raise
        db.close()

    def test_load_database_persist_writes_back(self, tmp_path):
        directory = tmp_path / "petsdb"
        with make_db(persist_dir=directory):
            pass
        with load_database(
            directory, predicates={"fluffy": lambda fur: fur}, persist=True
        ) as db:
            db.insert("pets", [("zoe", 1.0)])
        reloaded = load_database(directory, predicates={"fluffy": lambda fur: fur})
        assert reloaded.catalog.table("pets").row_count == 4

    def test_load_database_without_persist_does_not_attach(self, tmp_path):
        directory = tmp_path / "petsdb"
        with make_db(persist_dir=directory):
            pass
        db = load_database(directory, predicates={"fluffy": lambda fur: fur})
        assert db.persist_dir is None
