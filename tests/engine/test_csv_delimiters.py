"""CSV I/O: delimiter options and awkward content."""

import pytest

from repro.engine.csv_io import dump_csv, load_csv
from repro.storage import DataType, Schema, Table


def make_table():
    return Table(
        "t", Schema.of(("name", DataType.TEXT), ("x", DataType.FLOAT))
    )


class TestDelimiters:
    def test_semicolon_delimiter(self, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("name;x\nalpha;1.5\n")
        table = make_table()
        assert load_csv(table, path, delimiter=";") == 1
        assert next(table.rows()).values == ("alpha", 1.5)

    def test_tab_delimiter_round_trip(self, tmp_path):
        path = tmp_path / "data.tsv"
        dump_csv([("a", 1.0), ("b", 2.0)], ["name", "x"], path, delimiter="\t")
        table = make_table()
        assert load_csv(table, path, delimiter="\t") == 2


class TestAwkwardContent:
    def test_quoted_commas_in_text(self, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text('name,x\n"hello, world",3.5\n')
        table = make_table()
        load_csv(table, path)
        assert next(table.rows()).values == ("hello, world", 3.5)

    def test_round_trip_preserves_commas(self, tmp_path):
        path = tmp_path / "data.csv"
        dump_csv([("a,b", 1.0)], ["name", "x"], path)
        table = make_table()
        load_csv(table, path)
        assert next(table.rows()).values == ("a,b", 1.0)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("name,x\na,1\n\nb,2\n")
        table = make_table()
        assert load_csv(table, path) == 2

    def test_header_only_file(self, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("name,x\n")
        table = make_table()
        assert load_csv(table, path) == 0

    def test_empty_file(self, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("")
        table = make_table()
        assert load_csv(table, path) == 0
