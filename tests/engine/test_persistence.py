"""Tests for directory-based save/load, including mid-save crashes:
the save is one atomic checkpoint, so an interrupted write must leave
the previous complete snapshot loadable."""

import random

import pytest

from repro.engine import Database
from repro.engine.persistence import (
    PersistenceError,
    load_database,
    save_database,
    write_checkpoint,
)
from repro.storage import DataType, FaultInjector, InjectedCrash


def cheapness(price):
    return max(0.0, 1 - price / 100)


@pytest.fixture
def db():
    rng = random.Random(77)
    db = Database()
    db.create_table(
        "item",
        [("name", DataType.TEXT), ("price", DataType.FLOAT), ("ok", DataType.BOOL)],
    )
    db.insert(
        "item",
        [(f"i{i}", round(rng.uniform(1, 99), 2), rng.random() < 0.5) for i in range(60)],
    )
    db.register_predicate("cheap", ["item.price"], cheapness, cost=2.0, p_max=1.0)
    db.create_rank_index("item", "cheap")
    db.create_column_index("item", "price")
    db.create_multikey_index("item", "ok", "cheap")
    db.analyze()
    return db


class TestRoundTrip:
    def test_data_survives(self, db, tmp_path):
        save_database(db, tmp_path / "db")
        restored = load_database(tmp_path / "db", predicates={"cheap": cheapness})
        original = [r.values for r in db.catalog.table("item").rows()]
        loaded = [r.values for r in restored.catalog.table("item").rows()]
        assert loaded == original

    def test_schema_types_survive(self, db, tmp_path):
        save_database(db, tmp_path / "db")
        restored = load_database(tmp_path / "db", predicates={"cheap": cheapness})
        schema = restored.catalog.table("item").schema
        assert schema.column("ok").dtype is DataType.BOOL
        assert schema.column("price").dtype is DataType.FLOAT

    def test_indexes_rebuilt(self, db, tmp_path):
        save_database(db, tmp_path / "db")
        restored = load_database(tmp_path / "db", predicates={"cheap": cheapness})
        table = restored.catalog.table("item")
        assert table.find_index(key="cheap") is not None
        assert table.find_index(key="item.price") is not None

    def test_predicate_metadata_survives(self, db, tmp_path):
        save_database(db, tmp_path / "db")
        restored = load_database(tmp_path / "db", predicates={"cheap": cheapness})
        predicate = restored.catalog.predicate("cheap")
        assert predicate.cost == 2.0
        assert predicate.columns == ("item.price",)

    def test_queries_agree(self, db, tmp_path):
        sql = "SELECT * FROM item ORDER BY cheap(item.price) LIMIT 5"
        save_database(db, tmp_path / "db")
        restored = load_database(tmp_path / "db", predicates={"cheap": cheapness})
        a = db.query(sql, sample_ratio=0.3, seed=1)
        b = restored.query(sql, sample_ratio=0.3, seed=1)
        assert a.rows == b.rows


class TestErrors:
    def test_missing_directory(self, tmp_path):
        with pytest.raises(PersistenceError):
            load_database(tmp_path / "nope")

    def test_missing_predicate_for_rank_index(self, db, tmp_path):
        save_database(db, tmp_path / "db")
        with pytest.raises(PersistenceError):
            load_database(tmp_path / "db")  # no predicates supplied

    def test_bad_version(self, db, tmp_path):
        import json

        save_database(db, tmp_path / "db")
        manifest_path = tmp_path / "db" / "catalog.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["version"] = 99
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(PersistenceError):
            load_database(tmp_path / "db", predicates={"cheap": cheapness})

    def test_empty_table_round_trip(self, tmp_path):
        db = Database()
        db.create_table("empty", [("x", DataType.FLOAT)])
        save_database(db, tmp_path / "db")
        restored = load_database(tmp_path / "db")
        assert restored.catalog.table("empty").row_count == 0


class TestAtomicSave:
    """A crash at any point of a save never corrupts the directory: the
    manifest swap is the commit point, so recovery sees either the whole
    old snapshot or the whole new one."""

    def snapshot(self, tmp_path, db):
        save_database(db, tmp_path)
        return [r.values for r in db.catalog.table("item").rows()]

    def reloaded_values(self, tmp_path):
        restored = load_database(tmp_path, predicates={"cheap": cheapness})
        return [r.values for r in restored.catalog.table("item").rows()]

    @pytest.mark.parametrize(
        "site",
        ["checkpoint.table.torn", "checkpoint.tables", "checkpoint.manifest.tmp"],
    )
    def test_crash_before_manifest_swap_keeps_old_snapshot(
        self, db, tmp_path, site
    ):
        original = self.snapshot(tmp_path, db)
        db.insert("item", [("crashed", 1.0, True)])
        injector = FaultInjector(seed=5)
        injector.arm(site, hits=1)
        with pytest.raises(InjectedCrash):
            write_checkpoint(db, tmp_path, injector=injector)
        assert self.reloaded_values(tmp_path) == original

    def test_crash_after_manifest_swap_keeps_new_snapshot(self, db, tmp_path):
        self.snapshot(tmp_path, db)
        db.insert("item", [("landed", 1.0, True)])
        injector = FaultInjector(seed=5)
        # the swap succeeded; only post-commit GC was interrupted
        injector.arm("checkpoint.gc", hits=1)
        with pytest.raises(InjectedCrash):
            write_checkpoint(db, tmp_path, injector=injector)
        values = self.reloaded_values(tmp_path)
        assert ("landed", 1.0, True) in values

    def test_interrupted_save_leaves_no_poisoned_temp_state(self, db, tmp_path):
        original = self.snapshot(tmp_path, db)
        db.insert("item", [("crashed", 1.0, True)])
        injector = FaultInjector(seed=5)
        injector.arm("checkpoint.table.torn", hits=1)
        with pytest.raises(InjectedCrash):
            write_checkpoint(db, tmp_path, injector=injector)
        # a later save over the crashed directory works and wins
        db.insert("item", [("landed", 2.0, False)])
        save_database(db, tmp_path)
        values = self.reloaded_values(tmp_path)
        assert ("landed", 2.0, False) in values
        assert len(values) == len(original) + 2
