"""Tests for the CLI's interactive loop (stdin-driven)."""

import io

import pytest

from repro.cli import main


def run_interactive(monkeypatch, lines):
    inputs = iter(lines)

    def fake_input(prompt=""):
        try:
            return next(inputs)
        except StopIteration:
            raise EOFError

    monkeypatch.setattr("builtins.input", fake_input)
    out = io.StringIO()
    code = main(["--demo"], out=out)
    return code, out.getvalue()


class TestInteractiveLoop:
    def test_quit_exits_cleanly(self, monkeypatch):
        code, output = run_interactive(monkeypatch, ["\\quit"])
        assert code == 0
        assert "RankSQL shell" in output

    def test_eof_exits(self, monkeypatch):
        code, __ = run_interactive(monkeypatch, [])
        assert code == 0

    def test_list_tables(self, monkeypatch):
        __, output = run_interactive(monkeypatch, ["\\d", "\\quit"])
        assert "hotel(" in output
        assert "restaurant(" in output
        assert "[500 rows]" in output

    def test_query_executes(self, monkeypatch):
        __, output = run_interactive(
            monkeypatch,
            ["SELECT * FROM hotel ORDER BY cheap(hotel.price) LIMIT 2", "\\quit"],
        )
        assert "(2 rows)" in output

    def test_multiline_statement(self, monkeypatch):
        __, output = run_interactive(
            monkeypatch,
            [
                "SELECT * FROM hotel",
                "ORDER BY cheap(hotel.price) LIMIT 1",
                "\\quit",
            ],
        )
        assert "(1 row)" in output

    def test_error_reported_not_fatal(self, monkeypatch):
        __, output = run_interactive(
            monkeypatch,
            [
                "SELECT * FROM missing_table LIMIT 1",
                "SELECT * FROM hotel ORDER BY cheap(hotel.price) LIMIT 1",
                "\\quit",
            ],
        )
        assert "error:" in output
        assert "(1 row)" in output  # the shell recovered

    def test_explain_meta_command(self, monkeypatch):
        __, output = run_interactive(
            monkeypatch,
            [
                "\\explain SELECT * FROM hotel ORDER BY cheap(hotel.price) LIMIT 3",
                "\\quit",
            ],
        )
        assert "limit(3)" in output

    def test_unknown_meta_command(self, monkeypatch):
        __, output = run_interactive(monkeypatch, ["\\frobnicate", "\\quit"])
        assert "unknown meta command" in output
