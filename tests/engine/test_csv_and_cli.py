"""Tests for CSV import/export and the CLI."""

import io

import pytest

from repro.cli import build_demo_database, format_result, main, parse_schema
from repro.engine import Database
from repro.engine.csv_io import coerce_value, dump_csv, load_csv
from repro.storage import DataType


class TestCoercion:
    def test_empty_is_null(self):
        assert coerce_value("", DataType.INT) is None

    def test_int(self):
        assert coerce_value("42", DataType.INT) == 42
        assert coerce_value("42.0", DataType.INT) == 42

    def test_float(self):
        assert coerce_value("2.5", DataType.FLOAT) == 2.5

    def test_bool_spellings(self):
        for text in ("true", "T", "YES", "1"):
            assert coerce_value(text, DataType.BOOL) is True
        for text in ("false", "F", "no", "0"):
            assert coerce_value(text, DataType.BOOL) is False
        with pytest.raises(ValueError):
            coerce_value("maybe", DataType.BOOL)

    def test_text_passthrough(self):
        assert coerce_value("hello", DataType.TEXT) == "hello"


class TestCsvRoundTrip:
    def test_load_with_header(self, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("name,price,stock\nwidget,9.5,3\ngadget,,7\n")
        db = Database()
        db.create_table(
            "item",
            [("name", DataType.TEXT), ("price", DataType.FLOAT), ("stock", DataType.INT)],
        )
        assert db.load_csv("item", path) == 2
        rows = [r.values for r in db.catalog.table("item").rows()]
        assert rows == [("widget", 9.5, 3), ("gadget", None, 7)]

    def test_load_header_reordered_and_extra(self, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("stock,extra,name\n5,zzz,thing\n")
        db = Database()
        db.create_table("item", [("name", DataType.TEXT), ("stock", DataType.INT)])
        db.load_csv("item", path)
        (row,) = db.catalog.table("item").rows()
        assert row.values == ("thing", 5)

    def test_load_positional(self, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("a,1.5\nb,2.5\n")
        db = Database()
        db.create_table("t", [("name", DataType.TEXT), ("x", DataType.FLOAT)])
        assert db.load_csv("t", path, has_header=False) == 2

    def test_positional_arity_mismatch(self, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("a,1.5,extra\n")
        db = Database()
        db.create_table("t", [("name", DataType.TEXT), ("x", DataType.FLOAT)])
        with pytest.raises(ValueError):
            db.load_csv("t", path, has_header=False)

    def test_dump(self, tmp_path):
        path = tmp_path / "out.csv"
        n = dump_csv([("a", 1), ("b", None)], ["name", "x"], path)
        assert n == 2
        assert path.read_text().splitlines() == ["name,x", "a,1", "b,"]


class TestCliHelpers:
    def test_parse_schema(self):
        columns = parse_schema("name:text, price:float,stock:int,ok:bool")
        assert columns == [
            ("name", DataType.TEXT),
            ("price", DataType.FLOAT),
            ("stock", DataType.INT),
            ("ok", DataType.BOOL),
        ]

    def test_parse_schema_default_float(self):
        assert parse_schema("x") == [("x", DataType.FLOAT)]

    def test_parse_schema_errors(self):
        with pytest.raises(ValueError):
            parse_schema(":text")
        with pytest.raises(ValueError):
            parse_schema("x:decimal")

    def test_format_result(self):
        db = build_demo_database()
        result = db.query(
            "SELECT * FROM hotel ORDER BY cheap(hotel.price) LIMIT 2",
            sample_ratio=0.1,
            seed=1,
        )
        text = format_result(result, show_metrics=True)
        assert "score" in text
        assert "(2 rows)" in text
        assert "metrics:" in text


class TestCliMain:
    def test_one_shot_query(self):
        out = io.StringIO()
        code = main(
            ["--demo", "-c", "SELECT * FROM hotel ORDER BY cheap(hotel.price) LIMIT 3"],
            out=out,
        )
        assert code == 0
        assert "(3 rows)" in out.getvalue()

    def test_query_error_returns_nonzero(self):
        out = io.StringIO()
        code = main(["--demo", "-c", "SELECT * FROM nope LIMIT 1"], out=out)
        assert code == 1
        assert "error:" in out.getvalue()

    def test_load_csv_flow(self, tmp_path):
        path = tmp_path / "pets.csv"
        path.write_text("name,cuteness\nrex,0.9\nmittens,0.99\n")
        out = io.StringIO()
        code = main(
            [
                "--load",
                f"pets={path}",
                "--schema",
                "pets=name:text,cuteness:float",
                "-c",
                "SELECT * FROM pets ORDER BY pets.cuteness LIMIT 1",
            ],
            out=out,
        )
        assert code == 0
        text = out.getvalue()
        assert "loaded 2 rows" in text
        assert "mittens" in text

    def test_load_without_schema_fails(self, tmp_path):
        path = tmp_path / "pets.csv"
        path.write_text("name\nrex\n")
        out = io.StringIO()
        assert main(["--load", f"pets={path}"], out=out) == 2
