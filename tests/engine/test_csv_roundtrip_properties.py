"""Property-based round-trips for the CSV layer and the catalog files
built on it.

The fidelity (``nulls="token"``) convention must round-trip *every*
value of *every* :class:`DataType` exactly — NULL vs empty string,
embedded quotes/commas/newlines, backslash-leading text (which collides
with the ``\\N`` token without escaping), negative and arbitrarily large
integers — because checkpoints are written in it: a value it mangles is
a value durability silently corrupts.
"""

import random

import pytest

from repro.engine import Database, load_database, save_database
from repro.engine.csv_io import (
    NULL_TOKEN,
    coerce_value,
    dump_csv,
    encode_cell,
    read_csv_rows,
)
from repro.storage import DataType, Schema

SCHEMA_COLUMNS = [
    ("i", DataType.INT),
    ("f", DataType.FLOAT),
    ("b", DataType.BOOL),
    ("t", DataType.TEXT),
]

NASTY_TEXTS = [
    "",  # must stay "" and never collapse to NULL under the token rules
    " ",
    "plain",
    'quo"ted',
    "comma,separated",
    "line\nbreak",
    "\r\nwindows",
    NULL_TOKEN,  # literal backslash-N *text*, not NULL
    "\\",
    "\\\\N",
    "\\N plus tail",
    "trailing space ",
    "unicode: åß∂ƒ — ✓",
    "'; DROP TABLE item; --",
]


def random_value(rng, dtype):
    if rng.random() < 0.15:
        return None
    if dtype is DataType.INT:
        return rng.choice(
            [0, -1, 1, rng.randint(-(10**18), 10**18), 2**80, -(2**80)]
        )
    if dtype is DataType.FLOAT:
        return rng.choice([0.0, -0.5, 1e300, 1e-300, float(rng.randint(-9, 9))])
    if dtype is DataType.BOOL:
        return rng.random() < 0.5
    return rng.choice(NASTY_TEXTS)


def random_rows(seed, count=200):
    rng = random.Random(seed)
    return [
        [random_value(rng, dtype) for __, dtype in SCHEMA_COLUMNS]
        for __ in range(count)
    ]


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_token_convention_round_trips_exactly(tmp_path, seed):
    rows = random_rows(seed)
    schema = Schema.of(*SCHEMA_COLUMNS)
    path = tmp_path / "dump.csv"
    dump_csv(rows, schema.column_names(), path, nulls="token")
    back = read_csv_rows(schema, path, nulls="token")
    assert back == rows


def test_empty_convention_collapses_empty_text_to_null(tmp_path):
    schema = Schema.of(*SCHEMA_COLUMNS)
    path = tmp_path / "dump.csv"
    dump_csv([[1, 1.0, True, ""]], schema.column_names(), path, nulls="empty")
    back = read_csv_rows(schema, path, nulls="empty")
    assert back == [[1, 1.0, True, None]]  # documented lossiness


@pytest.mark.parametrize(
    "value", [None, "", NULL_TOKEN, "\\", "\\\\", "\\N tail"]
)
def test_token_cell_codec_is_injective_on_the_tricky_cases(value):
    encoded = encode_cell(value, nulls="token")
    assert coerce_value(str(encoded), DataType.TEXT, nulls="token") == value


def test_token_null_vs_empty_string_distinct_encodings():
    assert encode_cell(None, nulls="token") == NULL_TOKEN
    assert encode_cell("", nulls="token") == ""
    assert coerce_value(NULL_TOKEN, DataType.TEXT, nulls="token") is None
    assert coerce_value("", DataType.TEXT, nulls="token") == ""


@pytest.mark.parametrize("seed", [11, 12])
def test_catalog_checkpoint_round_trips_random_rows(tmp_path, seed):
    rows = random_rows(seed, count=120)
    db = Database()
    db.create_table("item", SCHEMA_COLUMNS)
    db.insert("item", rows)
    save_database(db, tmp_path / "db")

    restored = load_database(tmp_path / "db")
    loaded = [list(r.values) for r in restored.catalog.table("item").rows()]
    assert loaded == rows


def test_wal_durable_database_round_trips_random_rows(tmp_path):
    rows = random_rows(21, count=120)
    db = Database(persist_dir=tmp_path, durability="wal")
    db.create_table("item", SCHEMA_COLUMNS)
    db.insert("item", rows)
    # recovery replays these rows from the WAL (values travel as JSON),
    # then the next checkpoint rewrites them through the CSV codec
    db.wal.close()

    replayed = load_database(tmp_path)
    assert [list(r.values) for r in replayed.catalog.table("item").rows()] == rows
    replayed.checkpoint()
    replayed.wal.close()

    reloaded = load_database(tmp_path)
    assert [list(r.values) for r in reloaded.catalog.table("item").rows()] == rows
    reloaded.close(flush=False)


def test_large_ints_survive_both_paths(tmp_path):
    value = 2**100 + 7
    db = Database()
    db.create_table("n", [("x", DataType.INT)])
    db.insert("n", [(value,), (-value,), (None,)])
    save_database(db, tmp_path / "db")
    restored = load_database(tmp_path / "db")
    assert [r.values[0] for r in restored.catalog.table("n").rows()] == [
        value,
        -value,
        None,
    ]
