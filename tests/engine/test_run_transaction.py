"""The retry helper: ``run_transaction`` on the embedded Database (the
client surfaces are covered in tests/server/test_hardening.py).

Serialization conflicts retry with jittered exponential backoff; any
other exception rolls back and propagates untouched; the retry budget is
a hard cap.
"""

import random

import pytest

from repro.engine import Database
from repro.storage import DataType, SerializationError
from repro.storage.transaction import retry_backoff


@pytest.fixture
def db():
    db = Database()
    db.create_table("kv", [("key", DataType.INT), ("val", DataType.INT)])
    db.insert("kv", [(0, 0)])
    return db


def bump(db, txn, value):
    table = db.catalog.table("kv")
    txn.delete_where(table, column="key", equals=0)
    txn.insert(table, [(0, value)])


def value_of(db):
    return {r.values[0]: r.values[1] for r in db.catalog.table("kv").rows()}[0]


class TestRunTransaction:
    def test_commits_and_returns_fn_result(self, db):
        result = db.run_transaction(lambda txn: bump(db, txn, 7) or "done")
        assert result == "done"
        assert value_of(db) == 7

    def test_retries_serialization_conflicts(self, db):
        attempts = []

        def body(txn):
            attempts.append(txn.txn_id)
            if len(attempts) < 3:
                # conflict manufactured mid-flight: another commit lands on
                # the row this transaction also writes
                db.run_transaction(lambda inner: bump(db, inner, 100))
            bump(db, txn, 7)

        db.run_transaction(body, retries=5, backoff=0.0001)
        assert len(attempts) == 3
        # each attempt ran in a fresh transaction
        assert len(set(attempts)) == 3
        assert value_of(db) == 7

    def test_exhausted_retries_raise(self, db):
        def always_conflicts(txn):
            db.run_transaction(lambda inner: bump(db, inner, 100))
            bump(db, txn, 7)

        with pytest.raises(SerializationError):
            db.run_transaction(always_conflicts, retries=2, backoff=0.0001)
        assert value_of(db) == 100  # the conflicting writes won; ours never landed

    def test_other_exceptions_roll_back_and_propagate(self, db):
        def explodes(txn):
            bump(db, txn, 7)
            raise ValueError("boom")

        with pytest.raises(ValueError, match="boom"):
            db.run_transaction(explodes)
        assert value_of(db) == 0
        summary = db.transactions.summary()
        assert summary["txns_rolled_back"] >= 1
        assert summary["txns_begun"] == summary["txns_committed"] + summary["txns_rolled_back"]

    def test_fn_may_finish_the_transaction_itself(self, db):
        def commits_itself(txn):
            bump(db, txn, 7)
            txn.commit()

        db.run_transaction(commits_itself)
        assert value_of(db) == 7

        def rolls_back_itself(txn):
            bump(db, txn, 99)
            txn.rollback()

        db.run_transaction(rolls_back_itself)
        assert value_of(db) == 7


class TestRetryBackoff:
    def test_exponential_with_jitter_bounds(self):
        rng = random.Random(3)
        for attempt in range(8):
            delay = retry_backoff(attempt, 0.01, rng=rng)
            base = min(0.01 * (2**attempt), 0.5)
            assert 0.5 * base < delay <= base

    def test_caps_at_max_backoff(self):
        rng = random.Random(3)
        delays = [retry_backoff(a, 0.01, max_backoff=0.05, rng=rng) for a in range(20)]
        assert max(delays) <= 0.05

    def test_jitter_decorrelates(self):
        rng = random.Random(5)
        delays = {retry_backoff(3, 0.01, rng=rng) for __ in range(16)}
        assert len(delays) > 1
