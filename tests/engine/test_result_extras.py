"""QueryResult extras: CSV export, spec-based queries, determinism soak."""

import random

import pytest

from repro.engine import Database
from repro.storage import DataType
from repro.workloads import WorkloadConfig, build_workload


@pytest.fixture
def db():
    rng = random.Random(151)
    db = Database()
    db.create_table("t", [("name", DataType.TEXT), ("x", DataType.FLOAT)])
    db.insert("t", [(f"r{i}", round(rng.random(), 4)) for i in range(80)])
    db.register_predicate("px", ["t.x"], lambda x: x)
    db.create_rank_index("t", "px")
    db.analyze()
    return db


SQL = "SELECT * FROM t ORDER BY px(t.x) LIMIT 4"


class TestToCsv:
    def test_with_scores(self, db, tmp_path):
        result = db.query(SQL, sample_ratio=0.3, seed=1)
        path = tmp_path / "out.csv"
        assert result.to_csv(path) == 4
        lines = path.read_text().splitlines()
        assert lines[0] == "t.name,t.x,score"
        assert len(lines) == 5

    def test_without_scores(self, db, tmp_path):
        result = db.query(SQL, sample_ratio=0.3, seed=1)
        path = tmp_path / "out.csv"
        result.to_csv(path, include_score=False)
        assert path.read_text().splitlines()[0] == "t.name,t.x"

    def test_round_trip_back_into_engine(self, db, tmp_path):
        result = db.query(SQL, sample_ratio=0.3, seed=1)
        path = tmp_path / "out.csv"
        result.to_csv(path, include_score=False)
        other = Database()
        other.create_table("copy", [("name", DataType.TEXT), ("x", DataType.FLOAT)])
        assert other.load_csv("copy", path) == 4


class TestSpecQueries:
    def test_query_accepts_spec(self, db):
        spec = db.bind(SQL)
        result = db.query(spec, sample_ratio=0.3, seed=1)
        assert len(result) == 4

    def test_query_logical_k_override(self, db):
        from repro.algebra.operators import LogicalRank, LogicalScan

        spec = db.bind(SQL)
        logical = LogicalRank(
            LogicalScan("t", db.catalog.table("t").schema), "px"
        )
        result = db.query_logical(
            logical, spec, k=2, sample_ratio=0.3, seed=1, max_plans=10
        )
        assert len(result) == 2


class TestDeterminismSoak:
    def test_repeated_full_pipeline_identical(self):
        workload = build_workload(
            WorkloadConfig(table_size=400, join_selectivity=0.02, seed=31, k=8)
        )
        snapshots = []
        for __ in range(3):
            result = workload.database.query(
                workload.spec, sample_ratio=0.1, seed=4
            )
            snapshots.append(
                (
                    tuple(result.rows),
                    tuple(round(s, 12) for s in result.scores),
                    result.metrics.simulated_cost,
                    result.plan.fingerprint(),
                )
            )
        assert snapshots[0] == snapshots[1] == snapshots[2]
