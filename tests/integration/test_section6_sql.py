"""The §6 query Q end-to-end through the SQL front door.

The paper writes Q in PostgreSQL syntax; this test parses exactly that
shape, binds it against the generated workload, optimizes, executes and
checks against brute force — the complete RankSQL pipeline in one pass.
"""

import pytest

from repro.engine import Database
from repro.execution import ExecutionContext, run_plan
from repro.workloads import WorkloadConfig, build_workload

Q = """
SELECT * FROM A, B, C
WHERE A.jc1 = B.jc1 AND B.jc2 = C.jc2 AND A.b AND B.b
ORDER BY f1(A.p1) + f2(A.p2) + f3(B.p1) + f4(B.p2) + f5(C.p1)
LIMIT 10
"""


@pytest.fixture(scope="module")
def workload():
    return build_workload(
        WorkloadConfig(table_size=700, join_selectivity=0.01, seed=19, k=10)
    )


def brute_force(workload, k):
    catalog = workload.catalog
    a_rows = [r.values for r in catalog.table("A").rows() if r.values[2]]
    b_rows = [r.values for r in catalog.table("B").rows() if r.values[2]]
    c_rows = [r.values for r in catalog.table("C").rows()]
    b_by = {}
    for row in b_rows:
        b_by.setdefault(row[0], []).append(row)
    c_by = {}
    for row in c_rows:
        c_by.setdefault(row[1], []).append(row)
    scores = []
    for a in a_rows:
        for b in b_by.get(a[0], ()):
            for c in c_by.get(b[1], ()):
                scores.append(a[3] + a[4] + b[3] + b[4] + c[3])
    scores.sort(reverse=True)
    return [round(v, 9) for v in scores[:k]]


class TestSection6QueryViaSQL:
    def test_binder_classifies_q(self, workload):
        spec = workload.database.bind(Q)
        assert spec.tables == ["A", "B", "C"]
        assert len(spec.join_conditions) == 2
        assert all(j.is_equi for j in spec.join_conditions)
        assert len(spec.selections) == 2  # A.b and B.b
        assert spec.scoring.predicate_names == ("f1", "f2", "f3", "f4", "f5")
        assert spec.k == 10

    def test_full_pipeline_correct(self, workload):
        result = workload.database.query(Q, sample_ratio=0.05, seed=7)
        assert [round(s, 9) for s in result.scores] == brute_force(workload, 10)

    def test_chosen_plan_is_rank_aware(self, workload):
        text = workload.database.explain(Q, sample_ratio=0.05, seed=7)
        assert "sort" not in text  # no blocking materialize-then-sort
        assert "HRJN" in text or "NRJN" in text

    def test_heuristic_optimizer_via_sql(self, workload):
        result = workload.database.query(
            Q, sample_ratio=0.05, seed=7, left_deep=True, greedy_mu=True
        )
        assert [round(s, 9) for s in result.scores] == brute_force(workload, 10)
