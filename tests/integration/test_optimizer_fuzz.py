"""Randomized end-to-end fuzzing of the whole pipeline.

For a sweep of randomly generated schemas, data, index sets and queries
(1–3 tables, 2–4 ranking predicates, optional selections), the optimizer's
chosen plan must return exactly the brute-force top-k.  This is the
highest-level consistency check in the suite: any unsoundness in the
algebra, the operators' bounds, the enumerator or the estimator shows up
here as a wrong answer.
"""

from __future__ import annotations

import itertools
import random

import pytest

from repro.algebra.expressions import col
from repro.algebra.predicates import BooleanPredicate, RankingPredicate, ScoringFunction
from repro.execution import ExecutionContext, run_plan
from repro.optimizer import JoinCondition, QuerySpec, RankAwareOptimizer
from repro.storage import Catalog, ColumnIndex, DataType, RankIndex, Schema


def build_random_case(seed: int):
    rng = random.Random(seed)
    catalog = Catalog()
    n_tables = rng.randint(1, 3)
    table_names = ["T0", "T1", "T2"][:n_tables]
    n_rows = rng.randint(20, 120)
    distinct = rng.randint(3, 12)
    predicates: list[RankingPredicate] = []
    selections: list[BooleanPredicate] = []

    for t_index, name in enumerate(table_names):
        table = catalog.create_table(
            name, Schema.of(("j", DataType.INT), ("x", DataType.FLOAT), ("y", DataType.FLOAT))
        )
        for __ in range(n_rows):
            table.insert(
                [rng.randrange(distinct), round(rng.random(), 4), round(rng.random(), 4)]
            )
        # one or two predicates per table
        for column in ("x", "y")[: rng.randint(1, 2)]:
            predicate = RankingPredicate(
                f"p_{name}_{column}",
                [f"{name}.{column}"],
                lambda v: v,
                cost=rng.choice([0.5, 1.0, 5.0]),
            )
            predicates.append(predicate)
            catalog.register_predicate(predicate)
            if rng.random() < 0.6:
                table.attach_index(
                    RankIndex(
                        f"{name}_{predicate.name}",
                        table.schema,
                        predicate.name,
                        predicate.compile(table.schema),
                    )
                )
        if rng.random() < 0.5:
            table.attach_index(ColumnIndex(f"{name}_j", table.schema, f"{name}.j"))
        if rng.random() < 0.4:
            threshold = rng.choice([0.2, 0.5])
            selections.append(
                BooleanPredicate(
                    col(f"{name}.x") > threshold, f"{name}.x>{threshold}"
                )
            )

    join_conditions = [
        JoinCondition.from_predicate(
            BooleanPredicate(
                col(f"{a}.j").eq(col(f"{b}.j")), f"{a}.j={b}.j"
            )
        )
        for a, b in zip(table_names, table_names[1:])
    ]
    n_scoring = rng.randint(min(2, len(predicates)), len(predicates))
    scoring = ScoringFunction(predicates[:n_scoring])
    k = rng.choice([1, 3, 10])
    spec = QuerySpec(
        tables=table_names,
        scoring=scoring,
        k=k,
        selections=[s for s in selections if _mentions(s, table_names)],
        join_conditions=join_conditions,
    )
    return catalog, scoring, spec


def _mentions(selection: BooleanPredicate, tables: list[str]) -> bool:
    return selection.tables() <= set(tables)


def brute_force(catalog, scoring, spec):
    tables = [catalog.table(name) for name in spec.tables]
    selection_fns = []
    for table in tables:
        fns = [
            c.compile(table.schema)
            for c in spec.selections
            if c.tables() == {table.name}
        ]
        selection_fns.append(fns)
    filtered = [
        [r for r in table.rows() if all(fn(r) for fn in fns)]
        for table, fns in zip(tables, selection_fns)
    ]
    combined_schema = tables[0].schema
    for table in tables[1:]:
        combined_schema = combined_schema.concat(table.schema)
    join_fns = [j.predicate.compile(combined_schema) for j in spec.join_conditions]
    predicate_fns = {
        p.name: p.compile(combined_schema) for p in scoring.predicates
    }
    scores = []
    for combo in itertools.product(*filtered):
        row = combo[0]
        for other in combo[1:]:
            row = row.concat(other)
        if not all(fn(row) for fn in join_fns):
            continue
        values = {name: fn(row) for name, fn in predicate_fns.items()}
        scores.append(scoring.final_score(values))
    scores.sort(reverse=True)
    return [round(v, 9) for v in scores[: spec.k]]


@pytest.mark.parametrize("seed", range(12))
def test_optimizer_fuzz(seed):
    catalog, scoring, spec = build_random_case(seed)
    expected = brute_force(catalog, scoring, spec)
    for kwargs in (
        {},
        {"left_deep": True, "greedy_mu": True},
        {"enumerate_selections": True},
    ):
        optimizer = RankAwareOptimizer(
            catalog, spec, sample_ratio=0.3, seed=seed, **kwargs
        )
        plan = optimizer.optimize()
        context = ExecutionContext(catalog, scoring)
        out = run_plan(plan.build(), context, k=spec.k)
        got = [round(context.upper_bound(s), 9) for s in out]
        assert got == expected, (
            f"seed={seed} kwargs={kwargs}\nplan:\n{plan.explain()}"
        )
