"""Figure 7: the two alternative plans for Example 1 (Amy's trip query).

Builds the paper's traditional plan (7a: sort-merge/nested-loop joins under
a monolithic sort) and ranking plan (7b: µ's split from the sort and pushed
down — µ_p1 combined with the scan into idxScan_p1(H), NRJN for the
Boolean join c2, HRJN for the equi-join c3) over a synthetic
Hotel/Restaurant/Museum database, and checks that

* both plans produce the same top-k,
* the ranking plan does less work,
* the plan shapes match the figure's operators.
"""

import random

import pytest

from repro.algebra.expressions import col, lit
from repro.algebra.predicates import BooleanPredicate, RankingPredicate, ScoringFunction
from repro.execution import ExecutionContext, run_plan
from repro.optimizer import (
    FilterPlan,
    HRJNPlan,
    LimitPlan,
    MuPlan,
    NRJNPlan,
    NestedLoopJoinPlan,
    RankScanPlan,
    SeqScanPlan,
    SortMergeJoinPlan,
    SortPlan,
)
from repro.storage import Catalog, ColumnIndex, DataType, RankIndex, Schema

K = 5
AREAS = 12


@pytest.fixture(scope="module")
def trip_db():
    rng = random.Random(101)
    catalog = Catalog()
    hotel = catalog.create_table(
        "H", Schema.of(("price", DataType.FLOAT), ("addr", DataType.INT))
    )
    restaurant = catalog.create_table(
        "R",
        Schema.of(
            ("cuisine", DataType.TEXT),
            ("price", DataType.FLOAT),
            ("addr", DataType.INT),
            ("area", DataType.INT),
        ),
    )
    museum = catalog.create_table(
        "M", Schema.of(("collection", DataType.TEXT), ("area", DataType.INT))
    )
    cuisines = ["Italian", "Thai", "French"]
    collections = ["dinosaur", "space", "art"]
    for __ in range(120):
        hotel.insert([round(rng.uniform(30, 150), 2), rng.randrange(100)])
        restaurant.insert(
            [
                rng.choice(cuisines),
                round(rng.uniform(5, 60), 2),
                rng.randrange(100),
                rng.randrange(AREAS),
            ]
        )
    for __ in range(60):
        museum.insert([rng.choice(collections), rng.randrange(AREAS)])

    p1 = RankingPredicate("p1", ["H.price"], lambda p: max(0.0, 1 - p / 150))
    p2 = RankingPredicate(
        "p2", ["H.addr", "R.addr"], lambda a, b: max(0.0, 1 - abs(a - b) / 100)
    )
    p3 = RankingPredicate(
        "p3",
        ["M.collection"],
        lambda c: {"dinosaur": 1.0, "space": 0.5, "art": 0.2}[c],
    )
    for predicate in (p1, p2, p3):
        catalog.register_predicate(predicate)
    scoring = ScoringFunction([p1, p2, p3])
    hotel.attach_index(RankIndex("H_p1", hotel.schema, "p1", p1.compile(hotel.schema)))
    restaurant.attach_index(ColumnIndex("R_area", restaurant.schema, "R.area"))
    museum.attach_index(ColumnIndex("M_area", museum.schema, "M.area"))

    c1 = BooleanPredicate(col("R.cuisine").eq(lit("Italian")), "c1")
    c2 = BooleanPredicate((col("H.price") + col("R.price")) < lit(100), "c2")
    c3 = BooleanPredicate(col("R.area").eq(col("M.area")), "c3")
    return catalog, scoring, (c1, c2, c3)


def traditional_plan(conditions, k=K):
    """Figure 7(a): NLJ(H, σc1(R)) on c2, SMJ with M on c3, sort on top."""
    c1, c2, c3 = conditions
    hr = NestedLoopJoinPlan(SeqScanPlan("H"), FilterPlan(SeqScanPlan("R"), c1), c2)
    hrm = SortMergeJoinPlan(hr, SeqScanPlan("M"), "R.area", "M.area")
    return LimitPlan(SortPlan(hrm, frozenset({"p1", "p2", "p3"})), k)


def ranking_plan(conditions, k=K):
    """Figure 7(b): µ_p1 fused into idxScan_p1(H); NRJN on c2 with σc1(R);
    µ_p2 above; HRJN on c3 with µ_p3 over M."""
    c1, c2, c3 = conditions
    h_side = RankScanPlan("H", "p1")
    r_side = FilterPlan(SeqScanPlan("R"), c1)
    hr = MuPlan(NRJNPlan(h_side, r_side, c2), "p2")
    m_side = MuPlan(SeqScanPlan("M"), "p3")
    hrm = HRJNPlan(hr, m_side, "R.area", "M.area")
    return LimitPlan(hrm, k)


def execute(catalog, scoring, plan):
    context = ExecutionContext(catalog, scoring)
    out = run_plan(plan.build(), context, k=K)
    return [round(context.upper_bound(s), 9) for s in out], context.metrics


class TestFigure7:
    def test_plans_agree(self, trip_db):
        catalog, scoring, conditions = trip_db
        traditional_scores, __ = execute(
            catalog, scoring, traditional_plan(conditions)
        )
        ranking_scores, __ = execute(catalog, scoring, ranking_plan(conditions))
        assert ranking_scores == traditional_scores
        assert len(ranking_scores) == K

    def test_ranking_plan_cheaper(self, trip_db):
        catalog, scoring, conditions = trip_db
        __, traditional_metrics = execute(
            catalog, scoring, traditional_plan(conditions)
        )
        __, ranking_metrics = execute(catalog, scoring, ranking_plan(conditions))
        assert ranking_metrics.simulated_cost < traditional_metrics.simulated_cost
        # The traditional plan evaluates all three predicates on every
        # surviving join tuple; the ranking plan does not.
        assert (
            ranking_metrics.predicate_evaluations
            < traditional_metrics.predicate_evaluations
        )

    def test_plan_shapes_match_figure(self, trip_db):
        __, __, conditions = trip_db
        traditional_labels = [n.label() for n in traditional_plan(conditions).walk()]
        assert any(label == "sort" for label in traditional_labels)
        assert any(label.startswith("sortMergeJoin") for label in traditional_labels)
        assert any(label.startswith("nestLoop") for label in traditional_labels)
        ranking_labels = [n.label() for n in ranking_plan(conditions).walk()]
        assert "idxScan_p1(H)" in ranking_labels
        assert any(label.startswith("NRJN") for label in ranking_labels)
        assert any(label.startswith("HRJN") for label in ranking_labels)
        assert "rank_p2" in ranking_labels and "rank_p3" in ranking_labels
        assert not any(label == "sort" for label in ranking_labels)

    def test_matches_brute_force(self, trip_db):
        catalog, scoring, conditions = trip_db
        hotels = [r.values for r in catalog.table("H").rows()]
        restaurants = [
            r.values for r in catalog.table("R").rows() if r.values[0] == "Italian"
        ]
        museums = [r.values for r in catalog.table("M").rows()]
        relevance = {"dinosaur": 1.0, "space": 0.5, "art": 0.2}
        scores = []
        for h in hotels:
            for r in restaurants:
                if h[0] + r[1] >= 100:
                    continue
                for m in museums:
                    if r[3] != m[1]:
                        continue
                    scores.append(
                        max(0.0, 1 - h[0] / 150)
                        + max(0.0, 1 - abs(h[1] - r[2]) / 100)
                        + relevance[m[0]]
                    )
        scores.sort(reverse=True)
        expected = [round(v, 9) for v in scores[:K]]
        got, __ = execute(catalog, scoring, ranking_plan(trip_db[2]))
        assert got == expected
