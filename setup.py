"""Setup shim: enables legacy editable installs (``pip install -e .``) in
offline environments whose setuptools lacks wheel support."""

from setuptools import setup

setup()
