"""Plan-to-code compilation: fused pipeline functions for lowered segments.

The batched columnar path (:mod:`repro.execution.batch`) removed per-tuple
operator dispatch; what remains is per-batch dispatch and the generic batch
machinery — ``Batch`` construction, ``select`` copies, closure-tree
expression evaluation — paid on every batch of every execution.  This
module removes that too, in the style of relational-algebra compilers with
pipelined code-generation backends: a lowered
:class:`~repro.optimizer.plans.BatchSegmentPlan` whose shape is supported
(sort-topped pipelines of scan / filter / project / hash join) is walked
once at prepare time and emitted as Python source for a **single fused
function** — scans drive plain ``for`` loops, predicate expressions are
inlined (no closure per node), hash-join probes and projections run in the
loop body, and the blocking top-k sort is the loop epilogue.  The source is
``compile()``d once and stored on the cached plan next to the lowered
twin; parameter slots are read from the binding at call time, so one
compiled function serves every binding of a prepared template.

Pipeline breakers become loop boundaries: every hash-join build runs as its
own loop before the probe loop that uses it, and the sort materializes
after the main loop.  The µ frontier and all rank-aware (row-mode)
operators stay on the interpreter — the compiled function sits under the
existing :class:`~repro.execution.batch.BatchToRow` seam, wrapped in
:class:`CompiledSegmentSource`, which speaks the same ``next_batch`` /
``predicates`` / ``bound_hint`` contracts as the
:class:`~repro.execution.batch.BatchSort` frontier it replaces.

**Parity contract.**  The interpreter is the oracle: a compiled segment
must produce byte-identical results — rows, scores, rid tie order — *and*
identical fully-drained metric totals.  Generated code therefore replicates
the interpreted operators' semantics exactly (NULL propagation, comparison
collapse, score clamping, ``(-F, rid)`` ordering, the same ``heapq`` /
``sorted`` top-k) and charges the same aggregate metric totals the batch
operators would have charged tuple-for-tuple: ``charge_scan`` per scan,
``charge_boolean`` with each filter's input cardinality, ``charge_move``
with the summed per-operator emissions, ``charge_join_pair`` with the
probe-side partner count, ``charge_predicate`` per scored predicate, and
the sort's exact comparison formulas.  Anything the emitter cannot
faithfully reproduce raises :class:`UnsupportedSegment` and the segment
falls back to the interpreted batch pipeline — fallback is silent and
always available.
"""

from __future__ import annotations

import heapq
import math
import time
from dataclasses import dataclass
from typing import Any, Callable

from ..algebra.expressions import (
    Arithmetic,
    BooleanOp,
    ColumnRef,
    Comparison,
    Expression,
    FunctionCall,
    Literal,
)
from ..algebra.parameters import Parameter
from ..algebra.predicates import ScoringFunction
from ..storage.schema import Schema
from .batch import BATCH_SIZE, Batch, BatchOperator


class UnsupportedSegment(Exception):
    """The segment has no compiled equivalent; the caller falls back to the
    interpreted batch pipeline (never surfaced to the client)."""


def _plan_types():
    # Imported lazily: optimizer.plans imports execution.batch at module
    # level, and optimizer.explain reaches back into this module — a
    # module-level import here would make package import order load-bearing.
    from ..optimizer import plans

    return plans


# ----------------------------------------------------------------------
# the compiled artifact
# ----------------------------------------------------------------------

@dataclass
class CompiledArtifact:
    """One segment's generated source and compiled fused function.

    ``function(context, fetch_limit)`` runs the whole pipeline and returns
    ``(ordered_items, ordered_scores, ordered_bounds, n)`` — exactly the
    materialized state :class:`~repro.execution.batch.BatchSort` builds —
    where ``ordered_items`` is ``[(carrier, rid), ...]`` in ``(-F, rid)``
    order, ``ordered_scores`` maps predicate name to the reordered score
    vector, ``ordered_bounds`` carries the per-tuple ``F`` values, and
    ``n`` is the pre-top-k input cardinality.
    """

    source: str
    function: Callable
    schema: Schema
    #: whether carrier items are base ``Row`` objects (scan/filter-only
    #: pipelines) or plain value tuples (any project/join in the pipeline)
    rows_kept: bool
    label: str
    compile_seconds: float


def compiled_segment_count(plan) -> int:
    """How many lowered segments of ``plan`` carry a compiled artifact."""
    if plan is None:
        return 0
    return sum(
        1 for node in plan.walk() if getattr(node, "compiled", None) is not None
    )


# ----------------------------------------------------------------------
# eligibility
# ----------------------------------------------------------------------

_SUPPORTED_EXPR = (ColumnRef, Literal, Parameter, Arithmetic, Comparison,
                   BooleanOp, FunctionCall)


def _expression_supported(expression: Expression) -> bool:
    if not isinstance(expression, _SUPPORTED_EXPR):
        return False
    return all(_expression_supported(c) for c in expression.children())


def _pipeline_schema(plan, catalog) -> Schema:
    """Output schema of a pipeline subtree (raises on unsupported nodes)."""
    plans = _plan_types()
    if isinstance(plan, plans.SeqScanPlan):
        return catalog.table(plan.table).schema
    if isinstance(plan, plans.FilterPlan):
        return _pipeline_schema(plan.children[0], catalog)
    if isinstance(plan, plans.ProjectPlan):
        return _pipeline_schema(plan.children[0], catalog).project(plan.columns)
    if isinstance(plan, plans.HashJoinPlan):
        return _pipeline_schema(plan.children[0], catalog).concat(
            _pipeline_schema(plan.children[1], catalog)
        )
    raise UnsupportedSegment(f"no compiled form for {plan.label()}")


def _check_pipeline(plan, catalog) -> None:
    plans = _plan_types()
    if isinstance(plan, plans.SeqScanPlan):
        catalog.table(plan.table)
        return
    if isinstance(plan, plans.FilterPlan):
        if not _expression_supported(plan.condition.expression):
            raise UnsupportedSegment(
                f"unsupported filter expression in {plan.label()}"
            )
        schema = _pipeline_schema(plan.children[0], catalog)
        for ref in plan.condition.expression.references():
            schema.index_of(ref)
        _check_pipeline(plan.children[0], catalog)
        return
    if isinstance(plan, plans.ProjectPlan):
        schema = _pipeline_schema(plan.children[0], catalog)
        for column in plan.columns:
            schema.index_of(column)
        _check_pipeline(plan.children[0], catalog)
        return
    if isinstance(plan, plans.HashJoinPlan):
        _pipeline_schema(plan.children[0], catalog).index_of(plan.left_key)
        _pipeline_schema(plan.children[1], catalog).index_of(plan.right_key)
        _check_pipeline(plan.children[0], catalog)
        _check_pipeline(plan.children[1], catalog)
        return
    raise UnsupportedSegment(f"no compiled form for {plan.label()}")


def supports(inner, catalog, scoring: ScoringFunction) -> bool:
    """Whether ``inner`` (a segment's unwrapped descriptor subtree) has a
    compiled equivalent: a sort-topped pipeline of scan / filter / project
    / hash join whose expressions and scorers the emitter can reproduce.

    The sort-topped restriction is deliberate: the sort is blocking in the
    interpreter too, so eager materialization inside the fused function
    preserves drain order and metric totals.  Streaming (non-sort-topped)
    segments can be cut short by rank-aware consumers, and a fused function
    that eagerly drained them would diverge on partially-consumed metric
    totals — those stay on the interpreter.
    """
    plans = _plan_types()
    try:
        if not isinstance(inner, plans.SortPlan):
            return False
        if not scoring.predicate_names:
            return False
        _check_pipeline(inner.children[0], catalog)
        schema = _pipeline_schema(inner.children[0], catalog)
        for name in scoring.predicate_names:
            predicate = scoring.predicate(name)
            scorer = predicate.scorer
            if isinstance(scorer, Expression):
                if not _expression_supported(scorer):
                    return False
                for ref in scorer.references():
                    schema.index_of(ref)
            else:
                for column in predicate.columns:
                    schema.index_of(column)
        return True
    except Exception:
        return False


# ----------------------------------------------------------------------
# the emitter
# ----------------------------------------------------------------------

class _Emitter:
    """Accumulates generated source lines, baked constants, and the
    aggregate metric charges the epilogue must issue."""

    def __init__(self) -> None:
        self.lines: list[str] = []
        self.namespace: dict[str, Any] = {
            "_nsmallest": heapq.nsmallest,
            "_log2": math.log2,
        }
        self._serial = 0
        self._params: dict[tuple[int, str], str] = {}
        self.param_lines: list[str] = []
        #: one term per operator emission; their sum is ``tuples_moved``
        self.move_terms: list[str] = []
        #: (count expression, per-evaluation cost) per filter
        self.boolean_charges: list[tuple[str, float]] = []
        #: pairs-counter variable per hash join
        self.pair_counters: list[str] = []

    def fresh(self, prefix: str) -> str:
        self._serial += 1
        return f"_{prefix}{self._serial}"

    def emit(self, depth: int, text: str) -> None:
        self.lines.append("    " * depth + text)

    def const(self, value: Any, prefix: str = "c") -> str:
        name = self.fresh(prefix)
        self.namespace[name] = value
        return name

    # -- expression emission -------------------------------------------
    def param_var(self, parameter: Parameter) -> str:
        """Hoist a bind-variable read into the per-call prelude: bindings
        cannot change mid-run (the template's execution lock serializes
        bind + execute), so one slot read per call is equivalent to the
        interpreter's per-row closure read and the loop body sees a plain
        local."""
        key = (id(parameter.slots), parameter.key)
        var = self._params.get(key)
        if var is None:
            slots_var = self.const(parameter.slots, "slots")
            var = self.fresh("param")
            self.param_lines.append(
                f"{var} = {slots_var}.value({parameter.key!r})"
            )
            self._params[key] = var
        return var

    def value(self, expr: Expression, cur: str, schema: Schema, depth: int) -> str:
        """Emit evaluation of ``expr`` against the row-like ``cur``; returns
        a source atom (safe to repeat) or a single-assignment temp.

        Replicates :meth:`Expression.compile` closure semantics exactly:
        NULL propagation in arithmetic, NULL-to-False comparison collapse,
        and short-circuit strict-bool ``and`` / ``or``.
        """
        atom, __ = self._value(expr, cur, schema, depth)
        return atom

    def _value(
        self, expr: Expression, cur: str, schema: Schema, depth: int
    ) -> tuple[str, bool]:
        """(source atom, may-be-None) — the flag folds away the NULL checks
        the interpreted closures perform, exactly where their outcome is
        statically known (a literal operand can never be NULL at runtime,
        and ``0.25 is None`` in generated source would be a SyntaxWarning —
        fatal under the warnings-as-errors CI jobs)."""
        if isinstance(expr, ColumnRef):
            return f"{cur}[{schema.index_of(expr.name)}]", True
        if isinstance(expr, Parameter):
            return self.param_var(expr), True
        if isinstance(expr, Literal):
            value = expr.value
            if value is None:
                return "None", True
            if isinstance(value, (bool, int, float, str)):
                return repr(value), False
            return self.const(value, "lit"), False
        if isinstance(expr, Arithmetic):
            a, a_null = self._value(expr.left, cur, schema, depth)
            b, b_null = self._value(expr.right, cur, schema, depth)
            if a == "None" or b == "None":
                return "None", True
            checks = [f"{x} is None" for x, n in ((a, a_null), (b, b_null)) if n]
            out = self.fresh("t")
            if checks:
                self.emit(
                    depth,
                    f"{out} = None if {' or '.join(checks)} "
                    f"else {a} {expr.op} {b}",
                )
                return out, True
            self.emit(depth, f"{out} = {a} {expr.op} {b}")
            return out, False
        if isinstance(expr, Comparison):
            a, a_null = self._value(expr.left, cur, schema, depth)
            b, b_null = self._value(expr.right, cur, schema, depth)
            op = "==" if expr.op == "=" else expr.op
            if a == "None" or b == "None":
                return "False", False
            checks = [f"{x} is None" for x, n in ((a, a_null), (b, b_null)) if n]
            out = self.fresh("t")
            if checks:
                self.emit(
                    depth,
                    f"{out} = False if {' or '.join(checks)} "
                    f"else {a} {op} {b}",
                )
            else:
                self.emit(depth, f"{out} = {a} {op} {b}")
            return out, False
        if isinstance(expr, BooleanOp):
            return self._boolean(expr, cur, schema, depth), False
        if isinstance(expr, FunctionCall):
            args = [self.value(a, cur, schema, depth) for a in expr.args]
            fn = self.const(expr.fn, "fn")
            out = self.fresh("t")
            self.emit(depth, f"{out} = {fn}({', '.join(args)})")
            return out, True
        raise UnsupportedSegment(
            f"no compiled form for expression node {type(expr).__name__}"
        )

    def _boolean(self, expr: BooleanOp, cur: str, schema: Schema, depth: int) -> str:
        out = self.fresh("t")
        if expr.op == "not":
            inner = self.value(expr.operands[0], cur, schema, depth)
            self.emit(depth, f"{out} = not {inner}")
            return out
        # The interpreted closures are all()/any() over lazily-evaluated
        # operands: later operands are emitted inside the else-branch,
        # preserving short-circuiting, and the result is a strict bool.
        is_and = expr.op == "and"

        def chain(operands, d: int) -> None:
            value = self.value(operands[0], cur, schema, d)
            if is_and:
                self.emit(d, f"if not {value}:")
                self.emit(d + 1, f"{out} = False")
            else:
                self.emit(d, f"if {value}:")
                self.emit(d + 1, f"{out} = True")
            self.emit(d, "else:")
            if len(operands) == 1:
                self.emit(d + 1, f"{out} = {'True' if is_and else 'False'}")
            else:
                chain(operands[1:], d + 1)

        chain(tuple(expr.operands), depth)
        return out


# ----------------------------------------------------------------------
# pipeline compilation
# ----------------------------------------------------------------------

def _flatten_pipeline(plan) -> list:
    """The left-deep pipeline rooted at ``plan``, bottom-up (scan first).
    Hash joins contribute their probe step; their right subtrees are
    separate build pipelines handled by the caller."""
    plans = _plan_types()
    ops: list = []
    node = plan
    while True:
        ops.append(node)
        if isinstance(node, plans.SeqScanPlan):
            break
        if isinstance(
            node, (plans.FilterPlan, plans.ProjectPlan, plans.HashJoinPlan)
        ):
            node = node.children[0]
        else:
            raise UnsupportedSegment(f"no compiled form for {node.label()}")
    ops.reverse()
    return ops


def _emit_pipeline(
    emitter: _Emitter,
    root,
    catalog,
    consume,
    tail_count_expr,
    depth: int,
) -> tuple[Schema, str]:
    """Emit one pipeline as a fused scan-driven loop.

    ``consume(cur, access, rid, carrier, schema, depth)`` emits the
    innermost body (result append or hash-table insert); ``cur`` is the
    carrier item (a ``Row`` while the carrier is ``"rows"``) and
    ``access`` the plain value tuple to index — hoisted once per
    iteration, so column reads never go through ``Row.__getitem__``.
    ``tail_count_expr`` names the pipeline's final emission count when the
    caller computes it after the loop (``_n`` for the main pipeline);
    ``None`` forces per-operator counters.  Returns the final schema and
    carrier kind (``"rows"`` while tuples are still base ``Row`` objects,
    ``"values"`` once a project or join rebuilt them as plain tuples —
    mirroring which interpreted operators preserve ``Batch.rows``).
    """
    plans = _plan_types()
    ops = _flatten_pipeline(root)

    # Output schema of each operator, bottom-up.
    schemas: list[Schema] = []
    for op in ops:
        if isinstance(op, plans.SeqScanPlan):
            schemas.append(catalog.table(op.table).schema)
        elif isinstance(op, plans.FilterPlan):
            schemas.append(schemas[-1])
        elif isinstance(op, plans.ProjectPlan):
            schemas.append(schemas[-1].project(op.columns))
        else:  # HashJoinPlan
            schemas.append(
                schemas[-1].concat(_pipeline_schema(op.children[1], catalog))
            )

    # Emission-count expression per operator — the terms of the aggregate
    # charge_move and each filter's charge_boolean input count.  The scan
    # knows its count, a project passes its child's through, and a
    # filter/join whose output reaches the pipeline tail through projects
    # only reuses the tail count; everything else gets a dedicated counter
    # incremented in-loop.
    scan_n = emitter.fresh("n")
    counters: dict[int, str] = {}
    count_exprs: list[str] = []
    for i, op in enumerate(ops):
        if isinstance(op, plans.SeqScanPlan):
            count_exprs.append(scan_n)
        elif isinstance(op, plans.ProjectPlan):
            count_exprs.append(count_exprs[i - 1])
        else:  # filter or join
            tail_chained = tail_count_expr is not None and all(
                isinstance(above, plans.ProjectPlan) for above in ops[i + 1:]
            )
            if tail_chained:
                count_exprs.append(tail_count_expr)
            else:
                counter = emitter.fresh("kept")
                counters[i] = counter
                count_exprs.append(counter)
    emitter.move_terms.extend(count_exprs)

    # Hash-join builds are loop boundaries: each join's build pipeline runs
    # (recursively, so nested joins fill their own tables first) before the
    # probe loop that uses it.
    join_state: dict[int, tuple[str, str]] = {}
    for i, op in enumerate(ops):
        if not isinstance(op, plans.HashJoinPlan):
            continue
        ht = emitter.fresh("ht")
        ht_add = emitter.fresh("htadd")
        pairs = emitter.fresh("pairs")
        emitter.pair_counters.append(pairs)
        emitter.emit(depth, f"{ht} = {{}}")
        emitter.emit(depth, f"{ht_add} = {ht}.setdefault")
        emitter.emit(depth, f"{pairs} = 0")

        def build_consume(
            cur, access, rid, carrier, schema, d, *, _op=op, _add=ht_add
        ):
            position = schema.index_of(_op.right_key)
            # Identical to the interpreted build: partners stored in
            # build-arrival order per key, as (value-tuple, rid) pairs.
            emitter.emit(
                d, f"{_add}({access}[{position}], []).append(({access}, {rid}))"
            )

        _emit_pipeline(
            emitter, op.children[1], catalog, build_consume, None, depth
        )
        join_state[i] = (ht, pairs)

    # Counter initializations, then the scan-driven loop.
    for counter in counters.values():
        emitter.emit(depth, f"{counter} = 0")
    scan = ops[0]
    view = emitter.fresh("view")
    cur = emitter.fresh("row")
    rid = emitter.fresh("rid")
    emitter.emit(depth, f"{view} = _catalog.table({scan.table!r}).columns()")
    emitter.emit(depth, f"{scan_n} = len({view})")
    emitter.emit(depth, f"_metrics.charge_scan({scan_n})")
    emitter.emit(depth, f"for {cur}, {rid} in zip({view}.rows, {view}.rids):")

    carrier = "rows"
    schema = schemas[0]
    d = depth + 1
    # Hoist the value tuple once per row: every downstream column read
    # indexes a plain tuple instead of calling ``Row.__getitem__``.
    access = emitter.fresh("vals")
    emitter.emit(d, f"{access} = {cur}.values")
    for i in range(1, len(ops)):
        op = ops[i]
        if isinstance(op, plans.FilterPlan):
            value = emitter.value(op.condition.expression, access, schema, d)
            emitter.boolean_charges.append(
                (count_exprs[i - 1], op.condition.cost)
            )
            emitter.emit(d, f"if not {value}:")
            emitter.emit(d + 1, "continue")
            if i in counters:
                emitter.emit(d, f"{counters[i]} += 1")
        elif isinstance(op, plans.ProjectPlan):
            positions = [schema.index_of(c) for c in op.columns]
            out = emitter.fresh("proj")
            cells = ", ".join(f"{access}[{p}]" for p in positions)
            trailing = "," if len(positions) == 1 else ""
            emitter.emit(d, f"{out} = ({cells}{trailing})")
            cur = out
            access = out
            carrier = "values"
            schema = schemas[i]
        else:  # HashJoinPlan probe
            ht, pairs = join_state[i]
            position = schema.index_of(op.left_key)
            partners = emitter.fresh("part")
            emitter.emit(d, f"{partners} = {ht}.get({access}[{position}])")
            emitter.emit(d, f"if not {partners}:")
            emitter.emit(d + 1, "continue")
            emitter.emit(d, f"{pairs} += len({partners})")
            pv = emitter.fresh("pv")
            prid = emitter.fresh("prid")
            emitter.emit(d, f"for {pv}, {prid} in {partners}:")
            d += 1
            jv = emitter.fresh("jv")
            jrid = emitter.fresh("jrid")
            emitter.emit(d, f"{jv} = {access} + {pv}")
            emitter.emit(d, f"{jrid} = {rid} + {prid}")
            cur, rid = jv, jrid
            access = jv
            carrier = "values"
            schema = schemas[i]
            if i in counters:
                emitter.emit(d, f"{counters[i]} += 1")

    consume(cur, access, rid, carrier, schema, d)
    return schemas[-1], carrier


# ----------------------------------------------------------------------
# the compiler
# ----------------------------------------------------------------------

def compile_segment(inner, catalog, scoring: ScoringFunction) -> CompiledArtifact:
    """Compile a segment descriptor (the unwrapped subtree of a lowered
    ``BatchSegmentPlan``) into a fused function.

    Raises :class:`UnsupportedSegment` for any shape, expression, or
    scorer the emitter cannot faithfully reproduce — the caller keeps the
    interpreted batch pipeline.
    """
    plans = _plan_types()
    started = time.perf_counter()
    if not isinstance(inner, plans.SortPlan):
        raise UnsupportedSegment("only sort-topped segments compile")
    names = scoring.predicate_names
    if not names:
        raise UnsupportedSegment("no ranking predicates to order by")

    emitter = _Emitter()
    emitter.emit(1, "_catalog = context.catalog")
    emitter.emit(1, "_metrics = context.metrics")
    prelude_index = len(emitter.lines)
    emitter.emit(1, "_items = []")
    emitter.emit(1, "_rids = []")
    emitter.emit(1, "_items_append = _items.append")
    emitter.emit(1, "_rids_append = _rids.append")

    def consume(cur, access, rid, carrier, schema, depth):
        emitter.emit(depth, f"_items_append({cur})")
        emitter.emit(depth, f"_rids_append({rid})")

    schema, carrier = _emit_pipeline(
        emitter, inner.children[0], catalog, consume, "_n", 1
    )

    # ---- epilogue: aggregate charges ---------------------------------
    emitter.emit(1, "_n = len(_items)")
    if emitter.move_terms:
        emitter.emit(
            1, f"_metrics.charge_move({' + '.join(emitter.move_terms)})"
        )
    for count, cost in emitter.boolean_charges:
        emitter.emit(1, f"_metrics.charge_boolean({count}, cost={cost!r})")
    for pairs in emitter.pair_counters:
        emitter.emit(1, f"_metrics.charge_join_pair({pairs})")

    # ---- epilogue: score every ranking predicate ---------------------
    score_vars: list[tuple[str, str]] = []
    for name in names:
        predicate = scoring.predicate(name)
        sv = emitter.fresh("scores")
        app = emitter.fresh("sapp")
        item = emitter.fresh("item")
        score_vars.append((name, sv))
        emitter.emit(1, f"{sv} = []")
        emitter.emit(1, f"{app} = {sv}.append")
        emitter.emit(1, f"for {item} in _items:")
        if carrier == "rows":
            # Same value-tuple hoist as the pipeline loop: items are still
            # Row objects, so index their tuples directly.
            item_values = emitter.fresh("itemv")
            emitter.emit(2, f"{item_values} = {item}.values")
            item = item_values
        if predicate.spin_loops:
            # The calibrated busy-loop the interpreted scorer runs per
            # evaluation — kept so wall-time comparisons stay honest.
            sink = emitter.fresh("sink")
            idx = emitter.fresh("spin")
            emitter.emit(2, f"{sink} = 0")
            emitter.emit(2, f"for {idx} in range({predicate.spin_loops}):")
            emitter.emit(3, f"{sink} += {idx}")
        scorer = predicate.scorer
        if isinstance(scorer, Expression):
            raw = emitter.value(scorer, item, schema, 2)
        else:
            fn = emitter.const(scorer, "pfn")
            positions = [schema.index_of(c) for c in predicate.columns]
            args = ", ".join(f"{item}[{p}]" for p in positions)
            raw = emitter.fresh("t")
            emitter.emit(2, f"{raw} = {fn}({args})")
        s = emitter.fresh("s")
        # RankingPredicate.compile's exact clamp chain.
        emitter.emit(2, f"{s} = {raw}")
        emitter.emit(2, f"if {s} is None:")
        emitter.emit(3, f"{s} = 0.0")
        emitter.emit(2, f"elif {s} < 0.0:")
        emitter.emit(3, f"{s} = 0.0")
        emitter.emit(2, f"elif {s} > {predicate.p_max!r}:")
        emitter.emit(3, f"{s} = {predicate.p_max!r}")
        emitter.emit(2, "else:")
        emitter.emit(3, f"{s} = float({s})")
        emitter.emit(2, f"{app}({s})")
        emitter.emit(1, f"_metrics.charge_predicate({predicate.cost!r}, _n)")

    # ---- epilogue: per-row F via the same upper_bound arithmetic -----
    # Every predicate is evaluated here and the score columns follow
    # ``scoring.predicates`` order, so ``upper_bound(dict)`` reduces to
    # ``combine(per)`` on the identical sequence.  combine is called
    # through the baked ScoringFunction rather than inlined: the
    # combiner's float accumulation must be bit-identical.
    emitter.namespace["_combine"] = scoring.combine
    columns = ", ".join(sv for __, sv in score_vars)
    trailing = "," if len(score_vars) == 1 else ""
    emitter.emit(1, f"_score_columns = ({columns}{trailing})")
    emitter.emit(1, "_bounds = [")
    emitter.emit(2, "_combine(_per)")
    emitter.emit(2, "for _per in zip(*_score_columns)")
    emitter.emit(1, "] if _n else []")

    # ---- epilogue: the sort (BatchSort's exact top-k and formulas) ---
    emitter.emit(1, "if fetch_limit is not None and fetch_limit < _n:")
    emitter.emit(
        2,
        "_metrics.charge_comparisons("
        "int(_n * max(1, _log2(max(2, fetch_limit)))))",
    )
    emitter.emit(
        2,
        "_order = _nsmallest(fetch_limit, range(_n), "
        "key=lambda i: (-_bounds[i], _rids[i]))",
    )
    emitter.emit(1, "else:")
    emitter.emit(
        2, "_metrics.charge_comparisons(int(_n * max(1, _log2(_n or 1))))"
    )
    emitter.emit(
        2, "_order = sorted(range(_n), key=lambda i: (-_bounds[i], _rids[i]))"
    )
    scores_items = ", ".join(
        f"{name!r}: [{sv}[_i] for _i in _order]" for name, sv in score_vars
    )
    emitter.emit(1, "return (")
    emitter.emit(2, "[(_items[_i], _rids[_i]) for _i in _order],")
    emitter.emit(2, f"{{{scores_items}}},")
    emitter.emit(2, "[_bounds[_i] for _i in _order],")
    emitter.emit(2, "_n,")
    emitter.emit(1, ")")

    # ---- assemble and compile ----------------------------------------
    lines = (
        emitter.lines[:prelude_index]
        + ["    " + line for line in emitter.param_lines]
        + emitter.lines[prelude_index:]
    )
    source = "def _fused(context, fetch_limit):\n" + "\n".join(lines) + "\n"
    steps = [op.label() for op in _flatten_pipeline(inner.children[0])]
    label = f"compiled[{' -> '.join(steps)} -> sort]"
    code = compile(source, f"<codegen:{label}>", "exec")
    namespace = emitter.namespace
    exec(code, namespace)
    return CompiledArtifact(
        source=source,
        function=namespace["_fused"],
        schema=schema,
        rows_kept=(carrier == "rows"),
        label=label,
        compile_seconds=time.perf_counter() - started,
    )


# ----------------------------------------------------------------------
# the frontier operator
# ----------------------------------------------------------------------

class CompiledSegmentSource(BatchOperator):
    """Runs a segment's compiled fused function and serves the ordered
    result in ``BATCH_SIZE`` slices — :class:`BatchSort`'s frontier
    contract (limit pushdown, bound hints from the ordered F column,
    prescore refusal via ``predicates()``) over a body that executes as
    one generated function instead of an operator tree.
    """

    kind = "compiled"

    def __init__(self, artifact: CompiledArtifact,
                 fetch_limit: int | None = None):
        super().__init__()
        self.artifact = artifact
        self.fetch_limit = fetch_limit
        self._ordered = None
        self._position = 0

    def describe(self) -> str:
        if self.fetch_limit is not None:
            return f"{self.artifact.label}(top {self.fetch_limit})"
        return self.artifact.label

    def schema(self) -> Schema:
        return self.artifact.schema

    def predicates(self) -> frozenset[str]:
        return frozenset(self.context.scoring.predicate_names)

    def notify_limit(self, k: int) -> None:
        if self.fetch_limit is None:
            self.fetch_limit = k

    def bound_hint(self) -> float:
        if self._ordered is None:
            return self.context.scoring.max_possible()
        if self._position >= len(self._ordered[0]):
            return -math.inf
        return self._ordered[2][self._position]

    def _open(self) -> None:
        self._ordered = None
        self._position = 0

    def _next_batch(self) -> Batch | None:
        if self._ordered is None:
            with self.context.span("compiled_call", fn=self.artifact.label):
                ordered, score_vectors, bounds, n = self.artifact.function(
                    self.context, self.fetch_limit
                )
            self._record_input(n)
            self._ordered = (ordered, score_vectors, bounds)
        ordered, score_vectors, __ = self._ordered
        start = self._position
        if start >= len(ordered):
            return None
        end = min(start + BATCH_SIZE, len(ordered))
        self._position = end
        chunk = ordered[start:end]
        rids = [rid for __, rid in chunk]
        sliced_scores = {
            name: vector[start:end] for name, vector in score_vectors.items()
        }
        if self.artifact.rows_kept:
            return Batch(
                self.schema(),
                rids,
                rows=[item for item, __ in chunk],
                scores=sliced_scores,
            )
        return Batch(
            self.schema(),
            rids,
            values=[item for item, __ in chunk],
            scores=sliced_scores,
        )

    def _close(self) -> None:
        self._ordered = None
