"""Batched columnar execution for unranked (``P = φ``) plan segments.

The Volcano iterators of :mod:`repro.execution.iterator` move one
:class:`~repro.algebra.rank_relation.ScoredRow` per ``next()`` call — the
right granularity for rank-aware operators, whose whole point is emitting
incrementally in score order, but pure overhead for the unranked segments
below them.  A ``P = φ`` subtree has every tuple at the same maximal
possible score, so Definition 1 places no order constraint on it, and its
rank-aware consumer cannot emit anything before the subtree is exhausted
anyway (its bound stays at ``F_φ`` until then).  Those segments are free to
execute in bulk.

This module is that bulk path:

* :class:`Batch` — a column-vector slice of tuples (value vectors + rid
  vector + evaluated-score vectors), the unit batch operators exchange;
* batch operators (:class:`BatchScan`, :class:`BatchFilter`,
  :class:`BatchProject`, :class:`BatchHashJoin`,
  :class:`BatchSortMergeJoin`, :class:`BatchNestedLoopJoin`,
  :class:`BatchSort`, :class:`BatchLimit`) — vectorized equivalents of the
  row operators, producing the *same tuples in the same order* while
  charging :class:`~repro.execution.metrics.ExecutionMetrics` in per-batch
  increments (``charge_*(count)``) instead of one call per tuple;
* :class:`BatchToRow` — the adapter at the frontier where a rank-aware
  consumer begins: a :class:`~repro.execution.iterator.PhysicalOperator`
  that unpacks batches back into ``ScoredRow`` tuples, preserving rid
  tie-order and the ``bound()`` / ``predicates()`` contracts.

The planner's lowering pass
(:func:`repro.optimizer.plans.lower_to_batch`) swaps maximal ``P = φ``
descriptor subtrees onto this path; rank-aware operators (µ, HRJN/NRJN,
rank set-ops, rank-scans) are never lowered — batching them would destroy
the incremental emission the ranking principle is about.
"""

from __future__ import annotations

import heapq
import math
from typing import Any, Iterator

from ..algebra.expressions import Evaluator
from ..algebra.predicates import BooleanPredicate
from ..algebra.rank_relation import ScoredRow
from ..storage.row import Row
from ..storage.schema import Schema
from . import vectors
from .iterator import ExecutionContext, PhysicalOperator
from .metrics import OperatorStats
from .scans import sorted_column_order

#: tuples per batch — large enough to amortize per-batch dispatch, small
#: enough to keep intermediate vectors cache- and memory-friendly
BATCH_SIZE = 1024

Rid = tuple[tuple[str, int], ...]


class Batch:
    """A slice of tuples in columnar form.

    A batch always carries the parallel ``rids`` vector (deterministic
    identity / tie-order) and at least one tuple representation:

    * ``columns`` — per-column value vectors (built lazily when only a
      row-wise representation was supplied);
    * ``values`` — per-tuple value tuples (built lazily from columns);
    * ``rows`` — the original :class:`Row` objects, kept when the batch's
      tuples are 1:1 with stored base rows so the frontier can emit them
      without re-allocating.

    ``scores`` maps predicate name to an evaluated score vector — empty
    everywhere in a ``P = φ`` segment, populated by :class:`BatchSort` at
    the frontier of lowered traditional plans.
    """

    __slots__ = ("schema", "rids", "rows", "scores", "_columns", "_values")

    def __init__(
        self,
        schema: Schema,
        rids: list[Rid],
        *,
        columns: "tuple[list, ...] | None" = None,
        values: "list[tuple] | None" = None,
        rows: "list[Row] | None" = None,
        scores: "dict[str, list[float]] | None" = None,
    ):
        if columns is None and values is None and rows is None:
            raise ValueError("batch needs columns, values or rows")
        self.schema = schema
        self.rids = rids
        self.rows = rows
        self.scores: dict[str, list[float]] = scores if scores is not None else {}
        self._columns = columns
        self._values = values

    def __len__(self) -> int:
        return len(self.rids)

    @property
    def columns(self) -> tuple[list, ...]:
        """Per-column value vectors (computed from the tuples on demand)."""
        if self._columns is None:
            values = self.value_tuples()
            if values:
                self._columns = tuple(list(v) for v in zip(*values))
            else:
                self._columns = tuple([] for __ in range(len(self.schema)))
        return self._columns

    def value_tuples(self) -> list[tuple]:
        """Plain value tuples, one per tuple (for join concatenation)."""
        if self._values is None:
            if self.rows is not None:
                self._values = [r.values for r in self.rows]
            else:
                assert self._columns is not None
                self._values = list(zip(*self._columns))
        return self._values

    def tuples(self) -> "list[Row] | list[tuple]":
        """Indexable row-likes for compiled evaluators (``row[pos]``)."""
        if self.rows is not None:
            return self.rows
        return self.value_tuples()

    def select(self, indices: list[int]) -> "Batch":
        """The sub-batch at ``indices`` (order preserved)."""
        values = self.value_tuples()
        return Batch(
            self.schema,
            [self.rids[i] for i in indices],
            values=[values[i] for i in indices],
            rows=[self.rows[i] for i in indices] if self.rows is not None else None,
            scores={
                name: [vec[i] for i in indices] for name, vec in self.scores.items()
            },
        )

    def to_scored_rows(self) -> list[ScoredRow]:
        """Unpack into ``ScoredRow`` objects (the frontier conversion)."""
        names = list(self.scores)
        if self.rows is not None:
            rows: "list[Row]" = self.rows
        else:
            rows = [
                Row(values, rid)
                for values, rid in zip(self.value_tuples(), self.rids)
            ]
        if not names:
            return [ScoredRow(row, {}) for row in rows]
        vectors = [self.scores[n] for n in names]
        return [
            ScoredRow(row, dict(zip(names, per_row)))
            for row, per_row in zip(rows, zip(*vectors))
        ]


class BatchOperator:
    """Base class of batch (vector-at-a-time) operators.

    Mirrors the :class:`~repro.execution.iterator.PhysicalOperator`
    lifecycle — ``open(context)`` / ``next_batch()`` / ``close()`` — with
    the same per-operator stats and bulk metric charging: every emitted
    batch counts ``len(batch)`` tuples out and moves in one call.
    """

    kind = "batchOperator"

    def __init__(self) -> None:
        self._context: ExecutionContext | None = None
        self._stats: OperatorStats | None = None
        self._opened = False

    # -- lifecycle ------------------------------------------------------
    def open(self, context: ExecutionContext) -> None:
        self._context = context
        self._stats = context.metrics.stats_for(context.unique_name(self.describe()))
        self._opened = True
        self._open()

    def next_batch(self) -> Batch | None:
        """The next non-empty batch, or None when exhausted."""
        if not self._opened:
            raise RuntimeError(f"{self.describe()}: next_batch() before open()")
        while True:
            batch = self._next_batch()
            if batch is None:
                return None
            if len(batch):
                assert self._stats is not None and self._context is not None
                self._stats.tuples_out += len(batch)
                self._context.metrics.charge_move(len(batch))
                return batch

    def close(self) -> None:
        if self._opened:
            self._close()
            self._opened = False

    # -- contracts -------------------------------------------------------
    def schema(self) -> Schema:
        raise NotImplementedError

    def predicates(self) -> frozenset[str]:
        """Evaluated ranking-predicate set ``P`` of the output (φ for every
        batch operator except :class:`BatchSort`)."""
        return frozenset()

    def column_order(self) -> str | None:
        return None

    def bound_hint(self) -> float:
        """Upper bound on the ``F_P`` score of any tuple still to come
        (``F_φ`` for unranked operators)."""
        return self.context.scoring.max_possible()

    def notify_limit(self, k: int) -> None:
        """See :meth:`PhysicalOperator.notify_limit`; only
        :class:`BatchSort` reacts."""

    def describe(self) -> str:
        return self.kind

    def children(self) -> tuple["BatchOperator", ...]:
        return ()

    # -- subclass hooks ---------------------------------------------------
    def _open(self) -> None:
        raise NotImplementedError

    def _next_batch(self) -> Batch | None:
        raise NotImplementedError

    def _close(self) -> None:
        for child in self.children():
            child.close()

    # -- helpers ----------------------------------------------------------
    @property
    def context(self) -> ExecutionContext:
        assert self._context is not None, "operator not opened"
        return self._context

    @property
    def stats(self) -> OperatorStats:
        assert self._stats is not None, "operator not opened"
        return self._stats

    def _record_input(self, count: int) -> None:
        self.stats.tuples_in += count

    def _drain(self, child: "BatchOperator") -> Iterator[Batch]:
        while True:
            batch = child.next_batch()
            if batch is None:
                return
            self._record_input(len(batch))
            yield batch


# ----------------------------------------------------------------------
# scans
# ----------------------------------------------------------------------

class BatchScan(BatchOperator):
    """Sequential scan over the table's columnar view (heap order)."""

    kind = "batchScan"

    def __init__(self, table_name: str):
        super().__init__()
        self.table_name = table_name
        self._schema: Schema | None = None
        self._view = None
        self._position = 0

    def describe(self) -> str:
        return f"batchScan({self.table_name})"

    def schema(self) -> Schema:
        if self._schema is None:
            raise RuntimeError("scan not opened")
        return self._schema

    def _open(self) -> None:
        table = self.context.catalog.table(self.table_name)
        self._schema = table.schema
        self._view = table.columns()
        self._position = 0

    def _next_batch(self) -> Batch | None:
        view = self._view
        assert view is not None
        start = self._position
        if start >= len(view):
            return None
        end = min(start + BATCH_SIZE, len(view))
        self._position = end
        self.context.metrics.charge_scan(end - start)
        return Batch(
            view.schema,
            view.rids[start:end],
            columns=tuple(column[start:end] for column in view.columns),
            rows=view.rows[start:end],
        )

    def _close(self) -> None:
        self._view = None


class BatchColumnOrderScan(BatchOperator):
    """Index scan in ascending column order, batched.

    Falls back to a transient heap sort (charging its comparisons) when the
    table has no :class:`~repro.storage.index.ColumnIndex` — same recovery
    as the row-mode :class:`~repro.execution.scans.ColumnOrderScan`.
    """

    kind = "batchScanCol"

    def __init__(self, table_name: str, column: str):
        super().__init__()
        self.table_name = table_name
        self.column = column
        self._schema: Schema | None = None
        self._rows: list[Row] | None = None
        self._position = 0

    def describe(self) -> str:
        return f"batchScan_{self.column}({self.table_name})"

    def schema(self) -> Schema:
        if self._schema is None:
            raise RuntimeError("scan not opened")
        return self._schema

    def column_order(self) -> str | None:
        return self.column

    def _open(self) -> None:
        from ..storage.index import ColumnIndex

        table = self.context.catalog.table(self.table_name)
        self._schema = table.schema
        index = table.find_index(key=self.column)
        if isinstance(index, ColumnIndex):
            self._rows = list(index.scan_ascending())
        else:
            self._rows = sorted_column_order(table, self.column, self.context.metrics)
        self._position = 0

    def _next_batch(self) -> Batch | None:
        rows = self._rows
        assert rows is not None
        start = self._position
        if start >= len(rows):
            return None
        end = min(start + BATCH_SIZE, len(rows))
        self._position = end
        chunk = rows[start:end]
        self.context.metrics.charge_scan(len(chunk))
        return Batch(self.schema(), [r.rid for r in chunk], rows=chunk)

    def _close(self) -> None:
        self._rows = None


# ----------------------------------------------------------------------
# unary operators
# ----------------------------------------------------------------------

class BatchFilter(BatchOperator):
    """Selection σ_c applied over whole batches (order preserving)."""

    kind = "batchFilter"

    def __init__(self, child: BatchOperator, condition: BooleanPredicate):
        super().__init__()
        self.child = child
        self.condition = condition
        self._evaluator: Evaluator | None = None
        self._kernel = None

    def describe(self) -> str:
        return f"batchFilter({self.condition.name})"

    def children(self) -> tuple[BatchOperator, ...]:
        return (self.child,)

    def schema(self) -> Schema:
        return self.child.schema()

    def column_order(self) -> str | None:
        return self.child.column_order()

    def _open(self) -> None:
        self.child.open(self.context)
        self._evaluator = self.condition.compile(self.child.schema())
        self._kernel = vectors.boolean_kernel(self.condition, self.child.schema())

    def _next_batch(self) -> Batch | None:
        evaluate = self._evaluator
        assert evaluate is not None
        batch = self.child.next_batch()
        if batch is None:
            return None
        n = len(batch)
        self._record_input(n)
        self.context.metrics.charge_boolean(n, cost=self.condition.cost)
        keep = vectors.keep_indices(self._kernel, evaluate, batch)
        if len(keep) == n:
            return batch
        return batch.select(keep)


class BatchProject(BatchOperator):
    """Projection π over column vectors (narrows the value layout)."""

    kind = "batchProject"

    def __init__(self, child: BatchOperator, columns: tuple[str, ...]):
        super().__init__()
        self.child = child
        self.columns = tuple(columns)
        self._positions: list[int] | None = None
        self._schema: Schema | None = None

    def describe(self) -> str:
        return f"batchProject({', '.join(self.columns)})"

    def children(self) -> tuple[BatchOperator, ...]:
        return (self.child,)

    def schema(self) -> Schema:
        if self._schema is None:
            raise RuntimeError("project not opened")
        return self._schema

    def _open(self) -> None:
        self.child.open(self.context)
        child_schema = self.child.schema()
        self._positions = [child_schema.index_of(c) for c in self.columns]
        self._schema = child_schema.project(self.columns)

    def _next_batch(self) -> Batch | None:
        positions = self._positions
        assert positions is not None and self._schema is not None
        batch = self.child.next_batch()
        if batch is None:
            return None
        self._record_input(len(batch))
        vectors = batch.columns
        return Batch(
            self._schema,
            batch.rids,
            columns=tuple(vectors[p] for p in positions),
            scores=dict(batch.scores),
        )


class BatchLimit(BatchOperator):
    """λ_k over batches: truncate the stream after ``k`` tuples."""

    kind = "batchLimit"

    def __init__(self, child: BatchOperator, k: int):
        super().__init__()
        if k < 0:
            raise ValueError("k must be non-negative")
        self.child = child
        self.k = k
        self._emitted = 0

    def describe(self) -> str:
        return f"batchLimit({self.k})"

    def children(self) -> tuple[BatchOperator, ...]:
        return (self.child,)

    def schema(self) -> Schema:
        return self.child.schema()

    def predicates(self) -> frozenset[str]:
        return self.child.predicates()

    def _open(self) -> None:
        self.child.open(self.context)
        self._emitted = 0

    def _next_batch(self) -> Batch | None:
        remaining = self.k - self._emitted
        if remaining <= 0:
            return None
        batch = self.child.next_batch()
        if batch is None:
            return None
        self._record_input(len(batch))
        if len(batch) > remaining:
            batch = batch.select(list(range(remaining)))
        self._emitted += len(batch)
        return batch


# ----------------------------------------------------------------------
# joins
# ----------------------------------------------------------------------

class _BatchBinaryJoin(BatchOperator):
    """Shared plumbing for binary batch joins."""

    def __init__(self, left: BatchOperator, right: BatchOperator):
        super().__init__()
        self.left = left
        self.right = right
        self._schema: Schema | None = None

    def children(self) -> tuple[BatchOperator, ...]:
        return (self.left, self.right)

    def schema(self) -> Schema:
        if self._schema is None:
            raise RuntimeError("join not opened")
        return self._schema

    def _open_children(self) -> None:
        self.left.open(self.context)
        self.right.open(self.context)
        self._schema = self.left.schema().concat(self.right.schema())


class BatchHashJoin(_BatchBinaryJoin):
    """Classical hash equi-join, batched: blocking build over the right
    input, vectorized probe over left batches.  Output order is identical
    to the row :class:`~repro.execution.joins.HashJoin` — probe-major, with
    partners in build-arrival order."""

    kind = "batchHashJoin"

    def __init__(
        self,
        left: BatchOperator,
        right: BatchOperator,
        left_key: str,
        right_key: str,
    ):
        super().__init__(left, right)
        self.left_key = left_key
        self.right_key = right_key
        self._hash: dict[Any, list[tuple[tuple, Rid]]] | None = None
        self._left_position = -1

    def describe(self) -> str:
        return f"batchHashJoin({self.left_key}={self.right_key})"

    def _open(self) -> None:
        self._open_children()
        self._hash = None
        self._left_position = self.left.schema().index_of(self.left_key)

    def _build(self) -> None:
        position = self.right.schema().index_of(self.right_key)
        table: dict[Any, list[tuple[tuple, Rid]]] = {}
        for batch in self._drain(self.right):
            keys = batch.columns[position]
            values = batch.value_tuples()
            rids = batch.rids
            for i, key in enumerate(keys):
                table.setdefault(key, []).append((values[i], rids[i]))
        self._hash = table

    def _next_batch(self) -> Batch | None:
        if self._hash is None:
            self._build()
        table = self._hash
        assert table is not None
        while True:
            batch = self.left.next_batch()
            if batch is None:
                return None
            self._record_input(len(batch))
            keys = batch.columns[self._left_position]
            values = batch.value_tuples()
            rids = batch.rids
            out_values: list[tuple] = []
            out_rids: list[Rid] = []
            pairs = 0
            for i, key in enumerate(keys):
                partners = table.get(key)
                if not partners:
                    continue
                value, rid = values[i], rids[i]
                pairs += len(partners)
                for partner_value, partner_rid in partners:
                    out_values.append(value + partner_value)
                    out_rids.append(rid + partner_rid)
            if pairs:
                self.context.metrics.charge_join_pair(pairs)
            if out_values:
                return Batch(self.schema(), out_rids, values=out_values)


class BatchSortMergeJoin(_BatchBinaryJoin):
    """Classical sort-merge equi-join, batched (fully blocking).

    Drains both inputs into columnar buffers, argsorts each side by
    ``(key, rid)`` and merges — the same key-major output order (equal-key
    cross products in left-then-right rid order) as the row
    :class:`~repro.execution.joins.SortMergeJoin`, with comparison costs
    charged by the same formulas."""

    kind = "batchSMJ"

    def __init__(
        self,
        left: BatchOperator,
        right: BatchOperator,
        left_key: str,
        right_key: str,
    ):
        super().__init__(left, right)
        self.left_key = left_key
        self.right_key = right_key
        self._output: "tuple[list[tuple], list[Rid]] | None" = None
        self._position = 0

    def describe(self) -> str:
        return f"batchSMJ({self.left_key}={self.right_key})"

    def column_order(self) -> str | None:
        return self.left_key

    def _open(self) -> None:
        self._open_children()
        self._output = None
        self._position = 0

    def _collect(
        self, side: BatchOperator, key_name: str
    ) -> tuple[list, list[tuple], list[Rid]]:
        """Drain one input; return (key vector, value tuples, rids) sorted
        by ``(key, rid)``, charging sort comparisons unless the input
        already delivers the key's interesting order."""
        position = side.schema().index_of(key_name)
        keys: list = []
        values: list[tuple] = []
        rids: list[Rid] = []
        for batch in self._drain(side):
            keys.extend(batch.columns[position])
            values.extend(batch.value_tuples())
            rids.extend(batch.rids)
        n = len(keys)
        if side.column_order() != key_name:
            self.context.metrics.charge_comparisons(
                int(n * max(1, math.log2(n or 1)))
            )
        order = sorted(range(n), key=lambda i: (keys[i], rids[i]))
        return (
            [keys[i] for i in order],
            [values[i] for i in order],
            [rids[i] for i in order],
        )

    def _merge(self) -> None:
        context = self.context
        left_keys, left_values, left_rids = self._collect(self.left, self.left_key)
        right_keys, right_values, right_rids = self._collect(
            self.right, self.right_key
        )
        out_values: list[tuple] = []
        out_rids: list[Rid] = []
        i = j = 0
        n_left, n_right = len(left_keys), len(right_keys)
        comparisons = 0
        pairs = 0
        while i < n_left and j < n_right:
            comparisons += 1
            lk = left_keys[i]
            rk = right_keys[j]
            if lk < rk:
                i += 1
            elif lk > rk:
                j += 1
            else:
                j_end = j
                while j_end < n_right and right_keys[j_end] == lk:
                    j_end += 1
                i_end = i
                while i_end < n_left and left_keys[i_end] == lk:
                    i_end += 1
                for a in range(i, i_end):
                    left_value, left_rid = left_values[a], left_rids[a]
                    for b in range(j, j_end):
                        out_values.append(left_value + right_values[b])
                        out_rids.append(left_rid + right_rids[b])
                pairs += (i_end - i) * (j_end - j)
                i, j = i_end, j_end
        context.metrics.charge_comparisons(comparisons)
        context.metrics.charge_join_pair(pairs)
        self._output = (out_values, out_rids)

    def _next_batch(self) -> Batch | None:
        if self._output is None:
            self._merge()
        values, rids = self._output  # type: ignore[misc]
        start = self._position
        if start >= len(values):
            return None
        end = min(start + BATCH_SIZE, len(values))
        self._position = end
        return Batch(self.schema(), rids[start:end], values=values[start:end])


class BatchNestedLoopJoin(_BatchBinaryJoin):
    """Classical nested-loop join, batched (inner side materialized).

    Outer-major output order, identical to the row
    :class:`~repro.execution.joins.NestedLoopJoin`."""

    kind = "batchNestLoop"

    def __init__(
        self,
        left: BatchOperator,
        right: BatchOperator,
        condition: BooleanPredicate | None,
    ):
        super().__init__(left, right)
        self.condition = condition
        self._inner: "tuple[list[tuple], list[Rid]] | None" = None
        self._evaluator: Evaluator | None = None

    def describe(self) -> str:
        name = self.condition.name if self.condition else "true"
        return f"batchNestLoop({name})"

    def _open(self) -> None:
        self._open_children()
        self._inner = None
        self._evaluator = (
            self.condition.compile(self.schema()) if self.condition else None
        )

    def _materialize_inner(self) -> None:
        values: list[tuple] = []
        rids: list[Rid] = []
        for batch in self._drain(self.right):
            values.extend(batch.value_tuples())
            rids.extend(batch.rids)
        self._inner = (values, rids)

    def _next_batch(self) -> Batch | None:
        if self._inner is None:
            self._materialize_inner()
        inner_values, inner_rids = self._inner  # type: ignore[misc]
        context = self.context
        evaluate = self._evaluator
        condition = self.condition
        while True:
            batch = self.left.next_batch()
            if batch is None:
                return None
            self._record_input(len(batch))
            out_values: list[tuple] = []
            out_rids: list[Rid] = []
            pairs = len(batch) * len(inner_values)
            booleans = 0
            for outer_value, outer_rid in zip(batch.value_tuples(), batch.rids):
                for partner_value, partner_rid in zip(inner_values, inner_rids):
                    merged = outer_value + partner_value
                    if evaluate is not None:
                        booleans += 1
                        if not evaluate(merged):
                            continue
                    out_values.append(merged)
                    out_rids.append(outer_rid + partner_rid)
            if pairs:
                context.metrics.charge_join_pair(pairs)
            if booleans:
                assert condition is not None
                context.metrics.charge_boolean(booleans, cost=condition.cost)
            if out_values:
                return Batch(self.schema(), out_rids, values=out_values)


# ----------------------------------------------------------------------
# sort (the frontier of lowered traditional plans)
# ----------------------------------------------------------------------

class BatchSort(BatchOperator):
    """Blocking τ_F over batches: drain, evaluate every remaining ranking
    predicate as a score vector, argsort by ``(−F, rid)``, emit in rank
    order with the score vectors attached.

    Like the row :class:`~repro.execution.sort.Sort`, it keeps only a
    bounded top-k selection when a directly-enclosing λ_k announces its
    ``k`` via :meth:`notify_limit` (cursor plans strip the λ and therefore
    always get the full ordering).
    """

    kind = "batchSort"

    def __init__(self, child: BatchOperator, fetch_limit: int | None = None):
        super().__init__()
        self.child = child
        self.fetch_limit = fetch_limit
        self._ordered: "tuple[list, dict[str, list[float]], list[float]] | None" = None
        self._position = 0
        self._rows_kept = False

    def describe(self) -> str:
        if self.fetch_limit is not None:
            return f"batchSort(top {self.fetch_limit})"
        return "batchSort"

    def notify_limit(self, k: int) -> None:
        if self.fetch_limit is None:
            self.fetch_limit = k

    def children(self) -> tuple[BatchOperator, ...]:
        return (self.child,)

    def schema(self) -> Schema:
        return self.child.schema()

    def predicates(self) -> frozenset[str]:
        return frozenset(self.context.scoring.predicate_names)

    def bound_hint(self) -> float:
        if self._ordered is None:
            return self.context.scoring.max_possible()
        if self._position >= len(self._ordered[0]):
            return -math.inf
        return self._ordered[2][self._position]

    def _open(self) -> None:
        self.child.open(self.context)
        self._ordered = None
        self._position = 0

    def _materialize(self) -> None:
        context = self.context
        scoring = context.scoring
        schema = self.child.schema()
        items: list = []  # Row objects or value tuples, kept per-source
        rids: list[Rid] = []
        rows: "list[Row] | None" = []
        scores: dict[str, list[float]] = {}
        for batch in self._drain(self.child):
            if rows is not None and batch.rows is not None:
                rows.extend(batch.rows)
            else:
                rows = None
            items.extend(batch.tuples())
            rids.extend(batch.rids)
            for name, vector in batch.scores.items():
                scores.setdefault(name, []).extend(vector)
        n = len(items)
        missing = [
            name
            for name in scoring.predicate_names
            if name not in scores or len(scores[name]) != n
        ]
        if missing:
            # One synthetic batch over the whole materialized input lets
            # the vector kernels (and the bulk python loop) score each
            # remaining predicate column-wise in a single pass.
            whole = Batch(
                schema,
                rids,
                rows=rows if rows is not None else None,
                values=None if rows is not None else items,
            )
            for name in missing:
                evaluate, cost = context.evaluators.entry(name, schema)
                kernel = vectors.ranking_kernel(scoring.predicate(name), schema)
                scores[name] = vectors.score_vector(kernel, evaluate, whole)
                context.metrics.charge_predicate(cost, n)
        names = scoring.predicate_names
        score_columns = [scores[name] for name in names]
        # Per-row F via the same upper_bound arithmetic as the row path, so
        # scores (and the sort order they induce) are bit-identical.
        bounds = [
            scoring.upper_bound(dict(zip(names, per_row)))
            for per_row in zip(*score_columns)
        ] if n else []
        k = self.fetch_limit
        if k is not None and k < n:
            context.metrics.charge_comparisons(int(n * max(1, math.log2(max(2, k)))))
            order = heapq.nsmallest(k, range(n), key=lambda i: (-bounds[i], rids[i]))
        else:
            context.metrics.charge_comparisons(int(n * max(1, math.log2(n or 1))))
            order = sorted(range(n), key=lambda i: (-bounds[i], rids[i]))
        carrier = rows if rows is not None else items
        self._ordered = (
            [(carrier[i], rids[i]) for i in order],
            {name: [scores[name][i] for i in order] for name in names},
            [bounds[i] for i in order],
        )
        self._rows_kept = rows is not None

    def _next_batch(self) -> Batch | None:
        if self._ordered is None:
            self._materialize()
        ordered, score_vectors, __ = self._ordered  # type: ignore[misc]
        start = self._position
        if start >= len(ordered):
            return None
        end = min(start + BATCH_SIZE, len(ordered))
        self._position = end
        chunk = ordered[start:end]
        rids = [rid for __, rid in chunk]
        sliced_scores = {
            name: vector[start:end] for name, vector in score_vectors.items()
        }
        if self._rows_kept:
            return Batch(
                self.schema(),
                rids,
                rows=[item for item, __ in chunk],
                scores=sliced_scores,
            )
        return Batch(
            self.schema(),
            rids,
            values=[item for item, __ in chunk],
            scores=sliced_scores,
        )

    def _close(self) -> None:
        self.child.close()
        self._ordered = None


# ----------------------------------------------------------------------
# the frontier adapter
# ----------------------------------------------------------------------

class BatchToRow(PhysicalOperator):
    """Adapter from a batch segment back to the rank-aware iterator world.

    Sits exactly where a rank-aware consumer begins.  It pulls batches from
    the segment root and re-emits them one :class:`ScoredRow` at a time,
    preserving tuple order (hence rid tie-order), evaluated scores, and the
    ``bound()`` / ``predicates()`` contracts of the operator it replaces:
    ``F_φ`` until exhausted for an unranked segment, the next pending
    tuple's score for a segment topped by :class:`BatchSort`.

    Moves are *not* re-charged here — the segment root already charged its
    emitted tuples — so a lowered plan's ``tuples_moved`` stays comparable
    to its row-mode equivalent.

    **Frontier vectorization.**  A rank-aware consumer can push per-tuple
    predicate work *down into* the adapter, where it runs once per batch
    instead of once per ``next()``:

    * :meth:`request_prescore` — a directly-enclosing µ registers its
      ranking predicate; each incoming batch gets the predicate evaluated
      as one score vector (NumPy-vectorized when the
      :mod:`~repro.execution.vectors` backend allows, a tight bulk loop
      otherwise) before any tuple crosses into the row world.  µ's
      idempotent-input path then consumes the scores without re-evaluating.
      Only accepted while the segment is unranked (``P = φ``): prescored
      values ride along as extra score entries, and the adapter's
      :meth:`bound` / :meth:`predicates` contracts keep describing the
      *segment's* predicate set, so the consumer's thresholds stay sound
      (an unranked stream gives no per-tuple order information, prescored
      or not).
    * :meth:`request_prefilter` — a directly-enclosing σ registers its
      Boolean condition; batches are filtered columnar-side before
      conversion.  Membership-only, order-preserving, and charged here
      (same evaluation count the row filter would have charged).
    """

    kind = "batchSegment"

    def __init__(self, source: BatchOperator):
        super().__init__()
        self.source = source
        self._pending: list[ScoredRow] = []
        self._position = 0
        self._exhausted = False
        self._prescore: list[str] = []
        self._prescore_kernels: dict[str, tuple] = {}
        self._prefilters: list[BooleanPredicate] = []
        self._prefilter_compiled: list[tuple] = []

    def describe(self) -> str:
        return f"batch[{self.source.describe()}]"

    def notify_limit(self, k: int) -> None:
        self.source.notify_limit(k)

    def schema(self) -> Schema:
        return self.source.schema()

    def predicates(self) -> frozenset[str]:
        return self.source.predicates()

    def column_order(self) -> str | None:
        return self.source.column_order()

    # -- frontier vectorization hooks -----------------------------------
    def request_prescore(self, predicate_name: str) -> bool:
        """Register a ranking predicate for per-batch evaluation.

        Accepted only while the segment is unranked (``P = φ``) — above a
        :class:`BatchSort` frontier every predicate is already evaluated,
        and a non-empty ``P`` would make the extra score entries interfere
        with the descending-order contract.
        """
        if self.source.predicates():
            return False
        if predicate_name not in self._prescore:
            self._prescore.append(predicate_name)
            schema = self.source.schema()
            evaluate, cost = self.context.evaluators.entry(predicate_name, schema)
            kernel = vectors.ranking_kernel(
                self.context.scoring.predicate(predicate_name), schema
            )
            self._prescore_kernels[predicate_name] = (evaluate, cost, kernel)
        return True

    def request_prefilter(
        self, condition: BooleanPredicate, stats: OperatorStats | None = None
    ) -> bool:
        """Register a Boolean condition to apply columnar-side per batch.

        ``stats`` is the pushing operator's record: its ``tuples_in`` is
        charged here for every tuple the prefilter examines, so the σ
        node's actual-input cardinality reads the same whether or not the
        condition was pushed down.
        """
        schema = self.source.schema()
        self._prefilters.append(condition)
        self._prefilter_compiled.append(
            (
                condition,
                condition.compile(schema),
                vectors.boolean_kernel(condition, schema),
                stats,
            )
        )
        return True

    def _prepare_batch(self, batch: Batch) -> Batch:
        """Apply registered prefilters and prescores to an incoming batch."""
        metrics = self.context.metrics
        for condition, evaluate, kernel, stats in self._prefilter_compiled:
            n = len(batch)
            if not n:
                break
            if stats is not None:
                stats.tuples_in += n
            metrics.charge_boolean(n, cost=condition.cost)
            keep = vectors.keep_indices(kernel, evaluate, batch)
            if len(keep) != n:
                batch = batch.select(keep)
        n = len(batch)
        if n:
            for name in self._prescore:
                if name in batch.scores:
                    continue  # already evaluated below (e.g. by BatchSort)
                evaluate, cost, kernel = self._prescore_kernels[name]
                batch.scores[name] = vectors.score_vector(kernel, evaluate, batch)
                metrics.charge_predicate(cost, n)
        return batch

    def bound(self) -> float:
        if self._position < len(self._pending):
            scored = self._pending[self._position]
            if self._prescore:
                # Prescored entries are a consumer-side cache, not part of
                # this operator's evaluated set P: the bound must keep
                # describing F_P (= F_φ here), because batch order carries
                # no information about the prescored predicate.
                own = self.predicates()
                return self.context.scoring.upper_bound(
                    {n: v for n, v in scored.scores.items() if n in own}
                )
            return self.context.upper_bound(scored)
        if self._exhausted:
            return -math.inf
        return self.source.bound_hint()

    def next(self) -> ScoredRow | None:
        # Overridden from PhysicalOperator: count tuples out but skip the
        # per-tuple move charge (see class docstring).
        if not self._opened:
            raise RuntimeError(f"{self.describe()}: next() before open()")
        scored = self._next()
        if scored is not None:
            assert self._stats is not None
            self._stats.tuples_out += 1
        return scored

    def _open(self) -> None:
        self.source.open(self.context)
        self._pending = []
        self._position = 0
        self._exhausted = False
        self._prescore = []
        self._prescore_kernels = {}
        self._prefilters = []
        self._prefilter_compiled = []

    def _next(self) -> ScoredRow | None:
        while self._position >= len(self._pending):
            if self._exhausted:
                return None
            batch = self.source.next_batch()
            if batch is None:
                self._exhausted = True
                return None
            self._record_input(len(batch))
            batch = self._prepare_batch(batch)
            self._pending = batch.to_scored_rows()
            self._position = 0
        scored = self._pending[self._position]
        self._position += 1
        return scored

    def _close(self) -> None:
        self.source.close()
        self._pending = []
