"""Batched columnar execution for unranked (``P = φ``) plan segments.

The Volcano iterators of :mod:`repro.execution.iterator` move one
:class:`~repro.algebra.rank_relation.ScoredRow` per ``next()`` call — the
right granularity for rank-aware operators, whose whole point is emitting
incrementally in score order, but pure overhead for the unranked segments
below them.  A ``P = φ`` subtree has every tuple at the same maximal
possible score, so Definition 1 places no order constraint on it, and its
rank-aware consumer cannot emit anything before the subtree is exhausted
anyway (its bound stays at ``F_φ`` until then).  Those segments are free to
execute in bulk.

This module is that bulk path:

* :class:`Batch` — a column-vector slice of tuples (value vectors + rid
  vector + evaluated-score vectors), the unit batch operators exchange;
* batch operators (:class:`BatchScan`, :class:`BatchFilter`,
  :class:`BatchProject`, :class:`BatchHashJoin`,
  :class:`BatchSortMergeJoin`, :class:`BatchNestedLoopJoin`,
  :class:`BatchSort`, :class:`BatchLimit`) — vectorized equivalents of the
  row operators, producing the *same tuples in the same order* while
  charging :class:`~repro.execution.metrics.ExecutionMetrics` in per-batch
  increments (``charge_*(count)``) instead of one call per tuple;
* :class:`BatchToRow` — the adapter at the frontier where a rank-aware
  consumer begins: a :class:`~repro.execution.iterator.PhysicalOperator`
  that unpacks batches back into ``ScoredRow`` tuples, preserving rid
  tie-order and the ``bound()`` / ``predicates()`` contracts.

The planner's lowering pass
(:func:`repro.optimizer.plans.lower_to_batch`) swaps maximal ``P = φ``
descriptor subtrees onto this path; rank-aware operators (µ, HRJN/NRJN,
rank set-ops, rank-scans) are never lowered — batching them would destroy
the incremental emission the ranking principle is about.
"""

from __future__ import annotations

import heapq
import math
import time
from typing import Any, Callable, Iterator

from ..algebra.expressions import Evaluator
from ..algebra.predicates import BooleanPredicate
from ..algebra.rank_relation import ScoredRow
from ..storage.row import Row
from ..storage.schema import Schema
from . import morsels, vectors
from .iterator import ExecutionContext, PhysicalOperator
from .metrics import ExecutionMetrics, OperatorStats
from .scans import sorted_column_order

#: tuples per batch — large enough to amortize per-batch dispatch, small
#: enough to keep intermediate vectors cache- and memory-friendly
BATCH_SIZE = 1024

Rid = tuple[tuple[str, int], ...]


class Batch:
    """A slice of tuples in columnar form.

    A batch always carries the parallel ``rids`` vector (deterministic
    identity / tie-order) and at least one tuple representation:

    * ``columns`` — per-column value vectors (built lazily when only a
      row-wise representation was supplied);
    * ``values`` — per-tuple value tuples (built lazily from columns);
    * ``rows`` — the original :class:`Row` objects, kept when the batch's
      tuples are 1:1 with stored base rows so the frontier can emit them
      without re-allocating.

    ``scores`` maps predicate name to an evaluated score vector — empty
    everywhere in a ``P = φ`` segment, populated by :class:`BatchSort` at
    the frontier of lowered traditional plans.
    """

    __slots__ = ("schema", "rids", "rows", "scores", "_columns", "_values")

    def __init__(
        self,
        schema: Schema,
        rids: list[Rid],
        *,
        columns: "tuple[list, ...] | None" = None,
        values: "list[tuple] | None" = None,
        rows: "list[Row] | None" = None,
        scores: "dict[str, list[float]] | None" = None,
    ):
        if columns is None and values is None and rows is None:
            raise ValueError("batch needs columns, values or rows")
        self.schema = schema
        self.rids = rids
        self.rows = rows
        self.scores: dict[str, list[float]] = scores if scores is not None else {}
        self._columns = columns
        self._values = values

    def __len__(self) -> int:
        return len(self.rids)

    @property
    def columns(self) -> tuple[list, ...]:
        """Per-column value vectors (computed from the tuples on demand)."""
        if self._columns is None:
            values = self.value_tuples()
            if values:
                self._columns = tuple(list(v) for v in zip(*values))
            else:
                self._columns = tuple([] for __ in range(len(self.schema)))
        return self._columns

    def value_tuples(self) -> list[tuple]:
        """Plain value tuples, one per tuple (for join concatenation)."""
        if self._values is None:
            if self.rows is not None:
                self._values = [r.values for r in self.rows]
            else:
                assert self._columns is not None
                self._values = list(zip(*self._columns))
        return self._values

    def tuples(self) -> "list[Row] | list[tuple]":
        """Indexable row-likes for compiled evaluators (``row[pos]``)."""
        if self.rows is not None:
            return self.rows
        return self.value_tuples()

    def select(self, indices: list[int]) -> "Batch":
        """The sub-batch at ``indices`` (order preserved)."""
        values = self.value_tuples()
        return Batch(
            self.schema,
            [self.rids[i] for i in indices],
            values=[values[i] for i in indices],
            rows=[self.rows[i] for i in indices] if self.rows is not None else None,
            scores={
                name: [vec[i] for i in indices] for name, vec in self.scores.items()
            },
        )

    def to_scored_rows(self) -> list[ScoredRow]:
        """Unpack into ``ScoredRow`` objects (the frontier conversion)."""
        names = list(self.scores)
        if self.rows is not None:
            rows: "list[Row]" = self.rows
        else:
            rows = [
                Row(values, rid)
                for values, rid in zip(self.value_tuples(), self.rids)
            ]
        if not names:
            return [ScoredRow(row, {}) for row in rows]
        vectors = [self.scores[n] for n in names]
        return [
            ScoredRow(row, dict(zip(names, per_row)))
            for row, per_row in zip(rows, zip(*vectors))
        ]


# ----------------------------------------------------------------------
# morsel decomposition (the parallel path)
# ----------------------------------------------------------------------
#
# A MorselChain is a *random-access* decomposition of a batch pipeline:
# a source that can produce any morsel's batches independently, plus the
# per-batch stages of the operators stacked above it.  BatchToRow turns a
# chain into one task per morsel and runs the tasks on the shared pool
# (morsels.run_tasks), gathering results in morsel order.
#
# Determinism contract: morsel boundaries partition the source in its
# serial emission order and every stage is order-preserving within a
# batch, so the ordered concatenation of per-morsel outputs is exactly
# the serial output — rid tie-order included.
#
# Metrics contract: every stage replicates the serial operator's charges,
# per tuple and under the same operator-stats names, into the task's
# *private* ExecutionMetrics sink (workers never touch shared state); the
# consuming thread merges each sink as it gathers the morsel's result.
# Charges that are formulas over the whole input (sort / merge-join
# comparison estimates) are applied once, on the statement's metrics, by
# the operator that owns them — so for fully-drained segments parallel
# totals equal serial totals exactly.  Blocking phases (hash build,
# sort-merge collection, sort materialization) run on the statement
# thread and fan out their own morsels before the probe chain is built.


class _Stage:
    """One operator's per-batch transform inside a morsel task."""

    __slots__ = ("name", "fn")

    def __init__(
        self, name: str, fn: "Callable[[Batch, ExecutionMetrics], Batch | None]"
    ):
        self.name = name
        self.fn = fn

    def __call__(self, batch: Batch, sink: ExecutionMetrics) -> Batch | None:
        return self.fn(batch, sink)


def _emit(batch: Batch, name: str, sink: ExecutionMetrics) -> Batch:
    """The serial emission accounting (:meth:`BatchOperator.next_batch`)
    for a batch produced inside a morsel task."""
    count = len(batch)
    sink.stats_for(name).tuples_out += count
    sink.charge_move(count)
    return batch


class _ViewSource:
    """Morsels over a table's :class:`~repro.storage.table.ColumnarView`
    (:class:`BatchScan`'s parallel twin)."""

    def __init__(self, view, name: str):
        self.view = view
        self.name = name
        self.width = morsels.morsel_size()

    def morsel_count(self) -> int:
        return math.ceil(len(self.view) / self.width)

    def batches(self, index: int, sink: ExecutionMetrics) -> Iterator[Batch]:
        view = self.view
        stop = min((index + 1) * self.width, len(view))
        position = index * self.width
        while position < stop:
            end = min(position + BATCH_SIZE, stop)
            sink.charge_scan(end - position)
            yield _emit(
                Batch(
                    view.schema,
                    view.rids[position:end],
                    columns=tuple(c[position:end] for c in view.columns),
                    rows=view.rows[position:end],
                ),
                self.name,
                sink,
            )
            position = end


class _RowSource:
    """Morsels over a materialized row list (column-order scans)."""

    def __init__(self, rows: list[Row], schema: Schema, name: str):
        self.rows = rows
        self.schema = schema
        self.name = name
        self.width = morsels.morsel_size()

    def morsel_count(self) -> int:
        return math.ceil(len(self.rows) / self.width)

    def batches(self, index: int, sink: ExecutionMetrics) -> Iterator[Batch]:
        rows = self.rows
        stop = min((index + 1) * self.width, len(rows))
        position = index * self.width
        while position < stop:
            end = min(position + BATCH_SIZE, stop)
            chunk = rows[position:end]
            sink.charge_scan(len(chunk))
            yield _emit(
                Batch(self.schema, [r.rid for r in chunk], rows=chunk),
                self.name,
                sink,
            )
            position = end


class _TupleSource:
    """Morsels over a blocking operator's materialized (values, rids)
    output (sort-merge join emission): no scan charge, emission accounting
    only — exactly what the serial wrapper charges."""

    def __init__(
        self, values: list[tuple], rids: "list[Rid]", schema: Schema, name: str
    ):
        self.values = values
        self.rids = rids
        self.schema = schema
        self.name = name
        self.width = morsels.morsel_size()

    def morsel_count(self) -> int:
        return math.ceil(len(self.values) / self.width)

    def batches(self, index: int, sink: ExecutionMetrics) -> Iterator[Batch]:
        stop = min((index + 1) * self.width, len(self.values))
        position = index * self.width
        while position < stop:
            end = min(position + BATCH_SIZE, stop)
            yield _emit(
                Batch(
                    self.schema,
                    self.rids[position:end],
                    values=self.values[position:end],
                ),
                self.name,
                sink,
            )
            position = end


class MorselChain:
    """A source plus the order-preserving stages stacked above it."""

    __slots__ = ("source", "stages")

    def __init__(self, source, stages: tuple[_Stage, ...] = ()):
        self.source = source
        self.stages = tuple(stages)

    def extended(self, stage: _Stage) -> "MorselChain":
        return MorselChain(self.source, self.stages + (stage,))

    def tasks(self, finalize=None) -> list:
        """One closure per morsel.

        Each task runs its morsel's batches through the stages with a
        private metrics sink, accumulating every operator's busy time
        into the sink's per-operator ``wall_seconds``, and returns
        ``(result, sink)`` — where ``result`` is the surviving batch
        list, or ``finalize(batches, sink)`` when a finalizer is given.
        """
        source = self.source
        stages = self.stages
        out = []
        for index in range(source.morsel_count()):

            def task(index: int = index):
                sink = ExecutionMetrics()
                source_stats = sink.stats_for(source.name)
                produced: list[Batch] = []
                iterator = source.batches(index, sink)
                while True:
                    started = time.perf_counter()
                    batch = next(iterator, None)
                    source_stats.wall_seconds += time.perf_counter() - started
                    if batch is None:
                        break
                    for stage in stages:
                        started = time.perf_counter()
                        batch = stage(batch, sink)
                        sink.stats_for(stage.name).wall_seconds += (
                            time.perf_counter() - started
                        )
                        if batch is None:
                            break
                    else:
                        produced.append(batch)
                result = produced if finalize is None else finalize(produced, sink)
                return result, sink

            out.append(task)
        return out


class BatchOperator:
    """Base class of batch (vector-at-a-time) operators.

    Mirrors the :class:`~repro.execution.iterator.PhysicalOperator`
    lifecycle — ``open(context)`` / ``next_batch()`` / ``close()`` — with
    the same per-operator stats and bulk metric charging: every emitted
    batch counts ``len(batch)`` tuples out and moves in one call.
    """

    kind = "batchOperator"

    def __init__(self) -> None:
        self._context: ExecutionContext | None = None
        self._stats: OperatorStats | None = None
        self._opened = False
        #: the segment's costed degree of parallelism (installed by
        #: :class:`BatchToRow` before open; 1 = the serial path)
        self._dop = 1

    # -- lifecycle ------------------------------------------------------
    def open(self, context: ExecutionContext) -> None:
        self._context = context
        self._stats = context.metrics.stats_for(context.unique_name(self.describe()))
        self._opened = True
        self._open()

    def next_batch(self) -> Batch | None:
        """The next non-empty batch, or None when exhausted."""
        if not self._opened:
            raise RuntimeError(f"{self.describe()}: next_batch() before open()")
        started = time.perf_counter()
        try:
            while True:
                batch = self._next_batch()
                if batch is None:
                    return None
                if len(batch):
                    assert self._stats is not None and self._context is not None
                    self._stats.tuples_out += len(batch)
                    self._context.metrics.charge_move(len(batch))
                    return batch
        finally:
            # inclusive wall time (children's pulls run inside this call);
            # morsel stages instead time their own busy share per worker
            self.stats.wall_seconds += time.perf_counter() - started

    def close(self) -> None:
        if self._opened:
            self._close()
            self._opened = False

    # -- contracts -------------------------------------------------------
    def schema(self) -> Schema:
        raise NotImplementedError

    def predicates(self) -> frozenset[str]:
        """Evaluated ranking-predicate set ``P`` of the output (φ for every
        batch operator except :class:`BatchSort`)."""
        return frozenset()

    def column_order(self) -> str | None:
        return None

    def bound_hint(self) -> float:
        """Upper bound on the ``F_P`` score of any tuple still to come
        (``F_φ`` for unranked operators)."""
        return self.context.scoring.max_possible()

    def notify_limit(self, k: int) -> None:
        """See :meth:`PhysicalOperator.notify_limit`; only
        :class:`BatchSort` reacts."""

    def describe(self) -> str:
        return self.kind

    def children(self) -> tuple["BatchOperator", ...]:
        return ()

    # -- parallelism ------------------------------------------------------
    def set_parallelism(self, dop: int) -> None:
        """Install the segment's costed degree of parallelism, recursively
        (called by :class:`BatchToRow` before ``open``)."""
        self._dop = max(1, int(dop))
        for child in self.children():
            child.set_parallelism(self._dop)

    @property
    def dop(self) -> int:
        return self._dop

    def morsel_chain(self) -> "MorselChain | None":
        """A random-access morsel decomposition of this operator's output,
        or None when the subtree cannot be decomposed (the serial
        ``next_batch`` path remains the fallback, always correct).

        Called only after ``open()`` and only with ``dop > 1`` installed.
        Blocking phases below (hash build, sort-merge collection) may run
        — themselves fanned out over morsels — as a side effect.
        """
        return None

    # -- subclass hooks ---------------------------------------------------
    def _open(self) -> None:
        raise NotImplementedError

    def _next_batch(self) -> Batch | None:
        raise NotImplementedError

    def _close(self) -> None:
        for child in self.children():
            child.close()

    # -- helpers ----------------------------------------------------------
    @property
    def context(self) -> ExecutionContext:
        assert self._context is not None, "operator not opened"
        return self._context

    @property
    def stats(self) -> OperatorStats:
        assert self._stats is not None, "operator not opened"
        return self._stats

    def _record_input(self, count: int) -> None:
        self.stats.tuples_in += count

    def _drain(self, child: "BatchOperator") -> Iterator[Batch]:
        while True:
            batch = child.next_batch()
            if batch is None:
                return
            self._record_input(len(batch))
            yield batch


# ----------------------------------------------------------------------
# scans
# ----------------------------------------------------------------------

class BatchScan(BatchOperator):
    """Sequential scan over the table's columnar view (heap order)."""

    kind = "batchScan"

    def __init__(self, table_name: str):
        super().__init__()
        self.table_name = table_name
        self._schema: Schema | None = None
        self._view = None
        self._position = 0

    def describe(self) -> str:
        return f"batchScan({self.table_name})"

    def schema(self) -> Schema:
        if self._schema is None:
            raise RuntimeError("scan not opened")
        return self._schema

    def _open(self) -> None:
        table = self.context.catalog.table(self.table_name)
        self._schema = table.schema
        self._view = table.columns()
        self._position = 0

    def _next_batch(self) -> Batch | None:
        view = self._view
        assert view is not None
        start = self._position
        if start >= len(view):
            return None
        end = min(start + BATCH_SIZE, len(view))
        self._position = end
        self.context.metrics.charge_scan(end - start)
        return Batch(
            view.schema,
            view.rids[start:end],
            columns=tuple(column[start:end] for column in view.columns),
            rows=view.rows[start:end],
        )

    def morsel_chain(self) -> "MorselChain | None":
        assert self._view is not None
        return MorselChain(_ViewSource(self._view, self.stats.name))

    def _close(self) -> None:
        self._view = None


class BatchColumnOrderScan(BatchOperator):
    """Index scan in ascending column order, batched.

    Falls back to a transient heap sort (charging its comparisons) when the
    table has no :class:`~repro.storage.index.ColumnIndex` — same recovery
    as the row-mode :class:`~repro.execution.scans.ColumnOrderScan`.
    """

    kind = "batchScanCol"

    def __init__(self, table_name: str, column: str):
        super().__init__()
        self.table_name = table_name
        self.column = column
        self._schema: Schema | None = None
        self._rows: list[Row] | None = None
        self._position = 0

    def describe(self) -> str:
        return f"batchScan_{self.column}({self.table_name})"

    def schema(self) -> Schema:
        if self._schema is None:
            raise RuntimeError("scan not opened")
        return self._schema

    def column_order(self) -> str | None:
        return self.column

    def _open(self) -> None:
        from ..storage.index import ColumnIndex

        table = self.context.catalog.table(self.table_name)
        self._schema = table.schema
        index = table.find_index(key=self.column)
        if isinstance(index, ColumnIndex):
            self._rows = list(index.scan_ascending())
        else:
            self._rows = sorted_column_order(table, self.column, self.context.metrics)
        self._position = 0

    def _next_batch(self) -> Batch | None:
        rows = self._rows
        assert rows is not None
        start = self._position
        if start >= len(rows):
            return None
        end = min(start + BATCH_SIZE, len(rows))
        self._position = end
        chunk = rows[start:end]
        self.context.metrics.charge_scan(len(chunk))
        return Batch(self.schema(), [r.rid for r in chunk], rows=chunk)

    def morsel_chain(self) -> "MorselChain | None":
        # The ordered row list was materialized (and any fallback-sort
        # comparisons charged) serially in _open; morsels just slice it.
        assert self._rows is not None
        return MorselChain(_RowSource(self._rows, self.schema(), self.stats.name))

    def _close(self) -> None:
        self._rows = None


# ----------------------------------------------------------------------
# unary operators
# ----------------------------------------------------------------------

class BatchFilter(BatchOperator):
    """Selection σ_c applied over whole batches (order preserving)."""

    kind = "batchFilter"

    def __init__(self, child: BatchOperator, condition: BooleanPredicate):
        super().__init__()
        self.child = child
        self.condition = condition
        self._evaluator: Evaluator | None = None
        self._kernel = None

    def describe(self) -> str:
        return f"batchFilter({self.condition.name})"

    def children(self) -> tuple[BatchOperator, ...]:
        return (self.child,)

    def schema(self) -> Schema:
        return self.child.schema()

    def column_order(self) -> str | None:
        return self.child.column_order()

    def _open(self) -> None:
        self.child.open(self.context)
        self._evaluator = self.condition.compile(self.child.schema())
        self._kernel = vectors.boolean_kernel(self.condition, self.child.schema())

    def _next_batch(self) -> Batch | None:
        evaluate = self._evaluator
        assert evaluate is not None
        batch = self.child.next_batch()
        if batch is None:
            return None
        n = len(batch)
        self._record_input(n)
        self.context.metrics.charge_boolean(n, cost=self.condition.cost)
        keep = vectors.keep_indices(self._kernel, evaluate, batch)
        if len(keep) == n:
            return batch
        return batch.select(keep)

    def morsel_chain(self) -> "MorselChain | None":
        chain = self.child.morsel_chain()
        if chain is None:
            return None
        name = self.stats.name
        condition = self.condition
        evaluate = self._evaluator
        kernel = self._kernel
        assert evaluate is not None

        def stage(batch: Batch, sink: ExecutionMetrics) -> Batch | None:
            n = len(batch)
            sink.stats_for(name).tuples_in += n
            sink.charge_boolean(n, cost=condition.cost)
            keep = vectors.keep_indices(kernel, evaluate, batch)
            if len(keep) != n:
                batch = batch.select(keep)
            if not len(batch):
                return None  # the serial wrapper skips empty batches too
            return _emit(batch, name, sink)

        return chain.extended(_Stage(name, stage))


class BatchProject(BatchOperator):
    """Projection π over column vectors (narrows the value layout)."""

    kind = "batchProject"

    def __init__(self, child: BatchOperator, columns: tuple[str, ...]):
        super().__init__()
        self.child = child
        self.columns = tuple(columns)
        self._positions: list[int] | None = None
        self._schema: Schema | None = None

    def describe(self) -> str:
        return f"batchProject({', '.join(self.columns)})"

    def children(self) -> tuple[BatchOperator, ...]:
        return (self.child,)

    def schema(self) -> Schema:
        if self._schema is None:
            raise RuntimeError("project not opened")
        return self._schema

    def _open(self) -> None:
        self.child.open(self.context)
        child_schema = self.child.schema()
        self._positions = [child_schema.index_of(c) for c in self.columns]
        self._schema = child_schema.project(self.columns)

    def _next_batch(self) -> Batch | None:
        positions = self._positions
        assert positions is not None and self._schema is not None
        batch = self.child.next_batch()
        if batch is None:
            return None
        self._record_input(len(batch))
        vectors = batch.columns
        return Batch(
            self._schema,
            batch.rids,
            columns=tuple(vectors[p] for p in positions),
            scores=dict(batch.scores),
        )

    def morsel_chain(self) -> "MorselChain | None":
        chain = self.child.morsel_chain()
        if chain is None:
            return None
        name = self.stats.name
        positions = self._positions
        schema = self._schema
        assert positions is not None and schema is not None

        def stage(batch: Batch, sink: ExecutionMetrics) -> Batch | None:
            sink.stats_for(name).tuples_in += len(batch)
            columns = batch.columns
            return _emit(
                Batch(
                    schema,
                    batch.rids,
                    columns=tuple(columns[p] for p in positions),
                    scores=dict(batch.scores),
                ),
                name,
                sink,
            )

        return chain.extended(_Stage(name, stage))


class BatchLimit(BatchOperator):
    """λ_k over batches: truncate the stream after ``k`` tuples."""

    kind = "batchLimit"

    def __init__(self, child: BatchOperator, k: int):
        super().__init__()
        if k < 0:
            raise ValueError("k must be non-negative")
        self.child = child
        self.k = k
        self._emitted = 0

    def describe(self) -> str:
        return f"batchLimit({self.k})"

    def children(self) -> tuple[BatchOperator, ...]:
        return (self.child,)

    def schema(self) -> Schema:
        return self.child.schema()

    def predicates(self) -> frozenset[str]:
        return self.child.predicates()

    def _open(self) -> None:
        self.child.open(self.context)
        self._emitted = 0

    def _next_batch(self) -> Batch | None:
        remaining = self.k - self._emitted
        if remaining <= 0:
            return None
        batch = self.child.next_batch()
        if batch is None:
            return None
        self._record_input(len(batch))
        if len(batch) > remaining:
            batch = batch.select(list(range(remaining)))
        self._emitted += len(batch)
        return batch


# ----------------------------------------------------------------------
# joins
# ----------------------------------------------------------------------

class _BatchBinaryJoin(BatchOperator):
    """Shared plumbing for binary batch joins."""

    def __init__(self, left: BatchOperator, right: BatchOperator):
        super().__init__()
        self.left = left
        self.right = right
        self._schema: Schema | None = None

    def children(self) -> tuple[BatchOperator, ...]:
        return (self.left, self.right)

    def schema(self) -> Schema:
        if self._schema is None:
            raise RuntimeError("join not opened")
        return self._schema

    def _open_children(self) -> None:
        self.left.open(self.context)
        self.right.open(self.context)
        self._schema = self.left.schema().concat(self.right.schema())


class BatchHashJoin(_BatchBinaryJoin):
    """Classical hash equi-join, batched: blocking build over the right
    input, vectorized probe over left batches.  Output order is identical
    to the row :class:`~repro.execution.joins.HashJoin` — probe-major, with
    partners in build-arrival order."""

    kind = "batchHashJoin"

    def __init__(
        self,
        left: BatchOperator,
        right: BatchOperator,
        left_key: str,
        right_key: str,
    ):
        super().__init__(left, right)
        self.left_key = left_key
        self.right_key = right_key
        self._hash: dict[Any, list[tuple[tuple, Rid]]] | None = None
        self._left_position = -1

    def describe(self) -> str:
        return f"batchHashJoin({self.left_key}={self.right_key})"

    def _open(self) -> None:
        self._open_children()
        self._hash = None
        self._left_position = self.left.schema().index_of(self.left_key)

    def _build(self) -> None:
        position = self.right.schema().index_of(self.right_key)
        table: dict[Any, list[tuple[tuple, Rid]]] = {}
        chain = self.right.morsel_chain() if self._dop > 1 else None
        if chain is not None:
            name = self.stats.name

            def finalize(batches: list[Batch], sink: ExecutionMetrics):
                partition: dict[Any, list[tuple[tuple, Rid]]] = {}
                stats = sink.stats_for(name)
                for batch in batches:
                    stats.tuples_in += len(batch)
                    keys = batch.columns[position]
                    values = batch.value_tuples()
                    rids = batch.rids
                    for i, key in enumerate(keys):
                        partition.setdefault(key, []).append((values[i], rids[i]))
                return partition

            # Merging the per-morsel partitions in morsel order reproduces
            # both the per-key partner order and the dict's key insertion
            # order of the serial build exactly.
            for partition, sink in morsels.run_tasks(
                chain.tasks(finalize), self._dop
            ):
                self.context.metrics.merge(sink)
                for key, entries in partition.items():
                    table.setdefault(key, []).extend(entries)
            self._hash = table
            return
        for batch in self._drain(self.right):
            keys = batch.columns[position]
            values = batch.value_tuples()
            rids = batch.rids
            for i, key in enumerate(keys):
                table.setdefault(key, []).append((values[i], rids[i]))
        self._hash = table

    def morsel_chain(self) -> "MorselChain | None":
        if self._hash is None:
            self._build()
        chain = self.left.morsel_chain()
        if chain is None:
            return None  # the built table still serves the serial probe
        table = self._hash
        assert table is not None
        position = self._left_position
        schema = self.schema()
        name = self.stats.name

        def stage(batch: Batch, sink: ExecutionMetrics) -> Batch | None:
            sink.stats_for(name).tuples_in += len(batch)
            keys = batch.columns[position]
            values = batch.value_tuples()
            rids = batch.rids
            out_values: list[tuple] = []
            out_rids: list[Rid] = []
            pairs = 0
            for i, key in enumerate(keys):
                partners = table.get(key)
                if not partners:
                    continue
                value, rid = values[i], rids[i]
                pairs += len(partners)
                for partner_value, partner_rid in partners:
                    out_values.append(value + partner_value)
                    out_rids.append(rid + partner_rid)
            if pairs:
                sink.charge_join_pair(pairs)
            if not out_values:
                return None
            return _emit(Batch(schema, out_rids, values=out_values), name, sink)

        return chain.extended(_Stage(name, stage))

    def _next_batch(self) -> Batch | None:
        if self._hash is None:
            self._build()
        table = self._hash
        assert table is not None
        while True:
            batch = self.left.next_batch()
            if batch is None:
                return None
            self._record_input(len(batch))
            keys = batch.columns[self._left_position]
            values = batch.value_tuples()
            rids = batch.rids
            out_values: list[tuple] = []
            out_rids: list[Rid] = []
            pairs = 0
            for i, key in enumerate(keys):
                partners = table.get(key)
                if not partners:
                    continue
                value, rid = values[i], rids[i]
                pairs += len(partners)
                for partner_value, partner_rid in partners:
                    out_values.append(value + partner_value)
                    out_rids.append(rid + partner_rid)
            if pairs:
                self.context.metrics.charge_join_pair(pairs)
            if out_values:
                return Batch(self.schema(), out_rids, values=out_values)


class BatchSortMergeJoin(_BatchBinaryJoin):
    """Classical sort-merge equi-join, batched (fully blocking).

    Drains both inputs into columnar buffers, argsorts each side by
    ``(key, rid)`` and merges — the same key-major output order (equal-key
    cross products in left-then-right rid order) as the row
    :class:`~repro.execution.joins.SortMergeJoin`, with comparison costs
    charged by the same formulas."""

    kind = "batchSMJ"

    def __init__(
        self,
        left: BatchOperator,
        right: BatchOperator,
        left_key: str,
        right_key: str,
    ):
        super().__init__(left, right)
        self.left_key = left_key
        self.right_key = right_key
        self._output: "tuple[list[tuple], list[Rid]] | None" = None
        self._position = 0

    def describe(self) -> str:
        return f"batchSMJ({self.left_key}={self.right_key})"

    def column_order(self) -> str | None:
        return self.left_key

    def _open(self) -> None:
        self._open_children()
        self._output = None
        self._position = 0

    def _collect(
        self, side: BatchOperator, key_name: str
    ) -> tuple[list, list[tuple], list[Rid]]:
        """Drain one input; return (key vector, value tuples, rids) sorted
        by ``(key, rid)``, charging sort comparisons unless the input
        already delivers the key's interesting order."""
        position = side.schema().index_of(key_name)
        chain = side.morsel_chain() if self._dop > 1 else None
        if chain is not None:
            return self._parallel_collect(side, key_name, position, chain)
        keys: list = []
        values: list[tuple] = []
        rids: list[Rid] = []
        for batch in self._drain(side):
            keys.extend(batch.columns[position])
            values.extend(batch.value_tuples())
            rids.extend(batch.rids)
        n = len(keys)
        if side.column_order() != key_name:
            self.context.metrics.charge_comparisons(
                int(n * max(1, math.log2(n or 1)))
            )
        order = sorted(range(n), key=lambda i: (keys[i], rids[i]))
        return (
            [keys[i] for i in order],
            [values[i] for i in order],
            [rids[i] for i in order],
        )

    def _parallel_collect(
        self, side: BatchOperator, key_name: str, position: int, chain: "MorselChain"
    ) -> tuple[list, list[tuple], list[Rid]]:
        """Per-morsel ``(key, rid)``-sorted runs, k-way merged.  Rids are
        unique, so ``(key, rid)`` is a total order and the run merge is
        identical to the serial side's one global sort."""
        name = self.stats.name

        def finalize(batches: list[Batch], sink: ExecutionMetrics):
            keys: list = []
            values: list[tuple] = []
            rids: list[Rid] = []
            stats = sink.stats_for(name)
            for batch in batches:
                stats.tuples_in += len(batch)
                keys.extend(batch.columns[position])
                values.extend(batch.value_tuples())
                rids.extend(batch.rids)
            m = len(keys)
            order = sorted(range(m), key=lambda i: (keys[i], rids[i]))
            return (
                [keys[i] for i in order],
                [values[i] for i in order],
                [rids[i] for i in order],
            )

        runs = []
        total = 0
        for run, sink in morsels.run_tasks(chain.tasks(finalize), self._dop):
            self.context.metrics.merge(sink)
            total += len(run[0])
            if run[0]:
                runs.append(run)
        if side.column_order() != key_name:
            # the serial comparison formula over the whole input, once
            self.context.metrics.charge_comparisons(
                int(total * max(1, math.log2(total or 1)))
            )
        keys = []
        values = []
        rids = []
        for key, value, rid in heapq.merge(
            *(zip(*run) for run in runs), key=lambda item: (item[0], item[2])
        ):
            keys.append(key)
            values.append(value)
            rids.append(rid)
        return keys, values, rids

    def morsel_chain(self) -> "MorselChain | None":
        if self._output is None:
            self._merge()
        values, rids = self._output  # type: ignore[misc]
        return MorselChain(
            _TupleSource(values, rids, self.schema(), self.stats.name)
        )

    def _merge(self) -> None:
        context = self.context
        left_keys, left_values, left_rids = self._collect(self.left, self.left_key)
        right_keys, right_values, right_rids = self._collect(
            self.right, self.right_key
        )
        out_values: list[tuple] = []
        out_rids: list[Rid] = []
        i = j = 0
        n_left, n_right = len(left_keys), len(right_keys)
        comparisons = 0
        pairs = 0
        while i < n_left and j < n_right:
            comparisons += 1
            lk = left_keys[i]
            rk = right_keys[j]
            if lk < rk:
                i += 1
            elif lk > rk:
                j += 1
            else:
                j_end = j
                while j_end < n_right and right_keys[j_end] == lk:
                    j_end += 1
                i_end = i
                while i_end < n_left and left_keys[i_end] == lk:
                    i_end += 1
                for a in range(i, i_end):
                    left_value, left_rid = left_values[a], left_rids[a]
                    for b in range(j, j_end):
                        out_values.append(left_value + right_values[b])
                        out_rids.append(left_rid + right_rids[b])
                pairs += (i_end - i) * (j_end - j)
                i, j = i_end, j_end
        context.metrics.charge_comparisons(comparisons)
        context.metrics.charge_join_pair(pairs)
        self._output = (out_values, out_rids)

    def _next_batch(self) -> Batch | None:
        if self._output is None:
            self._merge()
        values, rids = self._output  # type: ignore[misc]
        start = self._position
        if start >= len(values):
            return None
        end = min(start + BATCH_SIZE, len(values))
        self._position = end
        return Batch(self.schema(), rids[start:end], values=values[start:end])


class BatchNestedLoopJoin(_BatchBinaryJoin):
    """Classical nested-loop join, batched (inner side materialized).

    Outer-major output order, identical to the row
    :class:`~repro.execution.joins.NestedLoopJoin`."""

    kind = "batchNestLoop"

    def __init__(
        self,
        left: BatchOperator,
        right: BatchOperator,
        condition: BooleanPredicate | None,
    ):
        super().__init__(left, right)
        self.condition = condition
        self._inner: "tuple[list[tuple], list[Rid]] | None" = None
        self._evaluator: Evaluator | None = None

    def describe(self) -> str:
        name = self.condition.name if self.condition else "true"
        return f"batchNestLoop({name})"

    def _open(self) -> None:
        self._open_children()
        self._inner = None
        self._evaluator = (
            self.condition.compile(self.schema()) if self.condition else None
        )

    def _materialize_inner(self) -> None:
        values: list[tuple] = []
        rids: list[Rid] = []
        chain = self.right.morsel_chain() if self._dop > 1 else None
        if chain is not None:
            name = self.stats.name

            def finalize(batches: list[Batch], sink: ExecutionMetrics):
                stats = sink.stats_for(name)
                part_values: list[tuple] = []
                part_rids: list[Rid] = []
                for batch in batches:
                    stats.tuples_in += len(batch)
                    part_values.extend(batch.value_tuples())
                    part_rids.extend(batch.rids)
                return part_values, part_rids

            for (part_values, part_rids), sink in morsels.run_tasks(
                chain.tasks(finalize), self._dop
            ):
                self.context.metrics.merge(sink)
                values.extend(part_values)
                rids.extend(part_rids)
            self._inner = (values, rids)
            return
        for batch in self._drain(self.right):
            values.extend(batch.value_tuples())
            rids.extend(batch.rids)
        self._inner = (values, rids)

    def morsel_chain(self) -> "MorselChain | None":
        if self._inner is None:
            self._materialize_inner()
        chain = self.left.morsel_chain()
        if chain is None:
            return None
        inner_values, inner_rids = self._inner  # type: ignore[misc]
        evaluate = self._evaluator
        condition = self.condition
        schema = self.schema()
        name = self.stats.name

        def stage(batch: Batch, sink: ExecutionMetrics) -> Batch | None:
            sink.stats_for(name).tuples_in += len(batch)
            out_values: list[tuple] = []
            out_rids: list[Rid] = []
            pairs = len(batch) * len(inner_values)
            booleans = 0
            for outer_value, outer_rid in zip(batch.value_tuples(), batch.rids):
                for partner_value, partner_rid in zip(inner_values, inner_rids):
                    merged = outer_value + partner_value
                    if evaluate is not None:
                        booleans += 1
                        if not evaluate(merged):
                            continue
                    out_values.append(merged)
                    out_rids.append(outer_rid + partner_rid)
            if pairs:
                sink.charge_join_pair(pairs)
            if booleans:
                assert condition is not None
                sink.charge_boolean(booleans, cost=condition.cost)
            if not out_values:
                return None
            return _emit(Batch(schema, out_rids, values=out_values), name, sink)

        return chain.extended(_Stage(name, stage))

    def _next_batch(self) -> Batch | None:
        if self._inner is None:
            self._materialize_inner()
        inner_values, inner_rids = self._inner  # type: ignore[misc]
        context = self.context
        evaluate = self._evaluator
        condition = self.condition
        while True:
            batch = self.left.next_batch()
            if batch is None:
                return None
            self._record_input(len(batch))
            out_values: list[tuple] = []
            out_rids: list[Rid] = []
            pairs = len(batch) * len(inner_values)
            booleans = 0
            for outer_value, outer_rid in zip(batch.value_tuples(), batch.rids):
                for partner_value, partner_rid in zip(inner_values, inner_rids):
                    merged = outer_value + partner_value
                    if evaluate is not None:
                        booleans += 1
                        if not evaluate(merged):
                            continue
                    out_values.append(merged)
                    out_rids.append(outer_rid + partner_rid)
            if pairs:
                context.metrics.charge_join_pair(pairs)
            if booleans:
                assert condition is not None
                context.metrics.charge_boolean(booleans, cost=condition.cost)
            if out_values:
                return Batch(self.schema(), out_rids, values=out_values)


# ----------------------------------------------------------------------
# sort (the frontier of lowered traditional plans)
# ----------------------------------------------------------------------

class BatchSort(BatchOperator):
    """Blocking τ_F over batches: drain, evaluate every remaining ranking
    predicate as a score vector, argsort by ``(−F, rid)``, emit in rank
    order with the score vectors attached.

    Like the row :class:`~repro.execution.sort.Sort`, it keeps only a
    bounded top-k selection when a directly-enclosing λ_k announces its
    ``k`` via :meth:`notify_limit` (cursor plans strip the λ and therefore
    always get the full ordering).
    """

    kind = "batchSort"

    def __init__(self, child: BatchOperator, fetch_limit: int | None = None):
        super().__init__()
        self.child = child
        self.fetch_limit = fetch_limit
        self._ordered: "tuple[list, dict[str, list[float]], list[float]] | None" = None
        self._position = 0
        self._rows_kept = False

    def describe(self) -> str:
        if self.fetch_limit is not None:
            return f"batchSort(top {self.fetch_limit})"
        return "batchSort"

    def notify_limit(self, k: int) -> None:
        if self.fetch_limit is None:
            self.fetch_limit = k

    def children(self) -> tuple[BatchOperator, ...]:
        return (self.child,)

    def schema(self) -> Schema:
        return self.child.schema()

    def predicates(self) -> frozenset[str]:
        return frozenset(self.context.scoring.predicate_names)

    def bound_hint(self) -> float:
        if self._ordered is None:
            return self.context.scoring.max_possible()
        if self._position >= len(self._ordered[0]):
            return -math.inf
        return self._ordered[2][self._position]

    def _open(self) -> None:
        self.child.open(self.context)
        self._ordered = None
        self._position = 0

    def _materialize(self) -> None:
        if self._dop > 1 and self._parallel_materialize():
            return
        context = self.context
        scoring = context.scoring
        schema = self.child.schema()
        items: list = []  # Row objects or value tuples, kept per-source
        rids: list[Rid] = []
        rows: "list[Row] | None" = []
        scores: dict[str, list[float]] = {}
        for batch in self._drain(self.child):
            if rows is not None and batch.rows is not None:
                rows.extend(batch.rows)
            else:
                rows = None
            items.extend(batch.tuples())
            rids.extend(batch.rids)
            for name, vector in batch.scores.items():
                scores.setdefault(name, []).extend(vector)
        n = len(items)
        missing = [
            name
            for name in scoring.predicate_names
            if name not in scores or len(scores[name]) != n
        ]
        if missing:
            # One synthetic batch over the whole materialized input lets
            # the vector kernels (and the bulk python loop) score each
            # remaining predicate column-wise in a single pass.
            whole = Batch(
                schema,
                rids,
                rows=rows if rows is not None else None,
                values=None if rows is not None else items,
            )
            for name in missing:
                evaluate, cost = context.evaluators.entry(name, schema)
                kernel = vectors.ranking_kernel(scoring.predicate(name), schema)
                scores[name] = vectors.score_vector(kernel, evaluate, whole)
                context.metrics.charge_predicate(cost, n)
        names = scoring.predicate_names
        score_columns = [scores[name] for name in names]
        # Per-row F via the same upper_bound arithmetic as the row path, so
        # scores (and the sort order they induce) are bit-identical.
        bounds = [
            scoring.upper_bound(dict(zip(names, per_row)))
            for per_row in zip(*score_columns)
        ] if n else []
        k = self.fetch_limit
        if k is not None and k < n:
            context.metrics.charge_comparisons(int(n * max(1, math.log2(max(2, k)))))
            order = heapq.nsmallest(k, range(n), key=lambda i: (-bounds[i], rids[i]))
        else:
            context.metrics.charge_comparisons(int(n * max(1, math.log2(n or 1))))
            order = sorted(range(n), key=lambda i: (-bounds[i], rids[i]))
        carrier = rows if rows is not None else items
        self._ordered = (
            [(carrier[i], rids[i]) for i in order],
            {name: [scores[name][i] for i in order] for name in names},
            [bounds[i] for i in order],
        )
        self._rows_kept = rows is not None

    def _parallel_materialize(self) -> bool:
        """Per-morsel score + sort (+ top-k), k-way merged by the same
        ``(-F, rid)`` total order — identical output to the serial
        materialization.  Returns False when the child has no morsel
        decomposition (the caller falls back to the serial body)."""
        chain = self.child.morsel_chain()
        if chain is None:
            return False
        context = self.context
        scoring = context.scoring
        schema = self.child.schema()
        names = scoring.predicate_names
        # Resolve evaluators and kernels on the statement thread — the
        # evaluator cache mutates on first use and is not task-safe.
        prepared = {
            name: (
                *context.evaluators.entry(name, schema),
                vectors.ranking_kernel(scoring.predicate(name), schema),
            )
            for name in names
        }
        sort_name = self.stats.name
        k = self.fetch_limit

        def finalize(batches: list[Batch], sink: ExecutionMetrics):
            stats = sink.stats_for(sort_name)
            items: list = []
            rids: list[Rid] = []
            rows: "list[Row] | None" = []
            scores: dict[str, list[float]] = {}
            for batch in batches:
                stats.tuples_in += len(batch)
                if rows is not None and batch.rows is not None:
                    rows.extend(batch.rows)
                else:
                    rows = None
                items.extend(batch.tuples())
                rids.extend(batch.rids)
                for name, vector in batch.scores.items():
                    scores.setdefault(name, []).extend(vector)
            n = len(items)
            missing = [
                name
                for name in names
                if name not in scores or len(scores[name]) != n
            ]
            if missing and n:
                whole = Batch(
                    schema,
                    rids,
                    rows=rows if rows is not None else None,
                    values=None if rows is not None else items,
                )
                for name in missing:
                    evaluate, cost, kernel = prepared[name]
                    scores[name] = vectors.score_vector(kernel, evaluate, whole)
                    sink.charge_predicate(cost, n)
            elif missing:
                for name in missing:
                    scores[name] = []
            score_columns = [scores[name] for name in names]
            bounds = [
                scoring.upper_bound(dict(zip(names, per_row)))
                for per_row in zip(*score_columns)
            ] if n else []
            if k is not None and k < n:
                order = heapq.nsmallest(
                    k, range(n), key=lambda i: (-bounds[i], rids[i])
                )
            else:
                order = sorted(range(n), key=lambda i: (-bounds[i], rids[i]))
            run = [
                (
                    bounds[i],
                    rids[i],
                    items[i],
                    tuple(scores[name][i] for name in names),
                )
                for i in order
            ]
            return n, rows is not None, run

        total = 0
        rows_kept = True
        runs = []
        for (count, kept, run), sink in morsels.run_tasks(
            chain.tasks(finalize), self._dop
        ):
            context.metrics.merge(sink)
            total += count
            rows_kept = rows_kept and kept
            if run:
                runs.append(run)
        n = total
        # The serial comparison formulas over the whole input, charged once
        # — simulated cost stays identical to the serial sort.
        if k is not None and k < n:
            context.metrics.charge_comparisons(
                int(n * max(1, math.log2(max(2, k))))
            )
            limit = k
        else:
            context.metrics.charge_comparisons(int(n * max(1, math.log2(n or 1))))
            limit = n
        ordered: list[tuple] = []
        for entry in heapq.merge(*runs, key=lambda e: (-e[0], e[1])):
            if len(ordered) >= limit:
                break
            ordered.append(entry)
        # When every morsel carried base rows, items *are* those Row
        # objects (Batch.tuples returns rows when present), matching the
        # serial carrier choice in both representations.
        self._ordered = (
            [(item, rid) for __, rid, item, __ in ordered],
            {
                name: [per_row[position] for __, __, __, per_row in ordered]
                for position, name in enumerate(names)
            },
            [bound for bound, __, __, __ in ordered],
        )
        self._rows_kept = rows_kept
        return True

    def _next_batch(self) -> Batch | None:
        if self._ordered is None:
            self._materialize()
        ordered, score_vectors, __ = self._ordered  # type: ignore[misc]
        start = self._position
        if start >= len(ordered):
            return None
        end = min(start + BATCH_SIZE, len(ordered))
        self._position = end
        chunk = ordered[start:end]
        rids = [rid for __, rid in chunk]
        sliced_scores = {
            name: vector[start:end] for name, vector in score_vectors.items()
        }
        if self._rows_kept:
            return Batch(
                self.schema(),
                rids,
                rows=[item for item, __ in chunk],
                scores=sliced_scores,
            )
        return Batch(
            self.schema(),
            rids,
            values=[item for item, __ in chunk],
            scores=sliced_scores,
        )

    def _close(self) -> None:
        self.child.close()
        self._ordered = None


# ----------------------------------------------------------------------
# the frontier adapter
# ----------------------------------------------------------------------

class BatchToRow(PhysicalOperator):
    """Adapter from a batch segment back to the rank-aware iterator world.

    Sits exactly where a rank-aware consumer begins.  It pulls batches from
    the segment root and re-emits them one :class:`ScoredRow` at a time,
    preserving tuple order (hence rid tie-order), evaluated scores, and the
    ``bound()`` / ``predicates()`` contracts of the operator it replaces:
    ``F_φ`` until exhausted for an unranked segment, the next pending
    tuple's score for a segment topped by :class:`BatchSort`.

    Moves are *not* re-charged here — the segment root already charged its
    emitted tuples — so a lowered plan's ``tuples_moved`` stays comparable
    to its row-mode equivalent.

    **Frontier vectorization.**  A rank-aware consumer can push per-tuple
    predicate work *down into* the adapter, where it runs once per batch
    instead of once per ``next()``:

    * :meth:`request_prescore` — a directly-enclosing µ registers its
      ranking predicate; each incoming batch gets the predicate evaluated
      as one score vector (NumPy-vectorized when the
      :mod:`~repro.execution.vectors` backend allows, a tight bulk loop
      otherwise) before any tuple crosses into the row world.  µ's
      idempotent-input path then consumes the scores without re-evaluating.
      Only accepted while the segment is unranked (``P = φ``): prescored
      values ride along as extra score entries, and the adapter's
      :meth:`bound` / :meth:`predicates` contracts keep describing the
      *segment's* predicate set, so the consumer's thresholds stay sound
      (an unranked stream gives no per-tuple order information, prescored
      or not).
    * :meth:`request_prefilter` — a directly-enclosing σ registers its
      Boolean condition; batches are filtered columnar-side before
      conversion.  Membership-only, order-preserving, and charged here
      (same evaluation count the row filter would have charged).

    **Morsel-driven parallelism.**  At ``parallelism > 1`` the adapter
    asks the segment root for a :class:`MorselChain` and drives it as one
    task per morsel on the shared pool (:mod:`repro.execution.morsels`),
    gathering per-morsel ``ScoredRow`` lists **in morsel order** — the
    order-restoring gather that keeps parallel output byte-identical to
    serial execution.  Frontier prefilters/prescores and the row
    conversion run inside the tasks.  Segments without a decomposition
    (e.g. topped by :class:`BatchSort`, which instead parallelizes its
    own materialization) fall back to the serial pull path transparently.
    """

    kind = "batchSegment"

    def __init__(self, source: BatchOperator, parallelism: int = 1):
        super().__init__()
        self.source = source
        #: the segment's costed degree of parallelism (1 = serial); at
        #: DOP > 1 the segment runs as morsel tasks on the shared pool
        #: with an order-restoring gather here at the frontier
        self.parallelism = max(1, int(parallelism))
        source.set_parallelism(self.parallelism)
        self._pending: list[ScoredRow] = []
        self._position = 0
        self._exhausted = False
        self._prescore: list[str] = []
        self._prescore_kernels: dict[str, tuple] = {}
        self._prefilters: list[BooleanPredicate] = []
        self._prefilter_compiled: list[tuple] = []
        self._driver: "Iterator | None" = None
        self._driver_started = False
        #: trace spans (None when the query is untraced): the segment
        #: span lives from open to close; the dispatch span covers the
        #: parallel morsel drain
        self._segment_span = None
        self._dispatch_span = None

    def describe(self) -> str:
        return f"batch[{self.source.describe()}]"

    def notify_limit(self, k: int) -> None:
        self.source.notify_limit(k)

    def schema(self) -> Schema:
        return self.source.schema()

    def predicates(self) -> frozenset[str]:
        return self.source.predicates()

    def column_order(self) -> str | None:
        return self.source.column_order()

    # -- frontier vectorization hooks -----------------------------------
    def request_prescore(self, predicate_name: str) -> bool:
        """Register a ranking predicate for per-batch evaluation.

        Accepted only while the segment is unranked (``P = φ``) — above a
        :class:`BatchSort` frontier every predicate is already evaluated,
        and a non-empty ``P`` would make the extra score entries interfere
        with the descending-order contract.
        """
        if self.source.predicates():
            return False
        if predicate_name not in self._prescore:
            self._prescore.append(predicate_name)
            schema = self.source.schema()
            evaluate, cost = self.context.evaluators.entry(predicate_name, schema)
            kernel = vectors.ranking_kernel(
                self.context.scoring.predicate(predicate_name), schema
            )
            self._prescore_kernels[predicate_name] = (evaluate, cost, kernel)
        return True

    def request_prefilter(
        self, condition: BooleanPredicate, stats: OperatorStats | None = None
    ) -> bool:
        """Register a Boolean condition to apply columnar-side per batch.

        ``stats`` is the pushing operator's record: its ``tuples_in`` is
        charged here for every tuple the prefilter examines, so the σ
        node's actual-input cardinality reads the same whether or not the
        condition was pushed down.
        """
        schema = self.source.schema()
        self._prefilters.append(condition)
        self._prefilter_compiled.append(
            (
                condition,
                condition.compile(schema),
                vectors.boolean_kernel(condition, schema),
                stats,
            )
        )
        return True

    def _prepare_batch(self, batch: Batch) -> Batch:
        """Apply registered prefilters and prescores to an incoming batch."""
        metrics = self.context.metrics
        for condition, evaluate, kernel, stats in self._prefilter_compiled:
            n = len(batch)
            if not n:
                break
            if stats is not None:
                stats.tuples_in += n
            metrics.charge_boolean(n, cost=condition.cost)
            keep = vectors.keep_indices(kernel, evaluate, batch)
            if len(keep) != n:
                batch = batch.select(keep)
        n = len(batch)
        if n:
            for name in self._prescore:
                if name in batch.scores:
                    continue  # already evaluated below (e.g. by BatchSort)
                evaluate, cost, kernel = self._prescore_kernels[name]
                batch.scores[name] = vectors.score_vector(kernel, evaluate, batch)
                metrics.charge_predicate(cost, n)
        return batch

    def bound(self) -> float:
        if self._position < len(self._pending):
            scored = self._pending[self._position]
            if self._prescore:
                # Prescored entries are a consumer-side cache, not part of
                # this operator's evaluated set P: the bound must keep
                # describing F_P (= F_φ here), because batch order carries
                # no information about the prescored predicate.
                own = self.predicates()
                return self.context.scoring.upper_bound(
                    {n: v for n, v in scored.scores.items() if n in own}
                )
            return self.context.upper_bound(scored)
        if self._exhausted:
            return -math.inf
        return self.source.bound_hint()

    def next(self) -> ScoredRow | None:
        # Overridden from PhysicalOperator: count tuples out but skip the
        # per-tuple move charge (see class docstring).
        if not self._opened:
            raise RuntimeError(f"{self.describe()}: next() before open()")
        scored = self._next()
        if scored is not None:
            assert self._stats is not None
            self._stats.tuples_out += 1
        return scored

    def _open(self) -> None:
        self.source.open(self.context)
        self._pending = []
        self._position = 0
        self._exhausted = False
        self._prescore = []
        self._prescore_kernels = {}
        self._prefilters = []
        self._prefilter_compiled = []
        self._driver = None
        self._driver_started = False
        self._dispatch_span = None
        tracer = getattr(self.context, "tracer", None)
        self._segment_span = (
            tracer.open_span(
                "batch_segment",
                segment=self.source.describe(),
                dop=self.parallelism,
            )
            if tracer is not None
            else None
        )

    def _start_driver(self) -> "Iterator | None":
        """Build the parallel morsel driver, or None for the serial path.

        Runs at the first ``next()`` — after the consumer registered its
        prescores/prefilters and λ_k announced its limit — so the morsel
        stages capture the final frontier configuration.  The driver
        yields ``(scored_rows, sink)`` per morsel **in morsel order**
        (the order-restoring gather), with at most ``parallelism``
        morsels in flight.
        """
        if self.parallelism <= 1:
            return None
        chain = self.source.morsel_chain()
        if chain is None:
            return None
        name = self.stats.name
        prefilters = [
            (
                condition,
                evaluate,
                kernel,
                stats.name if stats is not None else None,
            )
            for condition, evaluate, kernel, stats in self._prefilter_compiled
        ]
        prescore = list(self._prescore)
        prescore_kernels = dict(self._prescore_kernels)

        def finalize(batches: list[Batch], sink: ExecutionMetrics):
            # The morsel-side twin of _record_input + _prepare_batch +
            # to_scored_rows, charging the private sink under the same
            # operator names the serial path uses.
            started = time.perf_counter()
            stats = sink.stats_for(name)
            scored: list[ScoredRow] = []
            for batch in batches:
                stats.tuples_in += len(batch)
                for condition, evaluate, kernel, stats_name in prefilters:
                    n = len(batch)
                    if not n:
                        break
                    if stats_name is not None:
                        sink.stats_for(stats_name).tuples_in += n
                    sink.charge_boolean(n, cost=condition.cost)
                    keep = vectors.keep_indices(kernel, evaluate, batch)
                    if len(keep) != n:
                        batch = batch.select(keep)
                n = len(batch)
                if n:
                    for predicate_name in prescore:
                        if predicate_name in batch.scores:
                            continue
                        evaluate, cost, kernel = prescore_kernels[predicate_name]
                        batch.scores[predicate_name] = vectors.score_vector(
                            kernel, evaluate, batch
                        )
                        sink.charge_predicate(cost, n)
                    scored.extend(batch.to_scored_rows())
            stats.wall_seconds += time.perf_counter() - started
            return scored

        tasks = chain.tasks(finalize)
        if self._segment_span is not None:
            from ..observe.trace import Span

            dispatch = Span("morsel_dispatch")
            dispatch.attrs.update(
                morsels=len(tasks),
                dop=self.parallelism,
                backend=morsels.parallel_backend(),
            )
            self._segment_span.children.append(dispatch)
            self._dispatch_span = dispatch
        return morsels.run_tasks(tasks, self.parallelism)

    def _next(self) -> ScoredRow | None:
        while self._position >= len(self._pending):
            if self._exhausted:
                return None
            if not self._driver_started:
                self._driver_started = True
                self._driver = self._start_driver()
            if self._driver is not None:
                step = next(self._driver, None)
                if step is None:
                    self._exhausted = True
                    if self._dispatch_span is not None:
                        self._dispatch_span.finish()
                    return None
                scored, sink = step
                self.context.metrics.merge(sink)
                self._pending = scored
                self._position = 0
                continue
            started = time.perf_counter()
            batch = self.source.next_batch()
            if batch is None:
                self._exhausted = True
                self.stats.wall_seconds += time.perf_counter() - started
                return None
            self._record_input(len(batch))
            batch = self._prepare_batch(batch)
            self._pending = batch.to_scored_rows()
            self._position = 0
            self.stats.wall_seconds += time.perf_counter() - started
        scored = self._pending[self._position]
        self._position += 1
        return scored

    def _close(self) -> None:
        self.source.close()
        self._pending = []
        if self._dispatch_span is not None:
            self._dispatch_span.finish()
        if self._segment_span is not None:
            self._segment_span.finish()
            self._segment_span = None
        self._driver = None
