"""Scan operators: the leaves of physical plans.

* :class:`SeqScan` — heap order; no predicates evaluated (``P = φ``), so all
  tuples share the same maximal-possible score and any order satisfies
  Definition 1.
* :class:`RankScan` — the paper's ``idxScan_p``: reads a
  :class:`~repro.storage.index.RankIndex` in descending predicate-score
  order.  The index stores precomputed scores, so a rank-scan contributes
  ``p`` to the evaluated set *without charging predicate evaluations* at
  query time — exactly the advantage of a PostgreSQL expression index.
* :class:`ColumnOrderScan` — an index scan in column order (the classic
  "interesting order" for sort-merge joins); rank-wise it is like SeqScan
  (``P = φ``).
* :class:`ScanSelect` — scan-based selection via a
  :class:`~repro.storage.index.MultiKeyIndex`: rows satisfying a Boolean
  attribute, in descending predicate-score order (§4.2).
"""

from __future__ import annotations

import math
from typing import Iterator

from ..algebra.rank_relation import ScoredRow
from ..storage.index import ColumnIndex, MultiKeyIndex, RankIndex
from ..storage.row import Row
from ..storage.schema import Schema
from .iterator import PhysicalOperator


def sorted_column_order(table, column: str, metrics) -> list[Row]:
    """The table's rows in ascending ``(column value, rid)`` order — the
    exact sequence a :class:`~repro.storage.index.ColumnIndex` scan would
    deliver — built by a transient sort whose comparison cost is charged to
    ``metrics``.  Shared by the row and batch column-order scans as their
    index-less fallback."""
    position = table.schema.index_of(column)
    rows = sorted(table.rows(), key=lambda r: (r[position], r.rid))
    n = len(rows)
    metrics.charge_comparisons(int(n * max(1, math.log2(n or 1))))
    return rows


class SeqScan(PhysicalOperator):
    """Sequential scan of a heap table (``P = φ``)."""

    kind = "seqScan"

    def __init__(self, table_name: str):
        super().__init__()
        self.table_name = table_name
        self._schema: Schema | None = None
        self._rows: Iterator[Row] | None = None
        self._exhausted = False

    def describe(self) -> str:
        return f"seqScan({self.table_name})"

    def schema(self) -> Schema:
        if self._schema is None:
            raise RuntimeError("scan not opened")
        return self._schema

    def predicates(self) -> frozenset[str]:
        return frozenset()

    def bound(self) -> float:
        if self._exhausted:
            return -math.inf
        return self.context.scoring.max_possible()

    def _open(self) -> None:
        table = self.context.catalog.table(self.table_name)
        self._schema = table.schema
        self._rows = table.rows()
        self._exhausted = False

    def _next(self) -> ScoredRow | None:
        assert self._rows is not None
        row = next(self._rows, None)
        if row is None:
            self._exhausted = True
            return None
        self.context.metrics.charge_scan()
        return ScoredRow(row, {})

    def _close(self) -> None:
        self._rows = None


class RankScan(PhysicalOperator):
    """Index scan in descending score order of one ranking predicate."""

    kind = "idxScan"

    def __init__(self, table_name: str, predicate_name: str):
        super().__init__()
        self.table_name = table_name
        self.predicate_name = predicate_name
        self._schema: Schema | None = None
        self._entries: Iterator[tuple[float, Row]] | None = None
        self._bound = math.inf
        self._exhausted = False

    def describe(self) -> str:
        return f"idxScan_{self.predicate_name}({self.table_name})"

    def schema(self) -> Schema:
        if self._schema is None:
            raise RuntimeError("scan not opened")
        return self._schema

    def predicates(self) -> frozenset[str]:
        return frozenset({self.predicate_name})

    def bound(self) -> float:
        if self._exhausted:
            return -math.inf
        return min(self._bound, self.context.scoring.max_possible())

    def _open(self) -> None:
        table = self.context.catalog.table(self.table_name)
        index = table.find_index(key=self.predicate_name)
        if not isinstance(index, RankIndex):
            raise RuntimeError(
                f"no rank index on {self.table_name!r} for predicate "
                f"{self.predicate_name!r}"
            )
        self._schema = table.schema
        self._entries = index.scan_by_score()
        self._bound = math.inf
        self._exhausted = False

    def _next(self) -> ScoredRow | None:
        assert self._entries is not None
        entry = next(self._entries, None)
        if entry is None:
            self._exhausted = True
            return None
        score, row = entry
        self.context.metrics.charge_scan()
        scored = ScoredRow(row, {self.predicate_name: score})
        # Future tuples have predicate score <= this one.
        self._bound = self.context.scoring.upper_bound(scored.scores)
        return scored

    def _close(self) -> None:
        self._entries = None


class ColumnOrderScan(PhysicalOperator):
    """Index scan in ascending column order (interesting order; ``P = φ``)."""

    kind = "idxScanCol"

    def __init__(self, table_name: str, column: str):
        super().__init__()
        self.table_name = table_name
        self.column = column
        self._schema: Schema | None = None
        self._rows: Iterator[Row] | None = None
        self._exhausted = False

    def describe(self) -> str:
        return f"idxScan_{self.column}({self.table_name})"

    def schema(self) -> Schema:
        if self._schema is None:
            raise RuntimeError("scan not opened")
        return self._schema

    def predicates(self) -> frozenset[str]:
        return frozenset()

    def bound(self) -> float:
        if self._exhausted:
            return -math.inf
        return self.context.scoring.max_possible()

    def column_order(self) -> str | None:
        """The column this scan is sorted on (for merge joins)."""
        return self.column

    def _open(self) -> None:
        table = self.context.catalog.table(self.table_name)
        self._schema = table.schema
        index = table.find_index(key=self.column)
        if isinstance(index, ColumnIndex):
            self._rows = index.scan_ascending()
        else:
            # No column index (dropped or never built): fall back to a
            # transient sort of the heap in (column, rid) order — the same
            # sequence the index would deliver — charging the sort's
            # comparison cost so the plan survives instead of erroring.
            self._rows = iter(
                sorted_column_order(table, self.column, self.context.metrics)
            )
        self._exhausted = False

    def _next(self) -> ScoredRow | None:
        assert self._rows is not None
        row = next(self._rows, None)
        if row is None:
            self._exhausted = True
            return None
        self.context.metrics.charge_scan()
        return ScoredRow(row, {})

    def _close(self) -> None:
        self._rows = None


class ScanSelect(PhysicalOperator):
    """Scan-based selection: multi-key index scan filtered on a Boolean
    attribute, emitting in descending predicate-score order (§4.2)."""

    kind = "scanSelect"

    def __init__(self, table_name: str, bool_column: str, predicate_name: str):
        super().__init__()
        self.table_name = table_name
        self.bool_column = bool_column
        self.predicate_name = predicate_name
        self._schema: Schema | None = None
        self._entries: Iterator[tuple[float, Row]] | None = None
        self._bound = math.inf
        self._exhausted = False

    def describe(self) -> str:
        return (
            f"scanSelect_{self.predicate_name}"
            f"[{self.bool_column}]({self.table_name})"
        )

    def schema(self) -> Schema:
        if self._schema is None:
            raise RuntimeError("scan not opened")
        return self._schema

    def predicates(self) -> frozenset[str]:
        return frozenset({self.predicate_name})

    def bound(self) -> float:
        if self._exhausted:
            return -math.inf
        return min(self._bound, self.context.scoring.max_possible())

    def _open(self) -> None:
        table = self.context.catalog.table(self.table_name)
        index = None
        for candidate in table.indexes.values():
            if (
                isinstance(candidate, MultiKeyIndex)
                and candidate.bool_column == self.bool_column
                and candidate.predicate_name == self.predicate_name
            ):
                index = candidate
                break
        if index is None:
            raise RuntimeError(
                f"no multi-key index ({self.bool_column}, {self.predicate_name}) "
                f"on {self.table_name!r}"
            )
        self._schema = table.schema
        self._entries = index.scan_matching(True)
        self._bound = math.inf
        self._exhausted = False

    def _next(self) -> ScoredRow | None:
        assert self._entries is not None
        entry = next(self._entries, None)
        if entry is None:
            self._exhausted = True
            return None
        score, row = entry
        self.context.metrics.charge_scan()
        scored = ScoredRow(row, {self.predicate_name: score})
        self._bound = self.context.scoring.upper_bound(scored.scores)
        return scored

    def _close(self) -> None:
        self._entries = None
