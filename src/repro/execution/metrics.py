"""Execution metrics: the simulated-cost substrate.

The paper measures wall-clock seconds on 2005 hardware inside PostgreSQL;
the *shape* of every reported curve is determined by operation counts —
tuples scanned, predicate evaluations (weighted by per-predicate cost),
join pairs examined, tuples moved between operators.  Every physical
operator charges an :class:`ExecutionMetrics` instance, and benchmarks
report both wall time and the deterministic :attr:`simulated_cost` so the
cost-dominated regimes (e.g., Figure 12(b), predicate cost 0→1000)
reproduce exactly.

Per-operator input/output cardinalities are also recorded
(:class:`OperatorStats`) — these are the "real output cardinalities" of
Figure 13 and the selectivity observations of §4.1.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Cost-unit weights of the simulated cost model.  A heap/index tuple read is
#: the unit; moving a tuple through an operator boundary and examining a join
#: pair are fractions of it; ranking-predicate evaluations contribute their
#: own per-predicate cost directly (the experiments sweep it 0..1000).
SCAN_UNIT = 1.0
MOVE_UNIT = 0.05
JOIN_PAIR_UNIT = 0.2
BOOLEAN_EVAL_UNIT = 0.1
COMPARE_UNIT = 0.01


@dataclass
class OperatorStats:
    """Input/output cardinalities of one operator instance in a plan."""

    name: str
    tuples_in: int = 0
    tuples_out: int = 0
    #: wall-clock seconds attributed to this operator.  Serial batch
    #: operators record *inclusive* time (their ``next_batch`` including
    #: children); parallel morsel stages record the stage's summed busy
    #: time across workers, which can exceed elapsed time — that is the
    #: point: a DOP-4 node shows ~4× busy per elapsed second.
    wall_seconds: float = 0.0

    @property
    def selectivity(self) -> float:
        """Observed output/input ratio (1.0 for sources with no input)."""
        if self.tuples_in == 0:
            return 1.0
        return self.tuples_out / self.tuples_in


@dataclass
class ExecutionMetrics:
    """Counters accumulated while a physical plan runs."""

    tuples_scanned: int = 0
    tuples_moved: int = 0
    predicate_evaluations: int = 0
    predicate_cost_units: float = 0.0
    boolean_evaluations: int = 0
    boolean_cost_units: float = 0.0
    join_pairs_examined: int = 0
    comparisons: int = 0
    operators: dict[str, OperatorStats] = field(default_factory=dict)

    def charge_scan(self, count: int = 1) -> None:
        self.tuples_scanned += count

    def charge_move(self, count: int = 1) -> None:
        self.tuples_moved += count

    def charge_predicate(self, cost: float, count: int = 1) -> None:
        self.predicate_evaluations += count
        self.predicate_cost_units += cost * count

    def charge_boolean(self, count: int = 1, cost: float = BOOLEAN_EVAL_UNIT) -> None:
        self.boolean_evaluations += count
        self.boolean_cost_units += cost * count

    def charge_join_pair(self, count: int = 1) -> None:
        self.join_pairs_examined += count

    def charge_comparisons(self, count: int = 1) -> None:
        self.comparisons += count

    def stats_for(self, operator_name: str) -> OperatorStats:
        """The (created-on-demand) per-operator stats record."""
        if operator_name not in self.operators:
            self.operators[operator_name] = OperatorStats(operator_name)
        return self.operators[operator_name]

    def merge(self, other: "ExecutionMetrics") -> None:
        """Fold another metrics object into this one.

        The parallel execution path gives every morsel task its own
        private sink (workers never touch shared counters) and merges the
        sink on the consuming thread when the morsel's result is gathered
        — so parallel totals equal serial totals exactly, per counter and
        per operator.  Per-operator records match by name: tasks charge
        ``stats_for(name)`` with the same unique names the serial
        operators registered in the statement's metrics.
        """
        self.tuples_scanned += other.tuples_scanned
        self.tuples_moved += other.tuples_moved
        self.predicate_evaluations += other.predicate_evaluations
        self.predicate_cost_units += other.predicate_cost_units
        self.boolean_evaluations += other.boolean_evaluations
        self.boolean_cost_units += other.boolean_cost_units
        self.join_pairs_examined += other.join_pairs_examined
        self.comparisons += other.comparisons
        for name, stats in other.operators.items():
            mine = self.stats_for(name)
            mine.tuples_in += stats.tuples_in
            mine.tuples_out += stats.tuples_out
            mine.wall_seconds += stats.wall_seconds

    @property
    def simulated_cost(self) -> float:
        """Deterministic total cost in abstract units (see module docstring)."""
        return (
            self.tuples_scanned * SCAN_UNIT
            + self.tuples_moved * MOVE_UNIT
            + self.join_pairs_examined * JOIN_PAIR_UNIT
            + self.boolean_cost_units
            + self.comparisons * COMPARE_UNIT
            + self.predicate_cost_units
        )

    def summary(self) -> dict[str, float]:
        """A flat dict of the headline counters (for reports/benchmarks)."""
        return {
            "tuples_scanned": self.tuples_scanned,
            "tuples_moved": self.tuples_moved,
            "predicate_evaluations": self.predicate_evaluations,
            "predicate_cost_units": self.predicate_cost_units,
            "boolean_evaluations": self.boolean_evaluations,
            "boolean_cost_units": self.boolean_cost_units,
            "join_pairs_examined": self.join_pairs_examined,
            "comparisons": self.comparisons,
            "simulated_cost": self.simulated_cost,
        }
