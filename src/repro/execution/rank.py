"""The µ (rank) physical operator.

``Mu`` evaluates one additional ranking predicate ``p`` on its input stream
(ordered by ``F_P``) and emits in ``F_{P∪{p}}`` order.  It buffers tuples in
a ranking queue and releases the top tuple ``t`` once no future input tuple
can beat it: ``F_{P∪{p}}[t''] ≤ F_P[t''] ≤ threshold`` for every future
``t''`` (§4.1).  This is the single-predicate special case of the MPro/Upper
scheduling algorithms the paper builds on.

Two threshold modes are supported:

* ``"drawn"`` (default, paper-faithful): the threshold is ``F_P[t']`` of the
  *last tuple drawn* from the input — exactly the emission rule of §4.1
  ("the top tuple t in the queue can be output when a t' is drawn from x
  such that F_{P∪{p}}[t] ≥ F_P[t']").  Reproduces the tuple-flow counts of
  Figure 6 exactly.
* ``"live"``: the threshold is the producer's :meth:`bound` — a tighter
  bound that also accounts for the producer's own buffered queue, emitting
  earlier and drawing fewer input tuples.  An optimization beyond the paper,
  kept for the ablation benchmarks.
"""

from __future__ import annotations

import math

from ..algebra.rank_relation import ScoredRow
from ..storage.schema import Schema
from .iterator import PhysicalOperator, RankingQueue

THRESHOLD_MODES = ("drawn", "live")


class Mu(PhysicalOperator):
    """Rank operator µ_p: evaluate predicate ``p``, reorder incrementally."""

    kind = "rank"

    def __init__(
        self,
        child: PhysicalOperator,
        predicate_name: str,
        threshold_mode: str = "drawn",
    ):
        super().__init__()
        if threshold_mode not in THRESHOLD_MODES:
            raise ValueError(f"unknown threshold mode: {threshold_mode!r}")
        self.child = child
        self.predicate_name = predicate_name
        self.threshold_mode = threshold_mode
        self._queue = RankingQueue()
        self._input_exhausted = False
        self._last_input_bound = math.inf
        #: whether the child (a BatchToRow frontier) evaluates this µ's
        #: predicate vectorized per batch before tuples cross into the
        #: row world (see PhysicalOperator.request_prescore)
        self._prescored = False

    def describe(self) -> str:
        return f"rank_{self.predicate_name}"

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.child,)

    def schema(self) -> Schema:
        return self.child.schema()

    def predicates(self) -> frozenset[str]:
        return self.child.predicates() | {self.predicate_name}

    def bound(self) -> float:
        # Future outputs are either buffered (<= queue top) or derived from
        # future input tuples, whose F_P cannot exceed the input threshold.
        if self._input_exhausted:
            return self._queue.peek_bound()
        return max(self._queue.peek_bound(), self._input_threshold())

    def _input_threshold(self) -> float:
        if self.threshold_mode == "live":
            return self.child.bound()
        return min(self._last_input_bound, self.context.scoring.max_possible())

    def _open(self) -> None:
        self.child.open(self.context)
        self._queue = RankingQueue()
        self._input_exhausted = False
        self._last_input_bound = math.inf
        # Vectorized frontier: when the input is a BatchToRow adapter over
        # an unranked (P = φ) segment, have it evaluate this µ's predicate
        # columnar per batch — the idempotent-input path below then reads
        # the score instead of re-evaluating per tuple.
        self._prescored = False
        if self.predicate_name not in self.child.predicates():
            request = getattr(self.child, "request_prescore", None)
            if request is not None:
                self._prescored = bool(request(self.predicate_name))

    def _next(self) -> ScoredRow | None:
        context = self.context
        schema = self.child.schema()
        while True:
            threshold = -math.inf if self._input_exhausted else self._input_threshold()
            if len(self._queue) and self._queue.peek_bound() >= threshold:
                return self._queue.pop()
            if self._input_exhausted:
                if len(self._queue):
                    return self._queue.pop()
                return None
            scored = self.child.next()
            if scored is None:
                self._input_exhausted = True
                continue
            self._record_input()
            # The drawn tuple's F_P (before applying p) bounds every future
            # input tuple, because the input arrives in F_P order.
            if self._prescored:
                # Prescoring only happens over a P = φ frontier: the score
                # riding along with the drawn tuple is a cache, not order
                # information, so the input threshold stays F_φ — exactly
                # what the row path would compute from the scoreless tuple.
                self._last_input_bound = context.scoring.max_possible()
            else:
                self._last_input_bound = context.upper_bound(scored)
            if self.predicate_name in scored.scores:
                # Predicate already evaluated below (idempotent µ).
                updated = scored
            else:
                score = context.evaluate_predicate(
                    self.predicate_name, scored.row, schema
                )
                updated = scored.with_score(self.predicate_name, score)
            self._queue.push(context.upper_bound(updated), updated)

    def _close(self) -> None:
        self.child.close()
        self._queue = RankingQueue()
