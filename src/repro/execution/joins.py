"""Join operators: rank-aware (HRJN, NRJN) and classical baselines.

**Rank-aware joins** implement the paper's §4.2 choices:

* :class:`HRJN` — hash rank-join, after Ilyas et al. [22, 23]: a symmetric
  (pipelined) hash join over an equi-join condition that emits join results
  in descending combined upper-bound order.
* :class:`NRJN` — nested-loop rank-join: same threshold logic, but buffers
  plain lists and evaluates an arbitrary Boolean join condition on every
  pair, so it supports non-equi rank joins at quadratic pairing cost.

Both inputs arrive in their own ``F_P`` order.  A join result built from a
*future* tuple of side X can score at most the ``F_P`` of the last tuple
drawn from X (substituting an actual score for a maximal one can only lower
a monotone F), so the emission threshold is the max of the two sides'
last-drawn bounds — the rank-join "corner bound".  Like
:class:`~repro.execution.rank.Mu`, the joins support a ``"drawn"``
(paper-faithful, default) and a ``"live"`` threshold mode.

**Classical joins** (used by traditional materialize-then-sort plans and as
baselines): :class:`NestedLoopJoin`, :class:`SortMergeJoin`,
:class:`HashJoin`.  They do *not* emit in score order; they are only valid
below a blocking :class:`~repro.execution.sort.Sort`, or when no ranking
predicates have been evaluated below them (``P = φ``, all upper bounds
equal, so any order vacuously satisfies Definition 1).
"""

from __future__ import annotations

import math
from typing import Any

from ..algebra.expressions import Evaluator
from ..algebra.predicates import BooleanPredicate
from ..algebra.rank_relation import ScoredRow
from ..storage.schema import Schema
from .iterator import PhysicalOperator, RankingQueue

THRESHOLD_MODES = ("drawn", "live")


class _BinaryJoin(PhysicalOperator):
    """Shared plumbing for binary joins."""

    def __init__(self, left: PhysicalOperator, right: PhysicalOperator):
        super().__init__()
        self.left = left
        self.right = right
        self._schema: Schema | None = None

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.left, self.right)

    def schema(self) -> Schema:
        if self._schema is None:
            raise RuntimeError("join not opened")
        return self._schema

    def predicates(self) -> frozenset[str]:
        return self.left.predicates() | self.right.predicates()

    def _open_children(self) -> None:
        self.left.open(self.context)
        self.right.open(self.context)
        self._schema = self.left.schema().concat(self.right.schema())

    def _close(self) -> None:
        self.left.close()
        self.right.close()


class _RankJoin(_BinaryJoin):
    """Common machinery of the rank-aware joins: symmetric pulling, a
    ranking queue, and corner-bound emission thresholds."""

    def __init__(
        self,
        left: PhysicalOperator,
        right: PhysicalOperator,
        threshold_mode: str = "drawn",
    ):
        super().__init__(left, right)
        if threshold_mode not in THRESHOLD_MODES:
            raise ValueError(f"unknown threshold mode: {threshold_mode!r}")
        self.threshold_mode = threshold_mode
        self._queue = RankingQueue()
        self._left_done = False
        self._right_done = False
        self._left_last = math.inf
        self._right_last = math.inf

    def bound(self) -> float:
        candidates = [self._queue.peek_bound()]
        if not self._left_done:
            candidates.append(self._side_bound(left=True))
        if not self._right_done:
            candidates.append(self._side_bound(left=False))
        return max(candidates)

    def _side_bound(self, left: bool) -> float:
        if self.threshold_mode == "live":
            return (self.left if left else self.right).bound()
        last = self._left_last if left else self._right_last
        return min(last, self.context.scoring.max_possible())

    def _threshold(self) -> float:
        candidates = []
        if not self._left_done:
            candidates.append(self._side_bound(left=True))
        if not self._right_done:
            candidates.append(self._side_bound(left=False))
        if not candidates:
            return -math.inf
        return max(candidates)

    def _open_rank_join(self) -> None:
        self._open_children()
        self._queue = RankingQueue()
        self._left_done = False
        self._right_done = False
        self._left_last = math.inf
        self._right_last = math.inf

    def _next(self) -> ScoredRow | None:
        while True:
            threshold = self._threshold()
            if len(self._queue) and self._queue.peek_bound() >= threshold:
                return self._queue.pop()
            if self._left_done and self._right_done:
                if len(self._queue):
                    return self._queue.pop()
                return None
            self._advance_one_input()

    def _choose_left(self) -> bool:
        if self._left_done:
            return False
        if self._right_done:
            return True
        # Descend the input whose corner bound is larger: it constrains the
        # emission threshold, so advancing it unblocks the queue sooner.
        return self._side_bound(left=True) >= self._side_bound(left=False)

    def _advance_one_input(self) -> None:
        pull_left = self._choose_left()
        side = self.left if pull_left else self.right
        scored = side.next()
        if scored is None:
            if pull_left:
                self._left_done = True
            else:
                self._right_done = True
            return
        self._record_input()
        input_bound = self.context.upper_bound(scored)
        if pull_left:
            self._left_last = input_bound
        else:
            self._right_last = input_bound
        self._absorb(scored, from_left=pull_left)

    def _absorb(self, scored: ScoredRow, from_left: bool) -> None:
        """Store the new tuple and enqueue any join results it completes."""
        raise NotImplementedError


class HRJN(_RankJoin):
    """Hash rank-join (pipelined symmetric hash join, score-ordered output).

    ``left_key``/``right_key`` name the equi-join columns of the two inputs.
    """

    kind = "HRJN"

    def __init__(
        self,
        left: PhysicalOperator,
        right: PhysicalOperator,
        left_key: str,
        right_key: str,
        threshold_mode: str = "drawn",
    ):
        super().__init__(left, right, threshold_mode)
        self.left_key = left_key
        self.right_key = right_key
        self._left_hash: dict[Any, list[ScoredRow]] = {}
        self._right_hash: dict[Any, list[ScoredRow]] = {}
        self._left_position = -1
        self._right_position = -1

    def describe(self) -> str:
        return f"HRJN({self.left_key}={self.right_key})"

    def _open(self) -> None:
        self._open_rank_join()
        self._left_hash = {}
        self._right_hash = {}
        self._left_position = self.left.schema().index_of(self.left_key)
        self._right_position = self.right.schema().index_of(self.right_key)

    def _absorb(self, scored: ScoredRow, from_left: bool) -> None:
        context = self.context
        if from_left:
            key = scored.row[self._left_position]
            self._left_hash.setdefault(key, []).append(scored)
            partners = self._right_hash.get(key, ())
            for partner in partners:
                context.metrics.charge_join_pair()
                merged = scored.merge(partner)
                self._queue.push(context.upper_bound(merged), merged)
        else:
            key = scored.row[self._right_position]
            self._right_hash.setdefault(key, []).append(scored)
            partners = self._left_hash.get(key, ())
            for partner in partners:
                context.metrics.charge_join_pair()
                merged = partner.merge(scored)
                self._queue.push(context.upper_bound(merged), merged)


class NRJN(_RankJoin):
    """Nested-loop rank-join: arbitrary Boolean condition, ranked output."""

    kind = "NRJN"

    def __init__(
        self,
        left: PhysicalOperator,
        right: PhysicalOperator,
        condition: BooleanPredicate,
        threshold_mode: str = "drawn",
    ):
        super().__init__(left, right, threshold_mode)
        self.condition = condition
        self._left_seen: list[ScoredRow] = []
        self._right_seen: list[ScoredRow] = []
        self._evaluator: Evaluator | None = None

    def describe(self) -> str:
        return f"NRJN({self.condition.name})"

    def _open(self) -> None:
        self._open_rank_join()
        self._left_seen = []
        self._right_seen = []
        self._evaluator = self.condition.compile(self.schema())

    def _absorb(self, scored: ScoredRow, from_left: bool) -> None:
        assert self._evaluator is not None
        context = self.context
        if from_left:
            self._left_seen.append(scored)
            pairs = ((scored, partner) for partner in self._right_seen)
        else:
            self._right_seen.append(scored)
            pairs = ((partner, scored) for partner in self._left_seen)
        for left_scored, right_scored in pairs:
            context.metrics.charge_join_pair()
            context.metrics.charge_boolean(cost=self.condition.cost)
            merged = left_scored.merge(right_scored)
            if self._evaluator(merged.row):
                self._queue.push(context.upper_bound(merged), merged)


class NestedLoopJoin(_BinaryJoin):
    """Classical nested-loop join (inner side materialized; blocking inner).

    Output order: outer-major — *not* score-ordered.
    """

    kind = "nestLoop"

    def __init__(
        self,
        left: PhysicalOperator,
        right: PhysicalOperator,
        condition: BooleanPredicate | None,
    ):
        super().__init__(left, right)
        self.condition = condition
        self._inner: list[ScoredRow] | None = None
        self._outer_current: ScoredRow | None = None
        self._inner_position = 0
        self._evaluator: Evaluator | None = None
        self._exhausted = False

    def describe(self) -> str:
        name = self.condition.name if self.condition else "true"
        return f"nestLoop({name})"

    def bound(self) -> float:
        if self._exhausted:
            return -math.inf
        return self.context.scoring.max_possible()

    def _open(self) -> None:
        self._open_children()
        self._inner = None
        self._outer_current = None
        self._inner_position = 0
        self._exhausted = False
        self._evaluator = (
            self.condition.compile(self.schema()) if self.condition else None
        )

    def _materialize_inner(self) -> None:
        inner: list[ScoredRow] = []
        while True:
            scored = self.right.next()
            if scored is None:
                break
            self._record_input()
            inner.append(scored)
        self._inner = inner

    def _next(self) -> ScoredRow | None:
        if self._inner is None:
            self._materialize_inner()
        assert self._inner is not None
        context = self.context
        while True:
            if self._outer_current is None:
                self._outer_current = self.left.next()
                if self._outer_current is None:
                    self._exhausted = True
                    return None
                self._record_input()
                self._inner_position = 0
            while self._inner_position < len(self._inner):
                partner = self._inner[self._inner_position]
                self._inner_position += 1
                context.metrics.charge_join_pair()
                merged = self._outer_current.merge(partner)
                if self._evaluator is None:
                    return merged
                assert self.condition is not None
                context.metrics.charge_boolean(cost=self.condition.cost)
                if self._evaluator(merged.row):
                    return merged
            self._outer_current = None


class SortMergeJoin(_BinaryJoin):
    """Classical sort-merge equi-join (fully blocking).

    Drains and sorts both inputs by the join key, then merges.  Output order
    is join-key order — *not* score-ordered.
    """

    kind = "sortMergeJoin"

    def __init__(
        self,
        left: PhysicalOperator,
        right: PhysicalOperator,
        left_key: str,
        right_key: str,
    ):
        super().__init__(left, right)
        self.left_key = left_key
        self.right_key = right_key
        self._output: list[ScoredRow] | None = None
        self._position = 0

    def describe(self) -> str:
        return f"sortMergeJoin({self.left_key}={self.right_key})"

    def column_order(self) -> str | None:
        return self.left_key

    def bound(self) -> float:
        if self._output is not None and self._position >= len(self._output):
            return -math.inf
        return self.context.scoring.max_possible()

    def _open(self) -> None:
        self._open_children()
        self._output = None
        self._position = 0

    def _drain(self, side: PhysicalOperator) -> list[ScoredRow]:
        out: list[ScoredRow] = []
        while True:
            scored = side.next()
            if scored is None:
                return out
            self._record_input()
            out.append(scored)

    def _input_ordered(self, side: PhysicalOperator, key: str) -> bool:
        """Whether a child already delivers the join key's interesting
        order (e.g. a column-index scan), making its sort free."""
        return side.column_order() == key

    def _merge(self) -> None:
        context = self.context
        left_pos = self.left.schema().index_of(self.left_key)
        right_pos = self.right.schema().index_of(self.right_key)
        left_rows = self._drain(self.left)
        right_rows = self._drain(self.right)
        for side, key, rows in (
            (self.left, self.left_key, left_rows),
            (self.right, self.right_key, right_rows),
        ):
            if not self._input_ordered(side, key):
                n = len(rows)
                context.metrics.charge_comparisons(
                    int(n * max(1, math.log2(n or 1)))
                )
        left_rows.sort(key=lambda s: (s.row[left_pos], s.row.rid))
        right_rows.sort(key=lambda s: (s.row[right_pos], s.row.rid))
        output: list[ScoredRow] = []
        i = j = 0
        while i < len(left_rows) and j < len(right_rows):
            context.metrics.charge_comparisons()
            lk = left_rows[i].row[left_pos]
            rk = right_rows[j].row[right_pos]
            if lk < rk:
                i += 1
            elif lk > rk:
                j += 1
            else:
                # Emit the full cross product of the equal-key groups.
                j_end = j
                while j_end < len(right_rows) and right_rows[j_end].row[right_pos] == lk:
                    j_end += 1
                i_end = i
                while i_end < len(left_rows) and left_rows[i_end].row[left_pos] == lk:
                    i_end += 1
                for a in range(i, i_end):
                    for b in range(j, j_end):
                        context.metrics.charge_join_pair()
                        output.append(left_rows[a].merge(right_rows[b]))
                i, j = i_end, j_end
        self._output = output

    def _next(self) -> ScoredRow | None:
        if self._output is None:
            self._merge()
        assert self._output is not None
        if self._position >= len(self._output):
            return None
        scored = self._output[self._position]
        self._position += 1
        return scored


class HashJoin(_BinaryJoin):
    """Classical hash equi-join: blocking build (right), streaming probe
    (left).  Output order follows the probe input — *not* score-ordered."""

    kind = "hashJoin"

    def __init__(
        self,
        left: PhysicalOperator,
        right: PhysicalOperator,
        left_key: str,
        right_key: str,
    ):
        super().__init__(left, right)
        self.left_key = left_key
        self.right_key = right_key
        self._hash: dict[Any, list[ScoredRow]] | None = None
        self._pending: list[ScoredRow] = []
        self._exhausted = False

    def describe(self) -> str:
        return f"hashJoin({self.left_key}={self.right_key})"

    def bound(self) -> float:
        if self._exhausted:
            return -math.inf
        return self.context.scoring.max_possible()

    def _open(self) -> None:
        self._open_children()
        self._hash = None
        self._pending = []
        self._exhausted = False

    def _build(self) -> None:
        right_pos = self.right.schema().index_of(self.right_key)
        table: dict[Any, list[ScoredRow]] = {}
        while True:
            scored = self.right.next()
            if scored is None:
                break
            self._record_input()
            table.setdefault(scored.row[right_pos], []).append(scored)
        self._hash = table

    def _next(self) -> ScoredRow | None:
        if self._hash is None:
            self._build()
        assert self._hash is not None
        context = self.context
        left_pos = self.left.schema().index_of(self.left_key)
        while True:
            if self._pending:
                return self._pending.pop(0)
            scored = self.left.next()
            if scored is None:
                self._exhausted = True
                return None
            self._record_input()
            for partner in self._hash.get(scored.row[left_pos], ()):
                context.metrics.charge_join_pair()
                self._pending.append(scored.merge(partner))
