"""Blocking sort and the Limit operator.

:class:`Sort` is the traditional monolithic τ_F: it drains its whole input,
evaluates *every* remaining ranking predicate on every tuple, sorts, and
only then starts emitting — the materialize-then-sort scheme the paper
contrasts against.  Its startup cost is almost its total cost and is
independent of ``k``.

When a :class:`Limit` sits directly above it (the common ``ORDER BY …
LIMIT k`` shape), the λ passes ``k`` down via
:meth:`~repro.execution.iterator.PhysicalOperator.notify_limit` and the
sort keeps only a bounded top-k selection (``heapq.nsmallest`` on the
rank-order key) instead of materializing a fully sorted copy — same first
``k`` tuples, same tie order, ``O(n log k)`` comparisons.

:class:`Limit` (λ_k) stops pulling after ``k`` tuples, which is what makes
pipelined rank-aware plans cost proportional to ``k``.
"""

from __future__ import annotations

import heapq
import math

from ..algebra.rank_relation import ScoredRow, rank_order_key
from ..storage.schema import Schema
from .iterator import PhysicalOperator


class Sort(PhysicalOperator):
    """Blocking sort by the *complete* score F(p1, ..., pn)."""

    kind = "sort"

    def __init__(self, child: PhysicalOperator, fetch_limit: int | None = None):
        super().__init__()
        self.child = child
        #: when set (by a directly-enclosing λ_k), only the top
        #: ``fetch_limit`` tuples are kept — never set on cursor plans,
        #: which strip the λ and therefore need the full ordering
        self.fetch_limit = fetch_limit
        self._buffer: list[ScoredRow] | None = None
        self._position = 0

    def describe(self) -> str:
        if self.fetch_limit is not None:
            return f"sort(top {self.fetch_limit})"
        return "sort"

    def notify_limit(self, k: int) -> None:
        if self.fetch_limit is None:
            self.fetch_limit = k

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.child,)

    def schema(self) -> Schema:
        return self.child.schema()

    def predicates(self) -> frozenset[str]:
        return frozenset(self.context.scoring.predicate_names)

    def bound(self) -> float:
        if self._buffer is None:
            return self.context.scoring.max_possible()
        if self._position >= len(self._buffer):
            return -math.inf
        return self.context.upper_bound(self._buffer[self._position])

    def _open(self) -> None:
        self.child.open(self.context)
        self._buffer = None
        self._position = 0

    def _materialize(self) -> None:
        context = self.context
        schema = self.child.schema()
        names = context.scoring.predicate_names
        buffer: list[ScoredRow] = []
        while True:
            scored = self.child.next()
            if scored is None:
                break
            self._record_input()
            for name in names:
                if name not in scored.scores:
                    score = context.evaluate_predicate(name, scored.row, schema)
                    scored = scored.with_score(name, score)
            buffer.append(scored)
        n = len(buffer)
        k = self.fetch_limit
        key = lambda s: rank_order_key(context.scoring, s)  # noqa: E731
        if k is not None and k < n:
            context.metrics.charge_comparisons(int(n * max(1, math.log2(max(2, k)))))
            # Identical to sorted(buffer, key=key)[:k]: the key ends in the
            # row id, so the order is total and ties come out by id.
            buffer = heapq.nsmallest(k, buffer, key=key)
        else:
            context.metrics.charge_comparisons(int(n * max(1, math.log2(n or 1))))
            buffer.sort(key=key)
        self._buffer = buffer

    def _next(self) -> ScoredRow | None:
        if self._buffer is None:
            self._materialize()
        assert self._buffer is not None
        if self._position >= len(self._buffer):
            return None
        scored = self._buffer[self._position]
        self._position += 1
        return scored

    def _close(self) -> None:
        self.child.close()
        self._buffer = None


class Limit(PhysicalOperator):
    """λ_k: emit at most ``k`` tuples, then stop pulling from below."""

    kind = "limit"

    def __init__(self, child: PhysicalOperator, k: int):
        super().__init__()
        if k < 0:
            raise ValueError("k must be non-negative")
        self.child = child
        self.k = k
        self._emitted = 0
        # A λ guarantees its child is pulled at most k times, which lets
        # blocking sorts below keep a bounded top-k heap.
        child.notify_limit(k)

    def describe(self) -> str:
        return f"limit({self.k})"

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.child,)

    def schema(self) -> Schema:
        return self.child.schema()

    def predicates(self) -> frozenset[str]:
        return self.child.predicates()

    def bound(self) -> float:
        if self._emitted >= self.k:
            return -math.inf
        return self.child.bound()

    def _open(self) -> None:
        self.child.open(self.context)
        self._emitted = 0

    def _next(self) -> ScoredRow | None:
        if self._emitted >= self.k:
            return None
        scored = self.child.next()
        if scored is None:
            return None
        self._record_input()
        self._emitted += 1
        return scored

    def _close(self) -> None:
        self.child.close()
