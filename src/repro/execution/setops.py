"""Rank-aware set operations: incremental ∪, ∩, − (set semantics).

Traditionally these operators exhaust both inputs before emitting anything
(to rule out duplicates).  With *ranked* inputs they become incremental
(§4.2): because each input delivers tuples in descending ``F_P`` order, an
operator can decide from a tuple's predicate scores whether a duplicate may
still appear, and emit early.

Like the rank-joins, emission thresholds come from the last-drawn tuple of
each input ("drawn" corner bounds).  All three operators assume
union-compatible inputs whose ranking predicates resolve on either schema
(same bare column names), and deduplicate by tuple *values* — the set
semantics of the paper's running example (Figure 4, where ``r1`` and ``r'1``
merge).
"""

from __future__ import annotations

import math
from collections import deque

from ..algebra.rank_relation import ScoredRow
from ..storage.schema import Schema
from .iterator import PhysicalOperator, RankingQueue


class _RankSetOperator(PhysicalOperator):
    """Shared plumbing for the binary rank-aware set operators."""

    def __init__(self, left: PhysicalOperator, right: PhysicalOperator):
        super().__init__()
        self.left = left
        self.right = right
        self._left_done = False
        self._right_done = False
        self._left_last = math.inf
        self._right_last = math.inf

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.left, self.right)

    def schema(self) -> Schema:
        return self.left.schema()

    def _open_children(self) -> None:
        self.left.open(self.context)
        self.right.open(self.context)
        if len(self.left.schema()) != len(self.right.schema()):
            raise RuntimeError(
                f"{self.describe()}: operands are not union-compatible"
            )
        self._left_done = False
        self._right_done = False
        self._left_last = math.inf
        self._right_last = math.inf

    def _close(self) -> None:
        self.left.close()
        self.right.close()

    def _side_bound(self, left: bool) -> float:
        if left and self._left_done:
            return -math.inf
        if not left and self._right_done:
            return -math.inf
        last = self._left_last if left else self._right_last
        return min(last, self.context.scoring.max_possible())

    def _pull(self, left: bool) -> ScoredRow | None:
        """Draw one tuple from a side, maintaining corner bounds."""
        side = self.left if left else self.right
        scored = side.next()
        if scored is None:
            if left:
                self._left_done = True
            else:
                self._right_done = True
            return None
        self._record_input()
        input_bound = self.context.upper_bound(scored)
        if left:
            self._left_last = input_bound
        else:
            self._right_last = input_bound
        return scored

    def _complete_scores(
        self, scored: ScoredRow, wanted: frozenset[str], schema: Schema
    ) -> ScoredRow:
        """Evaluate any predicates in ``wanted`` missing from the tuple."""
        missing = wanted - set(scored.scores)
        if not missing:
            return scored
        out = scored
        for name in sorted(missing):
            score = self.context.evaluate_predicate(name, out.row, schema)
            out = out.with_score(name, score)
        return out


class RankUnion(_RankSetOperator):
    """Incremental set union, emitting in ``F_{P1 ∪ P2}`` order.

    Every output tuple's order predicate set is ``P1 ∪ P2`` (Figure 3), so
    the operator evaluates the predicates the producing side did not.
    Duplicates (by values) are dropped on arrival — both copies carry
    identical values, hence identical completed scores.
    """

    kind = "rankUnion"

    def __init__(self, left: PhysicalOperator, right: PhysicalOperator):
        super().__init__(left, right)
        self._queue = RankingQueue()
        self._seen_values: set[tuple] = set()

    def describe(self) -> str:
        return "rankUnion"

    def predicates(self) -> frozenset[str]:
        return self.left.predicates() | self.right.predicates()

    def bound(self) -> float:
        return max(
            self._queue.peek_bound(),
            self._side_bound(left=True),
            self._side_bound(left=False),
        )

    def _open(self) -> None:
        self._open_children()
        self._queue = RankingQueue()
        self._seen_values = set()

    def _threshold(self) -> float:
        return max(self._side_bound(left=True), self._side_bound(left=False))

    def _next(self) -> ScoredRow | None:
        wanted = self.predicates()
        while True:
            if len(self._queue) and self._queue.peek_bound() >= self._threshold():
                return self._queue.pop()
            if self._left_done and self._right_done:
                if len(self._queue):
                    return self._queue.pop()
                return None
            self._advance_one_input(wanted)

    def _advance_one_input(self, wanted: frozenset[str]) -> None:
        pull_left = not self._left_done and (
            self._right_done or self._side_bound(True) >= self._side_bound(False)
        )
        side = self.left if pull_left else self.right
        scored = self._pull(pull_left)
        if scored is None:
            return
        if scored.row.values in self._seen_values:
            return
        self._seen_values.add(scored.row.values)
        completed = self._complete_scores(scored, wanted, side.schema())
        self._queue.push(self.context.upper_bound(completed), completed)


class RankIntersect(_RankSetOperator):
    """Incremental set intersection, emitting in ``F_{P1 ∪ P2}`` order.

    A value qualifies when it has been seen on both sides; its evaluated
    scores are merged from both producers before completion.
    """

    kind = "rankIntersect"

    def __init__(
        self,
        left: PhysicalOperator,
        right: PhysicalOperator,
        by_identity: bool = False,
    ):
        super().__init__(left, right)
        #: the paper's ∩_r variant: match tuples by row identity, not value
        self.by_identity = by_identity
        self._queue = RankingQueue()
        self._left_seen: dict[tuple, ScoredRow] = {}
        self._right_seen: dict[tuple, ScoredRow] = {}
        self._matched: set[tuple] = set()

    def describe(self) -> str:
        return "rankIntersect_r" if self.by_identity else "rankIntersect"

    def predicates(self) -> frozenset[str]:
        return self.left.predicates() | self.right.predicates()

    def bound(self) -> float:
        return max(
            self._queue.peek_bound(),
            self._side_bound(left=True),
            self._side_bound(left=False),
        )

    def _open(self) -> None:
        self._open_children()
        self._queue = RankingQueue()
        self._left_seen = {}
        self._right_seen = {}
        self._matched = set()

    def _threshold(self) -> float:
        return max(self._side_bound(left=True), self._side_bound(left=False))

    def _inputs_done(self) -> bool:
        if self._left_done and self._right_done:
            return True
        # Early termination: one side exhausted and every one of its values
        # already matched — no new intersection tuple can appear.
        if self._left_done and set(self._left_seen) <= self._matched:
            return True
        if self._right_done and set(self._right_seen) <= self._matched:
            return True
        return False

    def _next(self) -> ScoredRow | None:
        wanted = self.predicates()
        while True:
            done = self._inputs_done()
            threshold = -math.inf if done else self._threshold()
            if len(self._queue) and self._queue.peek_bound() >= threshold:
                return self._queue.pop()
            if done:
                if len(self._queue):
                    return self._queue.pop()
                return None
            self._advance_one_input(wanted)

    def _advance_one_input(self, wanted: frozenset[str]) -> None:
        pull_left = not self._left_done and (
            self._right_done or self._side_bound(True) >= self._side_bound(False)
        )
        side = self.left if pull_left else self.right
        scored = self._pull(pull_left)
        if scored is None:
            return
        mine = self._left_seen if pull_left else self._right_seen
        theirs = self._right_seen if pull_left else self._left_seen
        key = scored.row.rid if self.by_identity else scored.row.values
        mine.setdefault(key, scored)
        if key in theirs and key not in self._matched:
            self._matched.add(key)
            partner = theirs[key]
            merged_scores = dict(partner.scores)
            merged_scores.update(scored.scores)
            # Keep the left producer's row so identity matches the reference
            # semantics (which iterates the left operand).
            left_row = (scored if pull_left else partner).row
            merged = ScoredRow(left_row, merged_scores)
            completed = self._complete_scores(merged, wanted, side.schema())
            self._queue.push(self.context.upper_bound(completed), completed)


class RankDifference(_RankSetOperator):
    """Incremental set difference ``R_P1 − S_P2``, emitting in the outer
    input's order (``P1``).

    The head outer tuple ``t`` is released once the inner side provably
    cannot contain it: either the inner is exhausted, or ``t``'s would-be
    inner score ``F_{P2}[t]`` (computed by evaluating the inner's predicate
    set on ``t``) strictly exceeds the inner's corner bound — had ``t`` been
    in the inner relation it would have already streamed out.
    """

    kind = "rankDifference"

    def __init__(self, left: PhysicalOperator, right: PhysicalOperator):
        super().__init__(left, right)
        self._pending: deque[tuple[ScoredRow, float]] = deque()
        self._right_values: set[tuple] = set()
        self._emitted_values: set[tuple] = set()

    def describe(self) -> str:
        return "rankDifference"

    def predicates(self) -> frozenset[str]:
        return self.left.predicates()

    def bound(self) -> float:
        if self._pending:
            return self.context.upper_bound(self._pending[0][0])
        return self._side_bound(left=True)

    def _open(self) -> None:
        self._open_children()
        self._pending = deque()
        self._right_values = set()
        self._emitted_values = set()

    def _inner_score(self, scored: ScoredRow) -> float:
        """``F_{P2}[t]``: the bound ``t`` would stream out of the inner with."""
        inner_predicates = self.right.predicates()
        completed = self._complete_scores(
            ScoredRow(scored.row, {}), inner_predicates, self.left.schema()
        )
        return self.context.scoring.upper_bound(completed.scores)

    def _next(self) -> ScoredRow | None:
        while True:
            if self._pending:
                head, inner_score = self._pending[0]
                key = head.row.values
                if key in self._right_values or key in self._emitted_values:
                    self._pending.popleft()
                    continue
                right_bound = self._side_bound(left=False)
                if inner_score > right_bound:
                    self._pending.popleft()
                    self._emitted_values.add(key)
                    return head
                # The inner may still produce this value: advance the inner.
                scored = self._pull(left=False)
                if scored is not None:
                    self._right_values.add(scored.row.values)
                continue
            if self._left_done:
                return None
            scored = self._pull(left=True)
            if scored is not None:
                self._pending.append((scored, self._inner_score(scored)))

    def _close(self) -> None:
        super()._close()
        self._pending = deque()
