"""Selection and projection physical operators.

Both are order-preserving unary operators: σ manipulates membership only and
keeps the input's ``F_P`` order (Figure 3); π keeps membership, order and
scores while narrowing the value layout.
"""

from __future__ import annotations

from ..algebra.expressions import Evaluator
from ..algebra.predicates import BooleanPredicate
from ..algebra.rank_relation import ScoredRow
from ..storage.schema import Schema
from .iterator import PhysicalOperator


class Filter(PhysicalOperator):
    """Selection σ_c: drops non-qualifying tuples, preserves order.

    When the input is a :class:`~repro.execution.batch.BatchToRow`
    frontier, the condition is pushed *into* the adapter
    (``request_prefilter``): batches are filtered columnar-side —
    vectorized under the NumPy backend — before any tuple is unpacked into
    a :class:`ScoredRow`.  Selection is membership-only and
    order-preserving, and the adapter sees exactly the tuples this
    operator would have seen, so evaluation counts and output are
    identical; only the per-tuple dispatch disappears.
    """

    kind = "filter"

    def __init__(self, child: PhysicalOperator, condition: BooleanPredicate):
        super().__init__()
        self.child = child
        self.condition = condition
        self._evaluator: Evaluator | None = None
        self._pushed_down = False

    def describe(self) -> str:
        return f"filter({self.condition.name})"

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.child,)

    def schema(self) -> Schema:
        return self.child.schema()

    def predicates(self) -> frozenset[str]:
        return self.child.predicates()

    def bound(self) -> float:
        # Filtering cannot raise any score; the child's bound still holds.
        return self.child.bound()

    def column_order(self) -> str | None:
        # Dropping tuples preserves any column order of the input.
        return self.child.column_order()

    def _open(self) -> None:
        self.child.open(self.context)
        request = getattr(self.child, "request_prefilter", None)
        # The adapter charges this node's tuples_in for every tuple the
        # pushed condition examines, so actual-input cardinality reads the
        # same whether the filter ran row-side or columnar-side.
        self._pushed_down = request is not None and bool(
            request(self.condition, stats=self.stats)
        )
        self._evaluator = (
            None if self._pushed_down else self.condition.compile(self.child.schema())
        )

    def _next(self) -> ScoredRow | None:
        if self._pushed_down:
            # The frontier already filtered (and charged) columnar-side.
            return self.child.next()
        assert self._evaluator is not None
        while True:
            scored = self.child.next()
            if scored is None:
                return None
            self._record_input()
            self.context.metrics.charge_boolean(cost=self.condition.cost)
            if self._evaluator(scored.row):
                return scored

    def _close(self) -> None:
        self.child.close()


class Project(PhysicalOperator):
    """Projection π: narrows the value layout, preserves order and scores."""

    kind = "project"

    def __init__(self, child: PhysicalOperator, columns: tuple[str, ...]):
        super().__init__()
        self.child = child
        self.columns = tuple(columns)
        self._positions: list[int] | None = None
        self._schema: Schema | None = None

    def describe(self) -> str:
        return f"project({', '.join(self.columns)})"

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.child,)

    def schema(self) -> Schema:
        if self._schema is None:
            raise RuntimeError("project not opened")
        return self._schema

    def predicates(self) -> frozenset[str]:
        return self.child.predicates()

    def bound(self) -> float:
        return self.child.bound()

    def _open(self) -> None:
        self.child.open(self.context)
        child_schema = self.child.schema()
        self._positions = [child_schema.index_of(c) for c in self.columns]
        self._schema = child_schema.project(self.columns)

    def _next(self) -> ScoredRow | None:
        assert self._positions is not None
        scored = self.child.next()
        if scored is None:
            return None
        self._record_input()
        return ScoredRow(scored.row.project(self._positions), scored.scores)

    def _close(self) -> None:
        self.child.close()
