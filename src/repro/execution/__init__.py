"""Physical execution engine: rank-aware iterators, the batched columnar
path for unranked segments, and metrics."""

from .batch import (
    BATCH_SIZE,
    Batch,
    BatchColumnOrderScan,
    BatchFilter,
    BatchHashJoin,
    BatchLimit,
    BatchNestedLoopJoin,
    BatchOperator,
    BatchProject,
    BatchScan,
    BatchSort,
    BatchSortMergeJoin,
    BatchToRow,
)
from .filter import Filter, Project
from .iterator import (
    EvaluatorCache,
    ExecutionContext,
    PhysicalOperator,
    RankingQueue,
    collect_plan,
    explain_physical,
    run_plan,
)
from .joins import HRJN, NRJN, HashJoin, NestedLoopJoin, SortMergeJoin
from .metrics import (
    BOOLEAN_EVAL_UNIT,
    COMPARE_UNIT,
    JOIN_PAIR_UNIT,
    MOVE_UNIT,
    SCAN_UNIT,
    ExecutionMetrics,
    OperatorStats,
)
from .rank import Mu
from .scans import ColumnOrderScan, RankScan, ScanSelect, SeqScan
from .setops import RankDifference, RankIntersect, RankUnion
from .sort import Limit, Sort
from .vectors import (
    numpy_available,
    set_backend as set_vector_backend,
    backend as vector_backend,
)

__all__ = [
    "BATCH_SIZE",
    "BOOLEAN_EVAL_UNIT",
    "Batch",
    "BatchColumnOrderScan",
    "BatchFilter",
    "BatchHashJoin",
    "BatchLimit",
    "BatchNestedLoopJoin",
    "BatchOperator",
    "BatchProject",
    "BatchScan",
    "BatchSort",
    "BatchSortMergeJoin",
    "BatchToRow",
    "COMPARE_UNIT",
    "ColumnOrderScan",
    "EvaluatorCache",
    "ExecutionContext",
    "ExecutionMetrics",
    "Filter",
    "HRJN",
    "HashJoin",
    "JOIN_PAIR_UNIT",
    "Limit",
    "MOVE_UNIT",
    "Mu",
    "NRJN",
    "NestedLoopJoin",
    "OperatorStats",
    "PhysicalOperator",
    "Project",
    "RankDifference",
    "RankIntersect",
    "RankScan",
    "RankUnion",
    "RankingQueue",
    "SCAN_UNIT",
    "ScanSelect",
    "SeqScan",
    "Sort",
    "SortMergeJoin",
    "collect_plan",
    "explain_physical",
    "numpy_available",
    "run_plan",
    "set_vector_backend",
    "vector_backend",
]
