"""The physical iterator protocol (Volcano model, rank-aware).

Physical operators follow the classical three-method interface (§4) —
:meth:`PhysicalOperator.open`, :meth:`PhysicalOperator.next`,
:meth:`PhysicalOperator.close` — with two rank-aware extensions:

* operators emit :class:`~repro.algebra.rank_relation.ScoredRow` streams in
  **descending maximal-possible-score order** (``F_P`` with respect to the
  operator's evaluated predicate set ``P``), realizing Definition 1; and
* every operator exposes :meth:`PhysicalOperator.bound`, an upper bound on
  the ``F_P`` score of *any tuple it may still emit*.  Consumers use the
  producer's bound as the emission threshold of the ranking principle
  (Property 1): a buffered tuple may leave only when its score exceeds every
  possible future tuple's score.

Ties are broken by row id; to keep tie order identical to the reference
semantics, operators emit a buffered tuple only when its score *strictly*
exceeds the threshold (equal-score tuples wait so they can be ordered by id).
"""

from __future__ import annotations

import heapq
import math
from typing import Iterator

from ..algebra.expressions import Evaluator
from ..algebra.predicates import ScoringFunction
from ..algebra.rank_relation import ScoredRow
from ..observe.trace import _NULL_CONTEXT
from ..storage.catalog import Catalog
from ..storage.schema import Schema
from .metrics import ExecutionMetrics, OperatorStats


class EvaluatorCache:
    """Compiled ranking-predicate evaluators, keyed by ``(name, schema)``.

    Compilation (column-position resolution, clamping closure construction)
    happens once per predicate/schema pair; the compiled closures are pure,
    so a cache may be shared across *executions* of the same plan — this is
    what makes a cached/prepared plan's warm runs skip recompilation
    entirely.  One cache must only ever be used with one scoring function.
    """

    __slots__ = ("scoring", "_compiled")

    def __init__(self, scoring: ScoringFunction):
        self.scoring = scoring
        #: (name, schema) -> (compiled evaluator, per-evaluation cost)
        self._compiled: dict[tuple[str, Schema], tuple[Evaluator, float]] = {}

    def __len__(self) -> int:
        return len(self._compiled)

    def entry(self, name: str, schema: Schema) -> tuple[Evaluator, float]:
        """The compiled ``(evaluator, cost)`` pair, compiling on first use."""
        key = (name, schema)
        hit = self._compiled.get(key)
        if hit is None:
            predicate = self.scoring.predicate(name)
            hit = (predicate.compile(schema), predicate.cost)
            self._compiled[key] = hit
        return hit


class ExecutionContext:
    """Shared state of one plan execution: catalog, scoring, metrics.

    ``evaluators`` may be supplied to share compiled predicate evaluators
    across executions (the prepared-statement warm path); when omitted a
    private cache is created.  Per-run state — metrics and operator-naming
    counters — is reset by :meth:`begin_run`.

    **Isolation audit (the snapshot contract).**  ``catalog`` may be the
    live :class:`~repro.storage.catalog.Catalog` *or* a
    :class:`~repro.storage.snapshot.DatabaseSnapshot` — operators must
    reach table state exclusively through ``context.catalog.table(name)``
    and the returned object's read surface (``rows()``, ``columns()``,
    ``find_index()``, ``indexes``, ``schema`` …), never by caching a
    ``Table`` across runs or reaching into the catalog another way.  That
    single entry point is what makes a whole plan execute against the
    versions captured at admission.  Everything else a run touches is
    already isolation-safe: one context is built per execution (the engine
    and server never share one across concurrent statements), metrics are
    context-local, the evaluator cache is append-only with idempotent
    entries, and scoring/predicate objects are immutable registrations.
    """

    def __init__(
        self,
        catalog: Catalog,
        scoring: ScoringFunction,
        evaluators: EvaluatorCache | None = None,
    ):
        self.catalog = catalog
        self.scoring = scoring
        self.metrics = ExecutionMetrics()
        if evaluators is None:
            evaluators = EvaluatorCache(scoring)
        elif evaluators.scoring is not scoring:
            raise ValueError("evaluator cache belongs to a different scoring function")
        self.evaluators = evaluators
        self._naming: dict[str, int] = {}
        #: the owning query's tracer, set by the engine when a trace is
        #: active — how row, batch, parallel, and compiled operators all
        #: report spans into the one per-query tree.  ``None`` (the
        #: default) keeps standalone contexts span-free.
        self.tracer = None

    def span(self, name: str, **attrs):
        """A child span under the active query trace (context manager
        yielding the span, or None when tracing is off).  Call per
        *phase* — segment open, morsel dispatch, fused call — never per
        tuple."""
        tracer = self.tracer
        if tracer is None:
            return _NULL_CONTEXT
        return tracer.span(name, **attrs)

    def begin_run(self) -> None:
        """Reset per-run state (operator-name counters) for a fresh execution.

        Without this, reusing a context across plan executions let
        ``unique_name`` counters leak: the second run's operators were named
        ``rank_p4#2`` and charged to fresh stats records while the compiled
        evaluators of dead schemas accumulated.  Compiled evaluators now live
        in the (deliberately shared) :class:`EvaluatorCache`; the naming
        counters are per-run and cleared here.  Metrics keep accumulating —
        a reused context measures the *total* work it has hosted.
        """
        self._naming.clear()

    def evaluate_predicate(self, name: str, row, schema: Schema) -> float:
        """Evaluate ranking predicate ``name`` on a row, charging its cost."""
        evaluate, cost = self.evaluators.entry(name, schema)
        self.metrics.charge_predicate(cost)
        return evaluate(row)

    def upper_bound(self, scored: ScoredRow) -> float:
        """``F_P[t]`` for a scored row (P = the keys of its score map)."""
        return self.scoring.upper_bound(scored.scores)

    def unique_name(self, base: str) -> str:
        """A unique per-run operator instance name (``mu_p4``, ``mu_p4#2``)."""
        n = self._naming.get(base, 0)
        self._naming[base] = n + 1
        return base if n == 0 else f"{base}#{n + 1}"


class PhysicalOperator:
    """Base class of physical operators."""

    #: human-readable operator kind, overridden by subclasses
    kind = "operator"

    def __init__(self) -> None:
        self._context: ExecutionContext | None = None
        self._stats: OperatorStats | None = None
        self._opened = False

    # -- lifecycle ------------------------------------------------------
    def open(self, context: ExecutionContext) -> None:
        """Initialize; must be called before :meth:`next`."""
        self._context = context
        self._stats = context.metrics.stats_for(context.unique_name(self.describe()))
        self._opened = True
        self._open()

    def next(self) -> ScoredRow | None:
        """The next output tuple in descending ``F_P`` order, or None."""
        if not self._opened:
            raise RuntimeError(f"{self.describe()}: next() before open()")
        scored = self._next()
        if scored is not None:
            assert self._stats is not None
            self._stats.tuples_out += 1
            assert self._context is not None
            self._context.metrics.charge_move()
        return scored

    def close(self) -> None:
        """Release resources; idempotent."""
        if self._opened:
            self._close()
            self._opened = False

    # -- rank-aware extensions -------------------------------------------
    def bound(self) -> float:
        """Upper bound on the ``F_P`` score of any future output tuple."""
        raise NotImplementedError

    def schema(self) -> Schema:
        raise NotImplementedError

    def predicates(self) -> frozenset[str]:
        """The output rank-relation's evaluated predicate set ``P``."""
        raise NotImplementedError

    def column_order(self) -> str | None:
        """The column this operator's output is sorted on, if any — the
        System-R "interesting order" physical property."""
        return None

    def notify_limit(self, k: int) -> None:
        """Hint from a directly-enclosing λ_k that at most ``k`` tuples will
        ever be pulled.  Blocking operators (Sort, BatchSort) use it to keep
        a bounded top-k heap instead of fully sorting; everyone else ignores
        it.  Only :class:`~repro.execution.sort.Limit` may call this — a
        consumer that pulls past ``k`` (cursors) must build its plan without
        the λ, which never sends the hint."""

    def describe(self) -> str:
        return self.kind

    def children(self) -> tuple["PhysicalOperator", ...]:
        return ()

    # -- subclass hooks ---------------------------------------------------
    def _open(self) -> None:
        raise NotImplementedError

    def _next(self) -> ScoredRow | None:
        raise NotImplementedError

    def _close(self) -> None:
        for child in self.children():
            child.close()

    # -- helpers ----------------------------------------------------------
    @property
    def context(self) -> ExecutionContext:
        assert self._context is not None, "operator not opened"
        return self._context

    @property
    def stats(self) -> OperatorStats:
        assert self._stats is not None, "operator not opened"
        return self._stats

    def _record_input(self, count: int = 1) -> None:
        self.stats.tuples_in += count

    def iterate(self) -> Iterator[ScoredRow]:
        """Drain the operator as a Python iterator (after :meth:`open`)."""
        while True:
            scored = self.next()
            if scored is None:
                return
            yield scored


class RankingQueue:
    """A max-priority queue over scored rows, keyed by ``F_P`` then row id.

    This is the "ranking queue" every buffering rank-aware operator uses
    (§4.1).  Pop order equals the reference rank-relation order.
    """

    __slots__ = ("_heap",)

    def __init__(self) -> None:
        self._heap: list[tuple[float, tuple, ScoredRow]] = []

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, bound: float, scored: ScoredRow) -> None:
        heapq.heappush(self._heap, (-bound, scored.row.rid, scored))

    def peek_bound(self) -> float:
        """Score of the best buffered tuple (−inf when empty)."""
        if not self._heap:
            return -math.inf
        return -self._heap[0][0]

    def pop(self) -> ScoredRow:
        __, __, scored = heapq.heappop(self._heap)
        return scored


def run_plan(
    root: PhysicalOperator,
    context: ExecutionContext,
    k: int | None = None,
) -> list[ScoredRow]:
    """Open, pull up to ``k`` tuples (all when None), close; return them.

    This realizes the incremental execution model: pulling stops as soon as
    ``k`` results are reported, so work is proportional to ``k``.
    """
    return collect_plan(root, context, k)[1]


def collect_plan(
    root: PhysicalOperator,
    context: ExecutionContext,
    k: int | None = None,
) -> tuple[Schema, list[ScoredRow]]:
    """:func:`run_plan` that also captures the output schema (only
    observable while the plan is open) — the engine's result path."""
    context.begin_run()
    root.open(context)
    try:
        schema = root.schema()
        out: list[ScoredRow] = []
        while k is None or len(out) < k:
            scored = root.next()
            if scored is None:
                break
            out.append(scored)
        return schema, out
    finally:
        root.close()


def explain_physical(root: PhysicalOperator, indent: int = 0) -> str:
    """Pretty-print a physical plan tree."""
    lines = ["  " * indent + root.describe()]
    for child in root.children():
        lines.append(explain_physical(child, indent + 1))
    return "\n".join(lines)
