"""The process-wide morsel pool: intra-query parallelism plumbing.

A *morsel* is a fixed-size rid range of a batch segment's source — the
unit of work the parallel execution path schedules (Leis et al.,
"Morsel-Driven Parallelism", adapted to this engine's batch segments).
This module owns everything below the operators:

* :func:`morsel_size` — the range width (``REPRO_MORSEL_SIZE``, default
  4 × the batch size, so a morsel dispatches a handful of batches).
* the **shared worker pool** — one lazily-created
  :class:`~concurrent.futures.ThreadPoolExecutor` per process, shared by
  every statement of every session (:func:`shared_pool`).  The server's
  per-statement workers submit morsels here too, so intra-query and
  inter-session parallelism draw from the same bounded set of threads
  instead of oversubscribing cores.
* :func:`run_tasks` — ordered, lazily-windowed task execution: at most
  ``dop`` morsels are in flight, and results are yielded **in morsel
  order** regardless of completion order.  This is the order-restoring
  gather that keeps parallel output byte-identical to serial execution.
* a **fork process-pool backend** (``REPRO_PARALLEL_BACKEND=process``)
  for pure-python workloads the GIL would otherwise serialize.  Morsel
  task closures are stashed in a module global *before* the pool forks,
  so workers inherit them by memory image and only picklable *results*
  cross the pipe.  Platforms without ``fork`` fall back to threads.

Worker tasks never submit tasks of their own — every decomposition is a
flat list of morsels driven from the statement thread — so the shared
pool cannot deadlock however many statements stack up on it.
"""

from __future__ import annotations

import itertools
import os
import threading
import warnings
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Iterator, Sequence

from ..observe.trace import ambient_trace_id, set_ambient_trace_id

#: default morsel width: four batches per morsel keeps per-task overhead
#: small while still splitting mid-size tables into enough tasks to scale
MORSEL_SIZE_DEFAULT = 4096

BACKENDS = ("thread", "process")

Task = Callable[[], Any]


def morsel_size() -> int:
    """The configured morsel width in tuples (``REPRO_MORSEL_SIZE``)."""
    raw = os.environ.get("REPRO_MORSEL_SIZE")
    if raw is None:
        return MORSEL_SIZE_DEFAULT
    try:
        value = int(raw.strip())
    except ValueError:
        raise ValueError(
            f"bad REPRO_MORSEL_SIZE value {raw!r}; expected a positive integer"
        ) from None
    if value < 1:
        raise ValueError(
            f"bad REPRO_MORSEL_SIZE value {raw!r}; expected a positive integer"
        )
    return value


def hardware_parallelism() -> int:
    """The core count ``parallelism="auto"`` resolves to."""
    return max(1, os.cpu_count() or 1)


def parallel_backend() -> str:
    """The configured morsel backend (``REPRO_PARALLEL_BACKEND``)."""
    raw = os.environ.get("REPRO_PARALLEL_BACKEND")
    if raw is None:
        return "thread"
    name = raw.strip().lower()
    if name not in BACKENDS:
        raise ValueError(
            f"unknown REPRO_PARALLEL_BACKEND value {raw!r}; "
            f"expected one of {BACKENDS}"
        )
    return name


# ----------------------------------------------------------------------
# the shared thread pool
# ----------------------------------------------------------------------

_pool_lock = threading.Lock()
_pool: ThreadPoolExecutor | None = None


def shared_pool() -> ThreadPoolExecutor:
    """The process-wide morsel pool, created on first use.

    Sized to the machine (never below 2, so single-core hosts still
    exercise genuine concurrency); statements bound their *own* in-flight
    work with the windowing in :func:`run_tasks`, the pool bounds the
    total across all concurrent statements.
    """
    global _pool
    with _pool_lock:
        if _pool is None:
            _pool = ThreadPoolExecutor(
                max_workers=max(2, hardware_parallelism()),
                thread_name_prefix="repro-morsel",
            )
        return _pool


def pool_summary() -> dict[str, int]:
    """Shared-pool facts for server/CLI introspection (no side effects —
    reporting on an unused pool must not create it)."""
    with _pool_lock:
        started = _pool is not None
        workers = _pool._max_workers if _pool is not None else 0
    return {
        "morsel_pool_started": int(started),
        "morsel_pool_workers": workers
        if started
        else max(2, hardware_parallelism()),
    }


# ----------------------------------------------------------------------
# ordered task execution
# ----------------------------------------------------------------------

def run_tasks(
    tasks: Sequence[Task], dop: int, backend: str | None = None
) -> Iterator[Any]:
    """Run morsel tasks with ``dop``-way parallelism, yielding results in
    task order.

    The serial path (``dop <= 1`` or a single task) runs tasks inline on
    the calling thread.  The thread backend keeps a sliding window of
    ``dop`` futures on the shared pool: the consumer always receives the
    *oldest* outstanding result first, so downstream sees exactly the
    serial sequence.  Exceptions surface in task order.  A consumer that
    stops early leaves at most ``dop - 1`` already-submitted morsels to
    finish and be discarded.

    When the dispatching thread is working for a traced query (its
    ambient trace id is set — see :mod:`repro.observe.trace`), every
    task re-publishes that id inside the worker, so morsel work stays
    correlated with the owning query on both backends: thread workers
    set their own thread-local, forked workers inherit the wrapper
    closure through the copied address space.
    """
    dop = max(1, int(dop))
    if backend is None:
        backend = parallel_backend()
    trace_id = ambient_trace_id()
    if trace_id is not None:
        tasks = [_with_trace_id(task, trace_id) for task in tasks]
    if dop <= 1 or len(tasks) <= 1:
        return (task() for task in tasks)
    if backend == "process" and fork_available():
        return iter(_run_forked(tasks, dop))
    return _run_windowed(tasks, dop)


def _with_trace_id(task: Task, trace_id: str) -> Task:
    """Wrap a morsel task so the worker executing it carries the
    dispatcher's trace id for the duration of the task."""

    def run() -> Any:
        previous = set_ambient_trace_id(trace_id)
        try:
            return task()
        finally:
            set_ambient_trace_id(previous)

    return run


def _run_windowed(tasks: Sequence[Task], dop: int) -> Iterator[Any]:
    pool = shared_pool()
    pending: deque = deque()
    iterator = iter(tasks)
    for task in itertools.islice(iterator, dop):
        pending.append(pool.submit(task))
    for task in iterator:
        result = pending.popleft().result()
        pending.append(pool.submit(task))
        yield result
    while pending:
        yield pending.popleft().result()


# ----------------------------------------------------------------------
# fork process-pool backend (pure-python mode)
# ----------------------------------------------------------------------
#
# Thread workers scale only work that releases the GIL (the NumPy
# kernels).  Pure-python morsels — expensive user predicates, python-mode
# kernels — need real processes.  Closures over operators and user
# lambdas do not pickle, so the fork backend stashes the task list in a
# module global *before* creating the pool: forked workers inherit the
# closures through the copied address space and are sent only morsel
# indices.  Results therefore must be picklable (they are: batches,
# rows and metric sinks are plain data).

_fork_lock = threading.Lock()
_fork_tasks: Sequence[Task] | None = None


def fork_available() -> bool:
    """Whether the fork start method exists on this platform."""
    if not hasattr(os, "fork"):
        return False
    import multiprocessing

    try:
        multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-fork platforms
        return False
    return True


def _run_fork_task(index: int) -> Any:
    tasks = _fork_tasks
    assert tasks is not None, "fork worker started without a task stash"
    return tasks[index]()


def _run_forked(tasks: Sequence[Task], dop: int) -> list[Any]:
    import multiprocessing

    global _fork_tasks
    context = multiprocessing.get_context("fork")
    # One forked sweep at a time: the task stash is a process-wide slot.
    with _fork_lock:
        _fork_tasks = list(tasks)
        try:
            with warnings.catch_warnings():
                # Python 3.12+ deprecation-warns on fork inside a threaded
                # process; the workers only run self-contained morsels, so
                # the fork is safe — and must survive PYTHONWARNINGS=error.
                warnings.simplefilter("ignore", DeprecationWarning)
                pool = context.Pool(processes=min(dop, len(tasks)))
            try:
                return pool.map(_run_fork_task, range(len(tasks)))
            finally:
                pool.close()
                pool.join()
        finally:
            _fork_tasks = None
