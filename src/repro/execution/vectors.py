"""Optional NumPy column-vector kernels behind the :class:`Batch` API.

The batch operators (:mod:`repro.execution.batch`) exchange plain-Python
column vectors.  This module supplies the *evaluation kernels* they use at
the hot spots — Boolean selection over a batch, ranking-predicate scoring
over a batch — in two interchangeable backends:

* ``"python"`` (default, always available): one tight loop per batch over
  the compiled row evaluator.  Semantically identical to tuple-at-a-time
  evaluation by construction.
* ``"numpy"`` (feature-gated, zero hard dependency): expressions compile
  to element-wise ndarray programs; plain-callable scorers are attempted
  directly on column arrays (``lambda v: v``-style scorers vectorize for
  free) with strict result validation.  Whenever a batch or an expression
  falls outside the safely-vectorizable subset — non-numeric columns,
  NULLs that NumPy cannot represent faithfully, division by zero,
  callables that reject arrays — the kernel returns ``None`` and the
  caller falls back to the Python loop for that batch.

Parity is a hard requirement: both backends run the same IEEE-754 double
arithmetic element-wise, results are converted back to built-in Python
values at the kernel boundary (``.tolist()``), and every construct whose
NumPy semantics could diverge from the row evaluator (NULL handling in
``!=``, truthiness of NaN, ``/ 0``) either gets an explicit guard or
forces the fallback.  ``tests/execution/test_vectors.py`` asserts
bit-identical outputs across backends.

Backend selection: :func:`set_backend` at runtime, or the
``REPRO_VECTOR_BACKEND`` environment variable at import (an unavailable
NumPy silently keeps the pure-Python backend — the gate, not an error).
"""

from __future__ import annotations

import os
from typing import Any, Callable, Sequence

from ..algebra.expressions import (
    Arithmetic,
    BooleanOp,
    ColumnRef,
    Comparison,
    Expression,
    Literal,
)
from ..algebra.predicates import BooleanPredicate, RankingPredicate
from ..storage.schema import Schema

try:  # the optional accelerator — never a hard dependency
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-less installs
    _np = None

BACKENDS = ("python", "numpy")

_backend = "python"


def numpy_available() -> bool:
    """Whether the NumPy backend can be enabled in this environment."""
    return _np is not None


def backend() -> str:
    """The active vector backend (``"python"`` or ``"numpy"``)."""
    return _backend


def set_backend(name: str) -> None:
    """Select the vector backend.

    ``"numpy"`` raises :class:`RuntimeError` when NumPy is not installed —
    use the ``REPRO_VECTOR_BACKEND`` environment variable for a soft gate
    that falls back silently.
    """
    global _backend
    if name not in BACKENDS:
        raise ValueError(f"unknown vector backend {name!r}; expected one of {BACKENDS}")
    if name == "numpy" and _np is None:
        raise RuntimeError("numpy backend requested but numpy is not installed")
    _backend = name


def _configure_from_env() -> None:
    raw = os.environ.get("REPRO_VECTOR_BACKEND")
    if raw is None:
        return
    name = raw.strip().lower()
    if name not in BACKENDS:
        # Fail loudly on typos (consistent with REPRO_BATCH_EXECUTION);
        # only a *missing numpy* is gated silently.
        raise ValueError(
            f"unknown REPRO_VECTOR_BACKEND value {raw!r}; "
            f"expected one of {BACKENDS}"
        )
    if name == "numpy" and _np is None:
        return  # soft gate: keep the pure-python fallback
    set_backend(name)


_configure_from_env()


class _Unsupported(Exception):
    """Internal: expression/batch outside the vectorizable subset."""


# ----------------------------------------------------------------------
# ndarray program compilation (numpy backend)
# ----------------------------------------------------------------------
#
# A compiled program is ``fn(columns) -> ndarray`` where ``columns`` maps
# schema positions to float64 arrays (NULL = NaN).  Only constructs whose
# element-wise semantics match the row evaluator exactly are compiled;
# everything else raises _Unsupported at compile time.

def _compile_array_program(expression: Expression, schema: Schema):
    if isinstance(expression, ColumnRef):
        position = schema.index_of(expression.name)
        return lambda columns: columns[position], (position,)
    if isinstance(expression, Literal):
        value = expression.value
        if isinstance(value, bool):
            value = float(value)
        if not isinstance(value, (int, float)):
            raise _Unsupported(f"non-numeric literal {value!r}")
        constant = float(value)
        return lambda columns: constant, ()
    if isinstance(expression, Arithmetic):
        left, left_refs = _compile_array_program(expression.left, schema)
        right, right_refs = _compile_array_program(expression.right, schema)
        op = expression.op
        if op == "+":
            fn = lambda columns: left(columns) + right(columns)  # noqa: E731
        elif op == "-":
            fn = lambda columns: left(columns) - right(columns)  # noqa: E731
        elif op == "*":
            fn = lambda columns: left(columns) * right(columns)  # noqa: E731
        elif op in ("/", "%"):
            def fn(columns, _l=left, _r=right, _op=op):
                divisor = _r(columns)
                # The row evaluator raises on division by zero; keep that
                # observable behaviour by refusing to vectorize the batch.
                if _np.any(divisor == 0):
                    raise _Unsupported("division by zero in batch")
                return _l(columns) / divisor if _op == "/" else _l(columns) % divisor
        else:  # pragma: no cover - Arithmetic validates its ops
            raise _Unsupported(f"operator {op!r}")
        return fn, left_refs + right_refs
    if isinstance(expression, Comparison):
        left, left_refs = _compile_array_program(expression.left, schema)
        right, right_refs = _compile_array_program(expression.right, schema)
        op = expression.op
        # NaN encodes NULL; every comparison involving NULL must be False
        # (the row evaluator's two-valued collapse).  <, <=, >, >= and =
        # are naturally False against NaN; != needs an explicit guard.
        if op == "=":
            fn = lambda columns: left(columns) == right(columns)  # noqa: E731
        elif op == "!=":
            def fn(columns, _l=left, _r=right):
                a, b = _l(columns), _r(columns)
                mask = a != b
                for side in (a, b):
                    if isinstance(side, _np.ndarray):
                        mask &= ~_np.isnan(side)
                    elif _np.isnan(side):  # NaN literal: everything NULL
                        return _np.zeros_like(mask, dtype=bool)
                return mask
        elif op == "<":
            fn = lambda columns: left(columns) < right(columns)  # noqa: E731
        elif op == "<=":
            fn = lambda columns: left(columns) <= right(columns)  # noqa: E731
        elif op == ">":
            fn = lambda columns: left(columns) > right(columns)  # noqa: E731
        else:
            fn = lambda columns: left(columns) >= right(columns)  # noqa: E731
        return fn, left_refs + right_refs
    if isinstance(expression, BooleanOp):
        compiled = [
            _compile_array_program(operand, schema) for operand in expression.operands
        ]
        refs = tuple(r for __, operand_refs in compiled for r in operand_refs)
        programs = [fn for fn, __ in compiled]
        op = expression.op

        def as_mask(value):
            # Truthiness of a numeric operand: non-zero and non-NULL
            # (None is falsy for the row evaluator; NaN must not be truthy).
            if isinstance(value, _np.ndarray):
                if value.dtype != bool:
                    return (value != 0) & ~_np.isnan(value)
                return value
            # Scalar operand (a Literal program): a plain Python bool so
            # the &, | and not combinators below stay well-defined.
            return bool(value != 0 and not _np.isnan(value))

        if op == "not":
            inner = programs[0]

            def negate(columns):
                mask = as_mask(inner(columns))
                if isinstance(mask, _np.ndarray):
                    return ~mask
                return not mask

            return negate, refs
        if op == "and":
            def fn(columns):
                mask = as_mask(programs[0](columns))
                for program in programs[1:]:
                    mask = mask & as_mask(program(columns))
                return mask
        else:
            def fn(columns):
                mask = as_mask(programs[0](columns))
                for program in programs[1:]:
                    mask = mask | as_mask(program(columns))
                return mask
        return fn, refs
    raise _Unsupported(f"expression {type(expression).__name__}")


#: largest magnitude a float64 represents exactly for every integer —
#: integer columns beyond it must not be coerced (silent rounding would
#: merge distinct keys)
_EXACT_INT_LIMIT = 2**53


def _column_array(values) -> "Any | None":
    """One column as a float64 array (NULL → NaN), or None when the values
    cannot be represented *faithfully* — non-numeric source types must not
    be numerically coerced (``'10' > 15`` is a TypeError for the row
    evaluator, never an arithmetic fact), and integers beyond 2^53 must
    not be rounded onto each other."""
    try:
        raw = _np.asarray(values)
    except (TypeError, ValueError, OverflowError):
        raw = _np.asarray(values, dtype=object)
    kind = raw.dtype.kind
    if kind in "iufb":
        array = raw.astype(_np.float64)
    elif kind == "O":
        # NULLs and/or arbitrary objects: only genuine numbers qualify.
        if not all(
            v is None or isinstance(v, (int, float)) for v in values
        ):
            return None
        try:
            array = _np.asarray(
                [(_np.nan if v is None else v) for v in values],
                dtype=_np.float64,
            )
        except (TypeError, ValueError, OverflowError):
            return None
    else:  # strings, datetimes, ... — the row evaluator's business
        return None
    with _np.errstate(invalid="ignore"):
        if _np.any(_np.abs(array) >= _EXACT_INT_LIMIT):
            # Not exact in float64: a vectorized comparison could merge
            # distinct values (NaNs compare False, so NULLs pass through).
            return None
    return array


def _batch_arrays(batch, positions: Sequence[int]):
    """Float64 arrays (NULL → NaN) for the referenced columns, or None
    when any column cannot be represented faithfully."""
    columns = batch.columns
    out: dict[int, Any] = {}
    for position in set(positions):
        array = _column_array(columns[position])
        if array is None:
            return None
        out[position] = array
    return out


class BooleanKernel:
    """Per-(condition, schema) vectorized Boolean evaluation."""

    __slots__ = ("_program", "_positions")

    def __init__(self, program, positions):
        self._program = program
        self._positions = positions

    @classmethod
    def compile(cls, condition: BooleanPredicate, schema: Schema) -> "BooleanKernel | None":
        """A kernel for the active backend, or None (caller loops)."""
        if _backend != "numpy":
            return None
        expression = condition.expression
        try:
            program, positions = _compile_array_program(expression, schema)
        except _Unsupported:
            return None

        def root(columns, _p=program):
            mask = _p(columns)
            if isinstance(mask, _np.ndarray) and mask.dtype != bool:
                # Bare numeric expression in Boolean position: truthiness.
                mask = (mask != 0) & ~_np.isnan(mask)
            return mask

        return cls(root, positions)

    def keep_indices(self, batch) -> "list[int] | None":
        """Indices of qualifying tuples, or None (fall back this batch)."""
        arrays = _batch_arrays(batch, self._positions)
        if arrays is None:
            return None
        try:
            mask = self._program(arrays)
        except Exception:
            # _Unsupported (e.g. division by zero in the batch), or any
            # numpy edge the compiler missed: fall back, never crash the
            # query the row evaluator would have answered.
            return None
        if not isinstance(mask, _np.ndarray):
            mask = _np.full(len(batch), bool(mask))
        return [int(i) for i in _np.flatnonzero(mask)]


class RankingKernel:
    """Per-(predicate, schema) vectorized score evaluation.

    Expression scorers compile to ndarray programs; plain-callable scorers
    are *attempted* on the column arrays directly (many scorers are
    element-wise NumPy-compatible) and strictly validated — a scalar
    result, a wrong shape, a non-numeric dtype or any exception falls back
    to the per-tuple loop.  Clamping to ``[0, p_max]`` and the NULL → 0
    rule replicate :meth:`RankingPredicate.compile` exactly.
    """

    __slots__ = ("_predicate", "_program", "_positions", "_callable")

    def __init__(self, predicate, program, positions, callable_fn):
        self._predicate = predicate
        self._program = program
        self._positions = positions
        self._callable = callable_fn

    @classmethod
    def compile(cls, predicate: RankingPredicate, schema: Schema) -> "RankingKernel | None":
        if _backend != "numpy":
            return None
        if predicate.spin_loops:
            # Busy-work per evaluation is a wall-time calibration aid; a
            # vectorized path that skipped it would distort benchmarks.
            return None
        scorer = predicate.scorer
        if isinstance(scorer, Expression):
            try:
                program, positions = _compile_array_program(scorer, schema)
            except _Unsupported:
                return None
            return cls(predicate, program, positions, None)
        if not predicate.columns:
            return None
        try:
            positions = tuple(schema.index_of(c) for c in predicate.columns)
        except Exception:
            return None
        return cls(predicate, None, positions, scorer)

    def scores(self, batch) -> "list[float] | None":
        """The clamped score vector, or None (fall back this batch)."""
        arrays = _batch_arrays(batch, self._positions)
        if arrays is None:
            return None
        n = len(batch)
        try:
            if self._program is not None:
                raw = self._program(arrays)
            else:
                arguments = [arrays[p] for p in self._positions]
                # A plain callable receives Python values in row mode —
                # including None, which it may branch on or crash on.  NaN
                # stand-ins would silently change either outcome, so NULLs
                # force the per-tuple fallback (expression programs handle
                # NaN-as-NULL exactly and skip this guard).
                if any(bool(_np.isnan(a).any()) for a in arguments):
                    return None
                raw = self._callable(*arguments)
        except _Unsupported:
            return None
        except Exception:
            # The callable rejected array arguments — not vectorizable.
            return None
        if not isinstance(raw, _np.ndarray) or raw.shape != (n,):
            return None
        if raw.dtype.kind not in "bif":
            return None
        raw = raw.astype(_np.float64, copy=False)
        p_max = self._predicate.p_max
        clamped = _np.clip(raw, 0.0, p_max)
        clamped = _np.where(_np.isnan(raw), 0.0, clamped)
        return clamped.tolist()


# ----------------------------------------------------------------------
# the kernel entry points the batch operators use
# ----------------------------------------------------------------------

def boolean_kernel(condition: BooleanPredicate, schema: Schema) -> "BooleanKernel | None":
    """Compile a Boolean batch kernel (None under the python backend)."""
    return BooleanKernel.compile(condition, schema)


def ranking_kernel(predicate: RankingPredicate, schema: Schema) -> "RankingKernel | None":
    """Compile a ranking-score batch kernel (None under the python backend)."""
    return RankingKernel.compile(predicate, schema)


def keep_indices(
    kernel: "BooleanKernel | None",
    evaluator: Callable,
    batch,
) -> list[int]:
    """Qualifying tuple indices for a batch: vectorized when the kernel
    applies, the tight Python loop otherwise."""
    if kernel is not None:
        indices = kernel.keep_indices(batch)
        if indices is not None:
            return indices
    return [i for i, t in enumerate(batch.tuples()) if evaluator(t)]


def score_vector(
    kernel: "RankingKernel | None",
    evaluator: Callable,
    batch,
) -> list[float]:
    """One ranking predicate's score vector over a batch: vectorized when
    the kernel applies, the tight Python loop otherwise."""
    if kernel is not None:
        scores = kernel.scores(batch)
        if scores is not None:
            return scores
    return [evaluator(t) for t in batch.tuples()]
