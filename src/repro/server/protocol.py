"""The wire protocol: line-delimited JSON over TCP.

Every message — request and response alike — is one JSON object on one
``\\n``-terminated line (NDJSON), so any language with a JSON parser and a
socket can speak to the server, and a session transcript is trivially
greppable.  Requests carry an ``op``; responses carry ``ok`` plus either
the op's payload or an ``error`` envelope:

Requests (client → server)::

    {"op": "hello", "settings": {...}}          open a session
    {"op": "query", "sql": "...", "params": ..., "k": ...}
    {"op": "explain", "sql": "...", "params": ...}
    {"op": "insert", "table": "t", "rows": [[...], ...]}
    {"op": "delete", "table": "t", "column": "c", "equals": v}
    {"op": "begin"}                             start a transaction
    {"op": "commit"}                            commit (may conflict-abort)
    {"op": "rollback"}                          discard buffered writes
    {"op": "metrics"}                           session + shared-cache stats
    {"op": "stats"}                             metrics registry + recent traces
    {"op": "close"}                             close the session

Inside a transaction every ``query`` reads the BEGIN-time snapshot plus
the session's own buffered writes, and ``insert``/``delete`` buffer
instead of publishing.  A ``commit`` that loses first-committer-wins
validation answers with an error envelope of type ``SerializationError``
(the transaction is already aborted — retry from ``begin``).

Responses (server → client)::

    {"ok": true, "session": "s1"}                                (hello)
    {"ok": true, "columns": [...], "rows": [[...]], "scores": [...],
     "plan_cached": true, "metrics": {...}}                      (query)
    {"ok": false, "error": {"type": "CatalogError", "message": "..."}}

Values are restricted to the engine's data types (int, float, text, bool,
NULL), all JSON-native, so serialization is lossless.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..engine.result import QueryResult

#: protocol ops a server understands
OPS = (
    "hello",
    "query",
    "explain",
    "insert",
    "delete",
    "begin",
    "commit",
    "rollback",
    "metrics",
    "stats",
    "close",
)


class ProtocolError(Exception):
    """Raised for malformed messages or unknown ops."""


def encode(message: dict[str, Any]) -> bytes:
    """One message as a ``\\n``-terminated JSON line."""
    return (json.dumps(message, default=str) + "\n").encode("utf-8")


def decode(line: "str | bytes") -> dict[str, Any]:
    """Parse one line into a message dict (raises :class:`ProtocolError`
    on anything that is not a JSON object)."""
    if isinstance(line, bytes):
        line = line.decode("utf-8")
    stripped = line.strip()
    if not stripped:
        raise ProtocolError("empty message")
    try:
        message = json.loads(stripped)
    except json.JSONDecodeError as error:
        raise ProtocolError(f"bad JSON: {error}") from None
    if not isinstance(message, dict):
        raise ProtocolError(
            f"message must be a JSON object, got {type(message).__name__}"
        )
    return message


def request_op(message: dict[str, Any]) -> str:
    """Validate and extract a request's ``op``."""
    op = message.get("op")
    if not isinstance(op, str):
        raise ProtocolError("request is missing its 'op' field")
    if op not in OPS:
        raise ProtocolError(f"unknown op {op!r}; expected one of {OPS}")
    return op


def result_payload(result: "QueryResult") -> dict[str, Any]:
    """Serialize a :class:`~repro.engine.result.QueryResult` for the wire.

    Rows and scores keep their order (best first); ``metrics`` carries the
    execution-metrics summary so remote clients see the same counters
    embedded callers do.
    """
    return {
        "ok": True,
        "columns": list(result.schema.qualified_names()),
        "rows": [list(values) for values in result.rows],
        "scores": result.scores,
        "plan_cached": result.plan_cached,
        "metrics": result.metrics.summary(),
    }


def error_payload(error: BaseException) -> dict[str, Any]:
    """The error envelope for a failed request (type name + message)."""
    return {
        "ok": False,
        "error": {"type": type(error).__name__, "message": str(error)},
    }


def check_response(message: dict[str, Any]) -> dict[str, Any]:
    """Client-side: raise :class:`ServerError` for error envelopes,
    pass successful responses through."""
    if message.get("ok"):
        return message
    error = message.get("error") or {}
    raise ServerError(
        error.get("message", "unknown server error"),
        remote_type=error.get("type", "Exception"),
    )


class ServerError(Exception):
    """A server-side failure surfaced on the client, carrying the remote
    exception's type name."""

    def __init__(self, message: str, remote_type: str = "Exception"):
        super().__init__(message)
        self.remote_type = remote_type

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.remote_type}] {super().__str__()}"
