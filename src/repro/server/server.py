"""The concurrent query server: admission, worker pool, wire front end.

:class:`QueryServer` turns an embedded :class:`~repro.engine.database.Database`
into a multi-session engine.  The flow of one statement:

1. **Admission** — :meth:`QueryServer.submit` resolves the session and
   captures a :class:`~repro.storage.snapshot.DatabaseSnapshot` *now*:
   whatever versions the tables are at when the statement is accepted are
   the versions the whole plan will read.  The statement then joins the
   server queue.
2. **Queueing** — a bounded set of worker threads drains the queue; the
   queue length is observable (:meth:`QueryServer.summary`), which is the
   hook a future admission-control policy needs.
3. **Execution** — the worker runs the statement through its
   :class:`~repro.server.session.ServerSession`, which plans against the
   process-wide shared plan cache and executes against the admission
   snapshot.  The result (or exception) resolves the caller's future.

Two client surfaces share that path:

* **in-process** — :meth:`QueryServer.session` returns an
  :class:`InProcessClient` whose ``execute`` goes admission → queue →
  worker exactly like remote traffic (tests and embedding servers use
  this; no sockets involved);
* **TCP** — :meth:`QueryServer.start` (with a port) listens for
  connections speaking the line-delimited JSON protocol
  (:mod:`repro.server.protocol`); each connection gets a session on
  ``hello`` and a reader thread that forwards its statements.

Thread model: workers execute statements concurrently; per-session
statements serialize on the session lock; writers (``insert`` / ``delete``
ops and the embedded write API) serialize per table on the storage write
lock and publish new versions readers never block on.  DML routes through
the session, so inside an open transaction (``begin``/``commit``/
``rollback`` ops) it buffers privately instead of publishing, and queries
read the BEGIN-time snapshot plus those buffered writes.  Wire DML
deliberately bypasses the read queue — it needs no admission snapshot and
must not wait behind queued reads — running on the connection thread; it
is surfaced separately as ``writes_executed`` in :meth:`QueryServer.summary`
(a future admission-control policy that should govern writes would route
these through :meth:`QueryServer.submit`).  The GIL bounds CPU
parallelism, so the worker pool's win is *overlap* — queue wait, client
think time and socket I/O — exactly the shape of multi-user serving.
"""

from __future__ import annotations

import queue
import socket
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from ..execution import morsels
from ..storage.snapshot import DatabaseSnapshot
from ..storage.transaction import SerializationError, retry_backoff
from . import protocol
from .protocol import ProtocolError
from .session import ServerSession, SessionError, SessionManager

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..engine.database import Database
    from ..engine.result import QueryResult
    from ..storage.transaction import Transaction
    from ..verify.history import History
    from .history import HistoryRecorder


@dataclass
class _Request:
    """One admitted statement waiting for a worker."""

    session: ServerSession
    sql: str
    params: Any
    k: int | None
    snapshot: DatabaseSnapshot
    future: "Future[QueryResult]" = field(default_factory=Future)


class QueryServer:
    """A threaded, multi-session front end over one database.

    ``workers`` sizes the execution pool; ``port`` (not None) additionally
    opens the TCP listener on :meth:`start` (``port=0`` picks an ephemeral
    port — see :attr:`address`).  Use as a context manager for clean
    shutdown::

        with db.serve(workers=4) as server:
            with server.session() as client:
                client.execute("SELECT ... LIMIT 5")
    """

    def __init__(
        self,
        database: "Database",
        workers: int = 4,
        host: str = "127.0.0.1",
        port: int | None = None,
        record_history: bool = False,
        idle_timeout: "float | None" = None,
        metrics_port: int | None = None,
        **session_defaults: Any,
    ):
        if workers < 1:
            raise ValueError("worker pool needs at least one thread")
        if idle_timeout is not None and idle_timeout <= 0:
            raise ValueError("idle_timeout must be positive (or None)")
        self.database = database
        self.workers = workers
        self.host = host
        self.port = port
        #: seconds of client silence before a connection is reaped (None =
        #: never); every connection polls its socket with a short timeout,
        #: so a dead client cannot pin its thread forever either way
        self.idle_timeout = idle_timeout
        self.sessions = SessionManager(database, **session_defaults)
        #: transaction-history recording for the black-box isolation
        #: checker (repro.verify); opt-in — it retains every finished
        #: transaction's event log until harvested
        self.recorder: "HistoryRecorder | None" = None
        if record_history:
            from .history import HistoryRecorder

            self.recorder = HistoryRecorder()
            database.transactions.add_listener(self.recorder)
        #: port for the optional Prometheus-text ``GET /metrics`` endpoint
        #: (None = no HTTP scrape surface; 0 picks an ephemeral port)
        self.metrics_port = metrics_port
        self._metrics_httpd: Any = None
        self._queue: "queue.Queue[_Request | None]" = queue.Queue()
        self._threads: list[threading.Thread] = []
        self._listener: socket.socket | None = None
        self._connections: set[socket.socket] = set()
        self._connections_lock = threading.Lock()
        self._running = False
        #: set by :meth:`shutdown`: stop admitting, let in-flight finish
        self._draining = False
        self._lock = threading.Lock()
        #: signalled whenever a statement resolves (drain waits on it)
        self._idle = threading.Condition(self._lock)
        #: admission/queue metrics
        self.statements_admitted = 0
        self.statements_completed = 0
        self.statements_failed = 0
        self.max_queue_depth = 0
        #: idle connections closed by the reaper
        self.connections_reaped = 0
        #: wire DML ops (insert/delete), which bypass the read queue: they
        #: run on the connection thread and serialize on the storage write
        #: locks, so they are counted separately from queued statements
        self.writes_executed = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "QueryServer":
        """Spin up the worker pool (and the TCP listener when a port is
        configured); idempotent."""
        with self._lock:
            if self._running:
                return self
            self._running = True
        for i in range(self.workers):
            thread = threading.Thread(
                target=self._worker_loop, name=f"repro-worker-{i}", daemon=True
            )
            thread.start()
            self._threads.append(thread)
        if self.port is not None:
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind((self.host, self.port))
            listener.listen()
            listener.settimeout(0.2)
            self._listener = listener
            self.port = listener.getsockname()[1]
            accept = threading.Thread(
                target=self._accept_loop, name="repro-accept", daemon=True
            )
            accept.start()
            self._threads.append(accept)
        if self.metrics_port is not None:
            self._start_metrics_endpoint()
        return self

    @property
    def address(self) -> tuple[str, int]:
        """The listening ``(host, port)`` (port resolved after start)."""
        if self.port is None:
            raise RuntimeError("server has no TCP listener configured")
        return (self.host, self.port)

    @property
    def running(self) -> bool:
        return self._running

    def stop(self) -> None:
        """Drain and stop: close connections, stop workers, close sessions."""
        with self._lock:
            if not self._running:
                return
            self._running = False
        if self._metrics_httpd is not None:
            self._metrics_httpd.shutdown()
            self._metrics_httpd.server_close()
            self._metrics_httpd = None
        if self._listener is not None:
            self._listener.close()
        with self._connections_lock:
            connections = list(self._connections)
            self._connections.clear()
        for conn in connections:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            conn.close()
        with self._lock:
            # Sentinels go in under the lock, after _running is False: no
            # request can be enqueued behind them (see submit()).
            for __ in range(self.workers):
                self._queue.put(None)
        for thread in self._threads:
            thread.join(timeout=5)
        self._threads.clear()
        # Belt and braces: fail anything still queued (e.g. a worker died
        # on join timeout) so no caller blocks on an unresolvable future.
        while True:
            try:
                request = self._queue.get_nowait()
            except queue.Empty:
                break
            if request is not None:
                request.future.set_exception(
                    RuntimeError("server stopped before executing the statement")
                )
        self.sessions.close_all()
        if self.recorder is not None:
            self.database.transactions.remove_listener(self.recorder)

    def shutdown(self, drain_timeout: float = 10.0) -> None:
        """Graceful stop: refuse new statements, drain in-flight ones,
        roll back every session's open transaction, and checkpoint
        durable state.

        Admission stops immediately (:meth:`submit` raises); statements
        already queued or executing get up to ``drain_timeout`` seconds to
        finish, then :meth:`stop` tears down connections and workers
        (``sessions.close_all`` rolls back open transactions there).  If
        the database has durability attached, a final checkpoint persists
        everything the WAL holds — a restart recovers with an empty log.
        """
        with self._idle:
            if not self._running:
                return
            self._draining = True
            deadline = time.monotonic() + drain_timeout
            while (
                self.statements_admitted
                != self.statements_completed + self.statements_failed
            ):
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break  # stop() fails whatever is still queued
                self._idle.wait(remaining)
        self.stop()
        database = self.database
        if database.durability is not None and database.persist_dir is not None:
            database.checkpoint()

    @property
    def draining(self) -> bool:
        return self._draining

    def history(self, initial: "dict | None" = None) -> "History":
        """The recorded transaction history (requires
        ``record_history=True``); feed it to
        :func:`repro.verify.check_snapshot_isolation`."""
        if self.recorder is None:
            raise RuntimeError(
                "history recording is off; serve with record_history=True"
            )
        return self.recorder.history(initial=initial)

    def __enter__(self) -> "QueryServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # admission + execution (shared by in-process and TCP clients)
    # ------------------------------------------------------------------
    def submit(
        self,
        session: "ServerSession | str",
        sql: str,
        params: Any = None,
        k: int | None = None,
    ) -> "Future[QueryResult]":
        """Admit one statement; returns a future resolved by a worker.

        Admission is where the snapshot is captured: the statement will
        execute against the table versions current *now*, regardless of
        how long it queues or what writers do meanwhile.
        """
        if isinstance(session, str):
            session = self.sessions.get(session)
        request = _Request(
            session=session,
            sql=sql,
            params=params,
            k=k,
            snapshot=self.database.snapshot(),
        )
        # Admission check + enqueue are atomic with stop(): either this
        # request precedes the workers' shutdown sentinels in the FIFO
        # (and will be served), or the server is already stopping and the
        # caller fails fast instead of waiting on a future nobody resolves.
        with self._lock:
            if not self._running:
                raise RuntimeError("server is not running (call start())")
            if self._draining:
                raise RuntimeError(
                    "server is draining for shutdown; no new statements"
                )
            self.statements_admitted += 1
            depth = self._queue.qsize() + 1
            if depth > self.max_queue_depth:
                self.max_queue_depth = depth
            self._queue.put(request)
        return request.future

    def execute(
        self,
        session: "ServerSession | str",
        sql: str,
        params: Any = None,
        k: int | None = None,
    ) -> "QueryResult":
        """:meth:`submit` and wait — the synchronous client call."""
        return self.submit(session, sql, params=params, k=k).result()

    def session(self, **settings: Any) -> "InProcessClient":
        """Open a session and return its in-process client handle."""
        return InProcessClient(self, self.sessions.open(**settings))

    def _worker_loop(self) -> None:
        while True:
            request = self._queue.get()
            if request is None:
                return
            try:
                result = request.session.execute(
                    request.sql,
                    params=request.params,
                    k=request.k,
                    snapshot=request.snapshot,
                )
            except BaseException as error:  # resolve, never kill the worker
                with self._idle:
                    self.statements_failed += 1
                    self._idle.notify_all()
                request.future.set_exception(error)
            else:
                with self._idle:
                    self.statements_completed += 1
                    self._idle.notify_all()
                request.future.set_result(result)

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------
    def summary(self) -> dict[str, Any]:
        """Server, session and shared-cache counters in one dict."""
        cache = self.database.planner.cache
        out = {
            "workers": self.workers,
            "statements_admitted": self.statements_admitted,
            "statements_completed": self.statements_completed,
            "statements_failed": self.statements_failed,
            "queue_depth": self._queue.qsize(),
            "max_queue_depth": self.max_queue_depth,
            "writes_executed": self.writes_executed,
            "connections_reaped": self.connections_reaped,
            "draining": self._draining,
        }
        for key, value in self.sessions.summary().items():
            out[key if key.startswith("sessions_") else f"sessions_{key}"] = value
        out.update(
            (f"shared_cache_{key}", value)
            for key, value in cache.stats.summary().items()
        )
        out["shared_cache_entries"] = len(cache)
        # Plan-to-code compilation counters: how many cached plans carry
        # fused functions and what their one-time compilation cost was.
        out.update(
            (f"planner_{key}", value)
            for key, value in self.database.planner.metrics.summary().items()
            if key in ("plans_compiled", "compile_seconds")
        )
        # Statements of every session submit their morsels to the one
        # process-wide pool (execution/morsels.py), so intra-query DOP and
        # the worker count here never oversubscribe cores together.
        out.update(morsels.pool_summary())
        return out

    def stats(self, traces: int = 10) -> dict[str, Any]:
        """The observability snapshot behind the ``stats`` wire op: every
        registered metric (counters, gauges, histogram quantiles) plus the
        most recent finished traces, newest first."""
        database = self.database
        recent = list(database.tracer.recent(traces))
        recent.reverse()
        return {
            "metrics": database.registry.collect(),
            "traces": [trace.to_dict() for trace in recent],
            "tracer": database.tracer.summary(),
        }

    def _start_metrics_endpoint(self) -> None:
        """Expose ``GET /metrics`` (Prometheus text format) on
        :attr:`metrics_port`.  Stdlib-only: a daemonized
        :class:`~http.server.ThreadingHTTPServer` whose handler renders the
        database's registry on every scrape."""
        from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

        registry = self.database.registry

        class _MetricsHandler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 - stdlib naming
                if self.path.rstrip("/") not in ("", "/metrics"):
                    self.send_error(404, "only /metrics is served")
                    return
                body = registry.render_prometheus().encode("utf-8")
                self.send_response(200)
                self.send_header(
                    "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
                )
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args: Any) -> None:  # silence stderr
                pass

        httpd = ThreadingHTTPServer((self.host, self.metrics_port), _MetricsHandler)
        httpd.daemon_threads = True
        self.metrics_port = httpd.server_address[1]
        self._metrics_httpd = httpd
        thread = threading.Thread(
            target=httpd.serve_forever,
            name="repro-metrics-http",
            daemon=True,
        )
        thread.start()

    # ------------------------------------------------------------------
    # TCP front end
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        assert self._listener is not None
        while self._running:
            try:
                conn, __ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return  # listener closed during stop()
            with self._connections_lock:
                self._connections.add(conn)
            thread = threading.Thread(
                target=self._serve_connection, args=(conn,), daemon=True
            )
            thread.start()

    def _serve_connection(self, conn: socket.socket) -> None:
        """One connection's read loop: a hand-buffered ``recv`` with a
        short socket timeout, so the thread regularly wakes to notice a
        stopping server or an idle client (``idle_timeout``) instead of
        blocking in a read forever — a dead client can never pin its
        thread.  Bytes are split on newlines into protocol messages."""
        session: ServerSession | None = None
        poll = 0.5
        if self.idle_timeout is not None:
            poll = min(poll, max(self.idle_timeout / 4, 0.05))
        last_activity = time.monotonic()
        buffer = b""
        try:
            conn.settimeout(poll)
            while True:
                newline = buffer.find(b"\n")
                if newline >= 0:
                    line = buffer[: newline + 1]
                    buffer = buffer[newline + 1 :]
                    if not line.strip():
                        continue
                    last_activity = time.monotonic()
                    try:
                        response, session, done = self._handle_message(
                            line, session
                        )
                    except (
                        ProtocolError,
                        SessionError,
                    ) as error:
                        response, done = protocol.error_payload(error), False
                    except Exception as error:
                        response, done = protocol.error_payload(error), False
                    try:
                        conn.sendall(protocol.encode(response))
                    except OSError:
                        return
                    if done:
                        return
                    continue
                if not self._running:
                    return
                try:
                    chunk = conn.recv(65536)
                except socket.timeout:
                    if (
                        self.idle_timeout is not None
                        and time.monotonic() - last_activity
                        > self.idle_timeout
                    ):
                        with self._lock:
                            self.connections_reaped += 1
                        return
                    continue
                except OSError:
                    return
                if not chunk:
                    return  # client closed its end
                buffer += chunk
        except OSError:
            pass  # connection torn down mid-read (client or stop())
        finally:
            if session is not None and not session.closed:
                try:
                    self.sessions.close(session.session_id)
                except SessionError:
                    pass
            with self._connections_lock:
                self._connections.discard(conn)
            conn.close()

    def _handle_message(
        self, line: bytes, session: ServerSession | None
    ) -> tuple[dict[str, Any], ServerSession | None, bool]:
        """Dispatch one wire message; returns (response, session, done)."""
        message = protocol.decode(line)
        op = protocol.request_op(message)
        if op == "hello":
            if session is not None:
                raise ProtocolError("session already open on this connection")
            settings = message.get("settings") or {}
            if not isinstance(settings, dict):
                raise ProtocolError("'settings' must be an object")
            session = self.sessions.open(**settings)
            return {"ok": True, "session": session.session_id}, session, False
        if session is None:
            raise ProtocolError(f"op {op!r} requires a session; send 'hello' first")
        if op == "query":
            result = self.execute(
                session,
                self._sql_of(message),
                params=message.get("params"),
                k=message.get("k"),
            )
            return protocol.result_payload(result), session, False
        if op == "explain":
            text = session.explain(self._sql_of(message), params=message.get("params"))
            return {"ok": True, "text": text}, session, False
        if op == "insert":
            table = message.get("table")
            rows = message.get("rows")
            if not isinstance(table, str) or not isinstance(rows, list):
                raise ProtocolError("'insert' needs a table name and a row list")
            inserted = session.insert(table, [tuple(r) for r in rows])
            with self._lock:
                self.writes_executed += 1
            return {"ok": True, "inserted": inserted}, session, False
        if op == "delete":
            table = message.get("table")
            column = message.get("column")
            if not isinstance(table, str) or not isinstance(column, str):
                raise ProtocolError("'delete' needs a table and a column")
            equals = message.get("equals")
            deleted = session.delete(table, column=column, equals=equals)
            with self._lock:
                self.writes_executed += 1
            return {"ok": True, "deleted": deleted}, session, False
        if op == "begin":
            txn = session.begin()
            return (
                {"ok": True, "txn": txn.txn_id, "begin_seq": txn.begin_seq},
                session,
                False,
            )
        if op == "commit":
            # A first-committer-wins loss raises SerializationError here;
            # the generic error envelope carries its type name, which the
            # remote client maps back to the same exception for retries.
            commit_seq = session.commit()
            return {"ok": True, "commit_seq": commit_seq}, session, False
        if op == "rollback":
            session.rollback()
            return {"ok": True, "rolled_back": True}, session, False
        if op == "metrics":
            payload = {
                "ok": True,
                "session": session.summary(),
                "server": self.summary(),
            }
            return payload, session, False
        if op == "stats":
            payload = {"ok": True}
            payload.update(self.stats(traces=message.get("traces", 10)))
            return payload, session, False
        assert op == "close"
        self.sessions.close(session.session_id)
        return {"ok": True, "closed": session.session_id}, None, True

    @staticmethod
    def _sql_of(message: dict[str, Any]) -> str:
        sql = message.get("sql")
        if not isinstance(sql, str) or not sql.strip():
            raise ProtocolError("request is missing its 'sql' text")
        return sql


class InProcessClient:
    """A session handle whose statements go through the server's
    admission → queue → worker path, without sockets (the test surface,
    and the natural embedding API)."""

    def __init__(self, server: QueryServer, session: ServerSession):
        self._server = server
        self.session = session

    @property
    def session_id(self) -> str:
        return self.session.session_id

    def execute(
        self, sql: str, params: Any = None, k: int | None = None
    ) -> "QueryResult":
        return self._server.execute(self.session, sql, params=params, k=k)

    def submit(
        self, sql: str, params: Any = None, k: int | None = None
    ) -> "Future[QueryResult]":
        return self._server.submit(self.session, sql, params=params, k=k)

    def explain(self, sql: str, params: Any = None) -> str:
        return self.session.explain(sql, params=params)

    # Transactions and DML run on the caller's thread (like wire DML on
    # its connection thread): begin/commit are short critical sections and
    # buffered writes touch only session-private state, so they never
    # queue behind reads.
    def begin(self) -> "Transaction":
        return self.session.begin()

    def commit(self) -> int:
        return self.session.commit()

    def rollback(self) -> None:
        self.session.rollback()

    def insert(self, table: str, rows: list) -> int:
        return self.session.insert(table, rows)

    def delete(self, table: str, column: str, equals: Any) -> int:
        return self.session.delete(table, column=column, equals=equals)

    def run_transaction(
        self,
        fn: "Callable[[InProcessClient], Any]",
        retries: int = 10,
        backoff: float = 0.01,
    ) -> Any:
        """Run ``fn(client)`` in a transaction on this session, retrying
        serialization conflicts with jittered exponential backoff — the
        served twin of :meth:`Database.run_transaction`.  The helper
        begins before and commits after ``fn`` (unless ``fn`` already
        finished the transaction); any exception rolls back."""
        attempt = 0
        while True:
            self.begin()
            try:
                result = fn(self)
                if self.session.in_transaction:
                    self.commit()
                return result
            except SerializationError:
                self.rollback()
                if attempt >= retries:
                    raise
                time.sleep(retry_backoff(attempt, backoff))
                attempt += 1
            except BaseException:
                self.rollback()
                raise

    def summary(self) -> dict[str, float]:
        return self.session.summary()

    def close(self) -> None:
        if not self.session.closed:
            self._server.sessions.close(self.session.session_id)

    def __enter__(self) -> "InProcessClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
