"""The concurrent serving subsystem: multi-session server over one engine.

Turns the embedded :class:`~repro.engine.database.Database` into a
multi-session engine:

* :class:`QueryServer` — admission, worker-pool execution, and a
  line-delimited JSON wire protocol over TCP
  (:mod:`repro.server.protocol`);
* :class:`SessionManager` / :class:`ServerSession` — per-client settings
  and metrics over the **process-wide shared plan cache**;
* snapshot-isolated reads — every statement executes against the
  :class:`~repro.storage.snapshot.DatabaseSnapshot` captured at admission,
  so readers never block writers and never observe half-applied DML;
* :func:`connect` / :class:`RemoteSession` — the TCP client (what the CLI's
  ``\\connect`` uses), plus :class:`InProcessClient` for tests and
  embedding;
* multi-statement transactions — ``begin``/``commit``/``rollback`` on
  every client surface (sessions hold at most one open transaction; see
  :mod:`repro.storage.transaction`), with :class:`HistoryRecorder`
  (``record_history=True``) logging finished transactions for the
  black-box isolation checker in :mod:`repro.verify`.

Start serving with :meth:`Database.serve <repro.engine.database.Database.serve>`
or ``python -m repro serve``.
"""

from .client import RemoteResult, RemoteSession, connect
from .history import HistoryRecorder
from .protocol import ProtocolError, ServerError
from .server import InProcessClient, QueryServer
from .session import ServerSession, SessionError, SessionManager

__all__ = [
    "HistoryRecorder",
    "InProcessClient",
    "ProtocolError",
    "QueryServer",
    "RemoteResult",
    "RemoteSession",
    "ServerError",
    "ServerSession",
    "SessionError",
    "SessionManager",
    "connect",
]
