"""Server sessions: per-client execution state over one shared engine.

A :class:`ServerSession` is the unit of admission in the concurrent
serving subsystem: it carries a client's planner settings and metrics, and
executes statements against the **process-wide shared plan cache** — every
session reuses plans any other session compiled (the cache key is the
``(catalog generation, query signature)`` pair, so staleness is handled
once, centrally).  Per-session hit/miss counters record how much of that
shared work each client actually reused.

Concurrency contract:

* Statements of *different* sessions run concurrently on the server's
  worker pool.
* Statements of *one* session are serialized on the session's statement
  lock (a client that pipelines requests still gets in-order, one-at-a-time
  execution — the wire protocol has no statement ids to match replies by).
* A *parameterized* statement binds its values into the cached template's
  shared parameter slots; bind + execute happen atomically under the
  entry's ``execution_lock`` so interleaved executions of one template
  never read each other's constants (see
  :meth:`repro.planner.Planner.prepare` ``bind=False``).
* Reads are **snapshot-isolated**: the server captures a
  :class:`~repro.storage.snapshot.DatabaseSnapshot` at admission and the
  whole plan executes against those table versions, no matter what
  concurrent writers commit meanwhile.
* A session may hold at most one open **transaction**
  (:meth:`ServerSession.begin` / ``commit`` / ``rollback``).  While it is
  open, every statement of the session reads the BEGIN-time snapshot plus
  the transaction's own buffered writes (an admission snapshot the server
  captured is overridden — transactional reads must not advance), DML
  buffers instead of publishing, and executed queries are logged into the
  transaction's event stream for the history recorder.  Closing a session
  rolls back its open transaction.

The :class:`SessionManager` owns the id → session registry (thread-safe),
hands out monotonically-numbered session ids, and aggregates summaries.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Any

from ..algebra.parameters import bind_slots
from ..observe import system_tables as _system_tables
from ..storage.transaction import Transaction, TransactionError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..engine.database import Database
    from ..engine.result import QueryResult
    from ..storage.snapshot import DatabaseSnapshot


class SessionError(Exception):
    """Raised for unknown or closed sessions."""


class ServerSession:
    """One client's execution context on a served database."""

    def __init__(
        self,
        session_id: str,
        database: "Database",
        strategy: str = "rank-aware",
        **settings: Any,
    ):
        self.session_id = session_id
        self._db = database
        self.strategy = strategy
        self.settings = settings
        self._closed = False
        #: serializes this session's statements (see the module contract)
        self._statement_lock = threading.Lock()
        #: the session's open transaction, if any (at most one)
        self.transaction: "Transaction | None" = None
        #: client-side totals
        self.queries_executed = 0
        self.rows_returned = 0
        #: shared-plan-cache reuse as *this session* experienced it
        self.plan_cache_hits = 0
        self.plan_cache_misses = 0
        #: execution-regime split: statements whose plan carried at least
        #: one compiled fused segment vs fully interpreted ones
        self.compiled_executions = 0
        self.interpreted_executions = 0

    # -- lifecycle ---------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        # An open transaction dies with its session — buffered writes are
        # private, so this is a pure discard.
        transaction, self.transaction = self.transaction, None
        if transaction is not None:
            transaction.rollback()
        self._closed = True

    def _check_open(self) -> None:
        if self._closed:
            raise SessionError(f"session {self.session_id!r} is closed")

    # -- transactions ------------------------------------------------------
    @property
    def in_transaction(self) -> bool:
        return self.transaction is not None and self.transaction.active

    def begin(self) -> "Transaction":
        """Open a transaction on this session (at most one at a time)."""
        self._check_open()
        with self._statement_lock:
            if self.in_transaction:
                raise TransactionError(
                    f"session {self.session_id!r} already has an open "
                    "transaction; COMMIT or ROLLBACK it first"
                )
            self.transaction = self._db.begin(session=self.session_id)
            return self.transaction

    def commit(self) -> int:
        """Commit the open transaction; returns the commit sequence.
        Raises :class:`~repro.storage.transaction.SerializationError` on a
        first-committer-wins conflict (the transaction is gone either way
        — retry means a fresh ``begin``)."""
        self._check_open()
        with self._statement_lock:
            transaction = self.transaction
            if transaction is None or not transaction.active:
                raise TransactionError(
                    f"session {self.session_id!r} has no open transaction"
                )
            self.transaction = None
            return transaction.commit()

    def rollback(self) -> None:
        """Discard the open transaction's buffered writes.  A no-op when
        none is open, so cleanup paths may call it unconditionally."""
        self._check_open()
        with self._statement_lock:
            transaction, self.transaction = self.transaction, None
            if transaction is not None:
                transaction.rollback()

    # -- DML (transactional when a transaction is open) --------------------
    def insert(self, table: str, rows: list) -> int:
        """Insert value tuples — buffered in the open transaction, applied
        immediately (autocommit) otherwise."""
        self._check_open()
        with self._statement_lock:
            if self.in_transaction:
                return self.transaction.insert(
                    self._db.catalog.table(table), rows
                )
            return self._db.insert(table, rows)

    def delete(self, table: str, column: str, equals: Any) -> int:
        """Delete rows by column equality — buffered in the open
        transaction (matched against its own read view), applied
        immediately (autocommit) otherwise."""
        self._check_open()
        with self._statement_lock:
            if self.in_transaction:
                return self.transaction.delete_where(
                    self._db.catalog.table(table), column=column, equals=equals
                )
            return self._db.delete_where(table, column=column, equals=equals)

    # -- execution ---------------------------------------------------------
    def execute(
        self,
        sql: str,
        params: Any = None,
        k: int | None = None,
        snapshot: "DatabaseSnapshot | None" = None,
    ) -> "QueryResult":
        """Plan (against the shared cache) and execute one statement.

        ``snapshot`` pins the table versions the plan reads (captured by
        the server at admission); ``None`` executes against the live
        catalog (the embedded, single-threaded convenience path).  While
        the session has an open transaction, its read view (BEGIN-time
        snapshot + own buffered writes) overrides either.
        """
        self._check_open()
        # system.* virtual tables are served by interception — live
        # introspection must not enter the planner, the shared plan
        # cache, or this session's counters
        virtual = _system_tables.maybe_execute(
            sql, self._db.tracer, self._db.registry
        )
        if virtual is not None:
            return virtual
        with self._statement_lock, self._db.tracer.trace(
            sql, surface=f"server:{self.session_id}"
        ):
            transaction = self.transaction if self.in_transaction else None
            if transaction is not None:
                snapshot = transaction.read_view()
            planner = self._db.planner
            entry, hit = planner.prepare(
                sql,
                strategy=self.strategy,
                params=params,
                bind=False,
                **self.settings,
            )
            if hit:
                self.plan_cache_hits += 1
            else:
                self.plan_cache_misses += 1
            plan, wanted = entry.executable_for(k)
            self._db.tracer.annotate(regime=entry.regime())
            if entry.spec.parameters:
                # Atomic bind + execute: one template's concurrent runs
                # (other sessions, other workers) queue here instead of
                # overwriting each other's constants mid-execution.
                with entry.execution_lock:
                    bind_slots(entry.spec.parameters, params)
                    result = self._execute(entry, plan, wanted, hit, snapshot)
            else:
                bind_slots(entry.spec.parameters, params)  # rejects stray params
                result = self._execute(entry, plan, wanted, hit, snapshot)
            # Counter updates stay inside the statement lock: a client
            # pipelining submits may have its statements finished by
            # different workers, and increments must not be lost.
            self.queries_executed += 1
            self.rows_returned += len(result)
            if entry.compiled_segments:
                self.compiled_executions += 1
            else:
                self.interpreted_executions += 1
            if transaction is not None and transaction.active:
                transaction.record_query(
                    sql, params, [tuple(values) for values in result.rows]
                )
        return result

    def _execute(self, entry, plan, k, hit, snapshot) -> "QueryResult":
        return self._db.execute(
            plan,
            entry.scoring,
            k=k,
            evaluators=entry.evaluators,
            plan_cached=hit,
            snapshot=snapshot,
            entry=entry,
        )

    def explain(self, sql: str, params: Any = None) -> str:
        """The chosen plan for a statement under this session's settings."""
        self._check_open()
        with self._statement_lock:
            entry, __ = self._db.planner.prepare(
                sql,
                strategy=self.strategy,
                params=params,
                bind=False,
                **self.settings,
            )
            return entry.plan.explain()

    # -- metrics -----------------------------------------------------------
    @property
    def hit_rate(self) -> float:
        """This session's shared-plan-cache hit rate."""
        total = self.plan_cache_hits + self.plan_cache_misses
        return self.plan_cache_hits / total if total else 0.0

    def summary(self) -> dict[str, float]:
        return {
            "session_id": self.session_id,
            "queries_executed": self.queries_executed,
            "rows_returned": self.rows_returned,
            "plan_cache_hits": self.plan_cache_hits,
            "plan_cache_misses": self.plan_cache_misses,
            "plan_cache_hit_rate": self.hit_rate,
            "compiled_executions": self.compiled_executions,
            "interpreted_executions": self.interpreted_executions,
        }


class SessionManager:
    """Thread-safe registry of a served database's sessions."""

    def __init__(self, database: "Database", **defaults: Any):
        self._db = database
        self._defaults = defaults
        self._lock = threading.Lock()
        self._sessions: dict[str, ServerSession] = {}
        self._counter = 0
        #: sessions ever admitted (open + closed), for capacity metrics
        self.sessions_opened = 0
        #: lifetime totals folded in from closed sessions, so
        #: :meth:`summary` keeps counting work a departed client did
        self.sessions_closed = 0
        self._closed_totals = {
            "queries_executed": 0,
            "rows_returned": 0,
            "plan_cache_hits": 0,
            "plan_cache_misses": 0,
            "compiled_executions": 0,
            "interpreted_executions": 0,
        }

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)

    def open(self, **settings: Any) -> ServerSession:
        """Admit a new session (``settings`` override the server defaults)."""
        with self._lock:
            self._counter += 1
            self.sessions_opened += 1
            session_id = f"s{self._counter}"
            merged = dict(self._defaults)
            merged.update(settings)
            session = ServerSession(session_id, self._db, **merged)
            self._sessions[session_id] = session
            return session

    def get(self, session_id: str) -> ServerSession:
        with self._lock:
            session = self._sessions.get(session_id)
        if session is None:
            raise SessionError(f"unknown session {session_id!r}")
        return session

    def close(self, session_id: str) -> None:
        with self._lock:
            session = self._sessions.pop(session_id, None)
        if session is None:
            raise SessionError(f"unknown session {session_id!r}")
        session.close()
        self._fold(session)

    def close_all(self) -> None:
        with self._lock:
            sessions = list(self._sessions.values())
            self._sessions.clear()
        for session in sessions:
            session.close()
            self._fold(session)

    def _fold(self, session: ServerSession) -> None:
        """Bank a closed session's counters into the lifetime totals."""
        with self._lock:
            self.sessions_closed += 1
            totals = self._closed_totals
            totals["queries_executed"] += session.queries_executed
            totals["rows_returned"] += session.rows_returned
            totals["plan_cache_hits"] += session.plan_cache_hits
            totals["plan_cache_misses"] += session.plan_cache_misses
            totals["compiled_executions"] += session.compiled_executions
            totals["interpreted_executions"] += session.interpreted_executions

    def sessions(self) -> list[ServerSession]:
        with self._lock:
            return list(self._sessions.values())

    def summary(self) -> dict[str, float]:
        """Aggregate client-side totals: open sessions plus the banked
        totals of every session that has closed (lifetime view)."""
        sessions = self.sessions()
        with self._lock:
            closed = dict(self._closed_totals)
            sessions_closed = self.sessions_closed
        return {
            "sessions_open": len(sessions),
            "sessions_opened": self.sessions_opened,
            "sessions_closed": sessions_closed,
            "queries_executed": closed["queries_executed"]
            + sum(s.queries_executed for s in sessions),
            "rows_returned": closed["rows_returned"]
            + sum(s.rows_returned for s in sessions),
            "plan_cache_hits": closed["plan_cache_hits"]
            + sum(s.plan_cache_hits for s in sessions),
            "plan_cache_misses": closed["plan_cache_misses"]
            + sum(s.plan_cache_misses for s in sessions),
            "compiled_executions": closed["compiled_executions"]
            + sum(s.compiled_executions for s in sessions),
            "interpreted_executions": closed["interpreted_executions"]
            + sum(s.interpreted_executions for s in sessions),
        }
