"""TCP client for the serving protocol (the ``\\connect`` backend).

:func:`connect` opens a socket, says ``hello`` and returns a
:class:`RemoteSession` whose surface mirrors the in-process client:
``execute`` returns a :class:`RemoteResult` carrying columns, rows, scores
and the server-side execution metrics.  One connection carries one session;
requests are answered in order (the protocol has no statement ids), which
matches the per-session serialization the server enforces anyway.
"""

from __future__ import annotations

import socket
import time
from typing import Any, Callable

from ..storage.transaction import SerializationError, retry_backoff
from . import protocol
from .protocol import ProtocolError, ServerError

__all__ = ["connect", "RemoteSession", "RemoteResult", "ServerError"]


class RemoteResult:
    """A query result materialized from the wire.

    Mirrors the read surface of :class:`~repro.engine.result.QueryResult`
    that clients render: ``columns``, ``rows`` (value tuples, best first),
    ``scores``, ``plan_cached`` and the execution-metrics summary dict.
    """

    __slots__ = ("columns", "rows", "scores", "plan_cached", "metrics")

    def __init__(self, payload: dict[str, Any]):
        self.columns: list[str] = list(payload.get("columns", ()))
        self.rows: list[tuple] = [tuple(r) for r in payload.get("rows", ())]
        self.scores: list[float] = list(payload.get("scores", ()))
        self.plan_cached: bool = bool(payload.get("plan_cached", False))
        self.metrics: dict[str, float] = dict(payload.get("metrics", {}))

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def to_dicts(self) -> list[dict[str, Any]]:
        out = []
        for row, score in zip(self.rows, self.scores):
            record = dict(zip(self.columns, row))
            record["score"] = score
            out.append(record)
        return out

    def __repr__(self) -> str:
        return f"RemoteResult(rows={len(self.rows)}, cached={self.plan_cached})"


class RemoteSession:
    """One session over one TCP connection to a query server."""

    def __init__(self, sock: socket.socket, session_id: str):
        self._sock = sock
        self._reader = sock.makefile("rb")
        self.session_id = session_id
        self._closed = False
        #: client-side view of whether a transaction is open (begin sets,
        #: commit/rollback clear — commit clears even on a conflict, since
        #: the server aborted the transaction either way)
        self.in_transaction = False

    # -- plumbing ----------------------------------------------------------
    def _roundtrip(self, message: dict[str, Any]) -> dict[str, Any]:
        if self._closed:
            raise RuntimeError("remote session is closed")
        self._sock.sendall(protocol.encode(message))
        line = self._reader.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return protocol.check_response(protocol.decode(line))

    # -- the client surface ------------------------------------------------
    def execute(
        self, sql: str, params: Any = None, k: int | None = None
    ) -> RemoteResult:
        message: dict[str, Any] = {"op": "query", "sql": sql}
        if params is not None:
            message["params"] = params
        if k is not None:
            message["k"] = k
        return RemoteResult(self._roundtrip(message))

    def explain(self, sql: str, params: Any = None) -> str:
        message: dict[str, Any] = {"op": "explain", "sql": sql}
        if params is not None:
            message["params"] = params
        return self._roundtrip(message)["text"]

    def insert(self, table: str, rows: list) -> int:
        return self._roundtrip(
            {"op": "insert", "table": table, "rows": [list(r) for r in rows]}
        )["inserted"]

    def delete(self, table: str, column: str, equals: Any) -> int:
        return self._roundtrip(
            {"op": "delete", "table": table, "column": column, "equals": equals}
        )["deleted"]

    # -- transactions ------------------------------------------------------
    def begin(self) -> int:
        """Open a transaction on this session; returns its id.  Until
        commit/rollback, queries read the BEGIN-time snapshot (plus this
        session's own buffered writes) and insert/delete buffer."""
        txn = self._roundtrip({"op": "begin"})["txn"]
        self.in_transaction = True
        return txn

    def commit(self) -> int:
        """Commit; returns the commit sequence number.  A first-committer-
        wins conflict raises the same
        :class:`~repro.storage.transaction.SerializationError` embedded
        callers see (the transaction is already aborted server-side), so
        one retry loop serves both surfaces."""
        self.in_transaction = False
        try:
            return self._roundtrip({"op": "commit"})["commit_seq"]
        except ServerError as error:
            if error.remote_type == "SerializationError":
                raise SerializationError(str(error)) from None
            raise

    def rollback(self) -> None:
        """Discard the open transaction (no-op when none is open)."""
        self.in_transaction = False
        self._roundtrip({"op": "rollback"})

    def run_transaction(
        self,
        fn: "Callable[[RemoteSession], Any]",
        retries: int = 10,
        backoff: float = 0.01,
    ) -> Any:
        """Run ``fn(session)`` in a transaction, retrying serialization
        conflicts with jittered exponential backoff — the remote twin of
        :meth:`Database.run_transaction`.  The helper begins before and
        commits after ``fn`` (unless ``fn`` already finished the
        transaction itself); any exception rolls back."""
        attempt = 0
        while True:
            self.begin()
            try:
                result = fn(self)
                if self.in_transaction:
                    self.commit()
                return result
            except SerializationError:
                self.rollback()
                if attempt >= retries:
                    raise
                time.sleep(retry_backoff(attempt, backoff))
                attempt += 1
            except BaseException:
                if self.in_transaction:
                    try:
                        self.rollback()
                    except (OSError, ConnectionError, ServerError):
                        pass  # the connection may be the thing that died
                raise

    def metrics(self) -> dict[str, Any]:
        return self._roundtrip({"op": "metrics"})

    def stats(self, traces: int = 10) -> dict[str, Any]:
        """The server's observability snapshot: metrics registry contents
        plus its most recent finished traces (newest first)."""
        return self._roundtrip({"op": "stats", "traces": traces})

    def close(self) -> None:
        if self._closed:
            return
        try:
            self._roundtrip({"op": "close"})
        except (OSError, ConnectionError, ServerError, ProtocolError):
            pass  # best-effort goodbye; the socket closes either way
        finally:
            self._closed = True
            self._reader.close()
            self._sock.close()

    def __enter__(self) -> "RemoteSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def connect(
    host: str = "127.0.0.1",
    port: int = 5433,
    timeout: float | None = 10.0,
    **settings: Any,
) -> RemoteSession:
    """Open a session on a serving database; ``settings`` become the
    session's planner settings (strategy, sample_ratio, …)."""
    sock = socket.create_connection((host, port), timeout=timeout)
    try:
        message: dict[str, Any] = {"op": "hello"}
        if settings:
            message["settings"] = settings
        sock.sendall(protocol.encode(message))
        reader = sock.makefile("rb")
        try:
            line = reader.readline()
        finally:
            reader.close()
        if not line:
            raise ConnectionError("server closed the connection during hello")
        response = protocol.check_response(protocol.decode(line))
        return RemoteSession(sock, response["session"])
    except BaseException:
        sock.close()
        raise
