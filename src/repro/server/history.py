"""Transaction-history recording for black-box isolation checking.

:class:`HistoryRecorder` subscribes to the engine's
:class:`~repro.storage.transaction.TransactionManager` and captures every
finished transaction — its begin/commit order stamps, terminal status,
owning session and statement-level event log — as a
:class:`~repro.verify.history.TransactionRecord`.  The harvested
:class:`~repro.verify.history.History` is what the black-box SI checker
(:mod:`repro.verify`) consumes: the recorder observes *only* what crossed
the transaction API, never engine internals, which is exactly the
black-box discipline the checking literature prescribes.

The manager invokes ``transaction_finished`` under its lock (begin/commit
are already serialized there), so the callback just snapshots the
transaction into an append-only list; harvesting copies the list under
the recorder's own lock.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING

from ..verify.history import History, TransactionRecord

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..storage.transaction import Transaction


class HistoryRecorder:
    """Append-only log of finished transactions, harvestable as a
    :class:`~repro.verify.history.History`."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._records: list[TransactionRecord] = []

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    # -- the TransactionManager listener surface ---------------------------
    def transaction_finished(self, txn: "Transaction") -> None:
        record = TransactionRecord(
            txn_id=txn.txn_id,
            begin_seq=txn.begin_seq,
            end_seq=txn.end_seq,
            status=txn.status,
            session=txn.session,
            events=list(txn.events),
        )
        with self._lock:
            self._records.append(record)

    # -- harvesting --------------------------------------------------------
    def history(self, initial: "dict | None" = None) -> History:
        """The recorded history so far (``initial`` preloads the key-value
        state the workload started from — see
        :class:`~repro.verify.history.History`)."""
        with self._lock:
            return History(list(self._records), initial=initial)

    def clear(self) -> None:
        with self._lock:
            self._records.clear()
