"""RankSQL reproduction: rank-aware query algebra, execution and optimization.

A pure-Python implementation of *RankSQL: Query Algebra and Optimization for
Relational Top-k Queries* (Li, Chang, Ilyas, Song — SIGMOD 2005), including
the complete relational substrate the paper's PostgreSQL prototype relied
on: storage, indexing, a SQL front end, a pipelined rank-aware execution
engine, and a two-dimensional dynamic-programming optimizer with
sampling-based cardinality estimation.

Quickstart::

    from repro import Database, DataType

    db = Database()
    db.create_table("hotel", [("name", DataType.TEXT), ("price", DataType.FLOAT)])
    ...
    result = db.query("SELECT * FROM hotel ORDER BY cheap(hotel.price) LIMIT 3")
"""

from .engine import Database, QueryResult, load_database, save_database
from .algebra import (
    BooleanPredicate,
    ParameterError,
    RankingPredicate,
    ScoringFunction,
    col,
    lit,
    sum_of,
)
from .optimizer import QuerySpec, RankAwareOptimizer, optimize_traditional
from .planner import PlanCache, Planner, PreparedQuery, Session
from .server import QueryServer, connect
from .storage import Column, DatabaseSnapshot, DataType, Schema

__version__ = "1.3.0"

__all__ = [
    "BooleanPredicate",
    "Column",
    "DataType",
    "Database",
    "DatabaseSnapshot",
    "ParameterError",
    "PlanCache",
    "Planner",
    "PreparedQuery",
    "QueryResult",
    "QueryServer",
    "QuerySpec",
    "RankAwareOptimizer",
    "RankingPredicate",
    "Schema",
    "ScoringFunction",
    "Session",
    "col",
    "connect",
    "lit",
    "load_database",
    "optimize_traditional",
    "save_database",
    "sum_of",
    "__version__",
]
