"""The ``system.*`` virtual tables.

``system.queries`` (recent traces) and ``system.metrics`` (the registry)
are served by *interception*, not by the planner: every SQL surface
checks :func:`maybe_execute` before parsing.  Virtual tables through the
planner would be all cost and no benefit here — dotted names don't bind
against the catalog, their contents change every query (so cached plans
for them are stale by construction), and introspection queries must not
evict real plans from the cache or perturb planner counters.

The supported shape is deliberately small::

    SELECT * FROM system.queries [WHERE col = literal] [LIMIT n]
    SELECT * FROM system.metrics [WHERE col = literal] [LIMIT n]

which covers the operational questions ("the last slow trace",
"metrics named like X") without dragging the full expression engine in.
"""

from __future__ import annotations

import re
from typing import Any, Iterator

from repro.observe.registry import MetricsRegistry
from repro.observe.trace import Tracer
from repro.storage.schema import Column, DataType, Schema

__all__ = ["SystemResult", "is_system_query", "maybe_execute"]

_SYSTEM_RE = re.compile(
    r"^\s*select\s+\*\s+from\s+system\.(?P<table>queries|metrics)\b"
    r"(?:\s+where\s+(?P<col>[a-z_][a-z0-9_]*)\s*=\s*"
    r"(?P<val>'[^']*'|\"[^\"]*\"|[^\s;]+))?"
    r"(?:\s+limit\s+(?P<limit>\d+))?"
    r"\s*;?\s*$",
    re.IGNORECASE,
)

_QUERIES_SCHEMA = Schema(
    [
        Column("trace_id", DataType.TEXT, "system"),
        Column("surface", DataType.TEXT, "system"),
        Column("regime", DataType.TEXT, "system"),
        Column("status", DataType.TEXT, "system"),
        Column("ms", DataType.FLOAT, "system"),
        Column("spans", DataType.INT, "system"),
        Column("signature", DataType.TEXT, "system"),
        Column("sql", DataType.TEXT, "system"),
    ]
)

_METRICS_SCHEMA = Schema(
    [
        Column("name", DataType.TEXT, "system"),
        Column("kind", DataType.TEXT, "system"),
        Column("value", DataType.FLOAT, "system"),
        Column("count", DataType.INT, "system"),
        Column("p50", DataType.FLOAT, "system"),
        Column("p95", DataType.FLOAT, "system"),
        Column("p99", DataType.FLOAT, "system"),
    ]
)


class _NullMetrics:
    """Introspection does no engine work, so it reports none."""

    def summary(self) -> dict[str, Any]:
        return {}


class SystemResult:
    """Duck-typed stand-in for :class:`~repro.engine.result.QueryResult`
    carrying virtual-table rows — exposes the attributes every surface
    (wire protocol encoder, CLI formatter, ``to_dicts`` consumers)
    actually reads."""

    plan_cached = False

    def __init__(self, schema: Schema, rows: list[tuple]):
        self.schema = schema
        self.rows = rows
        self.metrics = _NullMetrics()

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.rows)

    def __getitem__(self, index: int) -> tuple:
        return self.rows[index]

    @property
    def scores(self) -> list[float]:
        return [0.0] * len(self.rows)

    def to_dicts(self) -> list[dict[str, Any]]:
        names = self.schema.qualified_names()
        short = [name.split(".", 1)[1] for name in names]
        return [dict(zip(short, row)) for row in self.rows]


def is_system_query(sql: str) -> bool:
    return _SYSTEM_RE.match(sql) is not None


def _parse_literal(raw: str) -> Any:
    if raw[:1] in ("'", '"') and raw[-1:] == raw[:1]:
        return raw[1:-1]
    try:
        return int(raw)
    except ValueError:
        pass
    try:
        return float(raw)
    except ValueError:
        return raw


def _queries_rows(tracer: "Tracer | None") -> list[tuple]:
    if tracer is None:
        return []
    rows = []
    for trace in reversed(tracer.recent()):  # most recent first
        span_count = sum(1 for __ in trace.root.walk())
        rows.append(
            (
                trace.trace_id,
                trace.surface,
                trace.regime,
                trace.status,
                round(trace.duration_ms, 3),
                span_count,
                trace.signature,
                trace.sql,
            )
        )
    return rows


def _metrics_rows(registry: "MetricsRegistry | None") -> list[tuple]:
    if registry is None:
        return []
    rows = []
    for name, value in registry.collect().items():
        metric = registry.get(name)
        kind = metric.kind if metric is not None else "gauge"
        if isinstance(value, dict):  # histogram snapshot
            rows.append(
                (
                    name,
                    kind,
                    value.get("sum"),
                    value.get("count"),
                    value.get("p50"),
                    value.get("p95"),
                    value.get("p99"),
                )
            )
        else:
            numeric = float(value) if value is not None else None
            rows.append((name, kind, numeric, None, None, None, None))
    return rows


def maybe_execute(
    sql: str,
    tracer: "Tracer | None",
    registry: "MetricsRegistry | None",
) -> "SystemResult | None":
    """Execute ``sql`` if it targets a system table; None otherwise (the
    caller proceeds to the real planner)."""
    match = _SYSTEM_RE.match(sql)
    if match is None:
        return None
    table = match.group("table").lower()
    if table == "queries":
        schema, rows = _QUERIES_SCHEMA, _queries_rows(tracer)
    else:
        schema, rows = _METRICS_SCHEMA, _metrics_rows(registry)

    column = match.group("col")
    if column is not None:
        names = [c.name for c in schema.columns]
        if column.lower() not in names:
            raise ValueError(
                f"system.{table} has no column {column!r} "
                f"(columns: {', '.join(names)})"
            )
        index = names.index(column.lower())
        wanted = _parse_literal(match.group("val"))
        rows = [row for row in rows if row[index] == wanted]

    limit = match.group("limit")
    if limit is not None:
        rows = rows[: int(limit)]
    return SystemResult(schema, rows)
