"""The process-wide metrics registry.

Three instrument kinds, all thread-safe:

* :class:`Counter` — a monotonically increasing integer.
* :class:`Gauge` — a point-in-time value, either set directly or backed
  by a callback (how existing subsystem counters — planner, plan cache,
  morsel pool, transaction manager, WAL, server — register without
  rewriting their own bookkeeping).
* :class:`Histogram` — bounded: a *fixed* log-spaced bucket layout, so
  merging two histograms is exact (bucket counts add) and memory is
  O(buckets) no matter how many observations arrive.  Quantiles
  (p50/p95/p99) are read from the cumulative bucket counts with linear
  interpolation inside the winning bucket, clamped to the observed
  min/max.

A :class:`MetricsRegistry` names and owns instruments;
``register(name)`` calls are idempotent (get-or-create) so independent
subsystems can share an instrument by name.  ``collect()`` returns one
plain dict for the ``stats`` wire op / ``system.metrics``;
``render_prometheus()`` emits Prometheus text exposition format for the
optional HTTP endpoint.
"""

from __future__ import annotations

import re
import threading
from bisect import bisect_left
from typing import Any, Callable, Sequence

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

#: Default histogram bucket upper bounds, log-spaced — wide enough for
#: microsecond spans and multi-second queries alike (unit-agnostic; the
#: conventional unit here is milliseconds).
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
    25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0,
)


class Counter:
    """Monotonic counter.  ``inc`` takes the instrument lock — a single
    uncontended lock acquisition, cheap enough for per-query use (the
    overhead benchmark gates the total)."""

    kind = "counter"
    __slots__ = ("name", "help", "_value", "_lock")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value

    def snapshot(self) -> int:
        return self._value


class Gauge:
    """Point-in-time value.  Either ``set()`` it, or construct with
    ``fn=callback`` and reads delegate to the callback — the bridge that
    lets existing subsystem counters surface here without double
    bookkeeping."""

    kind = "gauge"
    __slots__ = ("name", "help", "_value", "_fn", "_lock")

    def __init__(
        self,
        name: str,
        help: str = "",
        fn: "Callable[[], float] | None" = None,
    ):
        self.name = name
        self.help = help
        self._value = 0.0
        self._fn = fn
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    @property
    def value(self) -> float:
        if self._fn is not None:
            try:
                return float(self._fn())
            except Exception:
                return float("nan")
        return self._value

    def snapshot(self) -> float:
        return self.value


class Histogram:
    """Bounded histogram with exact merge.

    All histograms created with the same ``buckets`` layout merge
    exactly: counts, sums, and per-bucket tallies add; min/max take the
    extrema.  That property is what makes per-worker private sinks safe
    — parallel totals equal serial totals, same discipline as
    ``ExecutionMetrics.merge``.
    """

    kind = "histogram"
    __slots__ = (
        "name", "help", "buckets", "_counts", "_count", "_sum",
        "_min", "_max", "_lock",
    )

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: "Sequence[float] | None" = None,
    ):
        self.name = name
        self.help = help
        self.buckets: tuple[float, ...] = tuple(
            sorted(buckets if buckets is not None else DEFAULT_BUCKETS)
        )
        # one slot per bound plus the +Inf overflow slot
        self._counts = [0] * (len(self.buckets) + 1)
        self._count = 0
        self._sum = 0.0
        self._min: "float | None" = None
        self._max: "float | None" = None
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        index = bisect_left(self.buckets, value)
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value

    def merge(self, other: "Histogram") -> None:
        """Fold ``other`` in.  Exact — requires an identical bucket
        layout."""
        if other.buckets != self.buckets:
            raise ValueError(
                f"histogram {self.name!r}: cannot merge incompatible "
                f"bucket layouts"
            )
        with other._lock:
            counts = list(other._counts)
            count, total = other._count, other._sum
            low, high = other._min, other._max
        with self._lock:
            for i, c in enumerate(counts):
                self._counts[i] += c
            self._count += count
            self._sum += total
            if low is not None and (self._min is None or low < self._min):
                self._min = low
            if high is not None and (self._max is None or high > self._max):
                self._max = high

    def quantile(self, q: float) -> "float | None":
        """Approximate quantile from the cumulative bucket counts,
        linearly interpolated within the winning bucket and clamped to
        the observed min/max."""
        with self._lock:
            return self._quantile_locked(q)

    def _quantile_locked(self, q: float) -> "float | None":
        if self._count == 0:
            return None
        target = q * self._count
        cumulative = 0
        for index, bucket_count in enumerate(self._counts):
            previous = cumulative
            cumulative += bucket_count
            if cumulative >= target and bucket_count > 0:
                lower = self.buckets[index - 1] if index > 0 else 0.0
                upper = (
                    self.buckets[index]
                    if index < len(self.buckets)
                    else (self._max if self._max is not None else lower)
                )
                fraction = (target - previous) / bucket_count
                value = lower + (upper - lower) * min(1.0, max(0.0, fraction))
                if self._min is not None:
                    value = max(value, self._min)
                if self._max is not None:
                    value = min(value, self._max)
                return value
        return self._max

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            return {
                "count": self._count,
                "sum": round(self._sum, 6),
                "min": self._min,
                "max": self._max,
                "p50": self._quantile_locked(0.50),
                "p95": self._quantile_locked(0.95),
                "p99": self._quantile_locked(0.99),
            }

    def bucket_counts(self) -> list[tuple[float, int]]:
        """Cumulative ``(upper_bound, count)`` pairs, Prometheus-style,
        ending with the +Inf bucket."""
        with self._lock:
            counts = list(self._counts)
        pairs: list[tuple[float, int]] = []
        cumulative = 0
        for bound, c in zip(self.buckets, counts):
            cumulative += c
            pairs.append((bound, cumulative))
        pairs.append((float("inf"), cumulative + counts[-1]))
        return pairs


_PROM_SANITIZE = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    return _PROM_SANITIZE.sub("_", name)


def _prom_value(value: Any) -> str:
    if value is None:
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    return repr(float(value))


class MetricsRegistry:
    """Named instruments for one process.  Registration is idempotent:
    asking for an existing name returns the existing instrument (and
    raises if the kind differs — two subsystems disagreeing on what a
    name measures is a bug worth surfacing)."""

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics: "dict[str, Counter | Gauge | Histogram]" = {}

    def _register(self, metric_cls: type, name: str, **kwargs: Any) -> Any:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, metric_cls):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, not {metric_cls.kind}"
                    )
                return existing
            metric = metric_cls(name, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._register(Counter, name, help=help)

    def gauge(
        self,
        name: str,
        help: str = "",
        fn: "Callable[[], float] | None" = None,
    ) -> Gauge:
        return self._register(Gauge, name, help=help, fn=fn)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: "Sequence[float] | None" = None,
    ) -> Histogram:
        return self._register(Histogram, name, help=help, buckets=buckets)

    def get(self, name: str) -> "Counter | Gauge | Histogram | None":
        with self._lock:
            return self._metrics.get(name)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._metrics)

    def collect(self) -> dict[str, Any]:
        """One flat dict: counters/gauges map to their value, histograms
        to their snapshot dict."""
        with self._lock:
            metrics = list(self._metrics.values())
        return {
            metric.name: metric.snapshot()
            for metric in sorted(metrics, key=lambda m: m.name)
        }

    def render_prometheus(self) -> str:
        """Prometheus text exposition (format version 0.0.4)."""
        with self._lock:
            metrics = list(self._metrics.values())
        lines: list[str] = []
        for metric in sorted(metrics, key=lambda m: m.name):
            name = _prom_name(metric.name)
            if metric.help:
                lines.append(f"# HELP {name} {metric.help}")
            lines.append(f"# TYPE {name} {metric.kind}")
            if isinstance(metric, Histogram):
                for bound, cumulative in metric.bucket_counts():
                    lines.append(
                        f'{name}_bucket{{le="{_prom_value(bound)}"}} '
                        f"{cumulative}"
                    )
                lines.append(f"{name}_sum {_prom_value(metric.sum)}")
                lines.append(f"{name}_count {metric.count}")
            else:
                lines.append(f"{name} {_prom_value(metric.snapshot())}")
        return "\n".join(lines) + "\n"
