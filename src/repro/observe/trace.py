"""Structured per-query tracing.

Every query admitted on any surface — ``Database.query``, a prepared
:class:`~repro.planner.prepared.Session`, a server session, the CLI —
gets one :class:`Trace`: a process-unique id plus a tree of
:class:`Span` records covering parse → bind → optimize → cache hit/miss
→ lower/compile → execute (per batch segment, per morsel-pool dispatch,
per fused function call) → commit/WAL fsync.  The tracer keeps the
*current* span on a thread-local stack, so deeply nested subsystems
(the WAL under the transaction manager under the engine) attach their
spans to whatever query is running on that thread without any of them
threading a handle through their signatures.

Cost model: tracing is always-on-capable.  A span is one small object
created per *phase*, never per tuple, so a traced query allocates on
the order of ten objects regardless of row count; the CI overhead gate
(``benchmarks/bench_observability.py``) holds the warm-path tax under
5%.  When the tracer is disabled every hook degenerates to a single
attribute check.

Trace ids also propagate into morsel workers: the dispatching thread's
id is published via :func:`set_ambient_trace_id`, and
:func:`repro.execution.morsels.run_tasks` re-publishes it inside each
worker — a plain module/thread-local handoff that survives both the
thread backend and the fork backend (the child inherits the closure).
"""

from __future__ import annotations

import itertools
import json
import os
import sys
import threading
import time
from collections import deque
from typing import Any, Callable, Iterator

__all__ = [
    "Span",
    "Trace",
    "Tracer",
    "ambient_trace_id",
    "set_ambient_trace_id",
]


def env_flag(name: str, default: bool) -> bool:
    """Shared boolean-knob parser (``1/true/yes/on`` vs ``0/false/...``)."""
    raw = os.environ.get(name)
    if raw is None or raw.strip() == "":
        return default
    return raw.strip().lower() not in ("0", "false", "no", "off")


def env_float(name: str, default: "float | None") -> "float | None":
    raw = os.environ.get(name)
    if raw is None or raw.strip() == "":
        return default
    try:
        return float(raw)
    except ValueError:
        return default


# ----------------------------------------------------------------------
# ambient trace id — the cross-thread / cross-process correlation handle
# ----------------------------------------------------------------------
_ambient = threading.local()


def set_ambient_trace_id(trace_id: "str | None") -> "str | None":
    """Publish ``trace_id`` as this thread's ambient id and return the
    previous value (so callers can restore it).  Morsel workers — thread
    or forked process — call this with the dispatcher's id so work done
    on their behalf stays correlated with the owning query."""
    previous = getattr(_ambient, "value", None)
    _ambient.value = trace_id
    return previous


def ambient_trace_id() -> "str | None":
    """The trace id of the query this thread is currently working for,
    or None when no traced query is active."""
    return getattr(_ambient, "value", None)


class Span:
    """One timed phase of a query.  Spans nest: children are whatever
    phases ran while this one was open on the same thread."""

    __slots__ = ("name", "start", "end", "attrs", "children")

    def __init__(self, name: str):
        self.name = name
        self.start = time.perf_counter()
        self.end: "float | None" = None
        self.attrs: dict[str, Any] = {}
        self.children: list["Span"] = []

    def set(self, key: str, value: Any) -> "Span":
        self.attrs[key] = value
        return self

    def finish(self) -> "Span":
        if self.end is None:
            self.end = time.perf_counter()
        return self

    @property
    def duration_ms(self) -> float:
        end = self.end if self.end is not None else time.perf_counter()
        return (end - self.start) * 1000.0

    def walk(self, depth: int = 0) -> "Iterator[tuple[Span, int]]":
        yield self, depth
        for child in self.children:
            yield from child.walk(depth + 1)

    def to_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "name": self.name,
            "ms": round(self.duration_ms, 3),
        }
        if self.attrs:
            payload["attrs"] = dict(self.attrs)
        if self.children:
            payload["children"] = [c.to_dict() for c in self.children]
        return payload


class Trace:
    """The span tree for one query, addressable by ``trace_id``."""

    __slots__ = (
        "trace_id",
        "sql",
        "surface",
        "root",
        "regime",
        "status",
        "signature",
        "started_at",
    )

    def __init__(self, trace_id: str, sql: str, surface: str):
        self.trace_id = trace_id
        self.sql = sql
        self.surface = surface
        self.root = Span("query")
        #: execution regime the planner chose: row | batch | batch@dop
        #: | compiled | dml | txn — stamped by the surface that knows.
        self.regime: "str | None" = None
        self.status = "ok"
        #: normalized plan signature (cache key), when the statement
        #: reached the planner.
        self.signature: "str | None" = None
        self.started_at = time.time()

    @property
    def duration_ms(self) -> float:
        return self.root.duration_ms

    def finish(self, status: "str | None" = None) -> "Trace":
        if status is not None:
            self.status = status
        self.root.finish()
        return self

    def spans(self) -> "Iterator[tuple[Span, int]]":
        return self.root.walk()

    def top_spans(self, n: int = 3) -> list[dict[str, Any]]:
        """The ``n`` slowest non-root spans — what the slow-query log
        prints so one line says where the time went."""
        ranked = sorted(
            (span for span, depth in self.root.walk() if depth > 0),
            key=lambda span: span.duration_ms,
            reverse=True,
        )
        return [
            {"name": span.name, "ms": round(span.duration_ms, 3)}
            for span in ranked[:n]
        ]

    def to_dict(self) -> dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "sql": self.sql,
            "surface": self.surface,
            "regime": self.regime,
            "status": self.status,
            "signature": self.signature,
            "started_at": self.started_at,
            "ms": round(self.duration_ms, 3),
            "spans": self.root.to_dict(),
        }

    def render(self) -> str:
        """Human-readable tree for the CLI's ``\\trace`` output."""
        lines = [
            f"trace {self.trace_id}  [{self.status}] "
            f"{self.duration_ms:.2f}ms  regime={self.regime or '-'}",
            f"  sql: {self.sql}",
        ]
        for span, depth in self.root.walk():
            attrs = ""
            if span.attrs:
                rendered = " ".join(
                    f"{key}={value}" for key, value in sorted(span.attrs.items())
                )
                attrs = f"  ({rendered})"
            lines.append(
                f"  {'  ' * depth}- {span.name}: {span.duration_ms:.3f}ms{attrs}"
            )
        return "\n".join(lines)


class _NullContext:
    """Returned by the span/trace hooks when tracing is off — a shared
    no-op context manager so the disabled path allocates nothing."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, exc_type, exc, tb):
        return False


_NULL_CONTEXT = _NullContext()


class _SpanContext:
    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type, exc, tb):
        self._tracer._pop_span(self._span)
        return False


class _TraceContext:
    __slots__ = ("_tracer", "_trace")

    def __init__(self, tracer: "Tracer", trace: Trace):
        self._tracer = tracer
        self._trace = trace

    def __enter__(self) -> Trace:
        return self._trace

    def __exit__(self, exc_type, exc, tb):
        if exc_type is not None:
            self._trace.status = "error"
            self._trace.root.set("error", repr(exc))
        self._tracer._end_trace(self._trace)
        return False


class Tracer:
    """Factory and registry for traces.

    One tracer serves a whole :class:`~repro.engine.database.Database`
    (and therefore every server session on it).  Finished traces land in
    a bounded ring buffer that ``system.queries``, the ``stats`` wire
    op, and the CLI's ``\\trace`` command all read; queries slower than
    ``slow_query_ms`` additionally emit a single-line JSON record.

    Env knobs: ``REPRO_TRACE`` (on by default), ``REPRO_SLOW_QUERY_MS``
    (unset = slow-query log off), ``REPRO_TRACE_CAPACITY``.
    """

    def __init__(
        self,
        enabled: "bool | None" = None,
        capacity: "int | None" = None,
        slow_query_ms: "float | None" = None,
        slow_query_sink: "Callable[[str], None] | None" = None,
    ):
        if enabled is None:
            enabled = env_flag("REPRO_TRACE", True)
        if capacity is None:
            capacity = int(env_float("REPRO_TRACE_CAPACITY", 128) or 128)
        if slow_query_ms is None:
            slow_query_ms = env_float("REPRO_SLOW_QUERY_MS", None)
        self.enabled = enabled
        self.slow_query_ms = slow_query_ms
        self.slow_query_sink = slow_query_sink
        self._recent: "deque[Trace]" = deque(maxlen=max(1, capacity))
        self._local = threading.local()
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        #: lifetime counters, readable without the lock (monotonic ints)
        self.traces_started = 0
        self.traces_finished = 0
        self.slow_queries = 0

    # ------------------------------------------------------------------
    # thread-local stack plumbing
    # ------------------------------------------------------------------
    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def current_trace(self) -> "Trace | None":
        return getattr(self._local, "trace", None)

    def current_trace_id(self) -> "str | None":
        trace = self.current_trace()
        return trace.trace_id if trace is not None else None

    # ------------------------------------------------------------------
    # root traces
    # ------------------------------------------------------------------
    def trace(self, sql: str, surface: str = "query") -> Any:
        """Open a root trace for one statement.  Returns a context
        manager yielding the :class:`Trace` (or None when disabled).
        Nested calls on the same thread (e.g. a transaction surface
        re-entering the engine) reuse the active trace via a plain span
        instead of starting a second tree."""
        if not self.enabled:
            return _NULL_CONTEXT
        if self.current_trace() is not None:
            return self.span(surface, sql=sql)
        trace = Trace(f"t{next(self._ids):06x}", sql, surface)
        self._local.trace = trace
        self._local.stack = [trace.root]
        self._local.prior_ambient = set_ambient_trace_id(trace.trace_id)
        self.traces_started += 1
        return _TraceContext(self, trace)

    def _end_trace(self, trace: Trace) -> None:
        trace.finish()
        self._local.trace = None
        self._local.stack = []
        set_ambient_trace_id(getattr(self._local, "prior_ambient", None))
        self._local.prior_ambient = None
        self.traces_finished += 1
        with self._lock:
            self._recent.append(trace)
        threshold = self.slow_query_ms
        if threshold is not None and trace.duration_ms >= threshold:
            self.slow_queries += 1
            self._emit_slow(trace)

    # ------------------------------------------------------------------
    # child spans
    # ------------------------------------------------------------------
    def span(self, name: str, **attrs: Any) -> Any:
        """Open a child span under the thread's current span.  No-op
        (yields None) when tracing is off or no trace is active — safe
        to call from any subsystem unconditionally."""
        if not self.enabled or self.current_trace() is None:
            return _NULL_CONTEXT
        span = Span(name)
        if attrs:
            span.attrs.update(attrs)
        stack = self._stack()
        stack[-1].children.append(span)
        stack.append(span)
        return _SpanContext(self, span)

    def _pop_span(self, span: Span) -> None:
        span.finish()
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # defensive: unwind past a leaked child
            while stack and stack[-1] is not span:
                stack.pop()
            if stack:
                stack.pop()

    def open_span(self, name: str, **attrs: Any) -> "Span | None":
        """Create a span under the current span *without* pushing it on
        the thread-local stack — for phases whose open and close straddle
        separate calls (a batch segment's operator lifetime).  The caller
        owns it: append children directly and call ``finish()``.  Returns
        None when tracing is off or no trace is active."""
        if not self.enabled or self.current_trace() is None:
            return None
        span = Span(name)
        if attrs:
            span.attrs.update(attrs)
        self._stack()[-1].children.append(span)
        return span

    def annotate(self, **attrs: Any) -> None:
        """Stamp fields onto the thread's active trace (no-op when none
        is active).  ``regime``/``signature``/``status`` land on the
        trace itself; anything else becomes a root-span attribute.
        Surfaces use this instead of holding the Trace object so nested
        entry (a txn surface re-entering the engine) stamps the one
        real trace."""
        trace = self.current_trace()
        if trace is None:
            return
        for key, value in attrs.items():
            if key in ("regime", "signature", "status"):
                setattr(trace, key, value)
            else:
                trace.root.set(key, value)

    def attach(self, trace: Trace, span: Span) -> None:
        """Attach an externally-built span (e.g. assembled by a morsel
        worker on another thread) under ``trace``'s root."""
        trace.root.children.append(span)

    # ------------------------------------------------------------------
    # the slow-query log
    # ------------------------------------------------------------------
    def _emit_slow(self, trace: Trace) -> None:
        record = {
            "event": "slow_query",
            "trace_id": trace.trace_id,
            "ms": round(trace.duration_ms, 3),
            "threshold_ms": self.slow_query_ms,
            "signature": trace.signature,
            "regime": trace.regime,
            "surface": trace.surface,
            "status": trace.status,
            "sql": trace.sql,
            "top_spans": trace.top_spans(3),
        }
        line = json.dumps(record, separators=(",", ":"), default=str)
        sink = self.slow_query_sink
        if sink is not None:
            sink(line)
        else:
            print(line, file=sys.stderr, flush=True)

    # ------------------------------------------------------------------
    # observation
    # ------------------------------------------------------------------
    def recent(self, limit: "int | None" = None) -> list[Trace]:
        """Finished traces, most recent last."""
        with self._lock:
            traces = list(self._recent)
        if limit is not None:
            traces = traces[-limit:]
        return traces

    def last(self) -> "Trace | None":
        with self._lock:
            return self._recent[-1] if self._recent else None

    def summary(self) -> dict[str, Any]:
        return {
            "trace_enabled": self.enabled,
            "traces_started": self.traces_started,
            "traces_finished": self.traces_finished,
            "traces_buffered": len(self._recent),
            "slow_queries": self.slow_queries,
            "slow_query_ms": self.slow_query_ms,
        }
