"""Observability substrate: structured per-query tracing, a process-wide
metrics registry, and the ``system.*`` virtual tables that expose both
from SQL.

The package is a leaf — everything else (engine, planner, execution,
storage, server, CLI) imports *it*, never the reverse — so any subsystem
can report into the same trace tree and registry without creating import
cycles.
"""

from repro.observe.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.observe.trace import (
    Span,
    Trace,
    Tracer,
    ambient_trace_id,
    set_ambient_trace_id,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "Trace",
    "Tracer",
    "ambient_trace_id",
    "set_ambient_trace_id",
]
