"""Per-operator estimated-vs-actual feedback, recorded into cached plans.

This is the concrete seam for the ROADMAP's "adaptive re-optimization
from observed cardinalities" item: every execution of a cached plan
folds its per-operator actual row counts into the entry's
:class:`PlanFeedback`, next to the optimizer's estimates, so a future
re-planning pass can ask each entry "where was the estimator wrong, and
by how much?" without re-running anything.

The node list is built at *first* execution, when the physical operator
tree exists — that is the only moment the plan-descriptor ↔ operator
pairing is unambiguous (a compiled segment collapses its descriptor
subtree into one fused operator; pairing at prepare time would count
nodes that never materialize).  Estimates come from the same
sampling-based cardinality estimator that priced the plan.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Iterator

__all__ = ["OperatorFeedback", "PlanFeedback", "pair_plan_operators"]


def pair_plan_operators(
    plan: Any, operator: Any, depth: int = 0
) -> "Iterator[tuple[Any, Any, int]]":
    """Pre-order ``(plan_node, operator, depth)`` pairs for a plan and
    its built operator tree.

    Descends through the ``BatchToRow`` frontier into lowered segments;
    a compiled segment yields the fused source paired with the segment's
    inner descriptor and stops there (the fused function has no per-node
    twins below it).  This is the single pairing rule shared by
    ``explain_analyze`` and the feedback recorder, so the two always
    report the same tree.
    """
    from repro.execution.batch import BatchToRow
    from repro.optimizer.plans import BatchSegmentPlan

    yield plan, operator, depth
    if isinstance(plan, BatchSegmentPlan) and isinstance(operator, BatchToRow):
        from repro.execution.codegen import CompiledSegmentSource

        if isinstance(operator.source, CompiledSegmentSource):
            yield plan.inner, operator.source, depth + 1
            return
        yield from pair_plan_operators(plan.inner, operator.source, depth + 1)
        return
    for child_plan, child_operator in zip(plan.children, operator.children()):
        yield from pair_plan_operators(child_plan, child_operator, depth + 1)


@dataclass
class OperatorFeedback:
    """Accumulated observations for one plan node across executions."""

    label: str
    depth: int
    estimated_rows: "float | None" = None
    actual_in: int = 0
    actual_out: int = 0
    executions: int = 0

    @property
    def mean_actual_out(self) -> "float | None":
        if self.executions == 0:
            return None
        return self.actual_out / self.executions

    def misestimate_factor(self) -> "float | None":
        """How far the estimate is from the mean observed output, as a
        ≥1 ratio (10.0 = off by 10× in either direction); None until
        both sides exist."""
        actual = self.mean_actual_out
        if actual is None or self.estimated_rows is None:
            return None
        est = max(self.estimated_rows, 1.0)
        act = max(actual, 1.0)
        return max(est, act) / min(est, act)

    def to_dict(self) -> dict[str, Any]:
        return {
            "label": self.label,
            "depth": self.depth,
            "estimated_rows": self.estimated_rows,
            "actual_in": self.actual_in,
            "actual_out": self.actual_out,
            "executions": self.executions,
            "misestimate_factor": self.misestimate_factor(),
        }


class PlanFeedback:
    """Estimated-vs-actual row counts for every node of one cached plan.

    Thread-safe: concurrent executions of a shared entry fold under the
    instance lock, so counts are never lost (same discipline as the
    metrics registry).
    """

    def __init__(self, nodes: list[OperatorFeedback]):
        self.nodes = nodes
        self._lock = threading.Lock()

    @classmethod
    def build(cls, plan: Any, root_operator: Any, estimator: Any = None):
        """Create the node list from the first execution's operator
        tree; ``estimator`` (optional) supplies per-node estimates."""
        nodes = []
        for plan_node, operator, depth in pair_plan_operators(plan, root_operator):
            estimated = None
            if estimator is not None:
                try:
                    estimated = float(estimator.estimate(plan_node))
                except Exception:
                    estimated = None
            label = getattr(operator, "describe", None)
            nodes.append(
                OperatorFeedback(
                    label=label() if callable(label) else plan_node.label(),
                    depth=depth,
                    estimated_rows=estimated,
                )
            )
        return cls(nodes)

    def record(self, plan: Any, root_operator: Any) -> None:
        """Fold one execution's actuals in (positional pairing — same
        pre-order the node list was built from)."""
        pairs = list(pair_plan_operators(plan, root_operator))
        with self._lock:
            if len(pairs) != len(self.nodes):
                return  # plan shape changed under us; skip, never corrupt
            for node, (__, operator, ___) in zip(self.nodes, pairs):
                stats = getattr(operator, "stats", None)
                if stats is None:
                    continue
                node.actual_in += stats.tuples_in
                node.actual_out += stats.tuples_out
                node.executions += 1

    def misestimates(self, factor: float = 10.0) -> list[OperatorFeedback]:
        """Nodes whose estimate is off by more than ``factor``×."""
        with self._lock:
            return [
                node
                for node in self.nodes
                if (node.misestimate_factor() or 0.0) > factor
            ]

    def to_dicts(self) -> list[dict[str, Any]]:
        with self._lock:
            return [node.to_dict() for node in self.nodes]
