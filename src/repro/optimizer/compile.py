"""Attach compiled fused functions to a decided plan's lowered segments.

The bridge between the costed three-regime decision
(:mod:`repro.optimizer.hybrid`) and the code generator
(:mod:`repro.execution.codegen`): after ``decide_batch_lowering`` has
annotated each ``BatchSegmentPlan`` wrapper, :func:`compile_plan` walks the
executable plan once at prepare time and stamps a
:class:`~repro.execution.codegen.CompiledArtifact` onto every wrapper whose
decision chose the compiled regime.  Compilation failures are silent by
contract — the wrapper keeps ``compiled=None`` and builds the interpreted
batch pipeline, so no error ever reaches the client.
"""

from __future__ import annotations

from ..execution import codegen
from .plans import BatchSegmentPlan, PlanNode


def compile_plan(
    plan: "PlanNode | None", catalog, scoring, mode: str = "auto"
) -> tuple[int, float]:
    """Compile every lowered segment of ``plan`` the decision pass elected
    to compile; returns ``(segments_compiled, compile_seconds)``.

    ``mode="always"`` (the forced ``execution="compiled"`` knob) compiles
    every *supported* segment regardless of its costed decision —
    unsupported shapes still fall back to the interpreted batch pipeline.
    Re-running on an already-stamped plan rebuilds the artifacts from
    scratch (recompiles replace, never leak, stale functions).
    """
    if plan is None:
        return 0, 0.0
    count = 0
    seconds = 0.0
    for node in plan.walk():
        if not isinstance(node, BatchSegmentPlan):
            continue
        node.compiled = None
        decision = node.decision
        wanted = decision is not None and getattr(
            decision, "compiled_chosen", False
        )
        if not wanted and mode == "always":
            wanted = codegen.supports(node.inner, catalog, scoring)
        if not wanted:
            continue
        try:
            artifact = codegen.compile_segment(node.inner, catalog, scoring)
        except Exception:
            # Fallback contract: any emitter gap leaves the interpreted
            # batch pipeline in place, invisibly to the client.
            continue
        node.compiled = artifact
        count += 1
        seconds += artifact.compile_seconds
    return count, seconds
