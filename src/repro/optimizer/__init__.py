"""Rank-aware query optimizer: plans, costing, sampling estimation, DP."""

from .cardinality import (
    DEFAULT_SAMPLE_RATIO,
    CardinalityEstimator,
    SampleDatabase,
    SampleRun,
)
from .cost_model import CostModel, DEFAULT_JOIN_SELECTIVITY
from .explain import AnalyzeReport, NodeReport, explain_analyze
from .enumeration import (
    Candidate,
    OptimizationError,
    RankAwareOptimizer,
    optimize_traditional,
)
from .hybrid import SegmentDecision, decide_batch_lowering, render_decisions
from .plans import (
    BatchSegmentPlan,
    ColumnOrderScanPlan,
    FilterPlan,
    HRJNPlan,
    HashJoinPlan,
    LimitPlan,
    MuPlan,
    NRJNPlan,
    NestedLoopJoinPlan,
    PlanNode,
    ProjectPlan,
    RankDifferencePlan,
    RankIntersectPlan,
    RankScanPlan,
    RankUnionPlan,
    ScanSelectPlan,
    SeqScanPlan,
    SortMergeJoinPlan,
    SortPlan,
)
from .query_spec import JoinCondition, QuerySpec
from .rule_based import RuleBasedOptimizer, canonical_logical_plan

__all__ = [
    "AnalyzeReport",
    "Candidate",
    "CardinalityEstimator",
    "ColumnOrderScanPlan",
    "CostModel",
    "DEFAULT_JOIN_SELECTIVITY",
    "DEFAULT_SAMPLE_RATIO",
    "FilterPlan",
    "HRJNPlan",
    "HashJoinPlan",
    "JoinCondition",
    "LimitPlan",
    "MuPlan",
    "NRJNPlan",
    "NodeReport",
    "NestedLoopJoinPlan",
    "OptimizationError",
    "PlanNode",
    "ProjectPlan",
    "QuerySpec",
    "RankAwareOptimizer",
    "RankDifferencePlan",
    "RankIntersectPlan",
    "RankScanPlan",
    "RankUnionPlan",
    "RuleBasedOptimizer",
    "SampleDatabase",
    "canonical_logical_plan",
    "explain_analyze",
    "SampleRun",
    "ScanSelectPlan",
    "BatchSegmentPlan",
    "SegmentDecision",
    "SeqScanPlan",
    "SortMergeJoinPlan",
    "SortPlan",
    "decide_batch_lowering",
    "optimize_traditional",
    "render_decisions",
]
