"""Query specification: the optimizer's input.

A :class:`QuerySpec` is the bound, canonical form of a rank-relational query
(Eq. 1): base tables, single-table Boolean selections, Boolean join
conditions, a monotone scoring function over ranking predicates, the result
size ``k`` and an optional projection list.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..algebra.expressions import Comparison, ColumnRef
from ..algebra.parameters import ParameterSlots
from ..algebra.predicates import BooleanPredicate, ScoringFunction


@dataclass(frozen=True)
class JoinCondition:
    """A Boolean join condition; equi-joins carry their key columns."""

    predicate: BooleanPredicate
    tables: frozenset[str]
    #: for equi-joins: {table: key column}; empty for general conditions
    equi_keys: tuple[tuple[str, str], ...] = ()

    @property
    def is_equi(self) -> bool:
        return len(self.equi_keys) == 2

    def key_for(self, table: str) -> str | None:
        """The equi-join key column of ``table`` under this condition."""
        for t, column in self.equi_keys:
            if t == table:
                return column
        return None

    @classmethod
    def from_predicate(cls, predicate: BooleanPredicate) -> "JoinCondition":
        """Build from a Boolean predicate, detecting equi-join shape."""
        tables = frozenset(predicate.tables())
        equi: tuple[tuple[str, str], ...] = ()
        expression = predicate.expression
        if (
            isinstance(expression, Comparison)
            and expression.op == "="
            and isinstance(expression.left, ColumnRef)
            and isinstance(expression.right, ColumnRef)
        ):
            left_table = expression.left.name.partition(".")[0]
            right_table = expression.right.name.partition(".")[0]
            if left_table != right_table and "." in expression.left.name:
                equi = (
                    (left_table, expression.left.name),
                    (right_table, expression.right.name),
                )
        return cls(predicate, tables, equi)


@dataclass
class QuerySpec:
    """The canonical rank-relational query (Eq. 1)."""

    tables: list[str]
    scoring: ScoringFunction
    k: int
    selections: list[BooleanPredicate] = field(default_factory=list)
    join_conditions: list[JoinCondition] = field(default_factory=list)
    projection: list[str] | None = None
    #: bind-variable slots shared by this spec's Parameter expressions
    #: (None for fully literal queries); values are injected per execution
    parameters: ParameterSlots | None = None

    def __post_init__(self) -> None:
        if not self.tables:
            raise ValueError("query needs at least one table")
        if len(set(self.tables)) != len(self.tables):
            raise ValueError("duplicate tables (self-joins need aliases)")
        if self.k < 0:
            raise ValueError("k must be non-negative")
        for condition in self.selections:
            if len(condition.tables()) > 1:
                raise ValueError(
                    f"selection {condition.name!r} spans multiple tables; "
                    "pass it as a join condition"
                )

    def selections_on(self, table: str) -> list[BooleanPredicate]:
        """Single-table selections restricted to ``table``."""
        return [c for c in self.selections if c.tables() <= {table}]

    def join_conditions_within(self, tables: frozenset[str]) -> list[JoinCondition]:
        """Join conditions fully contained in a table set."""
        return [j for j in self.join_conditions if j.tables <= tables]

    def join_conditions_between(
        self, left: frozenset[str], right: frozenset[str]
    ) -> list[JoinCondition]:
        """Join conditions connecting two disjoint table sets."""
        out = []
        for j in self.join_conditions:
            if j.tables & left and j.tables & right and j.tables <= (left | right):
                out.append(j)
        return out

    def predicates_evaluable_on(self, tables: frozenset[str]) -> list[str]:
        """Ranking predicates whose referenced tables are all in ``tables``."""
        out = []
        for predicate in self.scoring.predicates:
            if predicate.tables() <= tables:
                out.append(predicate.name)
        return out
