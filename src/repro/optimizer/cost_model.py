"""Cost model for ranking query plans.

Costs are expressed in the same abstract units the execution engine's
metrics charge (:mod:`repro.execution.metrics`), so estimated and measured
costs are directly comparable.

Two cardinalities drive the model:

* **full cardinality** — the classical, k-independent output size of the
  operator (System-R style: table sizes × selectivities).  It governs
  *blocking* regions of a plan: below a Sort or a classical join everything
  is drained completely.
* **ranked (k-sensitive) cardinality** — the §5.2 sampling estimate of how
  many tuples the operator must emit for the query's top-k; it governs the
  incremental regions.

An operator consumes its child's *ranked* cardinality when the child
delivers an informative descending stream (some predicate evaluated below),
and the child's *full* cardinality otherwise — a child with ``P = φ`` ties
every tuple at the maximal score, so any buffering consumer drains it.
"""

from __future__ import annotations

from ..algebra.predicates import BooleanPredicate, ScoringFunction
from ..execution import morsels
from ..execution.batch import BATCH_SIZE
from ..execution.metrics import (
    BOOLEAN_EVAL_UNIT,
    COMPARE_UNIT,
    JOIN_PAIR_UNIT,
    MOVE_UNIT,
    SCAN_UNIT,
)
from ..storage.catalog import Catalog
from .cardinality import CardinalityEstimator, SampleDatabase
from .plans import (
    BatchSegmentPlan,
    ColumnOrderScanPlan,
    FilterPlan,
    HRJNPlan,
    HashJoinPlan,
    LimitPlan,
    MuPlan,
    NRJNPlan,
    NestedLoopJoinPlan,
    PlanNode,
    ProjectPlan,
    RankDifferencePlan,
    RankIntersectPlan,
    RankScanPlan,
    RankUnionPlan,
    ScanSelectPlan,
    SeqScanPlan,
    SortMergeJoinPlan,
    SortPlan,
)
from .query_spec import QuerySpec

import math

#: Default selectivity for join conditions the model cannot analyze.
DEFAULT_JOIN_SELECTIVITY = 0.1
#: Per-tuple priority-queue maintenance cost inside buffering operators.
QUEUE_UNIT = 0.02

# ---------------------------------------------------------------------------
# Batch-regime units.
#
# The *simulated* runtime cost (execution/metrics.py) is deliberately
# identical row-vs-batch: batching changes how fast tuples move, not how
# many operations happen.  What the batch path removes is per-tuple
# *dispatch* — one Python operator call, one metrics charge, one ScoredRow
# per tuple — which the row regime's ``MOVE_UNIT`` stands in for.  The
# batch regime replaces that per-tuple term with a much smaller bulk
# handling cost plus per-batch and per-segment fixed overheads, calibrated
# against the wall-clock ratios measured by bench_batch_execution.py
# (~5× on move-dominated plans).  These units exist so the optimizer can
# price the two execution regimes against each other; they are never
# charged at runtime.
# ---------------------------------------------------------------------------

#: per-tuple bulk handling inside a batch operator (vs MOVE_UNIT per tuple
#: of row-mode dispatch — the ~5× measured batching advantage)
BATCH_TUPLE_UNIT = 0.01
#: per-batch (≤ BATCH_SIZE tuples) operator dispatch
BATCH_DISPATCH_UNIT = 0.5
#: fixed per-segment overhead: columnar-view access, batch-operator tree
#: construction, first-batch warmup.  Deliberately conservative: segments
#: whose measured gain sits inside benchmark noise (bare scans, tuples in
#: the low hundreds) stay on the simpler row path.
BATCH_SETUP_UNIT = 6.0
#: per tuple crossing the BatchToRow frontier back into the row world
#: (ScoredRow re-materialization)
FRONTIER_TUPLE_UNIT = 0.015

# ---------------------------------------------------------------------------
# Parallel-regime units.
#
# Intra-query parallelism is priced the same way batch lowering is: the
# serial batch cost of a segment is the work to divide, and the parallel
# alternative pays fixed coordination overheads for a ÷DOP on that work.
# The overheads are deliberately steep — a couple of hundred units per
# worker — so segments in the low thousands of tuples (where the measured
# thread-pool handoff latency swamps any speedup) stay serial, exactly as
# BATCH_SETUP_UNIT keeps tiny segments on the row path.  The effective
# speedup is ``min(dop, tasks)``: a segment that decomposes into fewer
# morsels than workers cannot use the extra workers, so over-parallel DOPs
# price strictly worse and the decision self-caps.
# ---------------------------------------------------------------------------

#: per-worker startup/teardown: pool handoff, private metrics sink,
#: per-worker operator state
PARALLEL_WORKER_UNIT = 150.0
#: per-morsel task dispatch: closure submission, future wait, ordered
#: gather bookkeeping
MORSEL_DISPATCH_UNIT = 30.0
#: per tuple passing through the order-restoring gather at the frontier
PARALLEL_TUPLE_UNIT = 0.002

# ---------------------------------------------------------------------------
# Compiled-regime units.
#
# Plan-to-code compilation removes what the batch regime still pays: batch
# construction and per-batch dispatch disappear entirely (the fused
# function is one loop nest), and tuples cost only plain-loop handling.
# The per-tuple unit therefore sits well under BATCH_TUPLE_UNIT, and there
# is no per-batch dispatch term at all.  The setup unit prices the one-off
# compile (emit + ``compile()`` + ``exec``) slightly above BATCH_SETUP_UNIT
# — amortized across every execution of the cached template, but enough to
# keep one-shot tiny segments from compiling for nothing.
# ---------------------------------------------------------------------------

#: per tuple flowing through the fused loop body (no Batch objects, no
#: per-batch dispatch, no closure tree — measured ≥ 2× under the batch
#: regime's combined per-tuple handling)
COMPILED_TUPLE_UNIT = 0.002
#: fixed per-segment cost of emitting + compiling the fused function,
#: amortized over the cached plan's lifetime
COMPILED_SETUP_UNIT = 8.0

_BLOCKING = (SortPlan, SortMergeJoinPlan, HashJoinPlan, NestedLoopJoinPlan)


class CostModel:
    """Plan costing bound to one query (via its cardinality estimator)."""

    def __init__(
        self,
        catalog: Catalog,
        spec: QuerySpec,
        estimator: CardinalityEstimator,
    ):
        self.catalog = catalog
        self.spec = spec
        self.scoring: ScoringFunction = spec.scoring
        self.estimator = estimator
        self._full_memo: dict[str, float] = {}
        self._cost_memo: dict[tuple, float] = {}
        self._selectivity_memo: dict[str, float] = {}

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def cost(self, plan: PlanNode) -> float:
        """Estimated execution cost of the (sub)plan in abstract units."""
        return self._cost(plan, drained=False)

    def full_cardinality(self, plan: PlanNode) -> float:
        """Classical (k-independent) output cardinality estimate."""
        key = plan.fingerprint()
        if key not in self._full_memo:
            self._full_memo[key] = self._full(plan)
        return self._full_memo[key]

    def ranked_cardinality(self, plan: PlanNode) -> float:
        """k-sensitive output cardinality (sampling estimator, §5.2)."""
        return self.estimator.estimate(plan)

    def production(self, plan: PlanNode, drained: bool = False) -> float:
        """How many tuples this node emits in context.

        Ranked (k-sensitive) when the node delivers an informative
        descending stream; full otherwise.
        """
        if drained or not plan.is_ranked or not plan.rank_predicates:
            return self.full_cardinality(plan)
        return min(
            self.ranked_cardinality(plan), self.full_cardinality(plan)
        )

    # ------------------------------------------------------------------
    # selectivities
    # ------------------------------------------------------------------
    def selection_selectivity(self, condition: BooleanPredicate) -> float:
        """Fraction of tuples satisfying a single-table condition
        (measured on the sample database)."""
        key = condition.name
        if key in self._selectivity_memo:
            return self._selectivity_memo[key]
        tables = condition.tables()
        fraction = 0.5
        if len(tables) == 1:
            (table_name,) = tables
            sample = self.estimator.sample.catalog.table(table_name)
            total = sample.row_count
            if total:
                fn = condition.compile(sample.schema)
                hits = sum(1 for row in sample.rows() if fn(row))
                fraction = max(hits / total, 1.0 / (2 * total))
        self._selectivity_memo[key] = fraction
        return fraction

    def join_selectivity(self, left_key: str, right_key: str) -> float:
        """Classical equi-join selectivity ``1 / max(V(R,a), V(S,b))``."""
        left_table, __, left_col = left_key.partition(".")
        right_table, __, right_col = right_key.partition(".")
        try:
            left_stats = self.catalog.stats(left_table)
            right_stats = self.catalog.stats(right_table)
        except Exception:
            return DEFAULT_JOIN_SELECTIVITY
        return left_stats.join_selectivity(left_col, right_stats, right_col)

    # ------------------------------------------------------------------
    # full (k-independent) cardinalities
    # ------------------------------------------------------------------
    def _table_size(self, table: str) -> float:
        return float(self.catalog.table(table).row_count)

    def _full(self, plan: PlanNode) -> float:
        if isinstance(plan, BatchSegmentPlan):
            # The lowered twin produces the identical tuples.
            return self.full_cardinality(plan.inner)
        if isinstance(plan, (SeqScanPlan, RankScanPlan, ColumnOrderScanPlan)):
            return self._table_size(plan.table)
        if isinstance(plan, ScanSelectPlan):
            bool_condition = self._scan_select_condition(plan)
            return self._table_size(plan.table) * bool_condition
        if isinstance(plan, FilterPlan):
            return self.full_cardinality(plan.children[0]) * self.selection_selectivity(
                plan.condition
            )
        if isinstance(plan, (MuPlan, ProjectPlan, SortPlan)):
            return self.full_cardinality(plan.children[0])
        if isinstance(plan, LimitPlan):
            return min(plan.k, self.full_cardinality(plan.children[0]))
        if isinstance(plan, (HRJNPlan, SortMergeJoinPlan, HashJoinPlan)):
            left, right = plan.children
            sel = self.join_selectivity(plan.left_key, plan.right_key)
            return self.full_cardinality(left) * self.full_cardinality(right) * sel
        if isinstance(plan, (NRJNPlan, NestedLoopJoinPlan)):
            left, right = plan.children
            sel = DEFAULT_JOIN_SELECTIVITY if getattr(plan, "condition", None) else 1.0
            return self.full_cardinality(left) * self.full_cardinality(right) * sel
        if isinstance(plan, RankUnionPlan):
            left, right = plan.children
            return self.full_cardinality(left) + self.full_cardinality(right)
        if isinstance(plan, RankIntersectPlan):
            left, right = plan.children
            return min(self.full_cardinality(left), self.full_cardinality(right))
        if isinstance(plan, RankDifferencePlan):
            return self.full_cardinality(plan.children[0])
        raise TypeError(f"unknown plan node: {type(plan).__name__}")

    def _scan_select_condition(self, plan: ScanSelectPlan) -> float:
        """Selectivity of a scan-select's Boolean key (fraction true)."""
        sample = self.estimator.sample.catalog.table(plan.table)
        if not sample.row_count:
            return 0.5
        position = sample.schema.index_of(plan.bool_column)
        hits = sum(1 for row in sample.rows() if row[position])
        return max(hits / sample.row_count, 1.0 / (2 * sample.row_count))

    # ------------------------------------------------------------------
    # cost
    # ------------------------------------------------------------------
    def _cost(self, plan: PlanNode, drained: bool) -> float:
        # ``dop`` is deliberately excluded from plan fingerprints (like
        # ``decision``, it is an annotation, not identity) — so it must be
        # part of the memo key, or a dop-2 wrapper would return the dop-1
        # price cached for the same segment.
        key = (plan.fingerprint(), drained, getattr(plan, "dop", 1))
        if key in self._cost_memo:
            return self._cost_memo[key]
        value = self._cost_inner(plan, drained)
        self._cost_memo[key] = value
        return value

    def _consumed(self, child: PlanNode, drained: bool) -> float:
        return self.production(child, drained)

    @staticmethod
    def _order_matches(order: str | None, key: str) -> bool:
        return order is not None and order == key

    def _predicate_cost(self, name: str) -> float:
        return self.scoring.predicate(name).cost

    def _cost_inner(self, plan: PlanNode, drained: bool) -> float:
        if isinstance(plan, BatchSegmentPlan):
            # The batch-regime alternative: the whole segment runs on the
            # columnar path (at the wrapper's DOP), then every emitted
            # tuple crosses the BatchToRow frontier back into the row world.
            return self.parallel_segment_cost(
                plan.inner, getattr(plan, "dop", 1), drained
            )

        child_drained = drained or isinstance(plan, _BLOCKING)
        children_cost = sum(self._cost(c, child_drained) for c in plan.children)

        if isinstance(plan, (SeqScanPlan, RankScanPlan, ColumnOrderScanPlan, ScanSelectPlan)):
            return self.production(plan, drained) * SCAN_UNIT

        if isinstance(plan, FilterPlan):
            n_in = self._consumed(plan.children[0], child_drained)
            return children_cost + n_in * (plan.condition.cost + MOVE_UNIT)

        if isinstance(plan, ProjectPlan):
            n_in = self._consumed(plan.children[0], child_drained)
            return children_cost + n_in * MOVE_UNIT

        if isinstance(plan, MuPlan):
            n_in = self._consumed(plan.children[0], child_drained)
            return children_cost + n_in * (
                self._predicate_cost(plan.predicate_name) + MOVE_UNIT + QUEUE_UNIT
            )

        if isinstance(plan, SortPlan):
            n_in = self.full_cardinality(plan.children[0])
            missing = frozenset(self.scoring.predicate_names) - plan.children[0].rank_predicates
            predicate_cost = sum(self._predicate_cost(name) for name in missing)
            sort_cost = n_in * max(1.0, math.log2(n_in or 1)) * COMPARE_UNIT
            return children_cost + n_in * (predicate_cost + MOVE_UNIT) + sort_cost

        if isinstance(plan, LimitPlan):
            n_out = self.production(plan, drained)
            return children_cost + n_out * MOVE_UNIT

        if isinstance(plan, HRJNPlan):
            left, right = plan.children
            n_left = self._consumed(left, child_drained)
            n_right = self._consumed(right, child_drained)
            sel = self.join_selectivity(plan.left_key, plan.right_key)
            pairs = sel * n_left * n_right
            return children_cost + (n_left + n_right) * (MOVE_UNIT + QUEUE_UNIT) + (
                pairs * JOIN_PAIR_UNIT
            )

        if isinstance(plan, NRJNPlan):
            left, right = plan.children
            n_left = self._consumed(left, child_drained)
            n_right = self._consumed(right, child_drained)
            pairs = n_left * n_right
            return children_cost + (n_left + n_right) * (MOVE_UNIT + QUEUE_UNIT) + (
                pairs * (JOIN_PAIR_UNIT + plan.condition.cost)
            )

        if isinstance(plan, SortMergeJoinPlan):
            left, right = plan.children
            n_left = self.full_cardinality(left)
            n_right = self.full_cardinality(right)
            # Interesting orders: a child already sorted on its join key
            # needs no sort (System-R's physical-property benefit).
            sort_cost = 0.0
            for child, key, n in (
                (left, plan.left_key, n_left),
                (right, plan.right_key, n_right),
            ):
                if not self._order_matches(child.column_order, key):
                    sort_cost += n * max(1.0, math.log2(n or 1)) * COMPARE_UNIT
            pairs = self.full_cardinality(plan)
            return children_cost + sort_cost + (n_left + n_right) * MOVE_UNIT + (
                pairs * JOIN_PAIR_UNIT
            )

        if isinstance(plan, HashJoinPlan):
            left, right = plan.children
            n_left = self.full_cardinality(left)
            n_right = self.full_cardinality(right)
            pairs = self.full_cardinality(plan)
            return children_cost + (n_left + n_right) * MOVE_UNIT + pairs * JOIN_PAIR_UNIT

        if isinstance(plan, NestedLoopJoinPlan):
            left, right = plan.children
            n_left = self.full_cardinality(left)
            n_right = self.full_cardinality(right)
            pairs = n_left * n_right
            extra = BOOLEAN_EVAL_UNIT if plan.condition else 0.0
            return children_cost + pairs * (JOIN_PAIR_UNIT + extra)

        if isinstance(plan, (RankUnionPlan, RankIntersectPlan, RankDifferencePlan)):
            left, right = plan.children
            n_left = self._consumed(left, child_drained)
            n_right = self._consumed(right, child_drained)
            missing = frozenset(self.scoring.predicate_names) - plan.rank_predicates
            completion = sum(self._predicate_cost(name) for name in missing)
            return children_cost + (n_left + n_right) * (
                MOVE_UNIT + QUEUE_UNIT + completion
            )

        raise TypeError(f"unknown plan node: {type(plan).__name__}")

    # ------------------------------------------------------------------
    # batch-regime cost (the columnar-path twin of _cost_inner)
    # ------------------------------------------------------------------
    def _batch_overhead(self, n: float) -> float:
        """Dispatch + bulk handling for ``n`` tuples consumed in batches —
        the batch regime's substitute for ``n × MOVE_UNIT``."""
        batches = math.ceil(n / BATCH_SIZE) if n > 0 else 0
        return batches * BATCH_DISPATCH_UNIT + n * BATCH_TUPLE_UNIT

    def batch_segment_cost(self, plan: PlanNode, drained: bool = False) -> float:
        """Cost of running a lowerable segment on the batched columnar
        path, *excluding* the per-segment setup and frontier charges (those
        belong to the enclosing :class:`BatchSegmentPlan` node)."""
        return self._batch_cost(plan, drained)

    def parallel_segment_cost(
        self, inner: PlanNode, dop: int, drained: bool = False
    ) -> float:
        """Cost of a lowered segment executed at ``dop``-way parallelism.

        ``dop=1`` is exactly the serial batch formula (inner batch cost +
        segment setup + frontier conversion), so the parallel regime is a
        strict superset of the PR-4 pricing.  For ``dop>1`` the divisible
        work — the inner pipeline plus the frontier conversion, both of
        which morsel tasks perform on workers — is divided by the
        *effective* speedup ``min(dop, tasks)``, and the coordination
        overheads are added on top: per-worker setup, per-morsel dispatch,
        and the ordered gather's per-tuple handling.
        """
        dop = max(1, int(dop))
        key = ("parallel", inner.fingerprint(), dop, drained)
        if key in self._cost_memo:
            return self._cost_memo[key]
        inner_cost = self._batch_cost(inner, drained)
        n_out = self.production(inner, drained)
        if dop <= 1:
            value = inner_cost + BATCH_SETUP_UNIT + n_out * FRONTIER_TUPLE_UNIT
        else:
            source = self._segment_source_tuples(inner)
            tasks = math.ceil(source / morsels.morsel_size()) if source > 0 else 0
            speedup = min(dop, tasks) if tasks else 1
            work = inner_cost + n_out * FRONTIER_TUPLE_UNIT
            value = (
                BATCH_SETUP_UNIT
                + dop * PARALLEL_WORKER_UNIT
                + tasks * MORSEL_DISPATCH_UNIT
                + work / speedup
                + n_out * PARALLEL_TUPLE_UNIT
            )
        self._cost_memo[key] = value
        return value

    def compiled_segment_cost(self, inner: PlanNode, drained: bool = False) -> float:
        """Cost of a lowered segment executed as one compiled fused
        function — the third regime, priced against ``row`` and ``batch``.

        Includes the per-segment compile setup and the unchanged
        ``BatchToRow`` frontier conversion (the fused function emits the
        same sorted batches the interpreted frontier would).  Only the node
        kinds the code generator supports are priced; callers must guard
        with :func:`repro.execution.codegen.supports`.
        """
        key = ("compiled-segment", inner.fingerprint(), drained)
        if key in self._cost_memo:
            return self._cost_memo[key]
        n_out = self.production(inner, drained)
        value = (
            self._compiled_cost(inner, drained)
            + COMPILED_SETUP_UNIT
            + n_out * FRONTIER_TUPLE_UNIT
        )
        self._cost_memo[key] = value
        return value

    def _compiled_cost(self, plan: PlanNode, drained: bool) -> float:
        key = ("compiled", plan.fingerprint(), drained)
        if key in self._cost_memo:
            return self._cost_memo[key]
        value = self._compiled_cost_inner(plan, drained)
        self._cost_memo[key] = value
        return value

    def _compiled_cost_inner(self, plan: PlanNode, drained: bool) -> float:
        """The fused-loop twin of ``_batch_cost_inner``: same cardinality
        and predicate/join/sort work terms (the algorithms are identical),
        but per-tuple handling at COMPILED_TUPLE_UNIT and no per-batch
        dispatch anywhere — the loop nest has no batch boundaries."""
        if isinstance(plan, BatchSegmentPlan):
            return self._compiled_cost(plan.inner, drained)

        child_drained = drained or isinstance(plan, _BLOCKING)
        children_cost = sum(
            self._compiled_cost(c, child_drained) for c in plan.children
        )

        if isinstance(plan, SeqScanPlan):
            return self.production(plan, drained) * SCAN_UNIT

        if isinstance(plan, FilterPlan):
            n_in = self._consumed(plan.children[0], child_drained)
            return children_cost + n_in * (
                plan.condition.cost + COMPILED_TUPLE_UNIT
            )

        if isinstance(plan, ProjectPlan):
            n_in = self._consumed(plan.children[0], child_drained)
            return children_cost + n_in * COMPILED_TUPLE_UNIT

        if isinstance(plan, SortPlan):
            n_in = self.full_cardinality(plan.children[0])
            missing = (
                frozenset(self.scoring.predicate_names)
                - plan.children[0].rank_predicates
            )
            predicate_cost = sum(self._predicate_cost(name) for name in missing)
            sort_cost = n_in * max(1.0, math.log2(n_in or 1)) * COMPARE_UNIT
            return (
                children_cost
                + n_in * predicate_cost
                + n_in * COMPILED_TUPLE_UNIT
                + sort_cost
            )

        if isinstance(plan, HashJoinPlan):
            left, right = plan.children
            n_left = self.full_cardinality(left)
            n_right = self.full_cardinality(right)
            pairs = self.full_cardinality(plan)
            return (
                children_cost
                + (n_left + n_right) * COMPILED_TUPLE_UNIT
                + pairs * JOIN_PAIR_UNIT
            )

        raise TypeError(
            f"no compiled-regime cost for plan node: {type(plan).__name__}"
        )

    def _segment_source_tuples(self, plan: PlanNode) -> float:
        """Estimated size of the segment's widest morsel source — the
        cardinality that determines how many morsel tasks the segment
        decomposes into (the leaf scans are what gets range-partitioned)."""
        if not plan.children:
            return self.full_cardinality(plan)
        return max(self._segment_source_tuples(c) for c in plan.children)

    def _batch_cost(self, plan: PlanNode, drained: bool) -> float:
        key = ("batch", plan.fingerprint(), drained)
        if key in self._cost_memo:
            return self._cost_memo[key]
        value = self._batch_cost_inner(plan, drained)
        self._cost_memo[key] = value
        return value

    def _batch_cost_inner(self, plan: PlanNode, drained: bool) -> float:
        if isinstance(plan, BatchSegmentPlan):
            # Nested wrappers dissolve inside an enclosing segment: one
            # pipeline, one frontier — no extra setup or conversion.
            return self._batch_cost(plan.inner, drained)

        child_drained = drained or isinstance(plan, _BLOCKING)
        children_cost = sum(self._batch_cost(c, child_drained) for c in plan.children)

        if isinstance(plan, (SeqScanPlan, ColumnOrderScanPlan)):
            n = self.production(plan, drained)
            batches = math.ceil(n / BATCH_SIZE) if n > 0 else 0
            return n * SCAN_UNIT + batches * BATCH_DISPATCH_UNIT

        if isinstance(plan, FilterPlan):
            n_in = self._consumed(plan.children[0], child_drained)
            return children_cost + n_in * plan.condition.cost + self._batch_overhead(n_in)

        if isinstance(plan, ProjectPlan):
            n_in = self._consumed(plan.children[0], child_drained)
            return children_cost + self._batch_overhead(n_in)

        if isinstance(plan, SortPlan):
            n_in = self.full_cardinality(plan.children[0])
            missing = frozenset(self.scoring.predicate_names) - plan.children[0].rank_predicates
            predicate_cost = sum(self._predicate_cost(name) for name in missing)
            sort_cost = n_in * max(1.0, math.log2(n_in or 1)) * COMPARE_UNIT
            return children_cost + n_in * predicate_cost + self._batch_overhead(n_in) + sort_cost

        if isinstance(plan, SortMergeJoinPlan):
            left, right = plan.children
            n_left = self.full_cardinality(left)
            n_right = self.full_cardinality(right)
            sort_cost = 0.0
            for child, key, n in (
                (left, plan.left_key, n_left),
                (right, plan.right_key, n_right),
            ):
                if not self._order_matches(child.column_order, key):
                    sort_cost += n * max(1.0, math.log2(n or 1)) * COMPARE_UNIT
            pairs = self.full_cardinality(plan)
            return children_cost + sort_cost + self._batch_overhead(n_left + n_right) + (
                pairs * JOIN_PAIR_UNIT
            )

        if isinstance(plan, HashJoinPlan):
            left, right = plan.children
            n_left = self.full_cardinality(left)
            n_right = self.full_cardinality(right)
            pairs = self.full_cardinality(plan)
            return children_cost + self._batch_overhead(n_left + n_right) + (
                pairs * JOIN_PAIR_UNIT
            )

        if isinstance(plan, NestedLoopJoinPlan):
            left, right = plan.children
            n_left = self.full_cardinality(left)
            n_right = self.full_cardinality(right)
            pairs = n_left * n_right
            extra = BOOLEAN_EVAL_UNIT if plan.condition else 0.0
            # Pair examination dominates either way (the row formula has no
            # per-input move term); only the batch dispatch granularity
            # differs, and it is negligible against n_left × n_right.
            return children_cost + pairs * (JOIN_PAIR_UNIT + extra)

        raise TypeError(
            f"no batch-regime cost for plan node: {type(plan).__name__}"
        )
