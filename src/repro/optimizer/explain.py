"""EXPLAIN ANALYZE: per-operator estimated vs actual statistics.

Runs a physical plan and renders its tree with, per operator,

* the optimizer's *estimated* output cardinality (the §5.2 sampling
  estimator — the quantity Figure 13 evaluates) and estimated cost, and
* the *actual* tuples in/out observed during execution.

This is the engine's analogue of PostgreSQL's ``EXPLAIN ANALYZE`` and makes
estimator accuracy inspectable on any query::

    limit(10)                        est=10 act=10  (cost=4,204 in=10)
      HRJN(B.jc2=C.jc2)              est=20 act=10  (cost=4,102 in=45)
      ...

Operators whose estimate is off by more than 10x in either direction are
flagged with ``!! <n>x misestimate`` — the human-readable face of the same
estimated-vs-actual feedback the plan cache records for adaptive
replanning (:class:`repro.observe.feedback.PlanFeedback`).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..algebra.predicates import ScoringFunction
from ..execution.batch import BatchOperator, BatchToRow
from ..execution.iterator import ExecutionContext, PhysicalOperator
from ..storage.catalog import Catalog
from .cardinality import CardinalityEstimator, SampleDatabase
from .cost_model import CostModel
from .plans import BatchSegmentPlan, PlanNode, SortPlan
from .query_spec import QuerySpec


@dataclass
class NodeReport:
    """Estimated and actual statistics for one plan node."""

    label: str
    depth: int
    estimated_rows: float
    estimated_cost: float
    actual_in: int
    actual_out: int
    #: measured wall-clock milliseconds, recorded for batch operators only
    #: (serial nodes: inclusive time in ``next_batch``; parallel morsel
    #: stages: summed worker busy time, which can exceed elapsed — that is
    #: how a DOP win shows per node).  ``None`` for row-mode operators.
    wall_ms: float | None = None

    @property
    def misestimate_factor(self) -> float:
        """How far off the estimate was, as a >=1 ratio (either
        direction); zero-floored so empty operators do not divide out."""
        estimated = max(self.estimated_rows, 1.0)
        actual = max(float(self.actual_out), 1.0)
        return max(estimated / actual, actual / estimated)


@dataclass
class AnalyzeReport:
    """The full EXPLAIN ANALYZE result."""

    nodes: list[NodeReport]
    returned: int
    metrics_summary: dict
    #: per-segment row-vs-batch pricing records (auto mode), if any
    decisions: "list | None" = None

    def render(self) -> str:
        """Pretty-print the annotated plan tree."""
        label_width = max(
            (len("  " * n.depth + n.label) for n in self.nodes), default=10
        )
        lines = []
        for node in self.nodes:
            name = "  " * node.depth + node.label
            line = (
                f"{name:<{label_width}}  "
                f"est={node.estimated_rows:,.0f} act={node.actual_out}"
                f"  (cost={node.estimated_cost:,.0f} in={node.actual_in})"
            )
            if node.wall_ms is not None:
                line += f" time={node.wall_ms:.2f}ms"
            if node.misestimate_factor > 10.0:
                line += f"  !! {node.misestimate_factor:,.1f}x misestimate"
            lines.append(line)
        if self.decisions:
            from .hybrid import render_decisions

            lines.append(render_decisions(self.decisions))
        lines.append(
            f"returned {self.returned} rows; "
            f"measured cost {self.metrics_summary['simulated_cost']:,.1f} units, "
            f"{self.metrics_summary['tuples_scanned']} tuples scanned, "
            f"{self.metrics_summary['predicate_evaluations']} predicate evaluations"
        )
        return "\n".join(lines)


def explain_analyze(
    catalog: Catalog,
    spec: QuerySpec,
    plan: PlanNode,
    k: int | None = None,
    sample: SampleDatabase | None = None,
    sample_ratio: float = 0.01,
    seed: int = 0,
    decisions: "list | None" = None,
) -> AnalyzeReport:
    """Execute ``plan`` and report estimated-vs-actual per operator.

    ``plan`` may contain lowered segments (:class:`BatchSegmentPlan`) —
    the report descends through the ``BatchToRow`` frontier into the batch
    operator tree, so per-operator actuals stay visible on the columnar
    path too.  ``decisions`` (the auto mode's per-segment pricing records)
    are rendered as a footer when supplied.
    """
    estimator = CardinalityEstimator(
        catalog, spec, sample=sample, ratio=sample_ratio, seed=seed
    )
    cost_model = CostModel(catalog, spec, estimator)
    scoring: ScoringFunction = spec.scoring
    context = ExecutionContext(catalog, scoring)
    root = plan.build()
    root.open(context)
    try:
        returned = 0
        target = spec.k if k is None else k
        while returned < target:
            if root.next() is None:
                break
            returned += 1
        nodes: list[NodeReport] = []
        _collect(plan, root, 0, estimator, cost_model, nodes)
    finally:
        root.close()
    return AnalyzeReport(nodes, returned, context.metrics.summary(), decisions)


def _collect(
    plan: PlanNode,
    operator: "PhysicalOperator | BatchOperator",
    depth: int,
    estimator: CardinalityEstimator,
    cost_model: CostModel,
    out: list[NodeReport],
) -> None:
    label = plan.label()
    if isinstance(plan, BatchSegmentPlan):
        label = "batch segment"
        if plan.decision is not None:
            label += f" ({plan.decision.summary()})"
    wall_ms = None
    if isinstance(operator, (BatchOperator, BatchToRow)):
        wall_ms = operator.stats.wall_seconds * 1000.0
    out.append(
        NodeReport(
            label=label,
            depth=depth,
            estimated_rows=estimator.estimate(plan),
            estimated_cost=cost_model.cost(plan),
            actual_in=operator.stats.tuples_in,
            actual_out=operator.stats.tuples_out,
            wall_ms=wall_ms,
        )
    )
    if isinstance(plan, BatchSegmentPlan) and isinstance(operator, BatchToRow):
        from ..execution.codegen import CompiledSegmentSource

        if isinstance(operator.source, CompiledSegmentSource):
            # The fused function collapses the whole segment into one
            # operator, so the descriptor subtree has no per-node twin to
            # descend into: report the compiled source as a single node
            # (its wall time is the entire segment's execution time).
            source = operator.source
            out.append(
                NodeReport(
                    label=source.describe(),
                    depth=depth + 1,
                    estimated_rows=estimator.estimate(plan.inner),
                    estimated_cost=cost_model.compiled_segment_cost(plan.inner),
                    actual_in=source.stats.tuples_in,
                    actual_out=source.stats.tuples_out,
                    wall_ms=source.stats.wall_seconds * 1000.0,
                )
            )
            return
        # Descend through the frontier into the batch operator tree; the
        # descriptor subtree and the built operators are shape-identical
        # (a Sort frontier maps onto BatchSort).
        _collect(plan.inner, operator.source, depth + 1, estimator, cost_model, out)
        return
    for child_plan, child_operator in zip(plan.children, operator.children()):
        _collect(child_plan, child_operator, depth + 1, estimator, cost_model, out)
