"""Cost-governed hybrid execution: batch lowering as an optimizer decision.

The batched columnar path (:mod:`repro.execution.batch`) used to be applied
by an unconditional post-pass — every ``P = φ`` segment was lowered, always.
That contradicts the paper's central argument: the optimizer should *price*
alternative execution strategies in one cost model and pick per plan, the
same way it prices rank-aware against traditional plans.  This module is
the pricing pass for the row-vs-batch dimension:

* :class:`SegmentDecision` — one priced comparison: a maximal ``P = φ``
  segment, its estimated row-regime and batch-regime costs, and the winner;
* :func:`decide_batch_lowering` — walk a physical plan top-down, find every
  maximal lowerable segment (exactly the segments the unconditional
  :func:`~repro.optimizer.plans.lower_to_batch` pass would lower), compare
  the two regimes under the plan's own :class:`~repro.optimizer.cost_model.CostModel`,
  and wrap the segment in a :class:`~repro.optimizer.plans.BatchSegmentPlan`
  only when the batch regime is estimated cheaper.

Small segments stay tuple-at-a-time: the per-segment setup and the
per-tuple ``BatchToRow`` frontier conversion (``BATCH_SETUP_UNIT``,
``FRONTIER_TUPLE_UNIT``) outweigh the dispatch savings below a few hundred
tuples.  Large drained segments lower: the bulk regime replaces row-mode
per-tuple dispatch (``MOVE_UNIT``) with per-batch dispatch plus a ~5×
smaller per-tuple handling cost.

The pass also runs over plans the enumerator already decided (its
``batch_execution="auto"`` knob prices :class:`BatchSegmentPlan`
alternatives *during* the DP): existing wrappers are re-priced and
annotated, never re-wrapped, so the recorded decisions always reflect the
one cost model that produced the plan.
"""

from __future__ import annotations

from dataclasses import dataclass

from .cost_model import CostModel
from .plans import (
    BatchSegmentPlan,
    PlanNode,
    SortPlan,
    segment_lowerable,
)

import copy


@dataclass
class SegmentDecision:
    """One priced row-vs-batch comparison for a maximal ``P = φ`` segment."""

    #: label of the segment's root operator (matches the plan tree)
    segment: str
    #: estimated cost of executing the segment tuple-at-a-time
    row_cost: float
    #: estimated cost of the lowered twin (bulk operators + BatchToRow
    #: frontier + per-segment setup)
    batch_cost: float

    @property
    def lowered(self) -> bool:
        return self.batch_cost < self.row_cost

    @property
    def winner(self) -> str:
        return "batch" if self.lowered else "row"

    def summary(self) -> str:
        return (
            f"row cost={self.row_cost:,.0f} vs batch cost={self.batch_cost:,.0f}"
            f" -> {self.winner}"
        )


def price_segment(segment: PlanNode, cost_model: CostModel) -> SegmentDecision:
    """Price both execution regimes for one lowerable segment.

    ``segment`` may already be wrapped in a :class:`BatchSegmentPlan` (the
    enumerator's doing); the comparison is always row twin vs batch twin.
    """
    inner = segment.inner if isinstance(segment, BatchSegmentPlan) else segment
    wrapped = segment if isinstance(segment, BatchSegmentPlan) else BatchSegmentPlan(inner)
    return SegmentDecision(
        segment=inner.label(),
        row_cost=cost_model.cost(inner),
        batch_cost=cost_model.cost(wrapped),
    )


def decide_batch_lowering(
    plan: PlanNode, cost_model: CostModel
) -> tuple[PlanNode, list[SegmentDecision]]:
    """Lower each maximal ``P = φ`` segment of ``plan`` iff batch wins.

    Returns the decided plan (nodes treated as immutable — rewritten
    interior nodes are shallow copies, as in
    :func:`~repro.optimizer.plans.lower_to_batch`) and the list of
    per-segment decisions, in plan order.  Segments the enumerator already
    wrapped are kept (and annotated); segments it left row-mode are priced
    here — the same cost model reaches the same conclusion, so the pass is
    a no-op on fully DP-decided plans apart from collecting the records.
    """
    decisions: list[SegmentDecision] = []
    decided = _decide(plan, cost_model, decisions)
    return decided, decisions


def _decide(
    plan: PlanNode, cost_model: CostModel, decisions: list[SegmentDecision]
) -> PlanNode:
    if isinstance(plan, BatchSegmentPlan):
        # Already decided (by the enumerator or a previous pass): keep, but
        # record and annotate the comparison that justifies it.
        decision = price_segment(plan, cost_model)
        plan.decision = decision
        decisions.append(decision)
        return plan

    # Price the largest lowerable candidate rooted here: the whole subtree
    # when it is a pure ``P = φ`` segment, or the sort-inclusive twin when
    # a blocking sort sits on such a segment (it lowers to BatchSort).
    # When the maximal candidate loses, recursion continues below — a
    # smaller sub-segment may still win on its own (its frontier sits at a
    # cheaper point of the plan).
    is_candidate = segment_lowerable(plan) or (
        isinstance(plan, SortPlan) and segment_lowerable(plan.children[0])
    )
    if is_candidate:
        decision = price_segment(plan, cost_model)
        decisions.append(decision)
        if decision.lowered:
            wrapped = BatchSegmentPlan(plan)
            wrapped.decision = decision
            return wrapped

    if not plan.children:
        return plan
    decided = tuple(_decide(child, cost_model, decisions) for child in plan.children)
    if all(new is old for new, old in zip(decided, plan.children)):
        return plan
    clone = copy.copy(plan)
    clone.children = decided
    return clone


def render_decisions(decisions: list[SegmentDecision]) -> str:
    """The explain footer: every priced segment, both costs, the winner."""
    if not decisions:
        return "hybrid execution: no lowerable segments"
    lines = ["hybrid execution decisions (costed per segment):"]
    for decision in decisions:
        lines.append(f"  {decision.segment}: {decision.summary()}")
    return "\n".join(lines)
