"""Cost-governed hybrid execution: batch lowering as an optimizer decision.

The batched columnar path (:mod:`repro.execution.batch`) used to be applied
by an unconditional post-pass — every ``P = φ`` segment was lowered, always.
That contradicts the paper's central argument: the optimizer should *price*
alternative execution strategies in one cost model and pick per plan, the
same way it prices rank-aware against traditional plans.  This module is
the pricing pass for the row-vs-batch dimension:

* :class:`SegmentDecision` — one priced comparison: a maximal ``P = φ``
  segment, its estimated row-regime and batch-regime costs, and the winner;
* :func:`decide_batch_lowering` — walk a physical plan top-down, find every
  maximal lowerable segment (exactly the segments the unconditional
  :func:`~repro.optimizer.plans.lower_to_batch` pass would lower), compare
  the two regimes under the plan's own :class:`~repro.optimizer.cost_model.CostModel`,
  and wrap the segment in a :class:`~repro.optimizer.plans.BatchSegmentPlan`
  only when the batch regime is estimated cheaper.

Small segments stay tuple-at-a-time: the per-segment setup and the
per-tuple ``BatchToRow`` frontier conversion (``BATCH_SETUP_UNIT``,
``FRONTIER_TUPLE_UNIT``) outweigh the dispatch savings below a few hundred
tuples.  Large drained segments lower: the bulk regime replaces row-mode
per-tuple dispatch (``MOVE_UNIT``) with per-batch dispatch plus a ~5×
smaller per-tuple handling cost.

Since PR 6 the same pass also prices the segment's **degree of
parallelism**: every candidate DOP up to the session's ``parallelism``
knob is costed with the parallel-regime formulas
(:meth:`~repro.optimizer.cost_model.CostModel.parallel_segment_cost`), and
the cheapest candidate is stamped on the wrapper
(:attr:`~repro.optimizer.plans.BatchSegmentPlan.dop`).  Small segments
keep DOP 1 — worker setup and morsel dispatch overheads dominate — while
segments whose morsel count exceeds the DOP divide their work and win.

The pass also runs over plans the enumerator already decided (its
``batch_execution="auto"`` knob prices :class:`BatchSegmentPlan`
alternatives *during* the DP): existing wrappers are re-priced and
annotated, never re-wrapped, so the recorded decisions always reflect the
one cost model that produced the plan.

Since PR 9 the pass prices a **third regime**: plan-to-code compilation
(:mod:`repro.execution.codegen`).  When the session's execution mode
enables it (``compiled_mode="auto"`` / ``"always"``), every segment the
code generator supports is additionally priced with
:meth:`~repro.optimizer.cost_model.CostModel.compiled_segment_cost` and
the explain footer shows all three candidates — ``row vs batch vs
compiled`` — with the winner.  In ``auto`` the compiled regime must beat
*both* others; in ``always`` (the forced ``execution="compiled"`` knob)
every supported segment compiles and unsupported segments demonstrably
fall back to the batch pipeline.  Segments the generator cannot reproduce
(non-sort-topped, rank-carrying, exotic operators) are simply never
priced for compilation — the interpreter remains the fallback and the
parity oracle.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .cost_model import CostModel
from .plans import (
    BatchSegmentPlan,
    PlanNode,
    SortPlan,
    segment_lowerable,
)

import copy


@dataclass
class SegmentDecision:
    """One priced row-vs-batch comparison for a maximal ``P = φ`` segment."""

    #: label of the segment's root operator (matches the plan tree)
    segment: str
    #: estimated cost of executing the segment tuple-at-a-time
    row_cost: float
    #: estimated cost of the lowered twin at DOP 1 (bulk operators +
    #: BatchToRow frontier + per-segment setup)
    batch_cost: float
    #: chosen degree of parallelism (1 = serial batch execution)
    dop: int = 1
    #: estimated batch cost per candidate DOP, ``{dop: cost}``; always
    #: contains at least ``{1: batch_cost}``
    parallel_costs: dict[int, float] = field(default_factory=dict)
    #: estimated cost of the compiled fused-function twin, or None when the
    #: segment was not priced for compilation (mode off / unsupported shape)
    compiled_cost: float | None = None
    #: the compiled-regime mode this decision was priced under:
    #: "off" (never compile), "auto" (compile iff cheapest), or "always"
    #: (forced — every supported segment compiles)
    compiled_mode: str = "off"

    @property
    def chosen_batch_cost(self) -> float:
        """Batch-regime cost at the chosen DOP."""
        return self.parallel_costs.get(self.dop, self.batch_cost)

    @property
    def compiled_chosen(self) -> bool:
        """Whether the compiled regime wins this segment.  ``None``
        compiled_cost means the segment has no compiled twin, so forced
        mode still falls back to the interpreted pipeline."""
        if self.compiled_cost is None:
            return False
        if self.compiled_mode == "always":
            return True
        return (
            self.compiled_cost < self.row_cost
            and self.compiled_cost < self.chosen_batch_cost
        )

    @property
    def lowered(self) -> bool:
        if self.compiled_chosen:
            return True
        # Segments without a compiled twin (unsupported shapes) keep the
        # normal costed row-vs-batch outcome in every compiled mode; a
        # *chosen* segment whose compilation later fails falls back to
        # the interpreted batch pipeline of the same wrapper.
        return self.chosen_batch_cost < self.row_cost

    @property
    def winner(self) -> str:
        if self.compiled_chosen:
            return "compiled"
        if not self.lowered:
            return "row"
        return "batch" if self.dop <= 1 else f"batch(dop={self.dop})"

    def summary(self) -> str:
        text = (
            f"row cost={self.row_cost:,.0f} vs batch cost={self.batch_cost:,.0f}"
        )
        if self.dop > 1:
            text += (
                f" vs batch@dop={self.dop} cost={self.chosen_batch_cost:,.0f}"
            )
        if self.compiled_cost is not None:
            text += f" vs compiled cost={self.compiled_cost:,.0f}"
        return f"{text} -> {self.winner}"


def _dop_candidates(max_dop: int) -> list[int]:
    """Candidate degrees of parallelism up to the session knob: powers of
    two plus ``max_dop`` itself (the classical exchange-operator ladder)."""
    max_dop = max(1, int(max_dop))
    candidates = [1]
    dop = 2
    while dop < max_dop:
        candidates.append(dop)
        dop *= 2
    if max_dop > 1:
        candidates.append(max_dop)
    return candidates


def price_segment(
    segment: PlanNode,
    cost_model: CostModel,
    max_dop: int = 1,
    compiled_mode: str = "off",
) -> SegmentDecision:
    """Price the execution regimes — row, every candidate DOP of the batch
    regime up to ``max_dop``, and (when ``compiled_mode`` enables it and
    the code generator supports the shape) the compiled fused function —
    for one lowerable segment.

    ``segment`` may already be wrapped in a :class:`BatchSegmentPlan` (the
    enumerator's doing); the comparison is always between the regime twins
    of the inner tree.  The decision's ``dop`` is the cheapest batch
    candidate (ties break low, so parallelism must *win*, not merely
    match, to be chosen).
    """
    inner = segment.inner if isinstance(segment, BatchSegmentPlan) else segment
    parallel_costs = {
        dop: cost_model.parallel_segment_cost(inner, dop)
        for dop in _dop_candidates(max_dop)
    }
    best_dop = min(parallel_costs, key=lambda dop: (parallel_costs[dop], dop))
    compiled_cost = None
    if compiled_mode != "off":
        from ..execution import codegen

        if codegen.supports(inner, cost_model.catalog, cost_model.scoring):
            compiled_cost = cost_model.compiled_segment_cost(inner)
    return SegmentDecision(
        segment=inner.label(),
        row_cost=cost_model.cost(inner),
        batch_cost=parallel_costs[1],
        dop=best_dop,
        parallel_costs=parallel_costs,
        compiled_cost=compiled_cost,
        compiled_mode=compiled_mode,
    )


def decide_batch_lowering(
    plan: PlanNode,
    cost_model: CostModel,
    max_dop: int = 1,
    compiled_mode: str = "off",
) -> tuple[PlanNode, list[SegmentDecision]]:
    """Lower each maximal ``P = φ`` segment of ``plan`` iff batch wins.

    Returns the decided plan (nodes treated as immutable — rewritten
    interior nodes are shallow copies, as in
    :func:`~repro.optimizer.plans.lower_to_batch`) and the list of
    per-segment decisions, in plan order.  Segments the enumerator already
    wrapped are kept (and annotated); segments it left row-mode are priced
    here — the same cost model reaches the same conclusion, so the pass is
    a no-op on fully DP-decided plans apart from collecting the records.
    """
    decisions: list[SegmentDecision] = []
    decided = _decide(
        plan, cost_model, decisions, max(1, int(max_dop)), compiled_mode
    )
    return decided, decisions


def _decide(
    plan: PlanNode,
    cost_model: CostModel,
    decisions: list[SegmentDecision],
    max_dop: int,
    compiled_mode: str,
) -> PlanNode:
    if isinstance(plan, BatchSegmentPlan):
        # Already decided (by the enumerator or a previous pass): keep, but
        # record and annotate the comparison that justifies it — including
        # the DOP choice, which the enumerator does not price.
        decision = price_segment(plan, cost_model, max_dop, compiled_mode)
        plan.decision = decision
        if decision.lowered:
            plan.dop = decision.dop
        decisions.append(decision)
        return plan

    # Price the largest lowerable candidate rooted here: the whole subtree
    # when it is a pure ``P = φ`` segment, or the sort-inclusive twin when
    # a blocking sort sits on such a segment (it lowers to BatchSort).
    # When the maximal candidate loses, recursion continues below — a
    # smaller sub-segment may still win on its own (its frontier sits at a
    # cheaper point of the plan).
    is_candidate = segment_lowerable(plan) or (
        isinstance(plan, SortPlan) and segment_lowerable(plan.children[0])
    )
    if is_candidate:
        decision = price_segment(plan, cost_model, max_dop, compiled_mode)
        decisions.append(decision)
        if decision.lowered:
            wrapped = BatchSegmentPlan(plan, dop=decision.dop)
            wrapped.decision = decision
            return wrapped

    if not plan.children:
        return plan
    decided = tuple(
        _decide(child, cost_model, decisions, max_dop, compiled_mode)
        for child in plan.children
    )
    if all(new is old for new, old in zip(decided, plan.children)):
        return plan
    clone = copy.copy(plan)
    clone.children = decided
    return clone


def render_decisions(decisions: list[SegmentDecision]) -> str:
    """The explain footer: every priced segment, both costs, the winner."""
    if not decisions:
        return "hybrid execution: no lowerable segments"
    lines = ["hybrid execution decisions (costed per segment):"]
    for decision in decisions:
        lines.append(f"  {decision.segment}: {decision.summary()}")
    return "\n".join(lines)
